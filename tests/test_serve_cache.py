"""End-to-end tests for the serve-path result cache.

Correctness bar: a cached response must be byte-identical (same PPM
payload) to what an uncached service renders for the same query — across
engines' merge fan-outs, under eviction pressure, and for every tier.
"""

import multiprocessing

import pytest

from repro.errors import ConfigurationError
from repro.serve import QueryService, SceneSpec

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the query service pools need the fork start method",
)

SCENE = SceneSpec(
    "unit", grid=11, timesteps=2, species=2, nchunks=8, nfiles=4, seed=7,
    isovalue=0.35,
)


def _service(**kw):
    defaults = dict(
        scenes=[SCENE], config="R-E-Ra-M", width=32, height=32, copies=2
    )
    defaults.update(kw)
    return QueryService(**defaults)


@pytest.fixture(scope="module")
def uncached_frames():
    """Reference frames from a cache-free service, one per query shape."""
    queries = {
        "base": {"isovalue": 0.4, "timestep": 1},
        "view": {"isovalue": 0.4, "timestep": 1,
                 "view": {"azimuth": 60, "elevation": 10}},
        "iso2": {"isovalue": 0.3, "timestep": 0},
        "tiled": {"isovalue": 0.4, "timestep": 1, "merge_copies": 2},
    }
    service = _service()
    try:
        return {
            name: service.render(dict(query))["frame_b64"]
            for name, query in queries.items()
        }
    finally:
        service.close()


def test_cached_responses_are_bit_exact(uncached_frames):
    service = _service(cache_mb=32)
    try:
        first = service.render({"isovalue": 0.4, "timestep": 1})
        second = service.render({"isovalue": 0.4, "timestep": 1})
        assert first["frame_b64"] == uncached_frames["base"]
        assert second["frame_b64"] == uncached_frames["base"]
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["cache"]["triangles"] == "hit"
        assert second["cache"]["tiles"] == "hit"
        assert second["cache"]["bytes_saved"] > 0
        assert second["makespan_s"] == 0.0  # no pipeline run
        assert second["active_pixels"] == first["active_pixels"]
    finally:
        service.close()


def test_cached_view_queries_do_not_collide(uncached_frames):
    service = _service(cache_mb=32)
    try:
        base = service.render({"isovalue": 0.4, "timestep": 1})
        view = service.render(
            {"isovalue": 0.4, "timestep": 1,
             "view": {"azimuth": 60, "elevation": 10}}
        )
        # Same triangles (tier hit), different camera: its own tile entry.
        assert view["cache"]["triangles"] == "hit"
        assert view["cached"] is False
        assert view["frame_b64"] == uncached_frames["view"]
        again = service.render(
            {"isovalue": 0.4, "timestep": 1,
             "view": {"azimuth": 60, "elevation": 10}}
        )
        assert again["cached"] is True
        assert again["frame_b64"] == uncached_frames["view"]
        assert base["frame_b64"] == uncached_frames["base"]
    finally:
        service.close()


def test_tiered_merge_cached_frames_match_single_merge(uncached_frames):
    service = _service(cache_mb=32, merge_copies=2)
    try:
        first = service.render(
            {"isovalue": 0.4, "timestep": 1, "merge_copies": 2}
        )
        second = service.render(
            {"isovalue": 0.4, "timestep": 1, "merge_copies": 2}
        )
        assert second["cached"] is True
        assert first["frame_b64"] == uncached_frames["tiled"]
        assert second["frame_b64"] == uncached_frames["tiled"]
        # The tiled pipeline renders the same image as the single merge.
        assert second["frame_b64"] == uncached_frames["base"]
    finally:
        service.close()


def test_eviction_pressure_keeps_responses_bit_exact(uncached_frames):
    # A cache too small for every entry: eviction churns constantly, but
    # every response — hit, miss, or recomputed after eviction — must stay
    # identical to the uncached render.
    service = _service(cache_mb=0.01)
    try:
        sequence = ["base", "iso2", "base", "view", "iso2", "base"]
        queries = {
            "base": {"isovalue": 0.4, "timestep": 1},
            "view": {"isovalue": 0.4, "timestep": 1,
                     "view": {"azimuth": 60, "elevation": 10}},
            "iso2": {"isovalue": 0.3, "timestep": 0},
        }
        for name in sequence:
            response = service.render(dict(queries[name]))
            assert response["frame_b64"] == uncached_frames[name], name
        stats = service.cache_stats()["shared"]
        assert stats["evictions"] + stats["rejected"] > 0
        assert stats["size_bytes"] <= stats["capacity_bytes"]
    finally:
        service.close()


def test_negative_tier_caches_failed_lookups():
    service = _service(cache_mb=8)
    try:
        for _ in range(2):
            with pytest.raises(ConfigurationError, match="unknown dataset"):
                service.render({"dataset": "missing"})
        for _ in range(2):
            with pytest.raises(ConfigurationError, match="out of range"):
                service.render({"timestep": 99})
        negative = service.cache_stats()["shared"]["by_tier"]["negative"]
        assert negative["hits"] == 2
        assert negative["misses"] == 2
    finally:
        service.close()


def test_fused_config_refuses_cache_but_still_serves(uncached_frames):
    service = _service(cache_mb=8, config="RE-Ra-M")
    try:
        first = service.render({"isovalue": 0.4, "timestep": 1})
        second = service.render({"isovalue": 0.4, "timestep": 1})
        assert first["cache"]["mode"] == "refused"
        assert "E703" in first["cache"]["error"]
        assert "E706" in first["cache"]["error"]
        assert second["cached"] is False  # nothing memoised
        assert second["warm"] is True  # ...but the pool still serves warm
        assert first["frame_b64"] == uncached_frames["base"]
        assert second["frame_b64"] == uncached_frames["base"]
        assert service.cache_stats()["refusals"]["RE-Ra-M"]
    finally:
        service.close()


def test_pool_scope_gives_each_pool_its_own_cache(uncached_frames):
    service = _service(cache_mb=8, cache_scope="pool")
    try:
        service.render({"isovalue": 0.4, "timestep": 1})
        second = service.render({"isovalue": 0.4, "timestep": 1})
        assert second["cached"] is True
        assert second["frame_b64"] == uncached_frames["base"]
        stats = service.stats()
        assert stats["cache"]["scope"] == "pool"
        (pool_stats,) = stats["pools"].values()
        assert pool_stats["cache"]["hits"] >= 2  # triangles + tiles
    finally:
        service.close()


def test_trace_records_cache_events():
    service = _service(cache_mb=8)
    try:
        service.render({"isovalue": 0.4, "timestep": 1})
        traced = service.render(
            {"isovalue": 0.4, "timestep": 1, "trace": True}
        )
        assert traced["cached"] is True
        assert traced["trace"]["events"] >= 2  # cache_hit per tier
    finally:
        service.close()


def test_warm_pool_stats_surface_cache_binding():
    service = _service(cache_mb=8)
    try:
        service.render({"isovalue": 0.4, "timestep": 1})
        stats = service.stats()
        (pool_stats,) = stats["pools"].values()
        assert pool_stats["cache"]["members"] == ["E"]
        assert pool_stats["cache"]["signature"]
        shared = stats["cache"]["shared"]
        assert shared["entries"] >= 2  # triangles + one tile
    finally:
        service.close()
