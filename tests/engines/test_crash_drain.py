"""Crash-path lifecycle: no shared-memory segment outlives a failed run.

Every drain path — a consumer that raises, a consumer that dies without
cleanup, a producer abandoned mid-send — must acknowledge discarded
envelopes (so DD windows upstream keep moving) *and* release their
shared-memory segments.  These tests inject each failure with payloads
large enough to take the shared-memory path and assert ``/dev/shm`` is
back to its pre-run state afterwards.
"""

import multiprocessing
import os
import subprocess
import sys
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import DataBuffer, Filter, FilterGraph, Placement
from repro.core.buffer import BufferCodec
from repro.engines.process import ProcessEngine, _Writer
from repro.errors import EngineError

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process engine needs the fork start method",
)


class ArraySource(Filter):
    """Emits float64 arrays big enough for the shared-memory payload path."""

    def __init__(self, count, length=4096):
        self.count = count
        self.length = length

    def flush(self, ctx):
        for i in range(self.count):
            arr = np.full(self.length, float(i), dtype=np.float64)
            ctx.write(DataBuffer(arr.nbytes, payload=arr, tags={"seq": i}))


class ArraySumSink(Filter):
    def init(self, ctx):
        self.total = 0.0

    def handle(self, ctx, buffer):
        self.total += float(buffer.payload.sum())

    def result(self):
        return self.total


@pytest.fixture
def shm_ledger():
    """Snapshot /dev/shm; yields a closure returning newly leaked psm_*."""
    if not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm on this platform")
    before = set(os.listdir("/dev/shm"))

    def leaked():
        # The resource tracker unlinks asynchronously on worker exit;
        # give stragglers a moment before declaring a leak.
        for _ in range(50):
            now = {
                f
                for f in set(os.listdir("/dev/shm")) - before
                if f.startswith("psm_")
            }
            if not now:
                return set()
            time.sleep(0.02)
        return now

    return leaked


def _crash_graph(sink_factory, count=10):
    g = FilterGraph()
    g.add_filter(
        "src", factory=lambda: ArraySource(count), is_source=True
    )
    g.add_filter("sink", factory=sink_factory)
    g.connect("src", "sink")
    p = Placement().place("src", ["h0"]).place("sink", ["h0"])
    return g, p


def test_consumer_exception_releases_segments(shm_ledger):
    """A consumer that raises drains its input, acking and releasing."""

    class ExplodingSink(Filter):
        def handle(self, ctx, buffer):
            raise RuntimeError("boom")

    g, p = _crash_graph(ExplodingSink)
    engine = ProcessEngine(
        g, p, policy="DD", codec=BufferCodec(shm_threshold=1024),
        queue_capacity=2,
    )
    with pytest.raises(EngineError, match="boom"):
        engine.run()
    assert not shm_ledger()


def test_consumer_hard_crash_releases_segments(shm_ledger):
    """A consumer dying without cleanup leaves the parent to drain.

    The producer keeps sending into the dead copy set — blocked on the
    capacity-1 queue and the DD window — so the supervisor's drain must
    both release the stranded segments and ack them to unblock the
    producer.  (A copy killed *mid-handle* necessarily loses the one
    segment it was leasing until the resource tracker reclaims it at
    interpreter exit; dying in init models every parent-recoverable
    hard-crash point.)
    """

    class DyingSink(Filter):
        def init(self, ctx):
            os._exit(3)

    g, p = _crash_graph(DyingSink, count=12)
    engine = ProcessEngine(
        g, p, policy="DD", codec=BufferCodec(shm_threshold=1024),
        queue_capacity=1,
    )
    with pytest.raises(EngineError, match="exit code 3"):
        engine.run()
    assert not shm_ledger()


def test_abandoned_send_releases_encoded_payload(shm_ledger):
    """_Writer.send releases the already-encoded segment when it raises."""

    class ExplodingPolicy:
        needs_ack = False

        def bind(self, targets):
            pass

        def select(self):
            raise RuntimeError("routing failed")

        def route(self, tags):
            return self.select()

    writer = _Writer(
        host="h0",
        policy=ExplodingPolicy(),
        copyset_queues=[SimpleNamespace(copies=1)],
        hosts=["h0"],
        label="src#0",
        clock=time.perf_counter,
        tracer=None,
        codec=BufferCodec(shm_threshold=64),
        producer_cid=0,
        cycle=0,
        stream="src->sink",
    )
    arr = np.ones(4096, dtype=np.float64)
    with pytest.raises(RuntimeError, match="routing failed"):
        writer.send(DataBuffer(arr.nbytes, payload=arr))
    assert not shm_ledger()


def test_resource_tracker_clean_at_exit():
    """A crashing run leaves nothing for the resource tracker to complain
    about when the whole interpreter exits (the end-of-process check the
    in-process ledger cannot perform)."""
    script = """
import numpy as np
from repro.core import DataBuffer, Filter, FilterGraph, Placement
from repro.core.buffer import BufferCodec
from repro.engines.process import ProcessEngine
from repro.errors import EngineError

class Source(Filter):
    def flush(self, ctx):
        for i in range(10):
            arr = np.full(4096, float(i))
            ctx.write(DataBuffer(arr.nbytes, payload=arr))

class Bad(Filter):
    def handle(self, ctx, buffer):
        raise RuntimeError("boom")

g = FilterGraph()
g.add_filter("src", factory=Source, is_source=True)
g.add_filter("sink", factory=Bad)
g.connect("src", "sink")
p = Placement().place("src", ["h0"]).place("sink", ["h0"])
try:
    ProcessEngine(g, p, policy="DD",
                  codec=BufferCodec(shm_threshold=1024)).run()
except EngineError:
    print("CRASHED-AS-EXPECTED")
"""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, timeout=120, env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "CRASHED-AS-EXPECTED" in proc.stdout
    assert "resource_tracker" not in proc.stderr, proc.stderr
    assert "leaked" not in proc.stderr, proc.stderr
