"""Integration tests for the process engine: real filters, one OS process
per copy, payloads through the shared-memory buffer codec."""

import numpy as np
import pytest

from repro.core import DataBuffer, Filter, FilterGraph, Placement
from repro.core.buffer import BufferCodec
from repro.engines.process import ProcessEngine
from repro.engines.threaded import ThreadedEngine
from repro.errors import EngineError

pytestmark = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="process engine needs the fork start method",
)


class NumberSource(Filter):
    """Emits integers 0..count-1, one per buffer, partitioned over copies."""

    def __init__(self, count):
        self.count = count

    def flush(self, ctx):
        for i in range(self.count):
            if i % ctx.total_copies == ctx.copy_index:
                ctx.write(DataBuffer(8, payload=i, tags={"seq": i}))


class Doubler(Filter):
    def handle(self, ctx, buffer):
        ctx.write(DataBuffer(8, payload=buffer.payload * 2, tags=buffer.tags))


class SumSink(Filter):
    def __init__(self):
        self.total = 0
        self.buffers = 0

    def init(self, ctx):
        # Copies persist across run_cycles units of work; restart the books.
        self.total = 0
        self.buffers = 0

    def handle(self, ctx, buffer):
        self.total += buffer.payload
        self.buffers += 1

    def result(self):
        return {"total": self.total, "buffers": self.buffers}


class ArraySource(Filter):
    """Emits large float64 arrays, forcing the shared-memory payload path."""

    def __init__(self, count, length=20_000):
        self.count = count
        self.length = length

    def flush(self, ctx):
        for i in range(self.count):
            arr = np.full(self.length, float(i), dtype=np.float64)
            ctx.write(DataBuffer(arr.nbytes, payload=arr, tags={"seq": i}))


class ArraySumSink(Filter):
    def init(self, ctx):
        self.total = 0.0

    def handle(self, ctx, buffer):
        # Payload arrays are shared-memory views valid only inside handle;
        # reduce, don't retain.
        self.total += float(buffer.payload.sum())

    def result(self):
        return self.total


def build(count=20, mid_copies=1, policy="RR", **kw):
    g = FilterGraph()
    g.add_filter("src", factory=lambda: NumberSource(count), is_source=True)
    g.add_filter("mid", factory=Doubler)
    g.add_filter("sink", factory=SumSink)
    g.connect("src", "mid")
    g.connect("mid", "sink")
    p = Placement()
    p.place("src", ["h0"])
    p.place("mid", [("h0", mid_copies)])
    p.place("sink", ["h0"])
    return ProcessEngine(g, p, policy=policy, **kw)


def test_pipeline_computes_correct_result():
    metrics = build(count=20).run()
    assert metrics.result == {"total": 2 * sum(range(20)), "buffers": 20}


def test_multiple_copies_preserve_result():
    metrics = build(count=50, mid_copies=4).run()
    assert metrics.result["total"] == 2 * sum(range(50))
    assert metrics.result["buffers"] == 50


@pytest.mark.parametrize("policy", ["RR", "WRR", "DD"])
def test_policies_preserve_result_and_books(policy):
    engine = build(count=30, mid_copies=2, policy=policy)
    metrics = engine.run()
    assert metrics.result["total"] == 2 * sum(range(30))
    assert metrics.stream_totals("src->mid") == (30, 240)
    metrics.validate(engine.graph)
    if policy == "DD":
        assert metrics.ack_messages > 0
        assert metrics.ack_bytes == metrics.ack_messages * metrics.ack_nbytes


def test_shared_memory_payload_round_trip():
    count, length = 12, 20_000
    g = FilterGraph()
    g.add_filter(
        "src", factory=lambda: ArraySource(count, length), is_source=True
    )
    g.add_filter("sink", factory=ArraySumSink)
    g.connect("src", "sink")
    p = Placement().place("src", ["h0"]).place("sink", ["h0"])
    codec = BufferCodec(shm_threshold=1024)
    metrics = ProcessEngine(g, p, codec=codec).run()
    assert metrics.result == sum(float(i) * length for i in range(count))
    assert metrics.stream_totals("src->sink") == (count, count * length * 8)


def test_inline_codec_matches_shared_memory():
    count = 10
    results = []
    for codec in (BufferCodec(shm_threshold=64), BufferCodec(use_shared_memory=False)):
        g = FilterGraph()
        g.add_filter("src", factory=lambda: ArraySource(count), is_source=True)
        g.add_filter("sink", factory=ArraySumSink)
        g.connect("src", "sink")
        p = Placement().place("src", ["h0"]).place("sink", ["h0"])
        results.append(ProcessEngine(g, p, codec=codec).run().result)
    assert results[0] == results[1]


def test_dd_ack_parity_with_threaded_per_policy():
    for policy in ("RR", "WRR", "DD"):
        mt = None
        for cls in (ThreadedEngine, ProcessEngine):
            g = FilterGraph()
            g.add_filter(
                "src", factory=lambda: NumberSource(24), is_source=True
            )
            g.add_filter("mid", factory=Doubler)
            g.add_filter("sink", factory=SumSink)
            g.connect("src", "mid")
            g.connect("mid", "sink")
            p = Placement()
            p.place("src", ["h0"])
            p.place("mid", [("h0", 2), ("h1", 2)])
            p.place("sink", ["h0"])
            m = cls(g, p, policy=policy).run()
            if mt is None:
                mt = m
            else:
                assert m.ack_messages == mt.ack_messages, policy
                assert m.ack_bytes == mt.ack_bytes, policy
                assert m.result == mt.result, policy


def test_filter_error_propagates_without_deadlock():
    class Exploder(Filter):
        def handle(self, ctx, buffer):
            raise RuntimeError("kaboom")

    g = FilterGraph()
    g.add_filter("src", factory=lambda: NumberSource(5), is_source=True)
    g.add_filter("bad", factory=Exploder)
    g.add_filter("sink", factory=SumSink)
    g.connect("src", "bad")
    g.connect("bad", "sink")
    p = Placement()
    p.place("src", ["h0"]).place("bad", ["h0"]).place("sink", ["h0"])
    with pytest.raises(EngineError, match="kaboom"):
        ProcessEngine(g, p).run()


def test_missing_factory_rejected():
    g = FilterGraph()
    g.add_filter("src", is_source=True)
    g.add_filter("sink", factory=SumSink)
    g.connect("src", "sink")
    p = Placement().place("src", ["h0"]).place("sink", ["h0"])
    with pytest.raises(EngineError, match="factory"):
        ProcessEngine(g, p)


def test_unknown_start_method_rejected():
    g = FilterGraph()
    g.add_filter("src", factory=lambda: NumberSource(1), is_source=True)
    g.add_filter("sink", factory=SumSink)
    g.connect("src", "sink")
    p = Placement().place("src", ["h0"]).place("sink", ["h0"])
    with pytest.raises(EngineError, match="start method"):
        ProcessEngine(g, p, start_method="not-a-method")


def test_queue_capacity_backpressure():
    import time as _time

    class SlowSink(Filter):
        def __init__(self):
            self.count = 0

        def handle(self, ctx, buffer):
            _time.sleep(0.001)
            self.count += 1

        def result(self):
            return self.count

    g = FilterGraph()
    g.add_filter("src", factory=lambda: NumberSource(40), is_source=True)
    g.add_filter("sink", factory=SlowSink)
    g.connect("src", "sink")
    p = Placement().place("src", ["h0"]).place("sink", ["h0"])
    metrics = ProcessEngine(g, p, queue_capacity=1).run()
    assert metrics.result == 40


def test_run_cycles_validate_and_finish_times():
    engine = build(count=10, mid_copies=2, policy="DD")
    results = engine.run_cycles([None, None, None])
    assert len(results) == 3
    for metrics in results:
        assert metrics.result["total"] == 2 * sum(range(10))
        metrics.validate(engine.graph)
        assert all(c.finished_at > 0.0 for c in metrics.copies)
        assert metrics.makespan == max(c.finished_at for c in metrics.copies)


def test_finished_at_recorded_per_copy():
    metrics = build(count=20, mid_copies=2).run()
    for copy in metrics.copies:
        assert copy.finished_at > 0.0
        assert copy.finished_at <= metrics.makespan + 1e-6


def test_no_shared_memory_leaked(tmp_path):
    import os

    if not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm on this platform")
    before = set(os.listdir("/dev/shm"))
    g = FilterGraph()
    g.add_filter("src", factory=lambda: ArraySource(8), is_source=True)
    g.add_filter("sink", factory=ArraySumSink)
    g.connect("src", "sink")
    p = Placement().place("src", ["h0"]).place("sink", ["h0"])
    ProcessEngine(g, p, codec=BufferCodec(shm_threshold=1024)).run()
    after = set(os.listdir("/dev/shm"))
    leaked = {f for f in after - before if f.startswith("psm_")}
    assert not leaked


def test_rendered_image_bit_exact_vs_threaded():
    from repro.data import HostDisks, ParSSimDataset, StorageMap
    from repro.viz import IsosurfaceApp
    from repro.viz.profile import DatasetProfile

    dataset = ParSSimDataset((17, 17, 17), timesteps=1, species=1, seed=5)
    isovalue = 0.35
    profile = DatasetProfile.measured(
        "tiny", dataset, nchunks=8, nfiles=4, isovalue=isovalue
    )

    def render(engine_cls, algorithm):
        storage = StorageMap.balanced(
            profile.files, [HostDisks("h0"), HostDisks("h1")]
        )
        app = IsosurfaceApp(
            profile, storage, width=48, height=48, algorithm=algorithm,
            dataset=dataset, isovalue=isovalue,
        )
        graph = app.graph("R-E-Ra-M")
        placement = app.placement(
            "R-E-Ra-M", compute_hosts=["h0", "h1"], copies_per_host=2
        )
        metrics = engine_cls(graph, placement, policy="DD").run()
        metrics.validate(graph)
        return metrics

    for algorithm in ("zbuffer", "active"):
        mt = render(ThreadedEngine, algorithm)
        mp_ = render(ProcessEngine, algorithm)
        np.testing.assert_array_equal(mt.result.image, mp_.result.image)
        assert mp_.result.image.max() > 0
        assert mt.ack_messages == mp_.ack_messages
