"""Cross-engine metrics parity: every engine keeps the same books.

One small shared graph (source -> worker x2 -> sink) is run through the
threaded engine (real filters, wall clock), the process engine (real
filters, one OS process per copy, wall clock) and the simulated engine
(cost models, sim clock).  The *shapes* of the resulting ``RunMetrics``
must agree: per-copy ``finished_at`` populated everywhere, ``ack_bytes``
accounted symmetrically with ``ack_messages``, stream totals identical, and
``RunMetrics.validate()`` green everywhere.  All engines must also emit the
unified trace schema and the traces must survive a JSONL round trip.
"""

import pytest

from repro.core import (
    DataBuffer,
    Filter,
    FilterGraph,
    Placement,
    SimFilter,
    SimSource,
    SourceItem,
)
from repro.core.tracing import EVENT_KINDS, Tracer
from repro.engines import ProcessEngine, SimulatedEngine, ThreadedEngine
from repro.sim import Environment, homogeneous_cluster

COUNT = 12
NBYTES = 64


class RealSource(Filter):
    def flush(self, ctx):
        for i in range(COUNT):
            if i % ctx.total_copies == ctx.copy_index:
                ctx.write(DataBuffer(NBYTES, payload=i))


class RealWorker(Filter):
    def handle(self, ctx, buffer):
        ctx.write(DataBuffer(NBYTES, payload=buffer.payload * 2))


class RealSink(Filter):
    def __init__(self):
        self.total = 0

    def handle(self, ctx, buffer):
        self.total += buffer.payload

    def result(self):
        return self.total


class SimSourceModel(SimSource):
    def items(self, ctx):
        for i in range(COUNT):
            if i % ctx.total_copies == ctx.copy_index:
                yield SourceItem(cpu=0.001, outputs=[DataBuffer(NBYTES)])


class SimWorkerModel(SimFilter):
    def cost(self, buffer):
        return 0.002

    def react(self, buffer):
        return (DataBuffer(NBYTES),)


class SimSinkModel(SimFilter):
    def cost(self, buffer):
        return 0.001

    def react(self, buffer):
        return ()


def shared_graph():
    """The same logical graph with both real and simulated factories."""
    g = FilterGraph()
    g.add_filter(
        "src", factory=RealSource, sim_factory=SimSourceModel, is_source=True
    )
    g.add_filter("work", factory=RealWorker, sim_factory=SimWorkerModel)
    g.add_filter("sink", factory=RealSink, sim_factory=SimSinkModel)
    g.connect("src", "work")
    g.connect("work", "sink")
    return g


def shared_placement():
    return (
        Placement()
        .place("src", ["node0"])
        .place("work", [("node0", 1), ("node1", 1)])
        .place("sink", ["node0"])
    )


def run_threaded(policy="DD", tracer=None):
    graph = shared_graph()
    metrics = ThreadedEngine(
        graph, shared_placement(), policy=policy, tracer=tracer
    ).run()
    return graph, metrics


def run_process(policy="DD", tracer=None):
    graph = shared_graph()
    metrics = ProcessEngine(
        graph, shared_placement(), policy=policy, tracer=tracer
    ).run()
    return graph, metrics


def run_simulated(policy="DD", tracer=None):
    graph = shared_graph()
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=2)
    metrics = SimulatedEngine(
        cluster, graph, shared_placement(), policy=policy, tracer=tracer
    ).run()
    return graph, metrics


ENGINES = {
    "threaded": run_threaded,
    "process": run_process,
    "simulated": run_simulated,
}


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_finished_at_populated_on_every_copy(engine):
    # Regression: the threaded engine used to leave finished_at at 0.0.
    _graph, metrics = ENGINES[engine]()
    assert len(metrics.copies) == 4
    for copy in metrics.copies:
        assert copy.finished_at > 0.0, (engine, copy)
        if engine in ("threaded", "process"):
            # Real-engine finish times are run-relative: within the makespan.
            assert copy.finished_at <= metrics.makespan + 1e-6


def test_threaded_finished_at_is_run_relative():
    _graph, metrics = run_threaded()
    last = max(c.finished_at for c in metrics.copies)
    assert last <= metrics.makespan + 1e-6
    assert metrics.makespan < 60.0  # seconds since run start, not epoch time


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_ack_bytes_accounted_with_messages(engine):
    # Regression: the threaded engine counted ack_messages but never
    # ack_bytes, silently zeroing DD overhead in threaded runs.
    _graph, metrics = ENGINES[engine]("DD")
    assert metrics.ack_messages > 0
    assert metrics.ack_nbytes > 0
    assert metrics.ack_bytes == metrics.ack_messages * metrics.ack_nbytes


def test_ack_parity_across_engines():
    _g1, threaded = run_threaded("DD")
    _g2, process = run_process("DD")
    _g3, simulated = run_simulated("DD")
    # Same graph, same buffer count, DD everywhere: identical ack volume.
    assert threaded.ack_messages == simulated.ack_messages
    assert threaded.ack_messages == process.ack_messages
    assert threaded.ack_bytes == simulated.ack_bytes
    assert threaded.ack_bytes == process.ack_bytes


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_stream_totals_and_validate(engine):
    graph, metrics = ENGINES[engine]()
    assert metrics.stream_totals("src->work") == (COUNT, COUNT * NBYTES)
    assert metrics.stream_totals("work->sink") == (COUNT, COUNT * NBYTES)
    metrics.validate(graph)  # conservation holds with graph cross-checks


def test_stream_totals_identical_across_engines():
    totals = {}
    for engine, runner in ENGINES.items():
        _graph, metrics = runner()
        totals[engine] = {
            name: (s.buffers, s.bytes) for name, s in metrics.streams.items()
        }
    assert totals["threaded"] == totals["simulated"]
    assert totals["threaded"] == totals["process"]


def test_io_time_where_applicable():
    # Disk time is modelled only by the simulated engine; the threaded
    # engine reads inside filter code.  Both leave the field >= 0 and the
    # simulated engine populates it when the source declares reads.
    class ReadingSource(SimSource):
        def items(self, ctx):
            yield SourceItem(read_bytes=1_000_000, outputs=[DataBuffer(NBYTES)])

    g = FilterGraph()
    g.add_filter("src", sim_factory=ReadingSource, is_source=True)
    g.add_filter("sink", sim_factory=SimSinkModel)
    g.connect("src", "sink")
    p = Placement().place("src", ["node0"]).place("sink", ["node0"])
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=1)
    metrics = SimulatedEngine(cluster, g, p, policy="RR").run()
    assert metrics.filter_io_time("src") > 0.0
    _graph, threaded = run_threaded()
    assert all(c.io_time >= 0.0 for c in threaded.copies)


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_unified_trace_schema(engine):
    tracer = Tracer()
    graph, metrics = ENGINES[engine]("DD", tracer=tracer)
    kinds = set(tracer.counts())
    assert kinds <= EVENT_KINDS
    # Core lifecycle kinds appear on both engines.
    assert {"recv", "compute", "send", "ack", "flush", "done"} <= kinds
    assert tracer.clock == ("sim" if engine == "simulated" else "wall")
    # Every copy traced a done event.
    done = [e for e in tracer.events if e.kind == "done"]
    assert len(done) == len(metrics.copies)
    # recv events match consumed buffers.
    assert tracer.counts()["recv"] == sum(c.buffers_in for c in metrics.copies)
    # Queue depths were sampled.
    assert tracer.queue_samples
    # DD acks carry measurable latencies.
    assert len(tracer.ack_latencies()) > 0
    assert all(latency >= 0.0 for latency in tracer.ack_latencies())


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_trace_jsonl_round_trip(engine, tmp_path):
    tracer = Tracer()
    ENGINES[engine]("DD", tracer=tracer)
    path = tmp_path / f"{engine}.jsonl"
    tracer.to_jsonl(str(path))
    loaded = Tracer.from_jsonl(str(path))
    assert loaded.events == tracer.events  # order preserved verbatim
    assert loaded.queue_samples == tracer.queue_samples
    assert loaded.clock == tracer.clock
    timeline = loaded.timeline(width=40)
    for copy in {e.copy for e in tracer.events}:
        assert copy in timeline
    assert loaded.utilisation().keys() == tracer.utilisation().keys()


def test_validate_catches_cooked_books():
    from repro.errors import MetricsError

    graph, metrics = run_threaded()
    metrics.ack_bytes += 1  # cook the ack ledger
    with pytest.raises(MetricsError, match="ack_bytes"):
        metrics.validate(graph)


# -- partial metrics on failed batches ----------------------------------------
class FragileWorker(Filter):
    """Doubles payloads; refuses the unit of work that says so."""

    def init(self, ctx):
        if ctx.uow == "bad":
            raise RuntimeError("boom uow")

    def handle(self, ctx, buffer):
        ctx.write(DataBuffer(NBYTES, payload=buffer.payload * 2))


class ResettingSink(Filter):
    def init(self, ctx):
        self.total = 0

    def handle(self, ctx, buffer):
        self.total += buffer.payload

    def result(self):
        return self.total


def test_partial_metrics_on_failed_batch_parity():
    """One bad cycle must not discard the healthy cycles' metrics.

    Both real engines attach one RunMetrics per unit of work — healthy
    cycles fully merged — plus every collected error to the EngineError,
    and they agree on all of it.
    """
    from repro.errors import EngineError

    uows = ["a", "bad", "c"]
    per_engine = {}
    for name, engine_cls in (
        ("threaded", ThreadedEngine), ("process", ProcessEngine)
    ):
        g = FilterGraph()
        g.add_filter("src", factory=RealSource, is_source=True)
        g.add_filter("work", factory=FragileWorker)
        g.add_filter("sink", factory=ResettingSink)
        g.connect("src", "work")
        g.connect("work", "sink")
        engine = engine_cls(g, shared_placement(), policy="DD")
        with pytest.raises(EngineError) as exc_info:
            engine.run_cycles(uows)
        exc = exc_info.value
        assert len(exc.metrics) == len(uows), name
        assert exc.errors, name
        assert "boom uow" in exc.errors[0], name
        per_engine[name] = exc

    threaded, process = per_engine["threaded"], per_engine["process"]
    # Both work copies refused the bad cycle on both engines.
    assert len(threaded.errors) == len(process.errors) == 2
    for k in (0, 2):  # the healthy cycles merged completely, identically
        t, p = threaded.metrics[k], process.metrics[k]
        assert t.result == p.result == 2 * sum(range(COUNT))
        assert (
            t.stream_totals("src->work")
            == p.stream_totals("src->work")
            == (COUNT, COUNT * NBYTES)
        )
        assert t.makespan > 0.0 and p.makespan > 0.0
    # The failed cycle still reports the sink's (empty) pass identically.
    assert threaded.metrics[1].result == process.metrics[1].result == 0
