"""Supervisor behaviour: block on process sentinels, never busy-poll.

The process engine's parent used to loop ``is_alive()`` with a 10 ms sleep
per lap for the whole run.  It now blocks in
``multiprocessing.connection.wait`` on the worker sentinels — no timeout
while every worker is healthy, a short sweep interval only after a crash
while dead copy sets may still receive traffic.
"""

import multiprocessing
import multiprocessing.connection
import os
import threading
import time

import pytest

from repro.core import DataBuffer, Filter, FilterGraph, Placement
from repro.engines.process import ProcessEngine
from repro.errors import EngineError

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process engine needs the fork start method",
)


class NumberSource(Filter):
    def __init__(self, count):
        self.count = count

    def flush(self, ctx):
        for i in range(self.count):
            if i % ctx.total_copies == ctx.copy_index:
                ctx.write(DataBuffer(8, payload=i))


class SumSink(Filter):
    def init(self, ctx):
        self.total = 0

    def handle(self, ctx, buffer):
        self.total += buffer.payload

    def result(self):
        return self.total


def build(count=20, policy="RR", **kw):
    g = FilterGraph()
    g.add_filter("src", factory=lambda: NumberSource(count), is_source=True)
    g.add_filter("sink", factory=SumSink)
    g.connect("src", "sink")
    p = Placement().place("src", ["h0"]).place("sink", ["h0"])
    return ProcessEngine(g, p, policy=policy, **kw)


@pytest.fixture
def wait_calls(monkeypatch):
    """Record every multiprocessing.connection.wait call (and pass through)."""
    calls = []
    real_wait = multiprocessing.connection.wait

    def recording_wait(object_list, timeout=None):
        calls.append(
            {"timeout": timeout, "thread": threading.current_thread().name}
        )
        return real_wait(object_list, timeout=timeout)

    monkeypatch.setattr(multiprocessing.connection, "wait", recording_wait)
    return calls


@pytest.fixture
def sleep_calls(monkeypatch):
    """Record every time.sleep call in this process (and pass through)."""
    calls = []
    real_sleep = time.sleep

    def recording_sleep(seconds):
        calls.append(
            {"seconds": seconds, "thread": threading.current_thread().name}
        )
        return real_sleep(seconds)

    monkeypatch.setattr(time, "sleep", recording_sleep)
    return calls


def test_healthy_supervision_blocks_without_polling(wait_calls, sleep_calls):
    """With healthy workers the supervisor never sleeps or times out."""
    supervisor = threading.current_thread().name  # run() supervises inline
    metrics = build(count=20).run()
    assert metrics.result == sum(range(20))

    supervisor_waits = [c for c in wait_calls if c["thread"] == supervisor]
    assert supervisor_waits, "supervisor never used connection.wait"
    assert all(c["timeout"] is None for c in supervisor_waits), (
        "healthy supervision must block indefinitely on the sentinels, "
        f"got timeouts {[c['timeout'] for c in supervisor_waits]}"
    )
    polls = [c for c in sleep_calls if c["thread"] == supervisor]
    assert not polls, f"supervisor slept in a poll loop: {polls}"


def test_crash_supervision_switches_to_sweep_timeout(wait_calls):
    """After a worker dies, waits carry the drain-sweep timeout."""

    class Crasher(Filter):
        def handle(self, ctx, buffer):
            os._exit(11)

    g = FilterGraph()
    g.add_filter("src", factory=lambda: NumberSource(6), is_source=True)
    g.add_filter("bad", factory=Crasher)
    g.add_filter("sink", factory=SumSink)
    g.connect("src", "bad")
    g.connect("bad", "sink")
    p = Placement()
    p.place("src", ["h0"]).place("bad", ["h0"]).place("sink", ["h0"])
    with pytest.raises(EngineError, match="exit code 11"):
        ProcessEngine(g, p).run()
    # The first wait (everything healthy) blocks; once the crash is seen
    # at least one subsequent wait must use the finite sweep timeout.
    timeouts = [c["timeout"] for c in wait_calls]
    assert timeouts[0] is None
    assert any(t is not None for t in timeouts)
