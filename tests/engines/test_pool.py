"""Warm-pool lifecycle: reuse, slot ring, idle reap, close/break protocol.

:class:`~repro.engines.pool.WarmPool` keeps filter-host processes alive
between units of work; these tests cover the contracts the batch engine
never exercises — reuse across successive query batches, bounded in-flight
slots, idle-timeout reaping, closing while queries are in flight, ack-drain
shutdown ordering under DD, and the broken-pool path when a worker dies.
"""

import multiprocessing
import os
import threading
import time

import numpy as np
import pytest

from repro.core import DataBuffer, Filter, FilterGraph, Placement
from repro.engines import PoolManager, ProcessEngine, WarmPool
from repro.errors import EngineError

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="warm pools need the fork start method",
)


class NumberSource(Filter):
    """Emits 0..count-1, scaled by the unit of work's multiplier."""

    def __init__(self, count):
        self.count = count

    def flush(self, ctx):
        scale = (ctx.uow or {}).get("scale", 1) if isinstance(
            ctx.uow, dict
        ) else 1
        for i in range(self.count):
            if i % ctx.total_copies == ctx.copy_index:
                ctx.write(DataBuffer(8, payload=i * scale))


class Doubler(Filter):
    def handle(self, ctx, buffer):
        ctx.write(DataBuffer(8, payload=buffer.payload * 2))


class SumSink(Filter):
    def init(self, ctx):
        self.total = 0
        self.buffers = 0

    def handle(self, ctx, buffer):
        self.total += buffer.payload
        self.buffers += 1

    def result(self):
        return {"total": self.total, "buffers": self.buffers}


def build_pool(count=10, mid_copies=2, policy="DD", **kw):
    g = FilterGraph()
    g.add_filter("src", factory=lambda: NumberSource(count), is_source=True)
    g.add_filter("mid", factory=Doubler)
    g.add_filter("sink", factory=SumSink)
    g.connect("src", "mid")
    g.connect("mid", "sink")
    p = Placement()
    p.place("src", ["h0"])
    p.place("mid", [("h0", mid_copies)])
    p.place("sink", ["h0"])
    return WarmPool(g, p, policy=policy, **kw)


EXPECTED = {"total": 2 * sum(range(10)), "buffers": 10}


def test_reuse_across_query_batches():
    """The same processes serve at least three successive batches."""
    with build_pool() as pool:
        for batch in range(3):
            metrics = pool.submit(None).result()
            assert metrics.result == EXPECTED
            assert metrics.makespan > 0.0
        assert pool.cycles_completed == 3
        stats = pool.stats()
        assert stats["workers"] == 4
        assert stats["cycles_completed"] == 3
    assert not pool.usable


def test_uow_parameterises_each_query():
    with build_pool() as pool:
        assert pool.submit({"scale": 1}).result().result["total"] == 90
        assert pool.submit({"scale": 3}).result().result["total"] == 270
        assert pool.run().result["total"] == 90  # None uow -> defaults


def test_run_cycles_batch_matches_engine_protocol():
    with build_pool() as pool:
        results = pool.run_cycles([{"scale": 1}, {"scale": 2}, {"scale": 4}])
    assert [m.result["total"] for m in results] == [90, 180, 360]


def test_slot_ring_admits_beyond_max_inflight():
    """More queries than slots: submits block politely, all complete."""
    with build_pool(max_inflight=2) as pool:
        pendings = [pool.submit({"scale": s}) for s in (1, 2, 3, 4, 5)]
        totals = [p.result().result["total"] for p in pendings]
    assert totals == [90, 180, 270, 360, 450]


def test_per_query_tracer_is_query_relative():
    from repro.core.tracing import Tracer

    with build_pool(policy="DD") as pool:
        pool.run()  # not traced
        time.sleep(0.2)  # pool-lifetime clock drifts ahead of query clock
        tracer = Tracer()
        metrics = pool.submit(None, tracer=tracer).result()
    assert metrics.ack_messages > 0
    assert tracer.events
    # Rebased onto the query's own clock: events start near zero even
    # though the pool has been alive much longer.
    assert min(e.time for e in tracer.events) < 0.15
    kinds = {e.kind for e in tracer.events}
    assert "done" in kinds


def test_idle_timeout_reaps_pool():
    pool = build_pool(idle_timeout=0.3)
    assert pool.submit(None).result().result == EXPECTED
    deadline = time.time() + 10.0
    while not pool.reaped and time.time() < deadline:
        time.sleep(0.05)
    assert pool.reaped
    assert not pool.usable
    with pytest.raises(EngineError, match="closed"):
        pool.submit(None)


def test_close_while_busy_finishes_inflight_queries():
    class SlowSink(Filter):
        def init(self, ctx):
            self.count = 0

        def handle(self, ctx, buffer):
            time.sleep(0.02)
            self.count += 1

        def result(self):
            return self.count

    g = FilterGraph()
    g.add_filter("src", factory=lambda: NumberSource(10), is_source=True)
    g.add_filter("sink", factory=SlowSink)
    g.connect("src", "sink")
    p = Placement().place("src", ["h0"]).place("sink", ["h0"])
    pool = WarmPool(g, p, policy="DD")
    pending = pool.submit(None)
    closer = threading.Thread(target=pool.close)
    closer.start()
    assert pending.result(timeout=30.0).result == 10
    closer.join(timeout=30.0)
    assert not closer.is_alive()
    assert not pool.usable
    with pytest.raises(EngineError, match="closed"):
        pool.submit(None)


def test_ack_drain_shutdown_ordering():
    """DD acks queued at close time are delivered before workers say bye.

    Repeated open/close cycles with in-flight DD traffic would hang (or
    strand ack threads) if the FIFO close protocol mis-ordered the ack
    sentinel against the worker's pending acks.
    """
    for _ in range(3):
        pool = build_pool(policy="DD", max_inflight=2)
        pendings = [pool.submit(None) for _ in range(3)]
        metrics = [p.result() for p in pendings]
        assert all(m.ack_messages > 0 for m in metrics)
        pool.close()
        assert not pool.usable
    # close() is idempotent.
    pool.close()


def test_worker_death_breaks_pool():
    class Mortal(Filter):
        def init(self, ctx):
            self.seen = 0

        def handle(self, ctx, buffer):
            if isinstance(ctx.uow, dict) and ctx.uow.get("die"):
                os._exit(23)
            self.seen += 1

        def result(self):
            return self.seen

    g = FilterGraph()
    g.add_filter("src", factory=lambda: NumberSource(6), is_source=True)
    g.add_filter("sink", factory=Mortal)
    g.connect("src", "sink")
    p = Placement().place("src", ["h0"]).place("sink", ["h0"])
    pool = WarmPool(g, p)
    assert pool.submit(None).result().result == 6
    with pytest.raises(EngineError, match="exit code 23"):
        pool.submit({"die": True}).result()
    assert not pool.usable
    with pytest.raises(EngineError, match="broken|closed"):
        pool.submit(None)
    pool.close()  # close after break is a clean no-op


def test_pool_matches_cold_engine_bit_exact():
    """A warm query renders the same frame as a cold ProcessEngine run."""
    from repro.data import HostDisks, ParSSimDataset, StorageMap
    from repro.viz import IsosurfaceApp
    from repro.viz.profile import DatasetProfile

    dataset = ParSSimDataset((13, 13, 13), timesteps=2, species=2, seed=7)
    profile = DatasetProfile.measured(
        "pool-parity", dataset, nchunks=8, nfiles=4, isovalue=0.35
    )
    storage = StorageMap.balanced(profile.files, [HostDisks("host0")])
    app = IsosurfaceApp(
        profile, storage, width=32, height=32, algorithm="active",
        dataset=dataset, isovalue=0.35,
    )
    graph = app.graph("RE-Ra-M")
    placement = app.placement("RE-Ra-M", copies_per_host=2)
    cold = ProcessEngine(graph, placement, policy="DD").run()
    with WarmPool(graph, placement, policy="DD") as pool:
        pool.run()
        warm = pool.submit(None).result()
    np.testing.assert_array_equal(cold.result.image, warm.result.image)
    assert cold.result.image.max() > 0


def test_no_shared_memory_leaked_across_pool_lifetime():
    if not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm on this platform")
    from repro.core.buffer import BufferCodec

    class ArraySource(Filter):
        def flush(self, ctx):
            for i in range(6):
                arr = np.full(4096, float(i))
                ctx.write(DataBuffer(arr.nbytes, payload=arr))

    class ArraySink(Filter):
        def init(self, ctx):
            self.total = 0.0

        def handle(self, ctx, buffer):
            self.total += float(buffer.payload.sum())

        def result(self):
            return self.total

    before = set(os.listdir("/dev/shm"))
    g = FilterGraph()
    g.add_filter("src", factory=ArraySource, is_source=True)
    g.add_filter("sink", factory=ArraySink)
    g.connect("src", "sink")
    p = Placement().place("src", ["h0"]).place("sink", ["h0"])
    with WarmPool(g, p, codec=BufferCodec(shm_threshold=1024)) as pool:
        for _ in range(3):
            assert pool.run().result == 6 * 4096.0 * 2.5
    for _ in range(50):
        leaked = {
            f for f in set(os.listdir("/dev/shm")) - before
            if f.startswith("psm_")
        }
        if not leaked:
            break
        time.sleep(0.02)
    assert not leaked


# -- PoolManager --------------------------------------------------------------
def test_pool_manager_caches_and_evicts_lru():
    manager = PoolManager(max_pools=2)
    a1, created_a = manager.get("a", lambda: build_pool(count=5))
    assert created_a
    a2, created_again = manager.get("a", lambda: build_pool(count=5))
    assert a2 is a1 and not created_again
    b, _ = manager.get("b", lambda: build_pool(count=5))
    # LRU order is now [a, b]; a third key evicts and closes "a".
    c, _ = manager.get("c", lambda: build_pool(count=5))
    assert len(manager) == 2
    assert not a1.usable  # evicted (least recently used) and closed
    assert b.usable and c.usable
    manager.close_all()
    assert not b.usable and not c.usable
    assert len(manager) == 0


def test_pool_manager_drops_unusable_and_reaps_idle():
    manager = PoolManager(max_pools=4, idle_timeout=0.2)
    pool, _ = manager.get("k", lambda: build_pool(count=5))
    assert pool.submit(None).result().result["total"] == 20
    time.sleep(0.4)
    manager.reap_idle()
    assert len(manager) == 0
    assert not pool.usable
    # A fresh build replaces the reaped pool transparently.
    pool2, created = manager.get("k", lambda: build_pool(count=5))
    assert created and pool2 is not pool
    manager.close_all()


def _build_slow_pool(per_buffer=0.05, count=10):
    class SlowSink(Filter):
        def init(self, ctx):
            self.count = 0

        def handle(self, ctx, buffer):
            time.sleep(per_buffer)
            self.count += 1

        def result(self):
            return self.count

    g = FilterGraph()
    g.add_filter("src", factory=lambda: NumberSource(count), is_source=True)
    g.add_filter("sink", factory=SlowSink)
    g.connect("src", "sink")
    p = Placement().place("src", ["h0"]).place("sink", ["h0"])
    return WarmPool(g, p, policy="DD")


def test_pool_manager_eviction_skips_busy_pools():
    """Capacity pressure never closes a pool with a query in flight.

    LRU eviction used to pick the least-recently-used pool regardless of
    in-flight queries; closing it blocked on (and raced) the live query.
    Now eviction takes the LRU *idle* pool and defers when every candidate
    is busy, temporarily exceeding ``max_pools``.
    """
    manager = PoolManager(max_pools=1)
    slow, _ = manager.get("a", _build_slow_pool)
    pending = slow.submit(None)  # ~0.5 s of sink work in flight
    assert slow.busy
    fast, created = manager.get("b", lambda: build_pool(count=5))
    assert created
    # The busy pool was not evicted: the manager deferred instead.
    assert len(manager) == 2
    assert slow.usable
    assert pending.result(timeout=30.0).result == 10  # query survived
    assert fast.submit(None).result().result == {"total": 20, "buffers": 5}
    # Once "a" drains, a later get shrinks back under budget.
    deadline = time.time() + 10.0
    while (len(manager) > 1 or slow.usable) and time.time() < deadline:
        manager.get("b", lambda: build_pool(count=5))
        time.sleep(0.05)
    assert len(manager) == 1
    assert not slow.usable and fast.usable
    manager.close_all()


def test_pool_manager_concurrent_misses_build_once():
    """Two misses on one key share a single cold build (per-key latch)."""
    builds = []

    def build_counted():
        builds.append(threading.get_ident())
        time.sleep(0.3)
        return build_pool(count=5)

    manager = PoolManager(max_pools=2)
    results = []

    def worker():
        results.append(manager.get("k", build_counted))

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30.0)
    assert len(builds) == 1
    assert len({id(pool) for pool, _ in results}) == 1
    assert sum(created for _, created in results) == 1
    pool = results[0][0]
    assert pool.submit(None).result().result == {"total": 20, "buffers": 5}
    manager.close_all()


def test_warm_hit_is_not_serialised_behind_cold_build():
    """A cold build on one key must not block warm hits on another.

    Builds used to run under the manager lock, so one slow fork stalled
    every concurrent ``get``; they now run outside it behind the latch.
    """
    manager = PoolManager(max_pools=4)
    warm, _ = manager.get("warm", lambda: build_pool(count=5))
    started = threading.Event()

    def slow_build():
        started.set()
        time.sleep(1.0)
        return build_pool(count=5)

    builder = threading.Thread(target=lambda: manager.get("cold", slow_build))
    builder.start()
    assert started.wait(timeout=10.0)
    t0 = time.perf_counter()
    hit, created = manager.get("warm", lambda: pytest.fail("rebuilt"))
    elapsed = time.perf_counter() - t0
    assert hit is warm and not created
    assert elapsed < 0.5  # did not wait out the 1 s cold build
    builder.join(timeout=30.0)
    manager.close_all()


def test_pool_manager_build_failure_reaches_all_waiters():
    gate = threading.Event()

    def failing():
        gate.wait(timeout=5.0)
        raise EngineError("boom")

    manager = PoolManager(max_pools=2)
    errors = []

    def worker():
        try:
            manager.get("k", failing)
        except EngineError as exc:
            errors.append(str(exc))

    threads = [threading.Thread(target=worker) for _ in range(3)]
    for t in threads:
        t.start()
    time.sleep(0.2)
    gate.set()
    for t in threads:
        t.join(timeout=30.0)
    assert errors == ["boom"] * 3
    # The failed key is not poisoned: a later get rebuilds cleanly.
    pool, created = manager.get("k", lambda: build_pool(count=5))
    assert created and pool.usable
    manager.close_all()


def test_manager_sweep_closes_dead_pool_and_releases_shm():
    """A pool whose worker died is closed defensively when swept.

    ``_reap`` used to just drop dead pools from the table; their shm
    ledger was only released if the breaker happened to run first.  The
    sweep now closes them, so the crash-drain path always ends with a
    clean /dev/shm.
    """
    if not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm on this platform")
    from repro.core.buffer import BufferCodec

    class MortalSink(Filter):
        # Dies in init (before leasing any segment): the parent-recoverable
        # hard-crash point, as in test_crash_drain -- a copy killed
        # mid-handle necessarily strands its one leased segment until the
        # resource tracker reclaims it at interpreter exit.
        def init(self, ctx):
            if isinstance(ctx.uow, dict) and ctx.uow.get("die"):
                # Let the source finish queueing its (window-sized) batch
                # first, so the crash strands segments in the queue -- the
                # exact state the sweep's defensive close must drain.
                time.sleep(0.5)
                os._exit(23)
            self.total = 0.0

        def handle(self, ctx, buffer):
            self.total += float(buffer.payload.sum())

        def result(self):
            return self.total

    class ArraySource(Filter):
        # Four buffers: within the DD window (4) and queue capacity, so
        # the producer is never terminated mid-send.
        def flush(self, ctx):
            for i in range(4):
                arr = np.full(4096, float(i))
                ctx.write(DataBuffer(arr.nbytes, payload=arr))

    def build_mortal():
        g = FilterGraph()
        g.add_filter("src", factory=ArraySource, is_source=True)
        g.add_filter("sink", factory=MortalSink)
        g.connect("src", "sink")
        p = Placement().place("src", ["h0"]).place("sink", ["h0"])
        return WarmPool(g, p, codec=BufferCodec(shm_threshold=1024))

    before = set(os.listdir("/dev/shm"))
    manager = PoolManager(max_pools=2)
    pool, _ = manager.get("k", build_mortal)
    assert pool.submit(None).result().result == 4 * 4096.0 * 1.5
    with pytest.raises(EngineError):
        pool.submit({"die": True}).result()
    assert not pool.usable
    manager.reap_idle()  # sweeps the dead pool and closes it defensively
    assert len(manager) == 0
    leaked = set()
    for _ in range(50):
        leaked = {
            f for f in set(os.listdir("/dev/shm")) - before
            if f.startswith("psm_")
        }
        if not leaked:
            break
        time.sleep(0.02)
    assert not leaked
    manager.close_all()


def test_real_concurrent_queries_table():
    """The extension experiment's warm-pool rerun produces sane rows."""
    from repro.experiments.concurrent_queries import run_real

    table = run_real(levels=(1, 2), grid=9, image=24)
    assert [row["queries"] for row in table.rows] == [1, 2]
    for row in table.rows:
        assert row["mean_latency"] > 0.0
        assert row["batch_time"] > 0.0
        assert row["throughput_qps"] > 0.0
