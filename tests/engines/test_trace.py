"""Tests for simulated-engine execution tracing."""

import pytest

from repro.core import DataBuffer, FilterGraph, Placement, SimFilter, SimSource, SourceItem
from repro.engines.simulated import SimulatedEngine
from repro.engines.trace import Tracer
from repro.sim import Environment, homogeneous_cluster


class Src(SimSource):
    def items(self, ctx):
        for i in range(5):
            yield SourceItem(
                read_bytes=1000, cpu=0.01,
                outputs=[DataBuffer(100, tags={"i": i})],
            )


class Snk(SimFilter):
    def cost(self, buffer):
        return 0.02

    def react(self, buffer):
        return ()


def traced_run():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=2)
    g = FilterGraph()
    g.add_filter("src", sim_factory=Src, is_source=True)
    g.add_filter("snk", sim_factory=Snk)
    g.connect("src", "snk")
    p = Placement().place("src", ["node0"]).place("snk", ["node1"])
    tracer = Tracer()
    SimulatedEngine(cluster, g, p, policy="RR", tracer=tracer).run()
    return tracer


def test_trace_records_all_kinds():
    tracer = traced_run()
    counts = tracer.counts()
    assert counts["io"] == 2 * 5  # start+end per disk read
    assert counts["recv"] == 5
    assert counts["send"] == 5
    assert counts["done"] == 2
    assert counts["compute"] == 2 * (5 + 5)  # start+end per charge


def test_trace_times_monotone_per_copy():
    tracer = traced_run()
    for copy in ("src@node0#0", "snk@node1#0"):
        events = tracer.for_copy(copy)
        assert events, copy
        times = [e.time for e in events]
        assert times == sorted(times)


def test_busy_spans_pair_up():
    tracer = traced_run()
    spans = tracer.busy_spans("snk@node1#0")
    assert len(spans) == 5
    for start, end in spans:
        assert end - start == pytest.approx(0.02)


def test_timeline_renders():
    tracer = traced_run()
    text = tracer.timeline(width=32)
    assert "src@node0#0" in text
    assert "#" in text


def test_timeline_empty():
    assert Tracer().timeline() == "(no events)"


def test_limit_drops_excess():
    tracer = Tracer(limit=3)
    for i in range(10):
        tracer.record(float(i), "c", "recv")
    assert len(tracer.events) == 3
    assert tracer.dropped == 7
    with pytest.raises(ValueError):
        Tracer(limit=0)


def test_untraced_run_records_nothing():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=1)
    g = FilterGraph()
    g.add_filter("src", sim_factory=Src, is_source=True)
    g.add_filter("snk", sim_factory=Snk)
    g.connect("src", "snk")
    p = Placement().place("src", ["node0"]).place("snk", ["node0"])
    engine = SimulatedEngine(cluster, g, p)
    assert engine.tracer is None
    engine.run()  # no crash without a tracer
