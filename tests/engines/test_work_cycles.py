"""Tests for the threaded engine's work-cycle protocol (run_cycles)."""

import numpy as np
import pytest

from repro.core import DataBuffer, Filter, FilterGraph, Placement
from repro.data import HostDisks, ParSSimDataset, StorageMap
from repro.engines import ThreadedEngine
from repro.errors import EngineError
from repro.viz import Camera, IsosurfaceApp
from repro.viz.profile import DatasetProfile


class CycleSource(Filter):
    """Emits its cycle's UOW value; counts init/finalize calls."""

    def __init__(self):
        self.inits = 0
        self.finalizes = 0

    def init(self, ctx):
        self.inits += 1

    def flush(self, ctx):
        for i in range(5):
            ctx.write(DataBuffer(8, payload=(ctx.uow["base"], i)))

    def finalize(self, ctx):
        self.finalizes += 1


class CycleSink(Filter):
    def init(self, ctx):
        self.got = []

    def handle(self, ctx, buffer):
        self.got.append(buffer.payload)

    def result(self):
        return sorted(self.got)


def simple_engine():
    g = FilterGraph()
    g.add_filter("src", factory=CycleSource, is_source=True)
    g.add_filter("sink", factory=CycleSink)
    g.connect("src", "sink")
    p = Placement().place("src", ["h0"]).place("sink", ["h0"])
    return ThreadedEngine(g, p, policy="RR")


def test_cycles_deliver_per_uow_results():
    runs = simple_engine().run_cycles([{"base": 10}, {"base": 20}, {"base": 30}])
    assert len(runs) == 3
    for metrics, base in zip(runs, (10, 20, 30)):
        assert metrics.result == [(base, i) for i in range(5)]
        assert metrics.makespan > 0


def test_instances_persist_across_cycles():
    instances = []

    class Probe(CycleSource):
        def __init__(self):
            super().__init__()
            instances.append(self)

    g = FilterGraph()
    g.add_filter("src", factory=Probe, is_source=True)
    g.add_filter("sink", factory=CycleSink)
    g.connect("src", "sink")
    p = Placement().place("src", ["h0"]).place("sink", ["h0"])
    ThreadedEngine(g, p).run_cycles([{"base": 1}, {"base": 2}])
    assert len(instances) == 1  # one instance, reused
    assert instances[0].inits == 2
    assert instances[0].finalizes == 2


def test_empty_uows_rejected():
    with pytest.raises(EngineError):
        simple_engine().run_cycles([])


@pytest.fixture(scope="module")
def scenario():
    dataset = ParSSimDataset((17, 17, 17), timesteps=3, species=1, seed=21)
    iso = 0.35
    profile = DatasetProfile.measured("wc", dataset, 8, 4, isovalue=iso)
    storage = StorageMap.balanced(profile.files, [HostDisks("h0")])
    return dataset, profile, storage, iso


def single_run(scenario, timestep, camera=None):
    dataset, profile, storage, iso = scenario
    app = IsosurfaceApp(
        profile, storage, width=48, height=48, algorithm="active",
        dataset=dataset, isovalue=iso, timestep=timestep, view=camera,
    )
    g = app.graph("RE-Ra-M")
    p = app.placement("RE-Ra-M")
    return ThreadedEngine(g, p).run().result.image


def test_timestep_uows_match_independent_runs(scenario):
    dataset, profile, storage, iso = scenario
    app = IsosurfaceApp(
        profile, storage, width=48, height=48, algorithm="active",
        dataset=dataset, isovalue=iso,
    )
    g = app.graph("RE-Ra-M")
    p = app.placement("RE-Ra-M")
    runs = ThreadedEngine(g, p).run_cycles(
        [{"timestep": 0}, {"timestep": 1}, {"timestep": 2}]
    )
    for t, metrics in enumerate(runs):
        np.testing.assert_array_equal(
            metrics.result.image, single_run(scenario, t), err_msg=f"t={t}"
        )


def test_camera_uows_render_different_views(scenario):
    dataset, profile, storage, iso = scenario
    cam_a = Camera.fit_grid(profile.grid_shape, 48, 48, direction=(1, 0, 0.4))
    cam_b = Camera.fit_grid(profile.grid_shape, 48, 48, direction=(0, 1, 0.4))
    app = IsosurfaceApp(
        profile, storage, width=48, height=48, algorithm="zbuffer",
        dataset=dataset, isovalue=iso,
    )
    g = app.graph("RE-Ra-M")
    p = app.placement("RE-Ra-M")
    runs = ThreadedEngine(g, p).run_cycles(
        [{"camera": cam_a}, {"camera": cam_b}]
    )
    img_a, img_b = runs[0].result.image, runs[1].result.image
    assert not np.array_equal(img_a, img_b)
    # Each matches the equivalent single-view run.
    np.testing.assert_array_equal(img_a, single_run(scenario, 0, camera=cam_a))


def test_cycle_stream_stats_are_per_cycle(scenario):
    dataset, profile, storage, iso = scenario
    app = IsosurfaceApp(
        profile, storage, width=48, height=48, algorithm="active",
        dataset=dataset, isovalue=iso,
    )
    g = app.graph("RE-Ra-M")
    p = app.placement("RE-Ra-M")
    runs = ThreadedEngine(g, p).run_cycles([{"timestep": 0}, {"timestep": 0}])
    a = runs[0].stream_totals("RE->Ra")
    b = runs[1].stream_totals("RE->Ra")
    assert a == b
    assert a[0] > 0


def test_cycle_failure_does_not_deadlock():
    class FlakySource(Filter):
        def __init__(self):
            self.cycle = -1

        def init(self, ctx):
            self.cycle += 1

        def flush(self, ctx):
            if self.cycle == 1:
                raise RuntimeError("cycle 1 exploded")
            ctx.write(DataBuffer(8, payload=self.cycle))

    g = FilterGraph()
    g.add_filter("src", factory=FlakySource, is_source=True)
    g.add_filter("sink", factory=CycleSink)
    g.connect("src", "sink")
    p = Placement().place("src", ["h0"]).place("sink", ["h0"])
    with pytest.raises(EngineError, match="cycle 1 exploded"):
        ThreadedEngine(g, p).run_cycles([{}, {}, {}])


def test_species_uows_render_different_images():
    dataset = ParSSimDataset((17, 17, 17), timesteps=1, species=2, seed=33)
    iso = 0.35
    profile = DatasetProfile.measured("sp", dataset, 8, 4, isovalue=iso)
    storage = StorageMap.balanced(profile.files, [HostDisks("h0")])
    app = IsosurfaceApp(
        profile, storage, width=48, height=48, algorithm="zbuffer",
        dataset=dataset, isovalue=iso,
    )
    g = app.graph("RE-Ra-M")
    p = app.placement("RE-Ra-M")
    runs = ThreadedEngine(g, p).run_cycles(
        [{"species": 0}, {"species": 1}]
    )
    assert not np.array_equal(runs[0].result.image, runs[1].result.image)


def test_dying_consumer_does_not_deadlock_producer():
    # The sink dies on its first buffer of cycle 0 while the source still
    # has many buffers to push through a tiny queue; the run must finish
    # (drain-to-stop) and report the error.
    class BigSource(Filter):
        def flush(self, ctx):
            for i in range(50):
                ctx.write(DataBuffer(8, payload=i))

    class DyingSink(Filter):
        def handle(self, ctx, buffer):
            raise RuntimeError("sink died")

    g = FilterGraph()
    g.add_filter("src", factory=BigSource, is_source=True)
    g.add_filter("sink", factory=DyingSink)
    g.connect("src", "sink")
    p = Placement().place("src", ["h0"]).place("sink", ["h0"])
    engine = ThreadedEngine(g, p, queue_capacity=2)
    with pytest.raises(EngineError, match="sink died"):
        engine.run_cycles([{}, {}])
