"""Cross-engine consistency: the simulated models track the real filters.

The simulated engine never touches payloads, yet its buffer accounting must
agree with the real pipeline wherever the quantities are exact: triangle
bytes on the (R)E->Ra stream (the profile's triangle counts times the wire
size per triangle) and the z-buffer merge volume (W*H*8).
"""

import pytest

from repro.data import HostDisks, ParSSimDataset, StorageMap
from repro.engines import SimulatedEngine, ThreadedEngine
from repro.sim import Environment, homogeneous_cluster
from repro.viz import IsosurfaceApp
from repro.viz.filters import TRIANGLE_BYTES
from repro.viz.profile import DatasetProfile


@pytest.fixture(scope="module")
def scenario():
    dataset = ParSSimDataset((17, 17, 17), timesteps=1, species=1, seed=11)
    iso = 0.35
    profile = DatasetProfile.measured(
        "xeng", dataset, nchunks=8, nfiles=4, isovalue=iso
    )
    return dataset, profile, iso


def run_threaded(scenario, algorithm):
    dataset, profile, iso = scenario
    storage = StorageMap.balanced(profile.files, [HostDisks("node0")])
    app = IsosurfaceApp(
        profile, storage, width=64, height=64, algorithm=algorithm,
        dataset=dataset, isovalue=iso,
    )
    return ThreadedEngine(
        app.graph("R-E-Ra-M"), app.placement("R-E-Ra-M")
    ).run()


def run_simulated(scenario, algorithm):
    _dataset, profile, _iso = scenario
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=1)
    storage = StorageMap.balanced(profile.files, [HostDisks("node0", 2)])
    app = IsosurfaceApp(
        profile, storage, width=64, height=64, algorithm=algorithm
    )
    return SimulatedEngine(
        cluster, app.graph("R-E-Ra-M"), app.placement("R-E-Ra-M"), policy="RR"
    ).run()


def test_triangle_bytes_agree(scenario):
    _dataset, profile, _iso = scenario
    expected = profile.total_triangles(0) * TRIANGLE_BYTES
    for runner in (run_threaded, run_simulated):
        metrics = runner(scenario, "active")
        _, nbytes = metrics.stream_totals("E->Ra")
        assert nbytes == expected, runner.__name__


def test_zbuffer_merge_volume_agrees(scenario):
    expected = 64 * 64 * 8
    for runner in (run_threaded, run_simulated):
        metrics = runner(scenario, "zbuffer")
        _, nbytes = metrics.stream_totals("Ra->M")
        assert nbytes == expected, runner.__name__


def test_voxel_bytes_agree(scenario):
    _dataset, profile, _iso = scenario
    expected = sum(c.nbytes for c in profile.chunks)
    for runner in (run_threaded, run_simulated):
        metrics = runner(scenario, "active")
        _, nbytes = metrics.stream_totals("R->E")
        assert nbytes == expected, runner.__name__


def test_active_pixel_volume_is_model_estimate(scenario):
    # The AP merge volume is exact in the real pipeline and *estimated* in
    # the simulation (fragments-per-triangle model); they must agree on
    # order of magnitude but are not expected to be equal.
    real_bytes = run_threaded(scenario, "active").stream_totals("Ra->M")[1]
    sim_bytes = run_simulated(scenario, "active").stream_totals("Ra->M")[1]
    assert real_bytes > 0 and sim_bytes > 0
    ratio = sim_bytes / real_bytes
    assert 0.02 < ratio < 50.0
