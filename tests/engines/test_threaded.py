"""Integration tests for the threaded engine with real filters."""

import pytest

from repro.core import DataBuffer, Filter, FilterGraph, Placement
from repro.engines.threaded import ThreadedEngine
from repro.errors import EngineError


class NumberSource(Filter):
    """Emits integers 0..count-1, one per buffer, partitioned over copies."""

    def __init__(self, count):
        self.count = count

    def flush(self, ctx):
        for i in range(self.count):
            if i % ctx.total_copies == ctx.copy_index:
                ctx.write(DataBuffer(8, payload=i, tags={"seq": i}))


class Doubler(Filter):
    def handle(self, ctx, buffer):
        ctx.write(DataBuffer(8, payload=buffer.payload * 2, tags=buffer.tags))


class SumSink(Filter):
    def __init__(self):
        self.total = 0
        self.buffers = 0

    def handle(self, ctx, buffer):
        self.total += buffer.payload
        self.buffers += 1

    def result(self):
        return {"total": self.total, "buffers": self.buffers}


def build(count=20, mid_copies=1, policy="RR"):
    g = FilterGraph()
    g.add_filter("src", factory=lambda: NumberSource(count), is_source=True)
    g.add_filter("mid", factory=Doubler)
    g.add_filter("sink", factory=SumSink)
    g.connect("src", "mid")
    g.connect("mid", "sink")
    p = Placement()
    p.place("src", ["h0"])
    p.place("mid", [("h0", mid_copies)])
    p.place("sink", ["h0"])
    return ThreadedEngine(g, p, policy=policy)


def test_pipeline_computes_correct_result():
    metrics = build(count=20).run()
    assert metrics.result == {"total": 2 * sum(range(20)), "buffers": 20}


def test_multiple_copies_preserve_result():
    metrics = build(count=50, mid_copies=4).run()
    assert metrics.result["total"] == 2 * sum(range(50))
    assert metrics.result["buffers"] == 50


def test_dd_policy_works_locally():
    metrics = build(count=30, mid_copies=2, policy="DD").run()
    assert metrics.result["total"] == 2 * sum(range(30))
    assert metrics.ack_messages > 0


def test_stream_stats_recorded():
    metrics = build(count=10).run()
    assert metrics.stream_totals("src->mid") == (10, 80)
    assert metrics.stream_totals("mid->sink") == (10, 80)


def test_source_copies_partition_work():
    g = FilterGraph()
    g.add_filter("src", factory=lambda: NumberSource(30), is_source=True)
    g.add_filter("sink", factory=SumSink)
    g.connect("src", "sink")
    p = Placement()
    p.place("src", [("h0", 3)])
    p.place("sink", ["h0"])
    metrics = ThreadedEngine(g, p, policy="RR").run()
    assert metrics.result["total"] == sum(range(30))


def test_copies_across_hosts_share_nothing():
    g = FilterGraph()
    g.add_filter("src", factory=lambda: NumberSource(40), is_source=True)
    g.add_filter("mid", factory=Doubler)
    g.add_filter("sink", factory=SumSink)
    g.connect("src", "mid")
    g.connect("mid", "sink")
    p = Placement()
    p.place("src", ["h0"])
    p.place("mid", [("h0", 2), ("h1", 2)])
    p.place("sink", ["h0"])
    metrics = ThreadedEngine(g, p, policy="WRR").run()
    assert metrics.result["total"] == 2 * sum(range(40))
    mid_stats = [c for c in metrics.copies if c.filter_name == "mid"]
    assert len(mid_stats) == 4


def test_filter_error_propagates_without_deadlock():
    class Exploder(Filter):
        def handle(self, ctx, buffer):
            raise RuntimeError("kaboom")

    g = FilterGraph()
    g.add_filter("src", factory=lambda: NumberSource(5), is_source=True)
    g.add_filter("bad", factory=Exploder)
    g.add_filter("sink", factory=SumSink)
    g.connect("src", "bad")
    g.connect("bad", "sink")
    p = Placement()
    p.place("src", ["h0"]).place("bad", ["h0"]).place("sink", ["h0"])
    with pytest.raises(EngineError, match="kaboom"):
        ThreadedEngine(g, p).run()


def test_missing_factory_rejected():
    g = FilterGraph()
    g.add_filter("src", is_source=True)
    g.add_filter("sink", factory=SumSink)
    g.connect("src", "sink")
    p = Placement().place("src", ["h0"]).place("sink", ["h0"])
    with pytest.raises(EngineError, match="factory"):
        ThreadedEngine(g, p)


def test_init_and_finalize_called():
    calls = []

    class Lifecycle(Filter):
        def init(self, ctx):
            calls.append("init")

        def handle(self, ctx, buffer):
            calls.append("handle")

        def flush(self, ctx):
            calls.append("flush")

        def finalize(self, ctx):
            calls.append("finalize")

    g = FilterGraph()
    g.add_filter("src", factory=lambda: NumberSource(2), is_source=True)
    g.add_filter("f", factory=Lifecycle)
    g.connect("src", "f")
    p = Placement().place("src", ["h0"]).place("f", ["h0"])
    ThreadedEngine(g, p).run()
    assert calls == ["init", "handle", "handle", "flush", "finalize"]


def test_write_to_unknown_stream_rejected():
    class BadWriter(Filter):
        def flush(self, ctx):
            ctx.write(DataBuffer(1), stream="nope")

    g = FilterGraph()
    g.add_filter("src", factory=BadWriter, is_source=True)
    g.add_filter("sink", factory=SumSink)
    g.connect("src", "sink")
    p = Placement().place("src", ["h0"]).place("sink", ["h0"])
    with pytest.raises(EngineError, match="nope"):
        ThreadedEngine(g, p).run()


def test_queue_capacity_backpressure():
    # A slow consumer with a tiny queue throttles the producer without
    # losing buffers.
    import time as _time

    class SlowSink(Filter):
        def __init__(self):
            self.count = 0

        def handle(self, ctx, buffer):
            _time.sleep(0.001)
            self.count += 1

        def result(self):
            return self.count

    g = FilterGraph()
    g.add_filter("src", factory=lambda: NumberSource(40), is_source=True)
    g.add_filter("sink", factory=SlowSink)
    g.connect("src", "sink")
    p = Placement().place("src", ["h0"]).place("sink", ["h0"])
    metrics = ThreadedEngine(g, p, queue_capacity=1).run()
    assert metrics.result == 40


def test_run_cycles_equivalence_with_run():
    metrics_single = build(count=15).run()
    [metrics_cycle] = build(count=15).run_cycles([None])
    assert metrics_cycle.result == metrics_single.result
    assert metrics_cycle.stream_totals("src->mid") == metrics_single.stream_totals(
        "src->mid"
    )


def test_finished_at_recorded_per_copy():
    # Regression: finished_at used to stay 0.0 on threaded runs.
    metrics = build(count=20, mid_copies=2).run()
    for copy in metrics.copies:
        assert copy.finished_at > 0.0
        assert copy.finished_at <= metrics.makespan + 1e-6


def test_ack_bytes_match_ack_messages():
    # Regression: ack_messages was counted but ack_bytes never accrued.
    metrics = build(count=30, mid_copies=2, policy="DD").run()
    assert metrics.ack_messages > 0
    assert metrics.ack_bytes == metrics.ack_messages * metrics.ack_nbytes


def test_run_metrics_validate_passes():
    engine = build(count=25, mid_copies=3, policy="DD")
    engine.run().validate(engine.graph)


def test_run_cycles_validate_and_finish_times():
    engine = build(count=10, mid_copies=2, policy="DD")
    for metrics in engine.run_cycles([None, None, None]):
        metrics.validate(engine.graph)
        assert all(c.finished_at > 0.0 for c in metrics.copies)
