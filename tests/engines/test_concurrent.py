"""Tests for concurrent unit-of-work execution on a shared cluster."""

import pytest

from repro.core import DataBuffer, FilterGraph, Placement, SimFilter, SimSource, SourceItem
from repro.engines.simulated import SimulatedEngine, run_concurrent
from repro.errors import EngineError
from repro.sim import Environment, homogeneous_cluster


class Burst(SimSource):
    def __init__(self, count, cpu):
        self.count = count
        self.cpu = cpu

    def items(self, ctx):
        for i in range(self.count):
            yield SourceItem(cpu=self.cpu, outputs=[DataBuffer(1000, tags={"i": i})])


class Counter(SimFilter):
    def __init__(self):
        self.n = 0

    def cost(self, buffer):
        return 0.01

    def react(self, buffer):
        self.n += 1
        return ()

    def result(self):
        return self.n


def make_engine(cluster, count=20, cpu=0.05, src="node0", sink="node1"):
    g = FilterGraph()
    g.add_filter("src", sim_factory=lambda: Burst(count, cpu), is_source=True)
    g.add_filter("sink", sim_factory=Counter)
    g.connect("src", "sink")
    p = Placement().place("src", [src]).place("sink", [sink])
    return SimulatedEngine(cluster, g, p, policy="RR")


def test_concurrent_queries_complete_and_contend():
    # Solo baseline.
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=2, cores=1)
    solo = make_engine(cluster).run().makespan

    # Two identical queries sharing the same nodes: both finish, both
    # slower than solo (CPU contention), and neither takes 2x-solo alone
    # longer than the serial total.
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=2, cores=1)
    engines = [make_engine(cluster), make_engine(cluster)]
    results = run_concurrent(engines)
    assert [m.result for m in results] == [20, 20]
    for m in results:
        assert m.makespan > solo * 1.2
        assert m.makespan <= 2.2 * solo


def test_concurrent_disjoint_nodes_no_interference():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=4, cores=1)
    solo_env = Environment()
    solo_cluster = homogeneous_cluster(solo_env, nodes=4, cores=1)
    solo = make_engine(solo_cluster).run().makespan

    engines = [
        make_engine(cluster, src="node0", sink="node1"),
        make_engine(cluster, src="node2", sink="node3"),
    ]
    results = run_concurrent(engines)
    for m in results:
        assert m.makespan == pytest.approx(solo, rel=1e-6)


def test_run_concurrent_validation():
    with pytest.raises(EngineError):
        run_concurrent([])
    env1 = Environment()
    env2 = Environment()
    c1 = homogeneous_cluster(env1, nodes=2)
    c2 = homogeneous_cluster(env2, nodes=2)
    with pytest.raises(EngineError, match="share one cluster"):
        run_concurrent([make_engine(c1), make_engine(c2)])


def test_finalize_before_completion_rejected():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=2)
    pending = make_engine(cluster).launch()
    with pytest.raises(EngineError, match="before the run completed"):
        pending.finalize()
    env.run(until=pending.done)
    metrics = pending.finalize()
    assert metrics.result == 20
    # finalize is idempotent.
    assert pending.finalize() is metrics


def test_run_still_works_after_refactor():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=2)
    metrics = make_engine(cluster).run()
    assert metrics.result == 20
    assert metrics.makespan > 0
