"""Per-stream policy overrides in both engines."""

from repro.core import (
    DataBuffer,
    Filter,
    FilterGraph,
    Placement,
    SimFilter,
    SimSource,
    SourceItem,
)
from repro.engines import SimulatedEngine, ThreadedEngine
from repro.sim import Environment, homogeneous_cluster


class SimSrc(SimSource):
    def items(self, ctx):
        for i in range(12):
            yield SourceItem(cpu=0.001, outputs=[DataBuffer(100, tags={"i": i})])


class SimRelay(SimFilter):
    def cost(self, buffer):
        return 0.001

    def react(self, buffer):
        return [buffer]


class SimSink(SimFilter):
    def __init__(self):
        self.n = 0

    def cost(self, buffer):
        return 0.0

    def react(self, buffer):
        self.n += 1
        return ()

    def result(self):
        return self.n


def test_simulated_override_restricts_acks_to_one_stream():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=3)
    g = FilterGraph()
    g.add_filter("src", sim_factory=SimSrc, is_source=True)
    g.add_filter("relay", sim_factory=SimRelay)
    g.add_filter("sink", sim_factory=SimSink)
    g.connect("src", "relay")
    g.connect("relay", "sink")
    p = Placement()
    p.place("src", ["node0"])
    p.spread("relay", ["node1", "node2"])
    p.place("sink", ["node0"])
    # RR everywhere except DD on src->relay: acks only for the 12 buffers
    # crossing that stream.
    metrics = SimulatedEngine(
        cluster, g, p, policy="RR", policy_overrides={"src->relay": "DD"}
    ).run()
    assert metrics.result == 12
    assert metrics.ack_messages == 12


def test_simulated_override_unknown_stream_is_ignored():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=1)
    g = FilterGraph()
    g.add_filter("src", sim_factory=SimSrc, is_source=True)
    g.add_filter("sink", sim_factory=SimSink)
    g.connect("src", "sink")
    p = Placement().place("src", ["node0"]).place("sink", ["node0"])
    metrics = SimulatedEngine(
        cluster, g, p, policy="RR", policy_overrides={"no-such-stream": "DD"}
    ).run()
    assert metrics.result == 12
    assert metrics.ack_messages == 0


class RealSrc(Filter):
    def flush(self, ctx):
        for i in range(10):
            ctx.write(DataBuffer(8, payload=i))


class RealSink(Filter):
    def __init__(self):
        self.total = 0

    def handle(self, ctx, buffer):
        self.total += buffer.payload

    def result(self):
        return self.total


def test_threaded_override():
    g = FilterGraph()
    g.add_filter("src", factory=RealSrc, is_source=True)
    g.add_filter("sink", factory=RealSink)
    g.connect("src", "sink")
    p = Placement().place("src", ["h0"]).place("sink", [("h0", 2)])
    metrics = ThreadedEngine(
        g, p, policy="RR", policy_overrides={"src->sink": "DD"}
    ).run()
    # Two sink copies -> two partial results; totals must add up.
    partials = metrics.result if isinstance(metrics.result, list) else [metrics.result]
    assert sum(partials) == sum(range(10))
    assert metrics.ack_messages == 10
