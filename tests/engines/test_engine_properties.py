"""Property-based tests for the simulated engine's pipeline invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DataBuffer,
    FilterGraph,
    Placement,
    SimFilter,
    SimSource,
    SourceItem,
)
from repro.engines.simulated import SimulatedEngine
from repro.sim import Environment, homogeneous_cluster


class Seq(SimSource):
    """Emits buffers with given sizes, split across copies."""

    def __init__(self, sizes):
        self.sizes = sizes

    def items(self, ctx):
        for i, size in enumerate(self.sizes):
            if i % ctx.total_copies != ctx.copy_index:
                continue
            yield SourceItem(
                cpu=0.001, outputs=[DataBuffer(size, tags={"seq": i})]
            )


class Relay(SimFilter):
    def __init__(self, cpu):
        self.cpu = cpu

    def cost(self, buffer):
        return self.cpu

    def react(self, buffer):
        return [buffer]


class Sink(SimFilter):
    def __init__(self):
        self.seen = []

    def cost(self, buffer):
        return 0.0

    def react(self, buffer):
        self.seen.append((buffer.tags["seq"], buffer.nbytes))
        return ()

    def result(self):
        return self.seen


def run_pipeline(sizes, policy, relay_hosts, relay_copies, src_copies, nodes):
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=nodes, cores=2)
    g = FilterGraph()
    g.add_filter("src", sim_factory=lambda: Seq(sizes), is_source=True)
    g.add_filter("relay", sim_factory=lambda: Relay(0.002))
    g.add_filter("sink", sim_factory=Sink)
    g.connect("src", "relay")
    g.connect("relay", "sink")
    p = Placement()
    p.place("src", [("node0", src_copies)])
    p.place("relay", [(f"node{h}", relay_copies) for h in relay_hosts])
    p.place("sink", ["node0"])
    return SimulatedEngine(cluster, g, p, policy=policy).run()


pipeline_args = dict(
    sizes=st.lists(
        st.integers(min_value=1, max_value=500_000), min_size=1, max_size=25
    ),
    policy=st.sampled_from(["RR", "WRR", "DD", "RATE"]),
    relay_copies=st.integers(min_value=1, max_value=3),
    src_copies=st.integers(min_value=1, max_value=2),
    n_relay_hosts=st.integers(min_value=1, max_value=3),
)


@given(**pipeline_args)
@settings(max_examples=40, deadline=None)
def test_every_buffer_delivered_exactly_once(
    sizes, policy, relay_copies, src_copies, n_relay_hosts
):
    nodes = n_relay_hosts + 1
    relay_hosts = list(range(1, n_relay_hosts + 1))
    metrics = run_pipeline(
        sizes, policy, relay_hosts, relay_copies, src_copies, nodes
    )
    seen = sorted(metrics.result)
    assert seen == sorted((i, s) for i, s in enumerate(sizes))
    # Stream accounting matches.
    buffers, nbytes = metrics.stream_totals("relay->sink")
    assert buffers == len(sizes)
    assert nbytes == sum(sizes)


@given(**pipeline_args)
@settings(max_examples=20, deadline=None)
def test_runs_are_deterministic(
    sizes, policy, relay_copies, src_copies, n_relay_hosts
):
    nodes = n_relay_hosts + 1
    relay_hosts = list(range(1, n_relay_hosts + 1))
    a = run_pipeline(sizes, policy, relay_hosts, relay_copies, src_copies, nodes)
    b = run_pipeline(sizes, policy, relay_hosts, relay_copies, src_copies, nodes)
    assert a.makespan == b.makespan
    assert a.result == b.result


@given(
    sizes=st.lists(
        st.integers(min_value=1, max_value=100_000), min_size=1, max_size=15
    ),
)
@settings(max_examples=25, deadline=None)
def test_dd_ack_accounting_balances(sizes):
    metrics = run_pipeline(sizes, "DD", [1, 2], 1, 1, 3)
    # One ack per buffer on each DD-routed stream (src->relay, relay->sink).
    assert metrics.ack_messages == 2 * len(sizes)


@given(
    copies=st.integers(min_value=1, max_value=4),
    count=st.integers(min_value=4, max_value=30),
)
@settings(max_examples=25, deadline=None)
def test_wrr_proportionality(copies, count):
    """WRR sends buffers linearly proportional to copies per host."""
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=3, cores=4)
    g = FilterGraph()
    g.add_filter(
        "src",
        sim_factory=lambda: Seq([100] * count),
        is_source=True,
    )
    g.add_filter("sink", sim_factory=Sink)
    g.connect("src", "sink")
    p = Placement()
    p.place("src", ["node0"])
    p.place("sink", [("node1", copies), ("node2", 1)])
    metrics = SimulatedEngine(cluster, g, p, policy="WRR").run()
    received = {"node1": 0, "node2": 0}
    for c in metrics.copies:
        if c.filter_name == "sink":
            received[c.host] += c.buffers_in
    # node1:node2 ratio == copies:1, within one full WRR cycle of slack.
    cycle = copies + 1
    expected1 = count * copies / cycle
    assert abs(received["node1"] - expected1) <= cycle
