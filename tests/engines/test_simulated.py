"""Integration tests for the simulated engine on toy pipelines."""

import pytest

from repro.core import (
    DataBuffer,
    FilterGraph,
    Placement,
    SimFilter,
    SimSource,
    SourceItem,
)
from repro.engines.simulated import SimulatedEngine
from repro.errors import EngineError
from repro.sim import Environment, homogeneous_cluster


class ListSource(SimSource):
    """Emits `count` buffers of `nbytes`, optionally reading from disk."""

    def __init__(self, count, nbytes, read_bytes=0, cpu=0.0):
        self.count = count
        self.nbytes = nbytes
        self.read_bytes = read_bytes
        self.cpu = cpu

    def items(self, ctx):
        # Split the work among all copies of the source filter.
        for i in range(self.count):
            if i % ctx.total_copies != ctx.copy_index:
                continue
            yield SourceItem(
                read_bytes=self.read_bytes,
                cpu=self.cpu,
                outputs=[DataBuffer(self.nbytes, tags={"seq": i})],
            )


class PassThrough(SimFilter):
    """Charges fixed CPU per buffer and forwards it."""

    def __init__(self, cpu=0.0):
        self.cpu = cpu

    def cost(self, buffer):
        return self.cpu

    def react(self, buffer):
        return [buffer]


class CountingSink(SimFilter):
    """Counts buffers and bytes; exposes them via result()."""

    def __init__(self):
        self.buffers = 0
        self.bytes = 0

    def cost(self, buffer):
        return 0.0

    def react(self, buffer):
        self.buffers += 1
        self.bytes += buffer.nbytes
        return ()

    def result(self):
        return {"buffers": self.buffers, "bytes": self.bytes}


class AccumulatingSink(SimFilter):
    """Accumulates, then reports at flush (z-buffer-style)."""

    def __init__(self):
        self.total = 0
        self.flushed = False

    def cost(self, buffer):
        return 0.0

    def react(self, buffer):
        self.total += buffer.tags.get("seq", 0)
        return ()

    def flush_cost(self):
        return 0.001

    def result(self):
        return self.total


def two_stage(cluster, policy="RR", copies=None, count=10, nbytes=1000, **engine_kw):
    """src on node0 -> sink with given copy placement."""
    g = FilterGraph()
    g.add_filter("src", sim_factory=lambda: ListSource(count, nbytes), is_source=True)
    g.add_filter("sink", sim_factory=CountingSink)
    g.connect("src", "sink")
    p = Placement()
    p.place("src", ["node0"])
    p.place("sink", copies or ["node0"])
    return SimulatedEngine(cluster, g, p, policy=policy, **engine_kw)


def test_single_host_pipeline_delivers_everything():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=1)
    engine = two_stage(cluster, count=25, nbytes=500)
    metrics = engine.run()
    assert metrics.result == {"buffers": 25, "bytes": 12500}
    assert metrics.stream_totals("src->sink") == (25, 12500)
    assert metrics.makespan > 0


def test_remote_pipeline_pays_network_time():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=2)
    local = two_stage(cluster, count=10, nbytes=100_000).run()

    env2 = Environment()
    cluster2 = homogeneous_cluster(env2, nodes=2)
    remote = two_stage(cluster2, copies=["node1"], count=10, nbytes=100_000).run()
    assert remote.result == local.result
    assert remote.makespan > local.makespan


def test_rr_splits_buffers_evenly():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=3)
    engine = two_stage(
        cluster, policy="RR", copies=["node1", "node2"], count=20
    )
    metrics = engine.run()
    per_copy = {
        (c.host): c.buffers_in for c in metrics.copies if c.filter_name == "sink"
    }
    assert per_copy == {"node1": 10, "node2": 10}


def test_wrr_splits_by_copy_count():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=3, cores=4)
    engine = two_stage(
        cluster, policy="WRR", copies=[("node1", 3), ("node2", 1)], count=20
    )
    metrics = engine.run()
    received = {"node1": 0, "node2": 0}
    for c in metrics.copies:
        if c.filter_name == "sink":
            received[c.host] += c.buffers_in
    assert received == {"node1": 15, "node2": 5}


def test_dd_sends_acks():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=2)
    engine = two_stage(cluster, policy="DD", copies=["node1"], count=12)
    metrics = engine.run()
    assert metrics.result["buffers"] == 12
    assert metrics.ack_messages == 12


def test_rr_sends_no_acks():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=2)
    engine = two_stage(cluster, policy="RR", copies=["node1"], count=12)
    metrics = engine.run()
    assert metrics.ack_messages == 0


def test_dd_shifts_load_away_from_slow_node():
    # Sink copies on two nodes; node1 is loaded with background jobs.
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=3)
    cluster.host("node1").set_background_load(8)
    g = FilterGraph()
    g.add_filter(
        "src", sim_factory=lambda: ListSource(60, 10_000), is_source=True
    )
    g.add_filter("work", sim_factory=lambda: PassThrough(cpu=0.05))
    g.add_filter("sink", sim_factory=CountingSink)
    g.connect("src", "work")
    g.connect("work", "sink")
    p = Placement()
    p.place("src", ["node0"])
    p.place("work", ["node1", "node2"])
    p.place("sink", ["node0"])
    metrics = SimulatedEngine(cluster, g, p, policy="DD").run()
    received = {
        c.host: c.buffers_in for c in metrics.copies if c.filter_name == "work"
    }
    assert received["node2"] > received["node1"]
    assert metrics.result["buffers"] == 60


def test_dd_beats_rr_under_load_imbalance():
    def makespan(policy):
        env = Environment()
        cluster = homogeneous_cluster(env, nodes=3)
        cluster.host("node1").set_background_load(8)
        g = FilterGraph()
        g.add_filter(
            "src", sim_factory=lambda: ListSource(60, 10_000), is_source=True
        )
        g.add_filter("work", sim_factory=lambda: PassThrough(cpu=0.05))
        g.add_filter("sink", sim_factory=CountingSink)
        g.connect("src", "work")
        g.connect("work", "sink")
        p = Placement()
        p.place("src", ["node0"])
        p.place("work", ["node1", "node2"])
        p.place("sink", ["node0"])
        return SimulatedEngine(cluster, g, p, policy=policy).run().makespan

    assert makespan("DD") < makespan("RR")


def test_multiple_copies_on_one_host_share_queue():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=2, cores=4)
    engine = two_stage(cluster, policy="RR", copies=[("node1", 4)], count=40)
    metrics = engine.run()
    sink_copies = [c for c in metrics.copies if c.filter_name == "sink"]
    assert len(sink_copies) == 4
    assert sum(c.buffers_in for c in sink_copies) == 40


def test_accumulating_sink_flush():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=1)
    g = FilterGraph()
    g.add_filter("src", sim_factory=lambda: ListSource(5, 100), is_source=True)
    g.add_filter("acc", sim_factory=AccumulatingSink)
    g.connect("src", "acc")
    p = Placement().place("src", ["node0"]).place("acc", ["node0"])
    metrics = SimulatedEngine(cluster, g, p, policy="RR").run()
    assert metrics.result == 0 + 1 + 2 + 3 + 4


def test_three_stage_pipeline_with_fanout_copies():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=4)
    g = FilterGraph()
    g.add_filter("src", sim_factory=lambda: ListSource(30, 5000), is_source=True)
    g.add_filter("mid", sim_factory=lambda: PassThrough(cpu=0.01))
    g.add_filter("sink", sim_factory=CountingSink)
    g.connect("src", "mid")
    g.connect("mid", "sink")
    p = Placement()
    p.place("src", ["node0"])
    p.spread("mid", ["node1", "node2", "node3"])
    p.place("sink", ["node0"])
    metrics = SimulatedEngine(cluster, g, p, policy="RR").run()
    assert metrics.result["buffers"] == 30
    mid_in = [c.buffers_in for c in metrics.copies if c.filter_name == "mid"]
    assert sorted(mid_in) == [10, 10, 10]


def test_source_copies_partition_work():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=2)
    g = FilterGraph()
    g.add_filter("src", sim_factory=lambda: ListSource(20, 100), is_source=True)
    g.add_filter("sink", sim_factory=CountingSink)
    g.connect("src", "sink")
    p = Placement()
    p.place("src", [("node0", 1), ("node1", 1)])
    p.place("sink", ["node0"])
    metrics = SimulatedEngine(cluster, g, p, policy="RR").run()
    assert metrics.result["buffers"] == 20


def test_run_many_consecutive_uows():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=1)
    engine = two_stage(cluster, count=10)
    runs = engine.run_many(3)
    assert len(runs) == 3
    assert all(m.result["buffers"] == 10 for m in runs)
    # Deterministic identical UOWs -> identical makespans.
    assert runs[0].makespan == pytest.approx(runs[1].makespan)


def test_missing_sim_factory_rejected():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=1)
    g = FilterGraph()
    g.add_filter("src", is_source=True)  # no sim_factory
    g.add_filter("sink", sim_factory=CountingSink)
    g.connect("src", "sink")
    p = Placement().place("src", ["node0"]).place("sink", ["node0"])
    with pytest.raises(EngineError, match="sim_factory"):
        SimulatedEngine(cluster, g, p)


def test_bad_queue_capacity_rejected():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=1)
    with pytest.raises(EngineError):
        two_stage(cluster, queue_capacity=0)


def test_source_disk_reads_charged():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=1, disks=[(1e6, 0.0)])
    g = FilterGraph()
    g.add_filter(
        "src",
        sim_factory=lambda: ListSource(10, 100, read_bytes=1_000_000),
        is_source=True,
    )
    g.add_filter("sink", sim_factory=CountingSink)
    g.connect("src", "sink")
    p = Placement().place("src", ["node0"]).place("sink", ["node0"])
    metrics = SimulatedEngine(cluster, g, p, policy="RR").run()
    src = next(c for c in metrics.copies if c.filter_name == "src")
    assert src.io_time == pytest.approx(10.0)  # 10 reads x 1 MB at 1 MB/s
    assert metrics.makespan >= 10.0


def test_deterministic_runs():
    def once():
        env = Environment()
        cluster = homogeneous_cluster(env, nodes=3)
        engine = two_stage(cluster, policy="DD", copies=["node1", "node2"], count=30)
        return engine.run().makespan

    assert once() == once()


def test_zbuffer_copies_ship_full_buffers_even_when_idle():
    """Paper fidelity: a z-buffer raster copy ships its WHOLE buffer at
    end-of-work even if it rasterised nothing ("pixel information for
    inactive pixel locations is also transmitted")."""
    from repro.data import HostDisks, StorageMap
    from repro.viz import IsosurfaceApp
    from repro.viz.profile import DatasetProfile

    profile = DatasetProfile.synthetic(
        "idle", (17, 17, 17), nchunks=8, nfiles=4, timesteps=1,
        total_triangles=10, seed=0,
    )
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=4, cores=2)
    storage = StorageMap.balanced(profile.files, [HostDisks("node0", 2)])
    app = IsosurfaceApp(profile, storage, width=128, height=128,
                        algorithm="zbuffer")
    graph = app.graph("RE-Ra-M")
    placement = app.placement(
        "RE-Ra-M", compute_hosts=["node1", "node2", "node3"],
        copies_per_host=2,
    )
    metrics = SimulatedEngine(cluster, graph, placement, policy="RR").run()
    # Six raster copies -> six full z-buffers regardless of triangle count.
    _, nbytes = metrics.stream_totals("Ra->M")
    assert nbytes == 6 * 128 * 128 * 8


def test_figure1_copy_set_routing():
    """Paper Figure 1: a producer copy's buffer goes to exactly one of the
    consumer's copy sets (one per host), never anywhere else."""
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=4)
    engine = two_stage(
        cluster, policy="RR", copies=[("node1", 2), ("node2", 1)], count=30
    )
    metrics = engine.run()
    stats = metrics.streams["src->sink"]
    dst_hosts = set(stats.by_dst_host)
    assert dst_hosts == {"node1", "node2"}  # only hosts with copy sets
    assert sum(stats.by_dst_host.values()) == 30


def test_sim_model_exception_propagates():
    class BadModel(SimFilter):
        def cost(self, buffer):
            raise RuntimeError("model blew up")

    env = Environment()
    cluster = homogeneous_cluster(env, nodes=1)
    g = FilterGraph()
    g.add_filter("src", sim_factory=lambda: ListSource(3, 10), is_source=True)
    g.add_filter("bad", sim_factory=BadModel)
    g.connect("src", "bad")
    p = Placement().place("src", ["node0"]).place("bad", ["node0"])
    with pytest.raises(RuntimeError, match="model blew up"):
        SimulatedEngine(cluster, g, p, policy="RR").run()
