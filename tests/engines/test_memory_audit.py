"""Tests for the placement memory audit.

The paper motivates active pixel by memory ("makes better use of system
memory"): a 2048^2 z-buffer is 32 MB per raster copy, and the Rogue nodes
have 128 MB of RAM.
"""

from repro.data import HostDisks, StorageMap
from repro.engines import SimulatedEngine
from repro.sim import Environment, umd_testbed
from repro.viz import IsosurfaceApp
from repro.viz.profile import dataset_25gb


def engine(algorithm, copies_per_host, width=2048):
    profile = dataset_25gb(scale=0.02)
    env = Environment()
    cluster = umd_testbed(
        env, red_nodes=0, blue_nodes=0, rogue_nodes=4, deathstar=False
    )
    nodes = [f"rogue{i}" for i in range(4)]
    storage = StorageMap.balanced(profile.files, [HostDisks(h, 2) for h in nodes])
    app = IsosurfaceApp(
        profile, storage, width=width, height=width, algorithm=algorithm
    )
    return SimulatedEngine(
        cluster,
        app.graph("RE-Ra-M"),
        app.placement(
            "RE-Ra-M", compute_hosts=nodes, copies_per_host=copies_per_host
        ),
    )


def test_zbuffer_copies_dominated_by_accumulators():
    audit = engine("zbuffer", copies_per_host=2).memory_audit()
    # Two raster copies -> at least 2 x 32 MB of z-buffers per host.
    assert all(
        used >= 2 * 2048 * 2048 * 8 for host, used in audit.items() if used
    )


def test_active_pixel_far_lighter_than_zbuffer():
    zb = engine("zbuffer", copies_per_host=2).memory_audit()
    ap = engine("active", copies_per_host=2).memory_audit()
    # Raster hosts drop their 32 MB accumulators entirely; the merge host
    # (rogue0) still holds one full-screen buffer in both algorithms, so
    # its saving is smaller but real.
    for host in ("rogue1", "rogue2", "rogue3"):
        assert ap[host] < zb[host] / 3
    assert ap["rogue0"] < zb["rogue0"]


def test_oversubscription_detected_on_rogue():
    # Three 2048^2 z-buffer copies (96 MB) + merge + queues exceed 128 MB.
    over = engine("zbuffer", copies_per_host=3).oversubscribed_hosts()
    assert over  # at least the merge host is flagged
    # Active pixel at the same copy count fits.
    assert engine("active", copies_per_host=3).oversubscribed_hosts() == []


def test_small_image_fits_either_way():
    assert engine("zbuffer", copies_per_host=2, width=512).oversubscribed_hosts() == []


def test_audit_covers_all_hosts():
    audit = engine("active", copies_per_host=1).memory_audit()
    assert set(audit) == {f"rogue{i}" for i in range(4)}
