"""Symbolic resource dataflow (M8xx): byte propagation and host bounds."""

from repro.analysis import compute_dataflow, verify_dataflow
from repro.core.buffer import BufferCodec
from repro.core.graph import FilterGraph
from repro.core.placement import Placement
from repro.core.policies import make_policy_factory
from repro.core.tiles import TileMap


def placed(mapping):
    p = Placement()
    for name, copysets in mapping.items():
        p.place(name, copysets)
    return p


def rules_of(diags):
    return {d.rule for d in diags}


def chain(nbytes=1024, buffers=4):
    g = FilterGraph()
    g.add_filter(
        "src", is_source=True, output_nbytes=nbytes, output_buffers=buffers
    )
    g.add_filter("mid", output_nbytes=nbytes)
    g.add_filter("sink")
    g.connect("src", "mid")
    g.connect("mid", "sink")
    return g


# -- compute_dataflow ---------------------------------------------------------


def test_edge_flows_carry_bytes_per_uow():
    g = chain(nbytes=100, buffers=7)
    result = compute_dataflow(g)
    assert result.edges["src->mid"].nbytes == 100
    assert result.edges["src->mid"].bytes_per_uow == 700
    assert result.edges["mid->sink"].bytes_per_uow is None  # no buffer count


def test_dtype_propagates_through_passthrough_filters():
    g = FilterGraph()
    g.add_filter("a", is_source=True, output_dtype="float32")
    g.add_filter("fwd")  # declares nothing, single input: pass-through
    g.add_filter("sink")
    g.connect("a", "fwd")
    g.connect("fwd", "sink")
    result = compute_dataflow(g)
    assert result.edges["fwd->sink"].dtype == "float32"
    assert result.edges["fwd->sink"].dtype_origin == "propagated"
    assert result.edges["a->fwd"].dtype_origin == "declared"


def test_host_bounds_sum_queue_and_window_sides():
    g = chain(nbytes=1000)
    p = placed({"src": ["h0"], "mid": [("h1", 2)], "sink": ["h1"]})
    dd = make_policy_factory("DD", window=4)
    result = compute_dataflow(
        g, p, policy_for=lambda s: dd, queue_capacity=8
    )
    # mid@h1: queue (8+2 copies) x 1000 B; sink@h1: queue (8+1) x 1000 B.
    # Window side: src@h0 4x1x1000; mid@h1 4x2x1000 on mid->sink.
    assert result.hosts["h1"].queue_bytes == (8 + 2) * 1000 + (8 + 1) * 1000
    assert result.hosts["h0"].window_bytes == 4 * 1000
    assert result.hosts["h1"].window_bytes == 4 * 2 * 1000
    assert result.hosts["h1"].total_bytes > result.hosts["h0"].total_bytes


def test_undeclared_sizes_are_excluded_but_reported():
    g = FilterGraph()
    g.add_filter("src", is_source=True)  # no output_nbytes
    g.add_filter("sink")
    g.connect("src", "sink")
    p = placed({"src": ["h0"], "sink": ["h0"]})
    result = compute_dataflow(g, p)
    assert result.hosts["h0"].total_bytes == 0
    assert "src->sink" in result.hosts["h0"].unknown_streams


# -- M801 host budget ---------------------------------------------------------


def test_m801_fires_when_bound_exceeds_budget():
    g = chain(nbytes=1 << 20)
    p = placed({"src": ["h0"], "mid": ["h1"], "sink": ["h1"]})
    diags = verify_dataflow(
        g, p, queue_capacity=8, host_memory={"h1": 1 << 20}
    )
    hits = [d for d in diags if d.rule == "M801"]
    assert hits and hits[0].subject == "h1"
    assert "budget" in hits[0].message


def test_m801_silent_within_budget_or_without_budgets():
    g = chain(nbytes=64)
    p = placed({"src": ["h0"], "mid": ["h1"], "sink": ["h1"]})
    assert "M801" not in rules_of(
        verify_dataflow(g, p, host_memory={"h1": 1 << 30})
    )
    assert "M801" not in rules_of(verify_dataflow(g, p))


# -- M802 near-slab payloads --------------------------------------------------


def test_m802_flags_payloads_just_under_the_shm_threshold():
    codec = BufferCodec(use_shared_memory=True)
    g = chain(nbytes=codec.shm_threshold - 1)
    assert "M802" in rules_of(verify_dataflow(g, codec=codec))


def test_m802_silent_for_small_or_slab_sized_payloads():
    codec = BufferCodec(use_shared_memory=True)
    small = chain(nbytes=codec.shm_threshold // 4)
    slab = chain(nbytes=codec.shm_threshold)
    assert "M802" not in rules_of(verify_dataflow(small, codec=codec))
    assert "M802" not in rules_of(verify_dataflow(slab, codec=codec))


# -- M803 tile fan-in burst ---------------------------------------------------


def tile_merge_graph(rows, owners, producers):
    g = FilterGraph()
    g.add_filter("ra", is_source=True, output_nbytes=4096)
    g.add_filter(
        "tm",
        phase_synchronised=True,
        tile_map=TileMap.rows(8, 8, rows, owners),
    )
    g.connect("ra", "tm")
    p = placed({"ra": [("h0", producers)], "tm": [("h1", 1)]})
    return g, p


def test_m803_fires_on_phase_boundary_burst():
    # 8 producer copies x 4 tiles per owner >> capacity 8.
    g, p = tile_merge_graph(rows=8, owners=2, producers=8)
    diags = verify_dataflow(g, p, queue_capacity=8)
    hits = [d for d in diags if d.rule == "M803"]
    assert hits and hits[0].subject == "tm"
    assert "phase boundary" in hits[0].message


def test_m803_silent_when_queue_holds_the_burst():
    g, p = tile_merge_graph(rows=2, owners=2, producers=2)
    assert "M803" not in rules_of(verify_dataflow(g, p, queue_capacity=8))


# -- M804 transitive dtype conflict -------------------------------------------


def test_m804_propagated_dtype_vs_consumer_declaration():
    g = FilterGraph()
    g.add_filter("a", is_source=True, output_dtype="float32")
    g.add_filter("fwd")
    g.add_filter("sink", input_dtype="uint8")
    g.connect("a", "fwd")
    g.connect("fwd", "sink")
    diags = verify_dataflow(g)
    hits = [d for d in diags if d.rule == "M804"]
    assert hits and hits[0].subject == "fwd->sink"
    # The direct B501 check cannot see this: fwd declares nothing.


def test_m804_silent_when_chain_is_consistent():
    g = FilterGraph()
    g.add_filter("a", is_source=True, output_dtype="float32")
    g.add_filter("fwd")
    g.add_filter("sink", input_dtype="float32")
    g.connect("a", "fwd")
    g.connect("fwd", "sink")
    assert verify_dataflow(g) == []
