"""Engines run the static verifier before executing anything.

ERROR diagnostics abort construction with the historical exception types;
WARNING diagnostics surface as ``analysis`` trace events at run start.
"""

import pytest

from repro.core import DataBuffer, Filter, FilterGraph, Placement, SimFilter, SimSource, SourceItem
from repro.core.tracing import Tracer
from repro.engines.process import ProcessEngine
from repro.engines.simulated import SimulatedEngine
from repro.engines.threaded import ThreadedEngine
from repro.errors import AnalysisError, GraphError, PlacementError
from repro.sim import Environment, homogeneous_cluster


class OneShotSource(Filter):
    def flush(self, ctx):
        if ctx.copy_index == 0:
            ctx.write(DataBuffer(8, payload=1))


class Forward(Filter):
    def handle(self, ctx, buffer):
        ctx.write(buffer)


class CountSink(Filter):
    def __init__(self):
        self.n = 0

    def handle(self, ctx, buffer):
        self.n += 1

    def result(self):
        return self.n


def thread_graph(**mid_kwargs):
    g = FilterGraph()
    g.add_filter("src", factory=OneShotSource, is_source=True)
    g.add_filter("mid", factory=Forward, **mid_kwargs)
    g.add_filter("sink", factory=CountSink)
    g.connect("src", "mid")
    g.connect("mid", "sink")
    return g


def full_placement(g, copies=1):
    p = Placement()
    for name in g.filters:
        p.place(name, [("h0", copies if name == "mid" else 1)])
    return p


# -- construction-time refusal ----------------------------------------------


def test_threaded_engine_refuses_orphan_filter():
    g = thread_graph()
    g.add_filter("floating", factory=Forward)
    p = full_placement(g)
    with pytest.raises(GraphError, match="is_source"):
        ThreadedEngine(g, p)


def test_threaded_engine_refuses_missing_placement():
    g = thread_graph()
    p = Placement().place("src", ["h0"]).place("mid", ["h0"])
    with pytest.raises(PlacementError, match="has no placement"):
        ThreadedEngine(g, p)


def test_threaded_engine_refuses_phase_sync_fan_in():
    g = FilterGraph()
    g.add_filter("a", factory=OneShotSource, is_source=True)
    g.add_filter("b", factory=OneShotSource, is_source=True)
    g.add_filter("merge", factory=CountSink, phase_synchronised=True)
    g.connect("a", "merge")
    g.connect("b", "merge")
    p = Placement()
    p.place("a", ["h0"]).place("b", ["h0"]).place("merge", ["h0"])
    with pytest.raises(AnalysisError, match=r"\[Z401\]") as err:
        ThreadedEngine(g, p)
    assert "Z401" in err.value.report.rule_ids()


def test_process_engine_refuses_cycle():
    g = thread_graph()
    g.connect("sink", "mid", name="back")
    p = full_placement(g)
    with pytest.raises(GraphError, match="cycle"):
        ProcessEngine(g, p)


def test_simulated_engine_refuses_unknown_host():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=2)
    g = FilterGraph()
    g.add_filter("src", sim_factory=ListSource, is_source=True)
    g.add_filter("sink", sim_factory=Counting)
    g.connect("src", "sink")
    p = Placement().place("src", ["node0"]).place("sink", ["mars"])
    with pytest.raises(PlacementError, match="unknown host"):
        SimulatedEngine(cluster, g, p)


# -- warnings become trace events --------------------------------------------


def test_threaded_engine_records_analysis_warnings():
    g = thread_graph()
    p = Placement()
    p.place("src", ["h0"])
    p.place("mid", [("h0", 1), ("h1", 1)])  # WRR with all-1 copies: W301
    p.place("sink", ["h0"])
    tracer = Tracer()
    engine = ThreadedEngine(g, p, policy="WRR", tracer=tracer)
    assert "W301" in engine._analysis_report.rule_ids()
    metrics = engine.run()
    assert metrics.result == 1
    analysis = [e for e in tracer.events if e.kind == "analysis"]
    assert analysis, "no analysis trace events recorded"
    assert any(e.detail.startswith("W301:") for e in analysis)


def test_clean_pipeline_records_no_analysis_events():
    g = thread_graph()
    tracer = Tracer()
    ThreadedEngine(g, full_placement(g), tracer=tracer).run()
    assert [e for e in tracer.events if e.kind == "analysis"] == []


class ListSource(SimSource):
    def items(self, ctx):
        for i in range(4):
            if i % ctx.total_copies == ctx.copy_index:
                yield SourceItem(outputs=[DataBuffer(100, tags={"seq": i})])


class Counting(SimFilter):
    def __init__(self):
        self.n = 0

    def cost(self, buffer):
        return 0.0

    def react(self, buffer):
        self.n += 1
        return ()

    def result(self):
        return self.n


def test_simulated_engine_records_analysis_warnings():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=2)
    g = FilterGraph()
    g.add_filter("src", sim_factory=ListSource, is_source=True)
    g.add_filter("sink", sim_factory=Counting)
    g.connect("src", "sink")
    p = Placement()
    p.place("src", ["node0"])
    p.place("sink", [("node0", 2)])  # multi-copy sink: P204 warning
    tracer = Tracer()
    SimulatedEngine(cluster, g, p, tracer=tracer).run()
    analysis = [e for e in tracer.events if e.kind == "analysis"]
    assert any(e.detail.startswith("P204:") for e in analysis)


def test_process_engine_records_analysis_warnings():
    g = thread_graph()
    p = Placement()
    p.place("src", ["h0"])
    p.place("mid", [("h0", 1), ("h1", 1)])
    p.place("sink", ["h0"])
    tracer = Tracer()
    engine = ProcessEngine(g, p, policy="WRR", tracer=tracer)
    metrics = engine.run()
    assert metrics.result == 1
    analysis = [e for e in tracer.events if e.kind == "analysis"]
    assert any(e.detail.startswith("W301:") for e in analysis)


def test_analysis_events_deduplicate_across_reruns():
    """Re-verifying the same graph must not duplicate trace findings.

    Applications verify at construction and engines verify again per
    run; ``analysis`` events are keyed by (rule, subject) per tracer so
    each finding appears exactly once however many times the report is
    emitted.
    """
    g = thread_graph()
    p = Placement()
    p.place("src", ["h0"])
    p.place("mid", [("h0", 1), ("h1", 1)])  # W301 warning
    p.place("sink", ["h0"])
    tracer = Tracer()
    engine = ThreadedEngine(g, p, policy="WRR", tracer=tracer)
    engine.run()
    engine.run()  # second unit of work, same tracer: would double pre-fix
    analysis = [e for e in tracer.events if e.kind == "analysis"]
    assert analysis
    keyed = [(e.copy, e.detail) for e in analysis]
    assert len(keyed) == len(set(keyed)), keyed


def test_emit_analysis_events_dedup_is_per_tracer():
    from repro.engines.base import emit_analysis_events

    g = thread_graph()
    p = Placement()
    p.place("src", ["h0"])
    p.place("mid", [("h0", 1), ("h1", 1)])
    p.place("sink", ["h0"])
    engine = ThreadedEngine(g, p, policy="WRR")
    report = engine._analysis_report
    first, second = Tracer(), Tracer()
    emit_analysis_events(first, report, 0.0)
    emit_analysis_events(first, report, 1.0)  # same tracer: deduped
    emit_analysis_events(second, report, 0.0)  # fresh tracer: records
    count = lambda t: len([e for e in t.events if e.kind == "analysis"])  # noqa: E731
    assert count(first) == count(second) == len(report.warnings) > 0


def test_deep_analysis_opt_out():
    """deep_analysis=False skips the E/M/F passes at construction."""
    g = thread_graph(effects="pure")  # mid forwards: genuinely pure
    p = full_placement(g)
    engine = ThreadedEngine(g, p, deep_analysis=False)
    rules = engine._analysis_report.rule_ids()
    assert not any(r.startswith(("E", "M", "F")) for r in rules)
