"""Effect/purity inference (E7xx) and the memoisation certifier.

The acceptance bar: :func:`certify_memoisable` rejects every stateful or
I/O filter shipped in ``repro.viz`` and accepts the pure ones, with one
test per filter class.
"""

import pytest

from repro.analysis import (
    Effect,
    certify_memoisable,
    graph_effects,
    infer_class_effects,
    spec_effects,
    subgraph_effect,
    verify_effects,
)
from repro.core import DataBuffer, Filter, FilterGraph
from repro.errors import GraphError
from repro.viz import filters as real
from repro.viz import tiled


# -- class-level inference ----------------------------------------------------

#: Expected effects class of every real filter in repro.viz, inferred
#: from its AST alone (no declaration in play).
VIZ_FILTER_EFFECTS = {
    real.ReadFilter: Effect.IO,  # flush reads self.dataset.chunk_field
    real.ExtractFilter: Effect.PURE,  # marching cubes is a pure map
    real.RasterZFilter: Effect.STATEFUL,  # z-buffer accumulator
    real.RasterAPFilter: Effect.STATEFUL,  # active-pixel raster state
    real.MergeZFilter: Effect.STATEFUL,  # merge z-buffer + counters
    real.MergeAPFilter: Effect.STATEFUL,
    real.ReadExtractFilter: Effect.IO,  # reads the chunk store
    real.ExtractRasterFilter: Effect.STATEFUL,  # fused raster state
    real.ReadExtractRasterFilter: Effect.IO,  # reads + rasterises
    tiled.TileMergeFilter: Effect.STATEFUL,  # per-tile slab accumulators
    tiled.TileGatherFilter: Effect.STATEFUL,  # assembles the framebuffer
}


@pytest.mark.parametrize(
    "cls,expected",
    sorted(VIZ_FILTER_EFFECTS.items(), key=lambda kv: kv[0].__name__),
    ids=lambda v: v.__name__ if isinstance(v, type) else str(v),
)
def test_viz_filter_inference(cls, expected):
    summary = infer_class_effects(cls)
    assert summary.effect is expected, (
        f"{cls.__name__}: inferred {summary.label}, expected "
        f"{expected.label} ({summary.reasons})"
    )
    if expected is not Effect.PURE:
        assert summary.reasons, "impure classification must carry evidence"


def test_inference_walks_base_classes():
    # _RasterBase carries the camera latch both rasters inherit.
    summary = infer_class_effects(real.RasterAPFilter)
    assert any("_active_camera" in r or "_latch" in r for r in summary.reasons)


def test_inference_is_cached():
    assert infer_class_effects(real.ExtractFilter) is infer_class_effects(
        real.ExtractFilter
    )


class NondetFilter(Filter):
    def handle(self, ctx, buffer):
        import random

        ctx.write(DataBuffer(8, payload=random.random()))


class ArgMutator(Filter):
    def handle(self, ctx, buffer):
        buffer.tags["seen"] = True
        ctx.write(buffer)


def test_nondeterminism_detected():
    summary = infer_class_effects(NondetFilter)
    assert summary.effect is Effect.NONDETERMINISTIC


def test_escaping_argument_mutation_is_stateful():
    summary = infer_class_effects(ArgMutator)
    assert summary.effect is Effect.STATEFUL
    assert any("escaping" in r for r in summary.reasons)


# -- spec-level resolution ----------------------------------------------------


def one_filter_graph(cls, name="f", **kwargs):
    g = FilterGraph()
    g.add_filter(name, factory=lambda: cls(), **kwargs)
    return g


def test_spec_effects_resolves_closure_factories():
    g = FilterGraph()
    g.add_filter("e", factory=lambda: real.ExtractFilter(0.5))
    assert spec_effects(g.filters["e"]).effect is Effect.PURE


def test_spec_effects_resolves_module_attr_factories():
    g = FilterGraph()
    g.add_filter("m", factory=lambda: real.MergeZFilter(4, 4))
    assert spec_effects(g.filters["m"]).effect is Effect.STATEFUL


def test_declaration_wins_over_inference():
    g = FilterGraph()
    g.add_filter("e", factory=lambda: real.ExtractFilter(0.5), effects="io")
    summary = spec_effects(g.filters["e"])
    assert summary.effect is Effect.IO
    assert summary.source == "declared"


def test_sources_are_at_least_io():
    g = FilterGraph()
    g.add_filter("src", factory=lambda: real.ExtractFilter(0.5), is_source=True)
    assert spec_effects(g.filters["src"]).effect is Effect.IO


def test_unresolvable_non_source_is_unknown():
    g = FilterGraph()
    g.add_filter("mystery")  # no factory at all
    summary = spec_effects(g.filters["mystery"])
    assert summary.effect is None
    assert summary.label == "unknown"


def test_add_filter_rejects_unknown_effects_declaration():
    g = FilterGraph()
    with pytest.raises(GraphError, match="unknown effects class"):
        g.add_filter("f", effects="sparkly")


def test_subgraph_rollup_is_worst_member():
    g = FilterGraph()
    g.add_filter("e", factory=lambda: real.ExtractFilter(0.5))
    g.add_filter("m", factory=lambda: real.MergeZFilter(4, 4))
    g.connect("e", "m")
    summaries = graph_effects(g)
    assert subgraph_effect(summaries, ["e"]) is Effect.PURE
    assert subgraph_effect(summaries, ["e", "m"]) is Effect.STATEFUL


# -- E701/E702 graph rules ----------------------------------------------------


def test_e701_declared_effect_mismatch():
    g = FilterGraph()
    g.add_filter("m", factory=lambda: real.MergeZFilter(4, 4), effects="pure")
    diags = verify_effects(g)
    assert [d.rule for d in diags] == ["E701"]
    assert "stateful" in diags[0].message


def test_e701_silent_when_declaration_is_conservative():
    # Declaring a *worse* effect than inferred is allowed.
    g = FilterGraph()
    g.add_filter("e", factory=lambda: real.ExtractFilter(0.5), effects="io")
    assert verify_effects(g) == []


def test_e702_nondeterministic_filter():
    g = FilterGraph()
    g.add_filter("n", factory=NondetFilter)
    diags = verify_effects(g)
    assert [d.rule for d in diags] == ["E702"]


# -- certify_memoisable -------------------------------------------------------


@pytest.mark.parametrize(
    "cls",
    sorted(VIZ_FILTER_EFFECTS, key=lambda c: c.__name__),
    ids=lambda c: c.__name__,
)
def test_certifier_verdict_per_viz_filter(cls):
    """Pure viz filters certify; stateful/IO ones are rejected with E703."""
    g = one_filter_graph(cls)
    cert = certify_memoisable(g, ["f"])
    if VIZ_FILTER_EFFECTS[cls] is Effect.PURE:
        assert cert.ok, [str(d) for d in cert.report]
        assert cert.effect is Effect.PURE
    else:
        assert not cert.ok
        assert "E703" in cert.report.rule_ids()
        (diag,) = cert.report.diagnostics
        assert diag.subject == "f"


def test_certifier_rejects_unknown_effects_with_e704():
    g = FilterGraph()
    g.add_filter("mystery")
    cert = certify_memoisable(g, ["mystery"])
    assert not cert.ok
    assert "E704" in cert.report.rule_ids()


def test_certifier_rejects_non_convex_subgraph_with_e705():
    # a -> b -> c with {a, c} leaves b on a member-to-member path.
    g = FilterGraph()
    for name in ("a", "b", "c"):
        g.add_filter(name, factory=lambda: real.ExtractFilter(0.5))
    g.connect("a", "b")
    g.connect("b", "c")
    cert = certify_memoisable(g, ["a", "c"])
    assert not cert.ok
    assert "E705" in cert.report.rule_ids()
    assert "['b']" in str(cert.report.diagnostics[-1].message)


def test_certifier_accepts_convex_pure_chain():
    g = FilterGraph()
    for name in ("a", "b", "c"):
        g.add_filter(name, factory=lambda: real.ExtractFilter(0.5))
    g.connect("a", "b")
    g.connect("b", "c")
    cert = certify_memoisable(g, ["a", "b"])
    assert cert.ok
    assert cert.effect is Effect.PURE
    assert set(cert.members) == {"a", "b"}


def test_certifier_rejects_empty_and_unknown_subgraphs():
    g = one_filter_graph(real.ExtractFilter)
    with pytest.raises(GraphError, match="empty"):
        certify_memoisable(g, [])
    with pytest.raises(GraphError, match="unknown filter"):
        certify_memoisable(g, ["ghost"])


def test_isosurface_app_memoisation_gate():
    """The extract stage certifies; every accumulator stage is rejected."""
    from repro.data import HostDisks, StorageMap
    from repro.viz import IsosurfaceApp
    from repro.viz.profile import DatasetProfile

    profile = DatasetProfile.synthetic(
        "fx", (8, 8, 8), nchunks=4, nfiles=2, timesteps=1, total_triangles=64
    )
    storage = StorageMap.balanced(profile.files, [HostDisks("h0")])
    app = IsosurfaceApp(profile, storage, width=16, height=16)
    g = app.graph("R-E-Ra-M")
    assert certify_memoisable(g, ["E"]).ok
    for stage in ("R", "Ra", "M"):
        cert = certify_memoisable(g, [stage])
        assert not cert.ok, f"{stage} must not be memoisable"
