"""Per-rule fixtures for the static pipeline verifier.

Every ``G``/``P``/``W``/``Z``/``B`` rule in the catalogue gets one graph
that triggers it and one that passes it clean.  The ``C6xx`` filter-code
rules live in ``test_filtercode.py``.
"""

import pytest

from repro.analysis import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    rule_catalogue,
    verify_buffers,
    verify_flow,
    verify_graph,
    verify_pipeline,
    verify_placement,
)
from repro.core.buffer import BufferCodec
from repro.core.graph import FilterGraph
from repro.core.placement import CopySetSpec, Placement
from repro.core.policies import make_policy_factory
from repro.core.tiles import Tile, TileMap
from repro.errors import AnalysisError, GraphError, PlacementError


def linear_graph(*names, source=True):
    g = FilterGraph()
    for i, name in enumerate(names):
        g.add_filter(name, is_source=(source and i == 0))
        if i:
            g.connect(names[i - 1], name)
    return g


def rules_of(diags):
    return {d.rule for d in diags}


def assert_rule(diags, rule):
    """The rule fired, and its diagnostic carries a fix hint."""
    hits = [d for d in diags if d.rule == rule]
    assert hits, f"{rule} did not fire; got {rules_of(diags) or '{}'}"
    for d in hits:
        assert d.hint, f"{rule} has no fix hint"
        assert d.message
    return hits


# -- catalogue sanity --------------------------------------------------------


def test_catalogue_rules_have_hints_and_stable_ids():
    catalogue = rule_catalogue()
    assert len(catalogue) >= 20
    for rule in catalogue:
        assert rule.id[0] in "GPWZBCEMF"
        assert rule.id[1:].isdigit()
        assert rule.hint, f"{rule.id} missing default fix hint"


def test_severity_ordering_and_labels():
    assert Severity.INFO < Severity.WARNING < Severity.ERROR
    assert Severity.ERROR.label == "error"
    assert Severity.parse("warning") is Severity.WARNING
    with pytest.raises(ValueError):
        Severity.parse("fatal")


# -- G1xx graph structure ----------------------------------------------------


def test_g101_empty_graph():
    assert_rule(verify_graph(FilterGraph()), "G101")


def test_g102_cycle():
    g = linear_graph("a", "b", "c")
    g.connect("c", "b", name="back")
    assert_rule(verify_graph(g), "G102")


def test_g103_orphan_filter():
    g = linear_graph("a", "b")
    g.add_filter("floating")  # no inputs, not a source
    hits = assert_rule(verify_graph(g), "G103")
    assert hits[0].subject == "floating"


def test_g104_source_with_inputs():
    g = FilterGraph()
    g.add_filter("a", is_source=True)
    g.add_filter("b", is_source=True)
    g.connect("a", "b")
    assert_rule(verify_graph(g), "G104")


def test_g105_no_source():
    g = FilterGraph()
    g.add_filter("a")
    g.add_filter("b")
    g.connect("a", "b")
    diags = verify_graph(g)
    assert_rule(diags, "G105")
    assert_rule(diags, "G103")  # 'a' is also an orphan


def test_g106_dangling_stream():
    g = linear_graph("a", "b", "c")
    del g.filters["c"]  # manual spec-table mutation
    assert_rule(verify_graph(g), "G106")


def test_g107_unreachable_filter_is_warning():
    g = linear_graph("a", "b")
    g.add_filter("island", is_source=False)
    g.add_filter("island2")
    g.connect("island", "island2")
    # island has inputs? no -> it is G103 too; give it a feeder loop-free
    diags = verify_graph(g)
    hits = [d for d in diags if d.rule == "G107"]
    assert {d.subject for d in hits} >= {"island2"}
    assert all(d.severity is Severity.WARNING for d in hits)


def test_g108_parallel_streams_info():
    g = linear_graph("a", "b")
    g.connect("a", "b", name="second")
    hits = assert_rule(verify_graph(g), "G108")
    assert hits[0].severity is Severity.INFO


def test_clean_graph_has_no_graph_diagnostics():
    g = linear_graph("read", "extract", "raster", "merge")
    assert verify_graph(g) == []


# -- P2xx placement ----------------------------------------------------------


def placed(g, mapping):
    p = Placement()
    for name, copysets in mapping.items():
        p.place(name, copysets)
    return p


def test_p201_unplaced_filter():
    g = linear_graph("a", "b")
    p = placed(g, {"a": ["h0"]})
    hits = assert_rule(verify_placement(g, p), "P201")
    assert hits[0].subject == "b"


def test_p202_placed_filter_not_in_graph():
    g = linear_graph("a", "b")
    p = placed(g, {"a": ["h0"], "b": ["h0"], "ghost": ["h0"]})
    assert_rule(verify_placement(g, p), "P202")


def test_p203_unknown_host_only_with_cluster():
    g = linear_graph("a", "b")
    p = placed(g, {"a": ["h0"], "b": ["mars"]})
    assert_rule(verify_placement(g, p, known_hosts=["h0", "h1"]), "P203")
    # Without a cluster host list the check is skipped.
    assert "P203" not in rules_of(verify_placement(g, p))


def test_p204_multi_copy_sink_warning():
    g = linear_graph("a", "sink")
    p = placed(g, {"a": ["h0"], "sink": [("h0", 2)]})
    hits = assert_rule(verify_placement(g, p), "P204")
    assert hits[0].severity is Severity.WARNING


def test_p205_duplicate_host():
    g = linear_graph("a", "b")
    p = placed(g, {"a": ["h0"], "b": ["h0"]})
    # place() rejects duplicates, so corrupt the table directly — exactly
    # the kind of drift the verifier exists to catch.
    p._map["b"] = [CopySetSpec("h0", 1), CopySetSpec("h0", 2)]
    assert_rule(verify_placement(g, p), "P205")


def test_p206_bad_copy_count():
    g = linear_graph("a", "b")
    p = placed(g, {"a": ["h0"], "b": ["h0"]})
    bad = CopySetSpec.__new__(CopySetSpec)
    object.__setattr__(bad, "host", "h1")
    object.__setattr__(bad, "copies", 0)
    p._map["b"] = [bad]
    assert_rule(verify_placement(g, p), "P206")


def test_clean_placement_has_no_diagnostics():
    g = linear_graph("a", "b", "c")
    p = placed(g, {"a": ["h0"], "b": [("h0", 2), ("h1", 2)], "c": ["h1"]})
    assert verify_placement(g, p, known_hosts=["h0", "h1"]) == []


# -- W3xx flow control / Z4xx phases ----------------------------------------


def flow(g, p, policy="DD", queue_capacity=8, **kw):
    factory = make_policy_factory(policy, **kw)
    return verify_flow(g, p, lambda _stream: factory, queue_capacity)


def test_w301_wrr_degenerates_to_rr():
    g = linear_graph("a", "b")
    p = placed(g, {"a": ["h0"], "b": [("h0", 1), ("h1", 1)]})
    assert_rule(flow(g, p, policy="WRR"), "W301")


def test_w301_silent_with_real_weights():
    g = linear_graph("a", "b")
    p = placed(g, {"a": ["h0"], "b": [("h0", 2), ("h1", 1)]})
    assert "W301" not in rules_of(flow(g, p, policy="WRR"))


def test_w302_window_exceeds_queue_capacity():
    g = linear_graph("a", "b")
    p = placed(g, {"a": ["h0"], "b": ["h0"]})
    assert_rule(flow(g, p, policy="DD", queue_capacity=4, window=16), "W302")
    assert "W302" not in rules_of(
        flow(g, p, policy="DD", queue_capacity=16, window=4)
    )


def test_w303_window_one_serialises_sends():
    g = linear_graph("a", "b")
    p = placed(g, {"a": ["h0"], "b": ["h0"]})
    assert_rule(flow(g, p, policy="DD", window=1), "W303")
    assert "W303" not in rules_of(flow(g, p, policy="DD", window=4))


def test_rr_policy_triggers_no_flow_rules():
    g = linear_graph("a", "b")
    p = placed(g, {"a": ["h0"], "b": [("h0", 1), ("h1", 1)]})
    assert flow(g, p, policy="RR") == []


def test_z401_phase_synchronised_fan_in():
    g = FilterGraph()
    g.add_filter("ra0", is_source=True)
    g.add_filter("ra1", is_source=True)
    g.add_filter("merge", phase_synchronised=True)
    g.connect("ra0", "merge")
    g.connect("ra1", "merge")
    p = placed(g, {"ra0": ["h0"], "ra1": ["h1"], "merge": ["h0"]})
    hits = assert_rule(flow(g, p), "Z401")
    assert hits[0].severity is Severity.ERROR


def test_z401_silent_for_single_input_phase_filter():
    g = linear_graph("a", "b")
    g.filters["b"].phase_synchronised = True
    p = placed(g, {"a": ["h0"], "b": ["h0"]})
    assert "Z401" not in rules_of(flow(g, p))


# -- Z402..Z405 tile framebuffer ---------------------------------------------


def tile_graph(tile_map, policy_synced=True):
    g = FilterGraph()
    g.add_filter("ra", is_source=True)
    g.add_filter("tm", phase_synchronised=policy_synced, tile_map=tile_map)
    g.connect("ra", "tm")
    return g


def test_z402_invalid_tile_map():
    # One band covering only the top half: a coverage gap.
    gap = TileMap(8, 8, [Tile(0, 0, 0, 8, 4, 0)])
    g = tile_graph(gap)
    hits = assert_rule(verify_graph(g), "Z402")
    assert "covered by no tile" in hits[0].message
    assert hits[0].subject == "tm"


def test_z402_reports_each_problem():
    # Overlap + non-contiguous owners -> one finding per problem.
    bad = TileMap(
        8,
        8,
        [Tile(0, 0, 0, 8, 8, 0), Tile(1, 0, 0, 8, 8, 2)],
    )
    hits = assert_rule(verify_graph(tile_graph(bad)), "Z402")
    assert len(hits) >= 2


def test_z402_silent_for_factory_maps():
    for tmap in (
        TileMap.rows(8, 8, 3, 2),  # non-divisible viewport
        TileMap.grid(8, 8, 2, 2),
        TileMap.rows(1, 1, 1),  # degenerate 1x1
    ):
        assert tmap.problems() == []
        assert "Z402" not in rules_of(verify_graph(tile_graph(tmap)))


def test_z403_owner_count_vs_copy_sets():
    g = tile_graph(TileMap.rows(8, 8, 4, 2))  # 2 owners
    p = placed(g, {"ra": ["h0"], "tm": ["h1"]})  # but 1 copy set
    hits = assert_rule(verify_placement(g, p), "Z403")
    assert "2 owners" in hits[0].message


def test_z403_multi_copy_set():
    g = tile_graph(TileMap.rows(8, 8, 2, 2))
    p = placed(g, {"ra": ["h0"], "tm": [("h1", 2), ("h2", 1)]})
    hits = assert_rule(verify_placement(g, p), "Z403")
    assert any("share a queue" in d.message for d in hits)


def test_z403_silent_for_one_single_copy_set_per_owner():
    g = tile_graph(TileMap.rows(8, 8, 4, 2))
    p = placed(g, {"ra": ["h0"], "tm": [("h1", 1), ("h2", 1)]})
    assert "Z403" not in rules_of(verify_placement(g, p))


def test_z404_tile_mapped_consumer_needs_content_routing():
    g = tile_graph(TileMap.rows(8, 8, 2, 2))
    p = placed(g, {"ra": ["h0"], "tm": [("h1", 1), ("h2", 1)]})
    hits = assert_rule(flow(g, p, policy="DD"), "Z404")
    assert "not content-routed" in hits[0].message


def test_z404_content_routed_needs_tile_map():
    g = linear_graph("a", "b")
    g.filters["b"].phase_synchronised = True
    p = placed(g, {"a": ["h0"], "b": ["h0"]})
    hits = assert_rule(flow(g, p, policy="TILE"), "Z404")
    assert "no tile_map" in hits[0].message


def test_z404_silent_when_paired():
    g = tile_graph(TileMap.rows(8, 8, 2, 2))
    p = placed(g, {"ra": ["h0"], "tm": [("h1", 1), ("h2", 1)]})
    diags = flow(g, p, policy="TILE")
    assert "Z404" not in rules_of(diags)
    assert "Z405" not in rules_of(diags)


def test_z405_content_routed_into_unsynced_consumer():
    g = tile_graph(TileMap.rows(8, 8, 2, 2), policy_synced=False)
    p = placed(g, {"ra": ["h0"], "tm": [("h1", 1), ("h2", 1)]})
    hits = assert_rule(flow(g, p, policy="TILE"), "Z405")
    assert hits[0].severity is Severity.WARNING


def test_tiled_app_pipeline_is_clean():
    # The real builder wires TM the way Z402..Z405 demand.
    from repro.data import HostDisks, StorageMap
    from repro.viz import IsosurfaceApp
    from repro.viz.profile import DatasetProfile

    profile = DatasetProfile.synthetic(
        "tiny", (8, 8, 8), nchunks=4, nfiles=2, timesteps=1,
        total_triangles=100,
    )
    storage = StorageMap.balanced(
        profile.files, [HostDisks("h0"), HostDisks("h1")]
    )
    app = IsosurfaceApp(
        profile, storage, width=16, height=16,
        merge_copies=2, merge_tiles=4,
    )
    g = app.graph("RE-Ra-M")
    p = app.placement("RE-Ra-M", compute_hosts=["h0", "h1"])
    overrides = app.policy_overrides("RE-Ra-M")
    default = make_policy_factory("DD")
    report = verify_pipeline(
        g,
        p,
        policy_for=lambda s: overrides.get(s, default),
    )
    assert not report.errors


# -- B5xx buffers ------------------------------------------------------------


def test_b501_dtype_mismatch():
    g = FilterGraph()
    g.add_filter("a", is_source=True, output_dtype="float32")
    g.add_filter("b", input_dtype="float64")
    g.connect("a", "b")
    assert_rule(verify_buffers(g), "B501")


def test_b501_invalid_dtype_string():
    g = FilterGraph()
    g.add_filter("a", is_source=True, output_dtype="not-a-dtype")
    g.add_filter("b", input_dtype="float64")
    g.connect("a", "b")
    assert_rule(verify_buffers(g), "B501")


def test_b501_silent_on_matching_or_undeclared_dtypes():
    g = FilterGraph()
    g.add_filter("a", is_source=True, output_dtype="float32")
    g.add_filter("b", input_dtype="float32")
    g.add_filter("c")  # undeclared: no opinion
    g.connect("a", "b")
    g.connect("b", "c")
    assert verify_buffers(g) == []


def test_b502_codec_bypass_for_large_buffers():
    g = FilterGraph()
    g.add_filter("a", is_source=True, output_nbytes=1 << 20)
    g.add_filter("b")
    g.connect("a", "b")
    codec = BufferCodec(use_shared_memory=False)
    assert_rule(verify_buffers(g, codec), "B502")
    # Shared memory on, or small buffers: silent.
    assert verify_buffers(g, BufferCodec()) == []
    g.filters["a"].output_nbytes = 16
    assert verify_buffers(g, codec) == []


# -- report / wrapper behaviour ---------------------------------------------


def test_verify_pipeline_orders_errors_first():
    g = linear_graph("a", "b")
    g.add_filter("floating")  # G103 ERROR
    g.connect("a", "b", name="dup")  # G108 INFO
    p = placed(g, {"a": ["h0"], "b": ["h0"], "floating": ["h0"]})
    report = verify_pipeline(g, p)
    sevs = [d.severity for d in report.diagnostics]
    assert sevs == sorted(sevs, reverse=True)
    assert report.max_severity is Severity.ERROR


def test_raise_errors_maps_rule_scope_to_exception():
    g = FilterGraph()
    with pytest.raises(GraphError, match="no filters"):
        DiagnosticReport(verify_graph(g)).raise_errors()

    g = linear_graph("a", "b")
    p = Placement().place("a", ["h0"])
    with pytest.raises(PlacementError, match="has no placement"):
        DiagnosticReport(verify_placement(g, p)).raise_errors()


def test_raise_errors_uses_analysis_error_for_mixed_scopes():
    g = FilterGraph()
    g.add_filter("ra0", is_source=True)
    g.add_filter("ra1", is_source=True)
    g.add_filter("merge", phase_synchronised=True)
    g.connect("ra0", "merge")
    g.connect("ra1", "merge")
    p = placed(g, {"ra0": ["h0"], "ra1": ["h0"], "merge": ["h0"]})
    report = verify_pipeline(
        g, p, policy_for=lambda _s: make_policy_factory("DD")
    )
    with pytest.raises(AnalysisError) as err:
        report.raise_errors()
    assert err.value.report is report


def test_raise_errors_ignores_warnings():
    g = linear_graph("a", "sink")
    p = placed(g, {"a": ["h0"], "sink": [("h0", 2)]})
    report = DiagnosticReport(verify_placement(g, p))
    assert report.warnings and not report.errors
    report.raise_errors()  # no raise


def test_graph_validate_is_thin_wrapper():
    g = linear_graph("a", "b")
    g.connect("b", "a", name="back")
    with pytest.raises(GraphError, match="cycle"):
        g.validate()


def test_topological_order_no_longer_revalidates():
    g = linear_graph("a", "b")
    g.add_filter("floating")  # validate() would reject this graph...
    order = g.topological_order()  # ...but topo sort alone is fine
    assert set(order) == {"a", "b", "floating"}


def test_diagnostic_to_dict_roundtrip_fields():
    g = linear_graph("a", "sink")
    p = placed(g, {"a": ["h0"], "sink": [("h0", 2)]})
    (diag,) = verify_placement(g, p)
    d = diag.to_dict()
    assert d["rule"] == "P204"
    assert d["severity"] == "warning"
    assert d["subject"] == "sink"
    assert d["hint"]
    assert isinstance(diag, Diagnostic)
    assert "P204" in str(diag)
