"""Per-rule fixtures for the AST filter-code lint (``C6xx``)."""

import textwrap

from repro.analysis import lint_class, lint_file, lint_graph_filters, lint_source
from repro.analysis.diagnostics import Severity
from repro.core import Filter, FilterGraph


def lint(code, **kw):
    return lint_source(textwrap.dedent(code), filename="fixture.py", **kw)


def rules_of(diags):
    return {d.rule for d in diags}


# -- C600 parse errors -------------------------------------------------------


def test_c600_syntax_error_reported_not_raised():
    (diag,) = lint("class Broken(Filter:\n    pass\n")
    assert diag.rule == "C600"
    assert diag.severity is Severity.ERROR
    assert "fixture.py" in diag.location


# -- C601 payload mutation after send ----------------------------------------


def test_c601_mutation_after_write():
    diags = lint(
        """
        class Bad(Filter):
            def handle(self, ctx, buffer):
                ctx.write(buffer)
                buffer.payload[0] = 0  # mutates what was already sent
        """
    )
    hits = [d for d in diags if d.rule == "C601"]
    assert len(hits) == 1
    assert hits[0].severity is Severity.ERROR
    assert hits[0].subject == "Bad.handle"
    assert hits[0].hint


def test_c601_attribute_mutation_after_write():
    diags = lint(
        """
        class Bad(Filter):
            def flush(self, ctx):
                out = DataBuffer(8, payload=self.acc)
                ctx.write(out)
                out.tags["late"] = True
        """
    )
    assert "C601" in rules_of(diags)


def test_c601_silent_when_mutation_precedes_write():
    diags = lint(
        """
        class Good(Filter):
            def handle(self, ctx, buffer):
                buffer.payload[0] = 1
                ctx.write(buffer)
        """
    )
    assert "C601" not in rules_of(diags)


def test_c601_silent_on_rebinding_bare_name():
    diags = lint(
        """
        class Good(Filter):
            def handle(self, ctx, buffer):
                ctx.write(buffer)
                buffer = None  # rebinding, not mutating the sent object
        """
    )
    assert "C601" not in rules_of(diags)


# -- C602 missing downstream output ------------------------------------------


def test_c602_handle_without_write_or_result():
    diags = lint(
        """
        class Sinkhole(Filter):
            def handle(self, ctx, buffer):
                self.total = buffer.payload
        """
    )
    hits = [d for d in diags if d.rule == "C602"]
    assert len(hits) == 1
    assert hits[0].severity is Severity.WARNING


def test_c602_silent_with_write_result_or_delegation():
    quiet = [
        """
        class Writer(Filter):
            def handle(self, ctx, buffer):
                ctx.write(buffer)
        """,
        """
        class Sink(Filter):
            def handle(self, ctx, buffer):
                self.total = buffer.payload
            def result(self):
                return self.total
        """,
        """
        class Wrapper(Filter):
            def handle(self, ctx, buffer):
                self._inner.handle(ctx, buffer)  # delegation writes for us
        """,
    ]
    for code in quiet:
        assert "C602" not in rules_of(lint(code)), code


# -- C603 blocking calls in the hot path -------------------------------------


def test_c603_blocking_calls_in_handle():
    diags = lint(
        """
        import time

        class Slow(Filter):
            def handle(self, ctx, buffer):
                time.sleep(0.1)
                with open("/tmp/log") as fh:
                    fh.read()
                ctx.write(buffer)
        """
    )
    hits = [d for d in diags if d.rule == "C603"]
    assert len(hits) == 2  # time.sleep and open
    assert all(d.severity is Severity.WARNING for d in hits)


def test_c603_silent_outside_hot_callbacks():
    diags = lint(
        """
        class Fine(Filter):
            def init(self, ctx):
                self.fh = open("/tmp/data")  # setup, not per-buffer

            def handle(self, ctx, buffer):
                ctx.write(buffer)
        """
    )
    assert "C603" not in rules_of(diags)


# -- C604 unpicklable state --------------------------------------------------


def test_c604_lock_and_lambda_state():
    diags = lint(
        """
        import threading

        class Stateful(Filter):
            scale = lambda self, x: x * 2

            def __init__(self):
                self.lock = threading.Lock()
                self.key = lambda b: b.tags["seq"]

            def handle(self, ctx, buffer):
                ctx.write(buffer)
        """
    )
    hits = [d for d in diags if d.rule == "C604"]
    assert len(hits) == 3  # class lambda, Lock(), instance lambda
    assert all(d.severity is Severity.WARNING for d in hits)


def test_c604_promoted_to_error_for_process_engine():
    code = """
    import threading

    class Stateful(Filter):
        def __init__(self):
            self.lock = threading.Lock()

        def handle(self, ctx, buffer):
            ctx.write(buffer)
    """
    (warn,) = [d for d in lint(code) if d.rule == "C604"]
    assert warn.severity is Severity.WARNING
    (err,) = [d for d in lint(code, process_engine=True) if d.rule == "C604"]
    assert err.severity is Severity.ERROR


def test_c604_silent_for_plain_state():
    diags = lint(
        """
        class Plain(Filter):
            def __init__(self):
                self.total = 0
                self.seen = []

            def handle(self, ctx, buffer):
                self.total += buffer.payload
                ctx.write(buffer)
        """
    )
    assert "C604" not in rules_of(diags)


# -- entry points ------------------------------------------------------------


def test_non_filter_classes_are_ignored():
    diags = lint(
        """
        class Helper:
            def handle(self, ctx, buffer):
                pass  # not a Filter subclass: out of scope
        """
    )
    assert diags == []


def test_lint_file_matches_lint_source(tmp_path):
    path = tmp_path / "filters.py"
    path.write_text(
        "class Bad(Filter):\n"
        "    def handle(self, ctx, buffer):\n"
        "        ctx.write(buffer)\n"
        "        buffer.payload[0] = 0\n"
    )
    diags = lint_file(path)
    assert rules_of(diags) == {"C601"}
    assert str(path) in diags[0].location


class MutatingFilter(Filter):
    def handle(self, ctx, buffer):
        ctx.write(buffer)
        buffer.tags["late"] = 1


def test_lint_class_on_live_class():
    diags = lint_class(MutatingFilter)
    assert rules_of(diags) == {"C601"}


def test_lint_graph_filters_covers_class_factories():
    g = FilterGraph()
    g.add_filter("src", factory=lambda: None, is_source=True)
    g.add_filter("bad", factory=MutatingFilter)
    g.connect("src", "bad")
    diags = lint_graph_filters(g)
    assert rules_of(diags) == {"C601"}
    # Closure factories have no linteable class source; they are skipped.
    g2 = FilterGraph()
    g2.add_filter("src", factory=lambda: MutatingFilter(), is_source=True)
    assert lint_graph_filters(g2) == []


def test_repo_filter_modules_lint_clean():
    from pathlib import Path

    root = Path(__file__).resolve().parents[2] / "src" / "repro"
    for path in sorted(root.rglob("*.py")):
        diags = lint_file(path)
        errors = [d for d in diags if d.severity is Severity.ERROR]
        assert not errors, f"{path}: {[str(d) for d in errors]}"


def test_c605_accumulator_never_reset():
    diags = lint(
        """
        class Leaky(Filter):
            def __init__(self):
                self.seen = []
                self.total = 0

            def handle(self, ctx, buffer):
                self.seen.append(buffer)
                self.total += 1
                ctx.write(buffer)
        """
    )
    assert rules_of(diags) == {"C605"}
    subjects = {d.subject for d in diags if d.rule == "C605"}
    assert subjects == {"Leaky.seen", "Leaky.total"}


def test_c605_flagged_when_only_init_dunder_resets():
    # __init__ runs once per copy lifetime; cycle reuse still leaks.
    diags = lint(
        """
        class FlushLeaky(Filter):
            def flush(self, ctx):
                self.emitted += 1
                ctx.write(DataBuffer(8, payload=self.emitted))
        """
    )
    assert rules_of(diags) == {"C605"}


def test_c605_silent_when_init_resets():
    diags = lint(
        """
        class Clean(Filter):
            def init(self, ctx):
                self.seen = []
                self.total = 0

            def handle(self, ctx, buffer):
                self.seen.append(buffer)
                self.total += 1
                ctx.write(buffer)
        """
    )
    assert "C605" not in rules_of(diags)


def test_c605_honours_init_reset_helpers_and_clear():
    diags = lint(
        """
        class Delegating(Filter):
            def init(self, ctx):
                self._reset()
                self.cache.clear()

            def _reset(self):
                self.total = 0

            def handle(self, ctx, buffer):
                self.total += 1
                self.cache.update({buffer.nbytes: buffer})
                ctx.write(buffer)
        """
    )
    assert "C605" not in rules_of(diags)


# -- C606 content-routed route() ignoring its tags ---------------------------


def test_c606_tilerouted_subclass_ignoring_tags():
    diags = lint(
        """
        class BlindRouter(TileRouted):
            def route(self, tags=None):
                return self.select()  # round-robins tile fragments
        """
    )
    hits = [d for d in diags if d.rule == "C606"]
    assert len(hits) == 1
    assert hits[0].severity is Severity.WARNING
    assert hits[0].subject == "BlindRouter.route"
    assert "tile_owner" in hits[0].message


def test_c606_content_routed_attribute_ignoring_tags():
    diags = lint(
        """
        class Custom(WriterPolicy):
            content_routed = True

            def route(self, tags=None):
                return self.targets[0]
        """
    )
    assert "C606" in rules_of(diags)


def test_c606_silent_when_route_reads_its_tags():
    diags = lint(
        """
        class ProperRouter(TileRouted):
            def route(self, tags=None):
                owner = tags.get(self.tag) if tags else None
                return self.targets[owner]
        """
    )
    assert "C606" not in rules_of(diags)


def test_c606_silent_for_non_content_routed_policies():
    diags = lint(
        """
        class PlainPolicy(WriterPolicy):
            def route(self, tags=None):
                return self.select()  # the base contract: tags optional
        """
    )
    assert "C606" not in rules_of(diags)


def test_c606_shipped_tilerouted_policy_is_clean():
    import repro.core.policies as policies

    diags = lint_file(policies.__file__)
    assert "C606" not in rules_of(diags)
