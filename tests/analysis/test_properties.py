"""Property test: randomly generated valid pipelines verify clean and run.

A "valid" pipeline here is a random linear-ish DAG (chain plus optional
skip connections) with every filter placed on known hosts.  The property:
the static verifier reports zero ERROR diagnostics, and the threaded
engine actually runs the pipeline and delivers every buffer.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import verify_pipeline
from repro.core import DataBuffer, Filter, FilterGraph, Placement
from repro.core.policies import make_policy_factory
from repro.engines.threaded import ThreadedEngine

HOSTS = ["h0", "h1", "h2"]


class Source(Filter):
    def __init__(self, count):
        self.count = count

    def flush(self, ctx):
        for i in range(self.count):
            if i % ctx.total_copies == ctx.copy_index:
                for stream in ctx.output_streams:
                    ctx.write(
                        DataBuffer(8, payload=1, tags={"seq": i}),
                        stream=stream,
                    )


class Forward(Filter):
    def handle(self, ctx, buffer):
        ctx.write(buffer)


class Count(Filter):
    def __init__(self):
        self.n = 0

    def handle(self, ctx, buffer):
        self.n += buffer.payload

    def result(self):
        return self.n


@st.composite
def pipelines(draw):
    """(graph, placement, policy, queue_capacity) for a valid pipeline."""
    n_mid = draw(st.integers(min_value=0, max_value=3))
    names = ["src"] + [f"mid{i}" for i in range(n_mid)] + ["sink"]
    g = FilterGraph()
    for i, name in enumerate(names):
        if i == 0:
            g.add_filter(name, factory=lambda: Source(6), is_source=True)
        elif i == len(names) - 1:
            g.add_filter(name, factory=Count)
        else:
            g.add_filter(name, factory=Forward)
        if i:
            g.connect(names[i - 1], name)
    # Optional skip connection (keeps the DAG acyclic: forward only).
    if n_mid >= 1 and draw(st.booleans()):
        g.connect("src", names[-1], name="skip")

    p = Placement()
    for name in names:
        # Sources stay on one copy set: copies partition work by their
        # per-host copy_index, which is only a partition within one set.
        n_sets = 1 if name == "src" else draw(st.integers(min_value=1, max_value=2))
        hosts = draw(
            st.lists(
                st.sampled_from(HOSTS),
                min_size=n_sets,
                max_size=n_sets,
                unique=True,
            )
        )
        copies = draw(st.integers(min_value=1, max_value=2))
        # Keep sinks single-copy so the run returns one result (and the
        # verifier's P204 warning stays out of the way of the property).
        if name == "sink":
            p.place(name, [hosts[0]])
        else:
            p.place(name, [(h, copies) for h in hosts])

    policy = draw(st.sampled_from(["RR", "WRR", "DD", "RATE"]))
    queue_capacity = draw(st.integers(min_value=8, max_value=32))
    return g, p, policy, queue_capacity


@settings(max_examples=30, deadline=None)
@given(pipelines())
def test_valid_pipelines_verify_clean_and_run(pipeline):
    g, p, policy, queue_capacity = pipeline
    factory = make_policy_factory(policy)
    report = verify_pipeline(
        g,
        p,
        known_hosts=HOSTS,
        policy_for=lambda _stream: factory,
        queue_capacity=queue_capacity,
    )
    assert report.errors == [], [str(d) for d in report.errors]

    metrics = ThreadedEngine(
        g, p, policy=policy, queue_capacity=queue_capacity
    ).run()
    # Every buffer reaches the sink: 6 via the chain, 6 more per skip edge.
    expected = 6 * len(
        [s for s in g.streams.values() if s.dst == "sink"]
    )
    assert metrics.result == expected


@settings(max_examples=25, deadline=None)
@given(pipelines())
def test_valid_pipelines_have_no_protocol_wedge(pipeline):
    """The model checker never finds a wedge in a valid random pipeline.

    Zero F9xx findings, ever: ``deadlock_free`` is either ``True`` (the
    bound sufficed for an exhaustive proof — the common case) or ``None``
    (honest truncation on the largest generated placements, reported as
    F904 INFO by the verify hook) — never ``False``.
    """
    from repro.analysis import check_protocol

    g, p, policy, queue_capacity = pipeline
    factory = make_policy_factory(policy)
    result = check_protocol(
        g,
        p,
        policy_for=lambda _stream: factory,
        queue_capacity=queue_capacity,
        max_buffers=1,
        max_states=150_000,
    )
    assert result.deadlock_free is not False, result.stuck
    assert result.rule is None
    assert result.counterexample == ()
    if result.exhaustive:
        assert result.deadlock_free is True


@settings(max_examples=25, deadline=None)
@given(pipelines())
def test_injected_zero_window_always_yields_counterexample(pipeline):
    """A zero-credit window (the degenerate DD window/queue pair the real
    policy constructors refuse to build) must always produce a concrete
    counterexample trace, whatever the surrounding pipeline shape."""
    from repro.analysis import check_protocol

    g, p, _policy, queue_capacity = pipeline
    first_stream = next(iter(g.streams))
    result = check_protocol(
        g,
        p,
        window_overrides={first_stream: 0},
        queue_capacity=queue_capacity,
        max_buffers=1,
        max_states=150_000,
    )
    assert result.deadlock_free is False
    assert result.counterexample, "a wedge verdict must carry its trace"
    assert result.rule in {"F901", "F902", "F903"}
    assert result.stuck
