"""The flow-control model checker (F9xx): proofs and counterexamples.

Two seeded deadlock configurations must yield concrete event traces (the
DD credit cycle through a tile-routed merge, and the close-while-busy
wedge behind a stalled consumer), and every shipped IsosurfaceApp
configuration must be *proved* deadlock-free by exhaustive exploration.
"""

import pytest

from repro.analysis import (
    build_model,
    check_model,
    check_protocol,
    verify_protocol,
)
from repro.core.graph import FilterGraph
from repro.core.placement import Placement
from repro.core.policies import make_policy_factory
from repro.core.tiles import TileMap

DD1 = make_policy_factory("DD", window=1)
DD = make_policy_factory("DD")
RR = make_policy_factory("RR")
TILE = make_policy_factory("TILE")


def placed(mapping):
    p = Placement()
    for name, copysets in mapping.items():
        p.place(name, copysets)
    return p


def chain_graph():
    g = FilterGraph()
    g.add_filter("src", is_source=True)
    g.add_filter("mid")
    g.add_filter("sink")
    g.connect("src", "mid")
    g.connect("mid", "sink")
    return g


def chain_placement():
    return placed({"src": ["h0"], "mid": ["h1"], "sink": ["h2"]})


# -- proofs ------------------------------------------------------------------


def test_valid_chain_is_proved_deadlock_free():
    result = check_protocol(
        chain_graph(), chain_placement(), policy_for=lambda s: DD,
        queue_capacity=4, max_buffers=2,
    )
    assert result.deadlock_free is True
    assert result.exhaustive
    assert result.counterexample == ()
    assert result.rule is None


def test_fan_out_fan_in_is_proved_deadlock_free():
    g = FilterGraph()
    g.add_filter("src", is_source=True)
    g.add_filter("a")
    g.add_filter("b")
    g.add_filter("sink")
    g.connect("src", "a")
    g.connect("src", "b")
    g.connect("a", "sink")
    g.connect("b", "sink")
    p = placed({"src": ["h0"], "a": ["h1"], "b": ["h2"], "sink": ["h0"]})
    result = check_protocol(g, p, policy_for=lambda s: DD, max_buffers=1)
    assert result.deadlock_free is True and result.exhaustive


def test_copyset_granularity_labels():
    model = build_model(
        chain_graph(),
        placed({"src": ["h0"], "mid": [("h0", 2), ("h1", 1)], "sink": ["h1"]}),
    )
    assert model.labels == ("src@h0", "mid@h0", "mid@h1", "sink@h1")
    # src fans out to both mid copy sets; both feed the one sink set.
    assert len(model.edges) == 2 + 2


# -- seeded counterexample 1: DD credit cycle --------------------------------


def dd_credit_cycle():
    """A feedback edge from a tile-routed merge back to the raster.

    The merge is tile-mapped but *not* phase-synchronised (the Z405
    misconfiguration): it forwards mid-run on its window-1 feedback
    stream while the raster keeps its inbound queue full — credits can
    then wedge against queue slots.
    """
    g = FilterGraph()
    g.add_filter("seed", is_source=True)
    g.add_filter("ra")
    g.add_filter("tm", tile_map=TileMap.rows(8, 8, 2, 2))
    g.connect("seed", "ra")
    g.connect("ra", "tm")
    g.connect("tm", "ra", name="feedback")
    p = placed({"seed": ["h0"], "ra": ["h1"], "tm": ["h2"]})
    return g, p


def test_dd_credit_cycle_yields_f902_counterexample():
    g, p = dd_credit_cycle()
    result = check_protocol(
        g, p,
        policy_for=lambda s: TILE if s == "ra->tm" else DD1,
        queue_capacity=2, max_buffers=5, max_states=300_000,
    )
    assert result.deadlock_free is False
    assert result.rule == "F902"
    # The trace is a concrete event sequence ending in the wedge.
    assert len(result.counterexample) >= 5
    assert any("sends a buffer" in e for e in result.counterexample)
    assert any("window full" in s for s in result.stuck)
    assert any("queue of tm@h2 is full" in s for s in result.stuck)


def test_dd_credit_cycle_diagnostic_carries_the_trace():
    g, p = dd_credit_cycle()
    diags = verify_protocol(
        g, p,
        policy_for=lambda s: TILE if s == "ra->tm" else DD1,
        queue_capacity=2, max_states=300_000, max_buffers=5,
    )
    hits = [d for d in diags if d.rule == "F902"]
    assert hits, [d.rule for d in diags]
    assert "Offending event sequence" in hits[0].hint
    assert "->" in hits[0].hint


# -- seeded counterexample 2: close-while-busy -------------------------------


def test_close_while_busy_yields_f903_counterexample():
    result = check_protocol(
        chain_graph(), chain_placement(), policy_for=lambda s: RR,
        queue_capacity=1, stalled={"mid@h1"}, max_buffers=3,
    )
    assert result.deadlock_free is False
    assert result.rule == "F903"
    assert result.counterexample  # concrete events, not just a verdict
    assert any(
        "queue of mid@h1 is full" in s for s in result.stuck
    )
    # EOW delivery is wedged too: the sink never hears the close.
    assert any("waits for end-of-work" in s for s in result.stuck)


def test_stalled_consumer_with_window_classifies_as_credit_wedge():
    result = check_protocol(
        chain_graph(), chain_placement(), policy_for=lambda s: DD1,
        queue_capacity=1, stalled={"mid@h1"}, max_buffers=3,
    )
    assert result.deadlock_free is False
    assert result.rule == "F902"  # the window wedges before the queue


# -- window override hook (used by the property tests) -----------------------


def test_zero_window_override_always_wedges():
    result = check_protocol(
        chain_graph(), chain_placement(),
        window_overrides={"src->mid": 0}, max_buffers=1,
    )
    assert result.deadlock_free is False
    assert result.counterexample


# -- engine-hook wrapper bounds ----------------------------------------------


def test_verify_protocol_clean_on_valid_chain():
    assert verify_protocol(
        chain_graph(), chain_placement(), policy_for=lambda s: DD
    ) == []


def test_verify_protocol_truncation_is_info_f904():
    g, p = dd_credit_cycle()
    # A bound too small for any verdict: F904 INFO, not a false proof.
    diags = verify_protocol(
        chain_graph(), chain_placement(), policy_for=lambda s: DD,
        max_states=3,
    )
    assert [d.rule for d in diags] == ["F904"]
    assert diags[0].severity.label == "info"


def test_verify_protocol_skips_oversized_models():
    g = FilterGraph()
    g.add_filter("src", is_source=True)
    for i in range(40):
        g.add_filter(f"s{i}")
        g.connect("src", f"s{i}")
    diags = verify_protocol(g, max_edges=32)
    assert [d.rule for d in diags] == ["F904"]
    assert "skipped" in diags[0].message


def test_verify_protocol_empty_graph_is_silent():
    g = FilterGraph()
    g.add_filter("only", is_source=True)
    assert verify_protocol(g) == []


# -- the shipped configurations ----------------------------------------------


@pytest.mark.parametrize("config", ["R-E-Ra-M", "RE-Ra-M", "R-ERa-M", "RERa-M"])
def test_isosurface_configs_proved_deadlock_free(config):
    """Exhaustive proof for every shipped example configuration.

    The largest (R-E-Ra-M on two hosts) explores ~210k states; the
    engine-hook pass truncates at 4k states (F904 INFO), so the complete
    proof lives here and in `repro lint --deep`.
    """
    from repro.data import HostDisks, StorageMap
    from repro.viz import IsosurfaceApp
    from repro.viz.profile import DatasetProfile

    profile = DatasetProfile.synthetic(
        "fp", (8, 8, 8), nchunks=4, nfiles=2, timesteps=1, total_triangles=64
    )
    storage = StorageMap.balanced(
        profile.files, [HostDisks("h0"), HostDisks("h1")]
    )
    app = IsosurfaceApp(profile, storage, width=16, height=16)
    g = app.graph(config)
    p = app.placement(config, compute_hosts=["h0", "h1"])
    overrides = app.policy_overrides(config)
    result = check_protocol(
        g, p,
        policy_for=lambda s: overrides.get(s, DD),
        queue_capacity=4, max_buffers=1, max_states=500_000,
    )
    assert result.deadlock_free is True, result.stuck
    assert result.exhaustive
