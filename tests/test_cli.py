"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_experiments_single(capsys):
    assert main(["experiments", "table1", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Ra->M" in out


def test_experiments_unknown_name(capsys):
    assert main(["experiments", "bogus"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_render_writes_ppm(tmp_path, capsys):
    out = tmp_path / "img.ppm"
    code = main(
        [
            "render",
            "--grid", "17",
            "--image", "48",
            "--chunks", "8",
            "--files", "4",
            "--out", str(out),
        ]
    )
    assert code == 0
    data = out.read_bytes()
    assert data.startswith(b"P6 48 48 255\n")
    assert len(data) == len(b"P6 48 48 255\n") + 48 * 48 * 3
    assert "active pixels" in capsys.readouterr().out


def test_render_zbuffer_rera(tmp_path):
    out = tmp_path / "img.ppm"
    code = main(
        [
            "render",
            "--grid", "13",
            "--image", "32",
            "--chunks", "8",
            "--files", "4",
            "--config", "RERa-M",
            "--algorithm", "zbuffer",
            "--copies", "1",
            "--out", str(out),
        ]
    )
    assert code == 0
    assert out.exists()


def test_simulate_prints_makespan(capsys):
    code = main(
        [
            "simulate",
            "--scale", "0.01",
            "--rogue", "2",
            "--blue", "2",
            "--bg-jobs", "4",
            "--policy", "DD",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "makespan" in out
    assert "acks" in out  # DD generates acknowledgment traffic


def test_simulate_policy_variants(capsys):
    for policy in ("RR", "WRR", "RATE"):
        assert main(
            ["simulate", "--scale", "0.01", "--rogue", "1", "--blue", "1",
             "--policy", policy, "--image", "512"]
        ) == 0


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_bad_choice():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["simulate", "--policy", "MAGIC"])


def test_simulate_auto_place(capsys):
    code = main(
        ["simulate", "--scale", "0.01", "--rogue", "2", "--blue", "2",
         "--auto-place", "--image", "512"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "auto-place: bottleneck" in out
    assert "makespan" in out


def test_simulate_trace_timeline(capsys):
    code = main(
        ["simulate", "--scale", "0.01", "--rogue", "1", "--blue", "1",
         "--trace", "--image", "512"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "trace" in out
    assert "|" in out  # the timeline strips


def test_simulate_trace_out_and_trace_subcommand(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    code = main(
        ["simulate", "--scale", "0.01", "--rogue", "1", "--blue", "1",
         "--policy", "DD", "--image", "512", "--trace-out", str(path)]
    )
    assert code == 0
    assert "events ->" in capsys.readouterr().out
    assert path.exists()

    code = main(["trace", str(path), "--width", "40"])
    assert code == 0
    out = capsys.readouterr().out
    assert "clock: sim" in out
    assert "per-copy utilisation" in out
    assert "|" in out  # the timeline strips


def test_render_trace_out_round_trips(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    code = main(
        [
            "render",
            "--grid", "13",
            "--image", "32",
            "--chunks", "8",
            "--files", "4",
            "--out", str(tmp_path / "img.ppm"),
            "--trace-out", str(path),
        ]
    )
    assert code == 0
    capsys.readouterr()
    assert main(["trace", str(path)]) == 0
    assert "clock: wall" in capsys.readouterr().out


def test_trace_missing_file(tmp_path, capsys):
    assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
    assert "cannot read trace" in capsys.readouterr().err


def test_trace_corrupt_file(tmp_path, capsys):
    path = tmp_path / "bad.jsonl"
    path.write_text("this is not jsonl\n")
    assert main(["trace", str(path)]) == 2
    assert "malformed trace" in capsys.readouterr().err


def test_trace_rejects_bad_width(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"type": "meta", "version": 1, "clock": "sim", "dropped": 0}\n')
    with pytest.raises(SystemExit):
        build_parser().parse_args(["trace", str(path), "--width", "0"])


# -- lint --------------------------------------------------------------------

BAD_FILTER_SOURCE = """\
import time

from repro.core import Filter


class LeakyFilter(Filter):
    def handle(self, ctx, buffer):
        time.sleep(0.01)
        ctx.write(buffer)
        buffer.tags["late"] = 1
"""

BAD_PIPELINE_MODULE = BAD_FILTER_SOURCE + """\


from repro.core.graph import FilterGraph
from repro.core.placement import Placement

graph = FilterGraph()
graph.add_filter("a", is_source=True, output_dtype="float32")
graph.add_filter("b", input_dtype="float64")
graph.add_filter("merge", phase_synchronised=True)
graph.add_filter("floating")
graph.connect("a", "b")
graph.connect("a", "merge")
graph.connect("b", "merge")
graph.connect("a", "b", name="dup")

placement = Placement()
placement.place("a", ["h0"])
placement.place("b", [("h0", 1), ("h1", 1)])
placement.place("merge", [("h0", 2)])
placement.place("ghost", ["h0"])
"""


def test_lint_rules_catalogue(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("G102", "P203", "W302", "Z401", "B501", "C601"):
        assert rule in out


def test_lint_without_inputs_is_usage_error(capsys):
    assert main(["lint"]) == 2
    assert "nothing to lint" in capsys.readouterr().err


def test_lint_missing_file_is_usage_error(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "nope.py")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_lint_clean_file_passes(tmp_path, capsys):
    path = tmp_path / "clean.py"
    path.write_text("x = 1\n")
    assert main(["lint", str(path)]) == 0
    assert "no diagnostics" in capsys.readouterr().out


def test_lint_bad_filter_file_fails_with_hints(tmp_path, capsys):
    path = tmp_path / "bad.py"
    path.write_text(BAD_FILTER_SOURCE)
    assert main(["lint", str(path)]) == 1
    out = capsys.readouterr().out
    assert "C601" in out
    assert "C603" in out
    assert "fix:" in out


def test_lint_directory_recurses(tmp_path, capsys):
    sub = tmp_path / "pkg"
    sub.mkdir()
    (sub / "bad.py").write_text(BAD_FILTER_SOURCE)
    assert main(["lint", str(tmp_path)]) == 1
    assert "C601" in capsys.readouterr().out


def test_lint_json_output(tmp_path, capsys):
    import json

    path = tmp_path / "bad.py"
    path.write_text(BAD_FILTER_SOURCE)
    assert main(["lint", "--format", "json", str(path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["summary"]["error"] >= 1
    rules = {d["rule"] for d in payload["diagnostics"]}
    assert {"C601", "C603"} <= rules
    for diag in payload["diagnostics"]:
        assert diag["hint"]


def test_lint_graph_module_detects_many_rules(tmp_path, capsys, monkeypatch):
    """Acceptance: a purpose-built bad pipeline trips >= 8 distinct rules."""
    import json

    (tmp_path / "badmod.py").write_text(BAD_PIPELINE_MODULE)
    monkeypatch.syspath_prepend(str(tmp_path))
    code = main(
        [
            "lint",
            "--graph-module", "badmod",
            "--format", "json",
            "--policy", "DD",
            "--queue-capacity", "2",
        ]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    rules = {d["rule"] for d in payload["diagnostics"]}
    expected = {
        "G103",  # floating filter neither source nor consumer
        "G107",  # unreachable from every source
        "G108",  # parallel streams a->b
        "P201",  # floating has no placement
        "P202",  # ghost placed but not in graph
        "P204",  # multi-copy sink
        "W302",  # DD window 4 > queue capacity 2
        "Z401",  # phase-synchronised fan-in
        "B501",  # float32 -> float64 dtype mismatch
        "C601",  # mutation after send
        "C603",  # blocking call in handle
    }
    assert expected <= rules
    assert len(rules) >= 8
    for diag in payload["diagnostics"]:
        assert diag["hint"], diag


def test_lint_graph_module_attr_callable(tmp_path, capsys, monkeypatch):
    (tmp_path / "goodmod.py").write_text(
        "from repro.core.graph import FilterGraph\n"
        "from repro.core.placement import Placement\n\n"
        "def build():\n"
        "    g = FilterGraph()\n"
        "    g.add_filter('src', is_source=True)\n"
        "    g.add_filter('sink')\n"
        "    g.connect('src', 'sink')\n"
        "    p = Placement()\n"
        "    p.place('src', ['h0'])\n"
        "    p.place('sink', ['h0'])\n"
        "    return g, p\n"
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    assert main(["lint", "--graph-module", "goodmod:build"]) == 0
    assert "no diagnostics" in capsys.readouterr().out


def test_lint_graph_module_import_error(capsys):
    assert main(["lint", "--graph-module", "no.such.module"]) == 2
    assert "cannot load" in capsys.readouterr().err


def test_lint_deep_runs_the_deep_passes(tmp_path, capsys, monkeypatch):
    """--deep adds E7xx/M8xx/F9xx findings shallow lint cannot see."""
    import json

    (tmp_path / "deepmod.py").write_text(
        "import random\n"
        "from repro.core import DataBuffer, Filter\n"
        "from repro.core.graph import FilterGraph\n"
        "from repro.core.placement import Placement\n\n"
        "class Jitter(Filter):\n"
        "    def handle(self, ctx, buffer):\n"
        "        ctx.write(DataBuffer(8, payload=random.random()))\n\n"
        "def build():\n"
        "    g = FilterGraph()\n"
        "    g.add_filter('src', is_source=True)\n"
        "    g.add_filter('jit', factory=Jitter)\n"
        "    g.connect('src', 'jit')\n"
        "    p = Placement()\n"
        "    p.place('src', ['h0'])\n"
        "    p.place('jit', ['h0'])\n"
        "    return g, p\n"
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    # Shallow lint: clean.
    assert main(["lint", "--graph-module", "deepmod:build"]) == 0
    capsys.readouterr()
    # Deep lint: the nondeterministic filter surfaces as E702.
    main(
        ["lint", "--deep", "--format", "json",
         "--graph-module", "deepmod:build"]
    )
    payload = json.loads(capsys.readouterr().out)
    rules = {d["rule"] for d in payload["diagnostics"]}
    assert "E702" in rules


def test_lint_graph_module_list_of_pairs(tmp_path, capsys, monkeypatch):
    """A builder may return a list of (graph, placement) lint targets."""
    (tmp_path / "listmod.py").write_text(
        "from repro.core.graph import FilterGraph\n"
        "from repro.core.placement import Placement\n\n"
        "def build_all():\n"
        "    out = []\n"
        "    for tag in ('one', 'two'):\n"
        "        g = FilterGraph()\n"
        "        g.add_filter('src', is_source=True)\n"
        "        g.add_filter('sink')\n"
        "        g.connect('src', 'sink')\n"
        "        p = Placement()\n"
        "        p.place('src', ['h0'])\n"
        "        p.place('sink', ['h0'])\n"
        "        out.append((g, p))\n"
        "    return out\n"
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    assert main(
        ["lint", "--deep", "--protocol-max-states", "100000",
         "--graph-module", "listmod:build_all"]
    ) == 0
    assert "no diagnostics" in capsys.readouterr().out
