"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_experiments_single(capsys):
    assert main(["experiments", "table1", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Ra->M" in out


def test_experiments_unknown_name(capsys):
    assert main(["experiments", "bogus"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_render_writes_ppm(tmp_path, capsys):
    out = tmp_path / "img.ppm"
    code = main(
        [
            "render",
            "--grid", "17",
            "--image", "48",
            "--chunks", "8",
            "--files", "4",
            "--out", str(out),
        ]
    )
    assert code == 0
    data = out.read_bytes()
    assert data.startswith(b"P6 48 48 255\n")
    assert len(data) == len(b"P6 48 48 255\n") + 48 * 48 * 3
    assert "active pixels" in capsys.readouterr().out


def test_render_zbuffer_rera(tmp_path):
    out = tmp_path / "img.ppm"
    code = main(
        [
            "render",
            "--grid", "13",
            "--image", "32",
            "--chunks", "8",
            "--files", "4",
            "--config", "RERa-M",
            "--algorithm", "zbuffer",
            "--copies", "1",
            "--out", str(out),
        ]
    )
    assert code == 0
    assert out.exists()


def test_simulate_prints_makespan(capsys):
    code = main(
        [
            "simulate",
            "--scale", "0.01",
            "--rogue", "2",
            "--blue", "2",
            "--bg-jobs", "4",
            "--policy", "DD",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "makespan" in out
    assert "acks" in out  # DD generates acknowledgment traffic


def test_simulate_policy_variants(capsys):
    for policy in ("RR", "WRR", "RATE"):
        assert main(
            ["simulate", "--scale", "0.01", "--rogue", "1", "--blue", "1",
             "--policy", policy, "--image", "512"]
        ) == 0


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_bad_choice():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["simulate", "--policy", "MAGIC"])


def test_simulate_auto_place(capsys):
    code = main(
        ["simulate", "--scale", "0.01", "--rogue", "2", "--blue", "2",
         "--auto-place", "--image", "512"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "auto-place: bottleneck" in out
    assert "makespan" in out


def test_simulate_trace_timeline(capsys):
    code = main(
        ["simulate", "--scale", "0.01", "--rogue", "1", "--blue", "1",
         "--trace", "--image", "512"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "trace" in out
    assert "|" in out  # the timeline strips


def test_simulate_trace_out_and_trace_subcommand(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    code = main(
        ["simulate", "--scale", "0.01", "--rogue", "1", "--blue", "1",
         "--policy", "DD", "--image", "512", "--trace-out", str(path)]
    )
    assert code == 0
    assert "events ->" in capsys.readouterr().out
    assert path.exists()

    code = main(["trace", str(path), "--width", "40"])
    assert code == 0
    out = capsys.readouterr().out
    assert "clock: sim" in out
    assert "per-copy utilisation" in out
    assert "|" in out  # the timeline strips


def test_render_trace_out_round_trips(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    code = main(
        [
            "render",
            "--grid", "13",
            "--image", "32",
            "--chunks", "8",
            "--files", "4",
            "--out", str(tmp_path / "img.ppm"),
            "--trace-out", str(path),
        ]
    )
    assert code == 0
    capsys.readouterr()
    assert main(["trace", str(path)]) == 0
    assert "clock: wall" in capsys.readouterr().out


def test_trace_missing_file(tmp_path, capsys):
    assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
    assert "cannot read trace" in capsys.readouterr().err


def test_trace_corrupt_file(tmp_path, capsys):
    path = tmp_path / "bad.jsonl"
    path.write_text("this is not jsonl\n")
    assert main(["trace", str(path)]) == 2
    assert "malformed trace" in capsys.readouterr().err


def test_trace_rejects_bad_width(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"type": "meta", "version": 1, "clock": "sim", "dropped": 0}\n')
    with pytest.raises(SystemExit):
        build_parser().parse_args(["trace", str(path), "--width", "0"])
