"""End-to-end tests for the ``repro serve`` query service.

A real server (asyncio frontend + warm pools) runs in a background thread
on an ephemeral port; tests speak the newline-delimited JSON protocol over
TCP exactly like ``examples/serve_client.py``.
"""

import base64
import json
import multiprocessing
import socket
import threading

import pytest

from repro.serve import QueryService, SceneSpec, ppm_bytes, run_server

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the query service pools need the fork start method",
)

SCENE = SceneSpec(
    "unit", grid=11, timesteps=2, species=2, nchunks=8, nfiles=4, seed=7,
    isovalue=0.35,
)


def _start_server(service, admission_limit=4):
    ready = threading.Event()
    bound = {}

    def _ready(port):
        bound["port"] = port
        ready.set()

    thread = threading.Thread(
        target=run_server,
        kwargs={
            "service": service,
            "port": 0,
            "admission_limit": admission_limit,
            "ready": _ready,
        },
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=30.0), "server did not come up"
    return thread, bound["port"]


def _request(port, payload, timeout=120.0):
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as s:
        if isinstance(payload, dict):
            payload = json.dumps(payload).encode()
        s.sendall(payload + b"\n")
        with s.makefile("rb") as fh:
            line = fh.readline()
    assert line, "server closed the connection without replying"
    return json.loads(line)


@pytest.fixture(scope="module")
def server():
    service = QueryService(scenes=[SCENE], width=32, height=32)
    thread, port = _start_server(service)
    yield port
    _request(port, {"cmd": "shutdown"})
    thread.join(timeout=30.0)
    assert not thread.is_alive()


def test_ping(server):
    assert _request(server, {"cmd": "ping"}) == {"ok": True, "pong": True}


def test_cold_then_warm_query(server):
    first = _request(server, {"cmd": "query"})
    assert first["ok"]
    assert first["dataset"] == "unit"
    assert first["warm"] is False
    frame = base64.b64decode(first["frame_b64"])
    assert frame.startswith(b"P6 32 32 255\n")
    assert len(frame) == len(b"P6 32 32 255\n") + 32 * 32 * 3
    assert first["active_pixels"] > 0

    second = _request(server, {"cmd": "query"})
    assert second["ok"]
    assert second["warm"] is True
    assert second["pool_cycle"] >= 2
    # Identical query, identical frame.
    assert second["frame_b64"] == first["frame_b64"]


def test_query_knobs_ride_the_uow(server):
    base = _request(server, {"cmd": "query"})
    moved = _request(
        server,
        {
            "cmd": "query",
            "isovalue": 0.5,
            "timestep": 1,
            "view": {"azimuth": 120, "elevation": 45},
            "trace": True,
        },
    )
    assert moved["ok"]
    assert moved["isovalue"] == 0.5
    assert moved["timestep"] == 1
    assert moved["view"] == {"azimuth": 120.0, "elevation": 45.0}
    assert moved["warm"] is True  # same pool key: knobs don't rebuild
    assert moved["frame_b64"] != base["frame_b64"]
    assert moved["trace"]["events"] > 0


def test_bad_requests_get_error_responses(server):
    assert "bad request" in _request(server, b"this is not json")["error"]
    assert not _request(server, {"cmd": "nope"})["ok"]
    bad_step = _request(server, {"cmd": "query", "timestep": 99})
    assert not bad_step["ok"]
    assert "timestep" in bad_step["error"]
    bad_scene = _request(server, {"cmd": "query", "dataset": "missing"})
    assert not bad_scene["ok"]
    assert "unknown dataset" in bad_scene["error"]


def test_malformed_request_fields_get_error_responses(server):
    """Coercion failures must come back as error responses, not dropped
    connections (bare ValueError/TypeError used to kill the handler)."""
    cases = [
        ({"width": "banana"}, "width"),
        ({"width": 0}, "width"),
        ({"height": -3}, "height"),
        ({"height": None}, "height"),
        ({"isovalue": "not-a-number"}, "isovalue"),
        ({"isovalue": float("inf")}, "isovalue"),
        ({"timestep": "two"}, "timestep"),
        ({"merge_copies": "lots"}, "merge_copies"),
        ({"merge_copies": -1}, "merge_copies"),
        ({"view": "sideways"}, "view"),
        ({"view": {"azimuth": "east"}}, "view.azimuth"),
    ]
    for fields, needle in cases:
        response = _request(server, {"cmd": "query", **fields})
        assert response["ok"] is False, fields
        assert needle in response["error"], (fields, response["error"])
    # The connection-level service still works after every rejection.
    assert _request(server, {"cmd": "ping"})["pong"] is True
    good = _request(server, {"cmd": "query"})
    assert good["ok"] is True


def test_stats_counts_queries(server):
    stats = _request(server, {"cmd": "stats"})["stats"]
    assert stats["scenes"] == ["unit"]
    assert stats["queries_served"] >= 2
    assert len(stats["pools"]) >= 1  # one warm pool per pipeline key
    (pool_stats,) = stats["pools"].values()
    assert pool_stats["cycles_completed"] >= 2


def test_admission_control_rejects_at_limit():
    service = QueryService(scenes=[SCENE], width=32, height=32)
    thread, port = _start_server(service, admission_limit=0)
    try:
        response = _request(port, {"cmd": "query"})
        assert response["ok"] is False
        assert response["rejected"] is True
        assert "admission limit" in response["error"]
    finally:
        _request(port, {"cmd": "shutdown"})
        thread.join(timeout=30.0)


def test_ppm_bytes_header():
    import numpy as np

    image = np.zeros((4, 6, 3), dtype=np.uint8)
    data = ppm_bytes(image)
    assert data.startswith(b"P6 6 4 255\n")
    assert len(data) == len(b"P6 6 4 255\n") + 4 * 6 * 3


def test_merge_copies_request_keys_its_own_pool(server):
    tiled = _request(server, {"cmd": "query", "merge_copies": 2})
    assert tiled["ok"]
    assert tiled["merge_copies"] == 2
    assert tiled["warm"] is False  # new pool key: first query is cold
    base = _request(server, {"cmd": "query"})
    # Same scene and size: the tiled pipeline renders the same frame.
    assert tiled["frame_b64"] == base["frame_b64"]
    again = _request(server, {"cmd": "query", "merge_copies": 2})
    assert again["warm"] is True
    stats = _request(server, {"cmd": "stats"})["stats"]
    assert len(stats["pools"]) >= 2  # single-merge and tiled pools coexist
    bad = _request(server, {"cmd": "query", "merge_copies": 0})
    assert not bad["ok"]
    assert "merge_copies" in bad["error"]
