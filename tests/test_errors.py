"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_all_derive_from_repro_error():
    for name in (
        "SimulationError",
        "GraphError",
        "PlacementError",
        "StreamClosedError",
        "EngineError",
        "DataError",
        "ConfigurationError",
    ):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_interrupt_carries_cause():
    exc = errors.Interrupt("preempted")
    assert exc.cause == "preempted"
    assert isinstance(exc, errors.SimulationError)
    assert errors.Interrupt().cause is None


def test_single_catch_point():
    with pytest.raises(errors.ReproError):
        raise errors.DataError("boom")
