"""Unit tests for :mod:`repro.cache`: keys, the LRU store, certification."""

import numpy as np
import pytest

from repro.cache import (
    CachedTile,
    ResultCache,
    TIERS,
    bind_cache,
    content_key,
    make_triangle_set,
    subgraph_signature,
    verify_cache_attachment,
)
from repro.data import HostDisks, ParSSimDataset, StorageMap
from repro.errors import AnalysisError, ConfigurationError
from repro.viz import IsosurfaceApp
from repro.viz.profile import DatasetProfile


def _app():
    dataset = ParSSimDataset((9, 9, 9), timesteps=2, species=2, seed=3)
    profile = DatasetProfile.measured(
        "unit", dataset, nchunks=8, nfiles=4, isovalue=0.35
    )
    storage = StorageMap.balanced(profile.files, [HostDisks("host0")])
    return IsosurfaceApp(
        profile, storage, width=16, height=16, dataset=dataset
    )


# -- content keys ------------------------------------------------------------
def test_content_key_is_deterministic_and_distinguishes_types():
    assert content_key("a", 1, 2.5) == content_key("a", 1, 2.5)
    assert content_key("a") != content_key(b"a")  # str vs bytes marker
    assert content_key(1) != content_key(1.0)  # int vs float marker
    assert content_key(True) != content_key(1)  # bool vs int marker
    assert content_key(None) != content_key("None")
    assert content_key(("a", "b")) != content_key(("ab",))  # no concat splice
    assert content_key({"x": 1, "y": 2}) == content_key({"y": 2, "x": 1})


def test_content_key_hashes_array_contents():
    a = np.arange(12, dtype=np.float32).reshape(3, 4)
    assert content_key(a) == content_key(a.copy())
    assert content_key(a) != content_key(a.astype(np.float64))
    assert content_key(a) != content_key(a.reshape(4, 3))
    b = a.copy()
    b[0, 0] += 1
    assert content_key(a) != content_key(b)


def test_content_key_rejects_uncanonicalisable_values():
    with pytest.raises(ConfigurationError, match="cache keys"):
        content_key(object())


# -- triangle sets and tiles -------------------------------------------------
def test_make_triangle_set_digest_tracks_geometry():
    tris = {0: np.zeros((2, 3, 3), np.float32), 1: np.zeros((0, 3, 3), np.float32)}
    one = make_triangle_set(tris)
    two = make_triangle_set(dict(reversed(list(tris.items()))))
    assert one.digest == two.digest  # insertion order is canonicalised
    assert one.nbytes >= sum(a.nbytes for a in tris.values())
    moved = {0: np.ones((2, 3, 3), np.float32), 1: tris[1]}
    assert make_triangle_set(moved).digest != one.digest


def test_cached_tile_accounts_image_bytes():
    image = np.zeros((4, 8, 3), np.uint8)
    tile = CachedTile(0, 0, 0, image, 5, 2)
    assert tile.nbytes >= image.nbytes


# -- the LRU store -----------------------------------------------------------
def test_result_cache_lru_eviction_under_byte_budget():
    cache = ResultCache(300)
    assert cache.put("tiles", "a", "A", 100)
    assert cache.put("tiles", "b", "B", 100)
    assert cache.put("tiles", "c", "C", 100)
    assert cache.get("tiles", "a") == "A"  # refresh a
    assert cache.put("tiles", "d", "D", 100)  # evicts b (LRU)
    assert cache.peek("tiles", "b") is False
    assert cache.get("tiles", "a") == "A"
    assert cache.get("tiles", "d") == "D"
    stats = cache.stats()
    assert stats["evictions"] == 1
    assert stats["size_bytes"] <= 300


def test_result_cache_rejects_oversize_entries():
    cache = ResultCache(100)
    assert cache.put("tiles", "small", "s", 50)
    assert not cache.put("tiles", "huge", "h", 101)
    assert cache.peek("tiles", "small")  # rejection evicted nothing
    assert cache.stats()["rejected"] == 1


def test_result_cache_put_replaces_existing_entry():
    cache = ResultCache(200)
    cache.put("tiles", "k", "one", 80)
    cache.put("tiles", "k", "two", 90)
    assert len(cache) == 1
    assert cache.get("tiles", "k") == "two"
    assert cache.stats()["size_bytes"] == 90


def test_result_cache_tiers_are_namespaced_and_counted():
    cache = ResultCache(1000)
    cache.put("triangles", "k", "tri", 10)
    cache.put("tiles", "k", "tile", 10)
    cache.put("negative", "k", "no", 10)
    assert cache.get("triangles", "k") == "tri"
    assert cache.get("tiles", "k") == "tile"
    assert cache.get("negative", "missing") is None
    stats = cache.stats()
    for tier in TIERS:
        assert tier in stats["by_tier"]
    assert stats["by_tier"]["triangles"]["hits"] == 1
    assert stats["by_tier"]["negative"]["misses"] == 1
    assert stats["bytes_saved"] == 20
    with pytest.raises(ConfigurationError, match="unknown cache tier"):
        cache.get("frames", "k")


def test_result_cache_clear_resets_contents_not_counters():
    cache = ResultCache(100)
    cache.put("tiles", "k", "v", 10)
    cache.get("tiles", "k")
    cache.clear()
    assert len(cache) == 0
    assert cache.stats()["hits"] == 1


def test_result_cache_validates_capacity():
    with pytest.raises(ConfigurationError):
        ResultCache(0)


# -- subgraph signatures -----------------------------------------------------
def test_subgraph_signature_stable_and_member_sensitive():
    app = _app()
    graph = app.graph("R-E-Ra-M")
    assert subgraph_signature(graph, ["E"]) == subgraph_signature(
        app.graph("R-E-Ra-M"), ["E"]
    )
    assert subgraph_signature(graph, ["E"]) != subgraph_signature(
        graph, ["R", "E"]
    )
    other = IsosurfaceApp(
        app.profile, app.storage, width=32, height=32, dataset=app.dataset
    )
    # The extract stage is size-independent: same signature, so a shared
    # cache serves triangle hits across image sizes.
    assert subgraph_signature(other.graph("R-E-Ra-M"), ["E"]) == (
        subgraph_signature(graph, ["E"])
    )


# -- certification contract --------------------------------------------------
def test_bind_cache_accepts_certified_extract_stage():
    app = _app()
    graph = app.graph("R-E-Ra-M")
    binding = bind_cache(graph, ["E"], ResultCache(1024))
    assert binding.members == ("E",)
    assert binding.certificate.ok
    assert binding.signature == subgraph_signature(graph, ["E"])


@pytest.mark.parametrize(
    "config,member", [("RE-Ra-M", "RE"), ("R-ERa-M", "ERa"), ("RERa-M", "RERa")]
)
def test_bind_cache_refuses_impure_fused_stages(config, member):
    graph = _app().graph(config)
    with pytest.raises(AnalysisError) as excinfo:
        bind_cache(graph, [member], ResultCache(1024))
    report = excinfo.value.report
    assert "E703" in report.rule_ids()
    assert "E706" in report.rule_ids()


def test_bind_cache_refuses_non_convex_subgraph():
    graph = _app().graph("R-E-Ra-M")
    with pytest.raises(AnalysisError) as excinfo:
        bind_cache(graph, ["R", "Ra"], ResultCache(1024))  # E straddles
    rules = excinfo.value.report.rule_ids()
    assert "E705" in rules or "E703" in rules
    assert "E706" in rules


def test_verify_cache_attachment_appends_e706_without_raising():
    graph = _app().graph("RERa-M")
    cert = verify_cache_attachment(graph, ["RERa"])
    assert not cert.ok
    assert "E706" in cert.report.rule_ids()
    diagnostic = cert.report.by_rule("E706")[0]
    assert "certify_memoisable" in diagnostic.message
