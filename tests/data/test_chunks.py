"""Tests for grid partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.chunks import partition_counts, partition_grid
from repro.errors import DataError


def test_partition_counts_exact_cube():
    assert partition_counts((65, 65, 65), 8) == (2, 2, 2)


def test_partition_counts_paper_1536():
    counts = partition_counts((209, 209, 209), 1536)
    cz, cy, cx = counts
    assert cz * cy * cx == 1536


def test_partition_counts_elongated_grid():
    cz, cy, cx = partition_counts((9, 65, 129), 16)
    assert cz * cy * cx == 16
    # More chunks along longer axes.
    assert cx >= cy >= cz


def test_partition_counts_impossible():
    with pytest.raises(DataError):
        partition_counts((3, 3, 3), 1000)
    with pytest.raises(DataError):
        partition_counts((5, 5, 5), 0)


def test_partition_grid_covers_all_cells():
    shape = (9, 9, 9)
    chunks = partition_grid(shape, (2, 2, 2), overlap=1)
    assert len(chunks) == 8
    covered = np.zeros(tuple(s - 1 for s in shape), dtype=int)
    for c in chunks:
        sl = tuple(slice(a, b - 1) for a, b in zip(c.start, c.stop))
        covered[sl] += 1
    # Every cell belongs to exactly one chunk's interior cell range.
    assert covered.min() == 1
    assert covered.max() == 1


def test_partition_grid_ids_and_indices():
    chunks = partition_grid((5, 5, 5), (2, 2, 1))
    assert [c.chunk_id for c in chunks] == list(range(4))
    assert chunks[0].index == (0, 0, 0)
    assert chunks[-1].index == (1, 1, 0)


def test_chunk_geometry():
    chunks = partition_grid((9, 9, 9), (2, 2, 2), overlap=1)
    first = chunks[0]
    assert first.start == (0, 0, 0)
    assert first.stop == (5, 5, 5)
    assert first.shape == (5, 5, 5)
    assert first.points == 125
    assert first.nbytes == 500
    sl = first.slices()
    assert sl == (slice(0, 5), slice(0, 5), slice(0, 5))


def test_partition_grid_without_overlap():
    chunks = partition_grid((9, 9, 9), (2, 2, 2), overlap=0)
    first = chunks[0]
    assert first.stop == (4, 4, 4)


def test_partition_grid_validation():
    with pytest.raises(DataError):
        partition_grid((9, 9), (2, 2, 2))  # bad shape
    with pytest.raises(DataError):
        partition_grid((9, 9, 9), (2, 2, 2), overlap=-1)
    with pytest.raises(DataError):
        partition_grid((9, 9, 9), (0, 2, 2))
    with pytest.raises(DataError):
        partition_grid((1, 9, 9), (1, 1, 1))  # extent < 2
    with pytest.raises(DataError):
        partition_grid((3, 9, 9), (5, 1, 1))  # more chunks than cells


@given(
    shape=st.tuples(*[st.integers(min_value=3, max_value=20)] * 3),
    counts=st.tuples(*[st.integers(min_value=1, max_value=3)] * 3),
)
@settings(max_examples=100, deadline=None)
def test_property_cell_cover(shape, counts):
    for s, c in zip(shape, counts):
        if c > s - 1:
            return  # invalid combination; rejected by the API
    chunks = partition_grid(shape, counts, overlap=1)
    covered = np.zeros(tuple(s - 1 for s in shape), dtype=int)
    for c in chunks:
        sl = tuple(slice(a, b - 1) for a, b in zip(c.start, c.stop))
        covered[sl] += 1
    assert covered.min() == 1 and covered.max() == 1
    # Chunk bytes are positive and ids unique.
    assert len({c.chunk_id for c in chunks}) == len(chunks)
    assert all(c.nbytes > 0 for c in chunks)
