"""Tests for the Hilbert curve, including hypothesis property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.hilbert import hilbert_index, hilbert_point, hilbert_sort_key
from repro.errors import DataError


def test_known_2d_order1():
    # Order-1 2D Hilbert curve visits (0,0),(0,1),(1,1),(1,0) (one of the
    # standard reflections); verify it is a bijection with unit steps.
    pts = [hilbert_point(i, 1, 2) for i in range(4)]
    assert len(set(pts)) == 4
    for a, b in zip(pts, pts[1:]):
        assert sum(abs(p - q) for p, q in zip(a, b)) == 1


def test_roundtrip_3d_order2():
    n = 4
    for x in range(n):
        for y in range(n):
            for z in range(n):
                i = hilbert_index((x, y, z), 2)
                assert hilbert_point(i, 2, 3) == (x, y, z)


def test_bijection_3d_order3():
    n = 8
    seen = {
        hilbert_index((x, y, z), 3)
        for x in range(n)
        for y in range(n)
        for z in range(n)
    }
    assert seen == set(range(n**3))


def test_adjacency_3d_order3():
    for i in range(8**3 - 1):
        a = hilbert_point(i, 3, 3)
        b = hilbert_point(i + 1, 3, 3)
        assert sum(abs(p - q) for p, q in zip(a, b)) == 1


def test_out_of_range_coordinate_rejected():
    with pytest.raises(DataError):
        hilbert_index((8, 0, 0), 3)
    with pytest.raises(DataError):
        hilbert_index((-1, 0), 3)


def test_out_of_range_index_rejected():
    with pytest.raises(DataError):
        hilbert_point(64, 1, 3)  # order 1, ndim 3 -> max index 7
    with pytest.raises(DataError):
        hilbert_point(-1, 2, 2)


def test_bad_order_rejected():
    with pytest.raises(DataError):
        hilbert_index((0, 0), 0)
    with pytest.raises(DataError):
        hilbert_point(0, 0, 2)


def test_sort_key():
    key = hilbert_sort_key(2)
    pts = [(x, y) for x in range(4) for y in range(4)]
    ordered = sorted(pts, key=key)
    for a, b in zip(ordered, ordered[1:]):
        assert sum(abs(p - q) for p, q in zip(a, b)) == 1


@given(
    order=st.integers(min_value=1, max_value=6),
    ndim=st.integers(min_value=1, max_value=4),
    data=st.data(),
)
@settings(max_examples=150, deadline=None)
def test_property_roundtrip(order, ndim, data):
    coords = tuple(
        data.draw(st.integers(min_value=0, max_value=(1 << order) - 1))
        for _ in range(ndim)
    )
    index = hilbert_index(coords, order)
    assert 0 <= index < (1 << (order * ndim))
    assert hilbert_point(index, order, ndim) == coords


@given(
    order=st.integers(min_value=1, max_value=5),
    ndim=st.integers(min_value=2, max_value=3),
    data=st.data(),
)
@settings(max_examples=100, deadline=None)
def test_property_unit_steps(order, ndim, data):
    top = (1 << (order * ndim)) - 2
    i = data.draw(st.integers(min_value=0, max_value=top))
    a = hilbert_point(i, order, ndim)
    b = hilbert_point(i + 1, order, ndim)
    assert sum(abs(p - q) for p, q in zip(a, b)) == 1
