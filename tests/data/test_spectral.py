"""Tests for the spectral (turbulence-like) dataset generator."""

import numpy as np
import pytest

from repro.data.chunks import partition_grid
from repro.data.spectral import SpectralDataset
from repro.errors import DataError
from repro.viz.marching_cubes import extract_triangles


def small():
    return SpectralDataset((16, 16, 16), timesteps=3, species=2, seed=4)


def test_field_shape_and_normalisation():
    f = small().field(0, 0)
    assert f.shape == (16, 16, 16)
    assert f.dtype == np.float32
    assert abs(float(f.mean())) < 0.05
    assert float(f.std()) == pytest.approx(1.0, rel=1e-3)


def test_deterministic():
    a = SpectralDataset((16, 16, 16), seed=9).field(1, 0)
    b = SpectralDataset((16, 16, 16), seed=9).field(1, 0)
    np.testing.assert_array_equal(a, b)
    c = SpectralDataset((16, 16, 16), seed=10).field(1, 0)
    assert not np.array_equal(a, c)


def test_timesteps_advect_pattern():
    ds = small()
    f0, f1 = ds.field(0, 0), ds.field(1, 0)
    assert not np.array_equal(f0, f1)
    # Frozen advection preserves the value distribution (same std/extremes
    # up to interpolation): compare histograms loosely.
    assert float(f1.std()) == pytest.approx(float(f0.std()), rel=1e-3)


def test_species_independent():
    ds = small()
    assert not np.array_equal(ds.field(0, 0), ds.field(0, 1))


def test_chunk_field_matches_slices():
    ds = small()
    for chunk in partition_grid(ds.shape, (2, 2, 2)):
        np.testing.assert_array_equal(
            ds.chunk_field(chunk, 2, 1), ds.field(2, 1)[chunk.slices()]
        )


def test_isosurface_is_space_filling():
    # Spectral fields produce wrinkled surfaces spread through the volume —
    # unlike the plume generator's compact shells.  Check that active cubes
    # appear in every octant.
    ds = SpectralDataset((24, 24, 24), seed=7)
    tris = extract_triangles(ds.field(0, 0), 0.0)
    assert len(tris) > 1000
    centroids = tris.mean(axis=1)
    for axis in range(3):
        lo = (centroids[:, axis] < 11.5).sum()
        hi = (centroids[:, axis] > 11.5).sum()
        assert lo > 0.2 * hi and hi > 0.2 * lo


def test_smoothness_increases_with_slope():
    # Steeper spectra damp high frequencies -> smaller gradient magnitude.
    rough = SpectralDataset((24, 24, 24), slope=2.0, seed=3).field(0, 0)
    smooth = SpectralDataset((24, 24, 24), slope=6.0, seed=3).field(0, 0)

    def grad_power(f):
        g = np.gradient(f.astype(np.float64))
        return sum(float((gi**2).mean()) for gi in g)

    assert grad_power(smooth) < grad_power(rough)


def test_sizes():
    ds = SpectralDataset((8, 8, 8))
    assert ds.points_per_field == 512
    assert ds.bytes_per_field == 2048


def test_validation():
    with pytest.raises(DataError):
        SpectralDataset((2, 8, 8))
    with pytest.raises(DataError):
        SpectralDataset((8, 8, 8), timesteps=0)
    with pytest.raises(DataError):
        SpectralDataset((8, 8, 8), slope=0.0)
    ds = small()
    with pytest.raises(DataError):
        ds.field(99, 0)
    with pytest.raises(DataError):
        ds.field(0, 99)


def test_pipeline_renders_spectral_data():
    """The whole application stack accepts the second dataset family."""
    from repro.data import HostDisks, StorageMap
    from repro.engines import ThreadedEngine
    from repro.viz import IsosurfaceApp
    from repro.viz.profile import DatasetProfile

    ds = SpectralDataset((16, 16, 16), timesteps=1, seed=11)
    profile = DatasetProfile.measured("spectral", ds, 8, 4, isovalue=0.4)
    storage = StorageMap.balanced(profile.files, [HostDisks("h0")])
    app = IsosurfaceApp(
        profile, storage, width=48, height=48, algorithm="active",
        dataset=ds, isovalue=0.4,
    )
    metrics = ThreadedEngine(
        app.graph("RE-Ra-M"), app.placement("RE-Ra-M")
    ).run()
    assert metrics.result.active_pixels > 50
