"""Tests for Hilbert declustering and storage maps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.chunks import partition_grid
from repro.data.decluster import decluster
from repro.data.storage import HostDisks, StorageMap
from repro.errors import DataError


def chunks_8x8x8():
    return partition_grid((17, 17, 17), (4, 4, 4))


def test_decluster_partitions_all_chunks():
    chunks = chunks_8x8x8()
    files = decluster(chunks, 8)
    assert len(files) == 8
    all_ids = sorted(c.chunk_id for f in files for c in f.chunks)
    assert all_ids == [c.chunk_id for c in chunks]


def test_decluster_balanced_sizes():
    files = decluster(chunks_8x8x8(), 8)
    sizes = [len(f.chunks) for f in files]
    assert max(sizes) - min(sizes) <= 1


def test_decluster_spatial_spread():
    # Hilbert dealing: each file's chunks should be spread through space,
    # not clustered in one octant.  Check every file touches >= 3 distinct
    # z-layers of the 4^3 chunk grid.
    files = decluster(chunks_8x8x8(), 8)
    for f in files:
        z_layers = {c.index[0] for c in f.chunks}
        assert len(z_layers) >= 3


def test_decluster_validation():
    with pytest.raises(DataError):
        decluster([], 4)
    with pytest.raises(DataError):
        decluster(chunks_8x8x8(), 0)


def test_decluster_single_file():
    chunks = chunks_8x8x8()
    files = decluster(chunks, 1)
    assert len(files[0].chunks) == len(chunks)
    assert files[0].nbytes == sum(c.nbytes for c in chunks)


def test_balanced_storage_round_robin():
    files = decluster(chunks_8x8x8(), 8)
    targets = [HostDisks("a", 2), HostDisks("b", 2)]
    smap = StorageMap.balanced(files, targets)
    assert smap.total_files() == 8
    dist = smap.distribution()
    assert dist == {"a": 4, "b": 4}
    # Each disk gets 2 files.
    for host in ("a", "b"):
        disks = [d for _f, d in smap.files_on(host)]
        assert sorted(disks) == [0, 0, 1, 1]


def test_skew_moves_fraction():
    files = decluster(chunks_8x8x8(), 8)
    smap = StorageMap.balanced(files, [HostDisks("blue"), HostDisks("rogue")])
    assert smap.distribution() == {"blue": 4, "rogue": 4}
    skewed = smap.skew(["blue"], [HostDisks("rogue", 2)], fraction=0.5)
    assert skewed.distribution() == {"blue": 2, "rogue": 6}
    # Original map unchanged.
    assert smap.distribution() == {"blue": 4, "rogue": 4}


def test_skew_full_move():
    files = decluster(chunks_8x8x8(), 8)
    smap = StorageMap.balanced(files, [HostDisks("blue"), HostDisks("rogue")])
    skewed = smap.skew(["blue"], [HostDisks("rogue")], fraction=1.0)
    assert skewed.distribution() == {"rogue": 8}


def test_skew_validation():
    files = decluster(chunks_8x8x8(), 4)
    smap = StorageMap.balanced(files, [HostDisks("a")])
    with pytest.raises(DataError):
        smap.skew(["a"], [HostDisks("b")], fraction=1.5)
    with pytest.raises(DataError):
        smap.skew(["a"], [], fraction=0.5)


def test_location_lookup():
    files = decluster(chunks_8x8x8(), 4)
    smap = StorageMap.balanced(files, [HostDisks("a", 1), HostDisks("b", 1)])
    host, disk = smap.location(files[0].file_id)
    assert host in ("a", "b")
    with pytest.raises(DataError):
        smap.location(999)


def test_bytes_on_host():
    files = decluster(chunks_8x8x8(), 4)
    smap = StorageMap.balanced(files, [HostDisks("a")])
    assert smap.bytes_on("a") == sum(f.nbytes for f in files)
    assert smap.bytes_on("ghost") == 0


def test_host_disks_validation():
    with pytest.raises(DataError):
        HostDisks("h", 0)


@given(
    nfiles=st.integers(min_value=1, max_value=30),
    counts=st.tuples(*[st.integers(min_value=1, max_value=4)] * 3),
)
@settings(max_examples=60, deadline=None)
def test_property_decluster_is_partition(nfiles, counts):
    shape = tuple(max(3, c * 3) for c in counts)
    chunks = partition_grid(shape, counts)
    files = decluster(chunks, nfiles)
    ids = sorted(c.chunk_id for f in files for c in f.chunks)
    assert ids == sorted(c.chunk_id for c in chunks)
    sizes = [len(f.chunks) for f in files]
    assert max(sizes) - min(sizes) <= 1
