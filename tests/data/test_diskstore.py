"""Tests for the on-disk declustered store."""

import numpy as np
import pytest

from repro.data import DeclusteredStore, HostDisks, ParSSimDataset, StorageMap
from repro.errors import DataError
from repro.viz.profile import DatasetProfile


@pytest.fixture(scope="module")
def source():
    dataset = ParSSimDataset((17, 17, 17), timesteps=2, species=2, seed=8)
    profile = DatasetProfile.measured("disk", dataset, 8, 4, isovalue=0.35)
    return dataset, profile


def test_write_and_open_roundtrip(source, tmp_path):
    dataset, profile = source
    store = DeclusteredStore.write(dataset, profile, tmp_path / "s")
    reopened = DeclusteredStore.open(tmp_path / "s")
    assert reopened.shape == dataset.shape
    assert reopened.timesteps == 2
    assert reopened.species == 2
    for t in range(2):
        for sp in range(2):
            for chunk in profile.chunks:
                np.testing.assert_array_equal(
                    reopened.chunk_field(chunk, t, sp),
                    dataset.chunk_field(chunk, t, sp),
                )
    assert store.total_bytes() == reopened.total_bytes() > 0


def test_full_field_reassembly(source, tmp_path):
    dataset, profile = source
    store = DeclusteredStore.write(dataset, profile, tmp_path / "f")
    np.testing.assert_array_equal(store.field(1, 0), dataset.field(1, 0))


def test_file_count_matches_declustering(source, tmp_path):
    dataset, profile = source
    DeclusteredStore.write(dataset, profile, tmp_path / "c")
    bins = list((tmp_path / "c").glob("*.bin"))
    # files x timesteps x species
    assert len(bins) == len(profile.files) * 2 * 2


def test_open_missing_manifest(tmp_path):
    with pytest.raises(DataError, match="manifest"):
        DeclusteredStore.open(tmp_path)


def test_bad_version_rejected(source, tmp_path):
    import json

    dataset, profile = source
    DeclusteredStore.write(dataset, profile, tmp_path / "v")
    manifest = json.loads((tmp_path / "v" / "manifest.json").read_text())
    manifest["version"] = 99
    (tmp_path / "v" / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(DataError, match="version"):
        DeclusteredStore.open(tmp_path / "v")


def test_range_checks(source, tmp_path):
    dataset, profile = source
    store = DeclusteredStore.write(dataset, profile, tmp_path / "r")
    chunk = profile.chunks[0]
    with pytest.raises(DataError):
        store.chunk_field(chunk, 9, 0)
    with pytest.raises(DataError):
        store.chunk_field(chunk, 0, 9)
    bogus = type(chunk)(999, (0, 0, 0), (0, 0, 0), (2, 2, 2))
    with pytest.raises(DataError, match="unknown chunk"):
        store.chunk_field(bogus, 0, 0)


def test_pipeline_renders_from_disk(source, tmp_path):
    """The threaded Read filter streams chunks from real files and the
    image matches the in-memory render exactly."""
    from repro.engines import ThreadedEngine
    from repro.viz import IsosurfaceApp

    dataset, profile = source
    store = DeclusteredStore.write(dataset, profile, tmp_path / "p")
    storage = StorageMap.balanced(profile.files, [HostDisks("h0")])

    def render(src):
        app = IsosurfaceApp(
            profile, storage, width=48, height=48, algorithm="active",
            dataset=src, isovalue=0.35,
        )
        return ThreadedEngine(
            app.graph("R-E-Ra-M"), app.placement("R-E-Ra-M")
        ).run().result.image

    np.testing.assert_array_equal(render(store), render(dataset))


def test_subset_write(source, tmp_path):
    dataset, profile = source
    store = DeclusteredStore.write(
        dataset, profile, tmp_path / "sub", timesteps=[1], species=[0]
    )
    assert store.timesteps == 1 and store.species == 1
    np.testing.assert_array_equal(
        store.chunk_field(profile.chunks[0], 0, 0),
        dataset.chunk_field(profile.chunks[0], 1, 0),
    )
    with pytest.raises(DataError):
        DeclusteredStore.write(dataset, profile, tmp_path / "e", timesteps=[])
