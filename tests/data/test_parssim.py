"""Tests for the synthetic ParSSim-like dataset generator."""

import numpy as np
import pytest

from repro.data.chunks import partition_grid
from repro.data.parssim import ParSSimDataset
from repro.errors import DataError


def small():
    return ParSSimDataset((17, 17, 17), timesteps=4, species=2, seed=42)


def test_field_shape_and_dtype():
    ds = small()
    f = ds.field(0, 0)
    assert f.shape == (17, 17, 17)
    assert f.dtype == np.float32


def test_values_positive_and_bounded():
    ds = small()
    f = ds.field(1, 1)
    assert f.min() >= 0.0
    assert f.max() < 10.0
    assert f.max() > 0.01  # plumes actually present


def test_deterministic_given_seed():
    a = ParSSimDataset((9, 9, 9), seed=7).field(3, 2)
    b = ParSSimDataset((9, 9, 9), seed=7).field(3, 2)
    np.testing.assert_array_equal(a, b)


def test_different_seeds_differ():
    a = ParSSimDataset((9, 9, 9), seed=1).field(0, 0)
    b = ParSSimDataset((9, 9, 9), seed=2).field(0, 0)
    assert not np.array_equal(a, b)


def test_field_evolves_over_time():
    ds = small()
    assert not np.array_equal(ds.field(0, 0), ds.field(3, 0))


def test_species_differ():
    ds = small()
    assert not np.array_equal(ds.field(0, 0), ds.field(0, 1))


def test_chunk_field_matches_full_field_slice():
    ds = small()
    chunks = partition_grid(ds.shape, (2, 2, 2), overlap=1)
    full = ds.field(2, 1)
    for chunk in chunks:
        sub = ds.chunk_field(chunk, 2, 1)
        np.testing.assert_array_equal(sub, full[chunk.slices()])


def test_size_accounting():
    ds = ParSSimDataset((10, 10, 10), timesteps=3, species=2)
    assert ds.points_per_field == 1000
    assert ds.bytes_per_field == 4000
    assert ds.total_bytes == 4000 * 3 * 2


def test_bad_arguments():
    with pytest.raises(DataError):
        ParSSimDataset((1, 10, 10))
    with pytest.raises(DataError):
        ParSSimDataset((10, 10, 10), timesteps=0)
    ds = small()
    with pytest.raises(DataError):
        ds.field(99, 0)
    with pytest.raises(DataError):
        ds.field(0, 99)


def test_mass_roughly_conserved_over_time():
    # Dispersion spreads plumes but total mass (field integral) should stay
    # within a factor ~2 across the stored window (plumes may partially
    # advect out of the domain).
    ds = ParSSimDataset((33, 33, 33), timesteps=8, seed=3)
    m0 = float(ds.field(0, 0).sum())
    m7 = float(ds.field(7, 0).sum())
    assert 0.3 * m0 < m7 < 2.0 * m0
