"""Tests for the automatic placement advisor."""

import pytest

from repro.data import HostDisks, StorageMap
from repro.engines import SimulatedEngine
from repro.errors import PlacementError
from repro.planner import auto_place, estimate_filter_seconds
from repro.sim import Environment, umd_testbed
from repro.viz import IsosurfaceApp
from repro.viz.profile import dataset_25gb


def setup(algorithm="active", width=2048, nodes=4):
    profile = dataset_25gb(scale=0.02)
    env = Environment()
    cluster = umd_testbed(
        env, red_nodes=0, blue_nodes=nodes, rogue_nodes=0, deathstar=False
    )
    names = [f"blue{i}" for i in range(nodes)]
    storage = StorageMap.balanced(profile.files, [HostDisks(h, 2) for h in names])
    app = IsosurfaceApp(
        profile, storage, width=width, height=width, algorithm=algorithm
    )
    return app, cluster, names


def test_estimates_raster_dominates():
    app, _cluster, _names = setup()
    est = estimate_filter_seconds(app, "RE-Ra-M")
    assert est["Ra"] > est["RE"]
    assert est["Ra"] > est["M"]


def test_estimates_composed_filters_sum():
    app, _c, _n = setup()
    four = estimate_filter_seconds(app, "R-E-Ra-M")
    re = estimate_filter_seconds(app, "RE-Ra-M")
    assert re["RE"] == pytest.approx(four["R"] + four["E"])
    rera = estimate_filter_seconds(app, "RERa-M")
    assert rera["RERa"] == pytest.approx(four["R"] + four["E"] + four["Ra"])


def test_auto_place_structure():
    app, cluster, names = setup()
    advice = auto_place(app, "RE-Ra-M", cluster)
    p = advice.placement
    assert advice.bottleneck == "Ra"
    # Sources: one copy per disk (Blue nodes have 2).
    for cs in p.copysets("RE"):
        assert cs.copies == 2
    # Bottleneck: one copy per core (Blue nodes are 2-way).
    for cs in p.copysets("Ra"):
        assert cs.copies == cluster.host(cs.host).cores
    # Single merge on one host.
    assert p.total_copies("M") == 1
    assert advice.merge_host in names


def test_auto_place_runs_and_beats_naive():
    app, cluster, names = setup()
    advice = auto_place(app, "RE-Ra-M", cluster)
    auto_time = SimulatedEngine(
        cluster, app.graph("RE-Ra-M"), advice.placement, policy="DD"
    ).run().makespan

    app2, cluster2, names2 = setup()
    naive = app2.placement("RE-Ra-M", compute_hosts=names2)
    naive_time = SimulatedEngine(
        cluster2, app2.graph("RE-Ra-M"), naive, policy="DD"
    ).run().makespan
    assert auto_time <= naive_time * 1.05


def test_auto_place_memory_shedding_on_small_nodes():
    # Rogue nodes: 128 MB, 1 core -- but force z-buffer at 2048^2 with an
    # 8-way pretend host by using the rogue cluster and checking notes.
    profile = dataset_25gb(scale=0.02)
    env = Environment()
    cluster = umd_testbed(
        env, red_nodes=0, blue_nodes=0, rogue_nodes=4, deathstar=True
    )
    names = [f"rogue{i}" for i in range(4)]
    storage = StorageMap.balanced(profile.files, [HostDisks(h, 2) for h in names])
    app = IsosurfaceApp(
        profile, storage, width=2048, height=2048, algorithm="zbuffer"
    )
    advice = auto_place(
        app, "RE-Ra-M", cluster, compute_hosts=names + ["deathstar0"]
    )
    # Deathstar has 8 cores -> 8 z-buffer copies = 256 MB < 4 GB: fine.
    # Any oversubscribed rogue host must have been shed to fit or noted.
    engine = SimulatedEngine(cluster, app.graph("RE-Ra-M"), advice.placement)
    over = engine.oversubscribed_hosts()
    for host in over:
        # Only hosts already at one copy may remain flagged.
        copies = {
            cs.host: cs.copies for cs in advice.placement.copysets("Ra")
        }
        assert copies.get(host, 1) == 1


def test_auto_place_rejects_unknown_data_host():
    app, cluster, _names = setup()
    bad_storage = StorageMap.balanced(
        app.profile.files, [HostDisks("ghost", 1)]
    )
    bad_app = IsosurfaceApp(app.profile, bad_storage)
    with pytest.raises(PlacementError, match="unknown host"):
        auto_place(bad_app, "RE-Ra-M", cluster)


def test_auto_place_r_era_m_bottleneck_is_era():
    app, cluster, _names = setup()
    advice = auto_place(app, "R-ERa-M", cluster)
    assert advice.bottleneck == "ERa"
    assert advice.placement.total_copies("ERa") > advice.placement.total_copies("R") / 2
