"""End-to-end isosurface rendering through both engines.

The paper's correctness requirement: "the final output is consistent
regardless of how many copies of various filters are instantiated" —
checked here across configurations, algorithms, copy counts and policies.
"""

import numpy as np
import pytest

from repro.data import HostDisks, ParSSimDataset, StorageMap
from repro.engines import SimulatedEngine, ThreadedEngine
from repro.errors import ConfigurationError
from repro.sim import Environment, homogeneous_cluster
from repro.viz import CONFIGURATIONS, IsosurfaceApp
from repro.viz.profile import DatasetProfile


@pytest.fixture(scope="module")
def scenario():
    dataset = ParSSimDataset((17, 17, 17), timesteps=2, species=1, seed=5)
    isovalue = 0.35
    profile = DatasetProfile.measured(
        "tiny", dataset, nchunks=8, nfiles=4, isovalue=isovalue
    )
    return dataset, profile, isovalue


def make_app(scenario, algorithm, hosts, **kw):
    dataset, profile, isovalue = scenario
    storage = StorageMap.balanced(profile.files, [HostDisks(h) for h in hosts])
    return IsosurfaceApp(
        profile,
        storage,
        width=48,
        height=48,
        algorithm=algorithm,
        dataset=dataset,
        isovalue=isovalue,
        **kw,
    )


def render(scenario, algorithm, configuration, hosts=("h0",), copies=1, policy="RR"):
    app = make_app(scenario, algorithm, hosts)
    graph = app.graph(configuration)
    placement = app.placement(
        configuration, compute_hosts=list(hosts), copies_per_host=copies
    )
    metrics = ThreadedEngine(graph, placement, policy=policy).run()
    return metrics


def test_reference_image_nonempty(scenario):
    result = render(scenario, "zbuffer", "R-E-Ra-M").result
    assert result.image.shape == (48, 48, 3)
    assert result.active_pixels > 20
    assert result.image.max() > 0


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
def test_all_configurations_agree_zbuffer(scenario, configuration):
    ref = render(scenario, "zbuffer", "R-E-Ra-M").result
    out = render(scenario, "zbuffer", configuration).result
    np.testing.assert_array_equal(out.image, ref.image)


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
def test_all_configurations_agree_active(scenario, configuration):
    ref = render(scenario, "zbuffer", "R-E-Ra-M").result
    out = render(scenario, "active", configuration).result
    np.testing.assert_array_equal(out.image, ref.image)


def test_transparent_copies_preserve_image(scenario):
    ref = render(scenario, "active", "RE-Ra-M").result
    out = render(
        scenario, "active", "RE-Ra-M", hosts=("h0", "h1"), copies=2, policy="DD"
    ).result
    np.testing.assert_array_equal(out.image, ref.image)


def test_policies_preserve_image(scenario):
    ref = render(scenario, "zbuffer", "R-E-Ra-M").result
    for policy in ("RR", "WRR", "DD"):
        out = render(
            scenario, "zbuffer", "R-E-Ra-M", hosts=("h0", "h1"), copies=2,
            policy=policy,
        ).result
        np.testing.assert_array_equal(out.image, ref.image)


def test_zbuffer_ships_more_bytes_than_active(scenario):
    zb = render(scenario, "zbuffer", "RE-Ra-M")
    ap = render(scenario, "active", "RE-Ra-M")
    _, zb_bytes = zb.stream_totals("Ra->M")
    ap_buffers, ap_bytes = ap.stream_totals("Ra->M")
    assert zb_bytes == 48 * 48 * 8  # the full z-buffer
    assert ap_bytes < zb_bytes
    assert ap_buffers >= 1


def test_timestep_changes_image(scenario):
    dataset, profile, isovalue = scenario
    storage = StorageMap.balanced(profile.files, [HostDisks("h0")])
    imgs = []
    for t in range(2):
        app = IsosurfaceApp(
            profile, storage, width=48, height=48, algorithm="zbuffer",
            dataset=dataset, isovalue=isovalue, timestep=t,
        )
        g = app.graph("RE-Ra-M")
        p = app.placement("RE-Ra-M")
        imgs.append(ThreadedEngine(g, p).run().result.image)
    assert not np.array_equal(imgs[0], imgs[1])


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
@pytest.mark.parametrize("algorithm", ["zbuffer", "active"])
def test_simulated_engine_runs_all_configs(scenario, configuration, algorithm):
    _dataset, profile, _iso = scenario
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=3)
    storage = StorageMap.balanced(
        profile.files, [HostDisks("node0", 2), HostDisks("node1", 2)]
    )
    app = IsosurfaceApp(profile, storage, width=64, height=64, algorithm=algorithm)
    graph = app.graph(configuration)
    placement = app.placement(configuration, merge_host="node2")
    metrics = SimulatedEngine(cluster, graph, placement, policy="DD").run()
    assert metrics.makespan > 0
    result = metrics.result
    assert result["algorithm"] == algorithm
    assert result["buffers"] > 0


def test_sim_buffer_conservation(scenario):
    # Buffers delivered to merge == buffers merge consumed; triangle bytes
    # on E->Ra match the profile's totals.
    from repro.viz.filters import TRIANGLE_BYTES

    _dataset, profile, _iso = scenario
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=2)
    storage = StorageMap.balanced(profile.files, [HostDisks("node0", 2)])
    app = IsosurfaceApp(profile, storage, width=64, height=64, algorithm="active")
    graph = app.graph("R-E-Ra-M")
    placement = app.placement("R-E-Ra-M", compute_hosts=["node1"])
    metrics = SimulatedEngine(cluster, graph, placement, policy="RR").run()
    _, tri_bytes = metrics.stream_totals("E->Ra")
    assert tri_bytes == profile.total_triangles(0) * TRIANGLE_BYTES
    buffers_to_merge, _ = metrics.stream_totals("Ra->M")
    assert metrics.result["buffers"] == buffers_to_merge


def test_app_validation(scenario):
    dataset, profile, isovalue = scenario
    storage = StorageMap.balanced(profile.files, [HostDisks("h0")])
    with pytest.raises(ConfigurationError):
        IsosurfaceApp(profile, storage, algorithm="wrong")
    with pytest.raises(ConfigurationError):
        IsosurfaceApp(profile, storage, timestep=99)
    app = IsosurfaceApp(profile, storage)
    with pytest.raises(ConfigurationError):
        app.graph("X-Y-Z")
    # Simulation-only app refuses to build real factories lazily at run.
    g = app.graph("RE-Ra-M")
    assert g.filters["RE"].factory is None


# -- distributed tile framebuffer (merge_copies > 1) -------------------------


def render_tiled(scenario, algorithm, configuration, merge_copies,
                 hosts=("h0", "h1"), copies=1, policy="DD", engine_cls=None,
                 merge_tiles=None):
    app = make_app(
        scenario, algorithm, hosts,
        merge_copies=merge_copies, merge_tiles=merge_tiles,
    )
    graph = app.graph(configuration)
    placement = app.placement(
        configuration, compute_hosts=list(hosts), copies_per_host=copies
    )
    engine_cls = engine_cls or ThreadedEngine
    return engine_cls(
        graph, placement, policy=policy,
        policy_overrides=app.policy_overrides(configuration),
    ).run()


@pytest.mark.parametrize("policy", ["RR", "WRR", "DD"])
@pytest.mark.parametrize("algorithm", ["zbuffer", "active"])
def test_tiled_merge_bit_exact_across_policies(scenario, policy, algorithm):
    ref = render(scenario, algorithm, "RE-Ra-M").result
    out = render_tiled(
        scenario, algorithm, "RE-Ra-M", merge_copies=2, copies=2,
        policy=policy,
    ).result
    np.testing.assert_array_equal(out.image, ref.image)
    assert out.active_pixels == ref.active_pixels


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
def test_tiled_merge_all_configurations(scenario, configuration):
    ref = render(scenario, "active", configuration).result
    out = render_tiled(
        scenario, "active", configuration, merge_copies=3, merge_tiles=6
    ).result
    np.testing.assert_array_equal(out.image, ref.image)
    assert out.active_pixels == ref.active_pixels


@pytest.mark.parametrize("algorithm", ["zbuffer", "active"])
def test_tiled_merge_process_engine(scenario, algorithm):
    from repro.engines.process import ProcessEngine

    ref = render(scenario, algorithm, "RE-Ra-M").result
    out = render_tiled(
        scenario, algorithm, "RE-Ra-M", merge_copies=2,
        engine_cls=ProcessEngine,
    ).result
    np.testing.assert_array_equal(out.image, ref.image)
    assert out.active_pixels == ref.active_pixels


def test_tiled_merge_simulated_engine(scenario):
    _dataset, profile, _iso = scenario
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=6)
    storage = StorageMap.balanced(
        profile.files, [HostDisks("node0", 2), HostDisks("node1", 2)]
    )
    app = IsosurfaceApp(
        profile, storage, width=64, height=64, algorithm="active",
        merge_copies=2, merge_tiles=4,
    )
    graph = app.graph("RE-Ra-M")
    placement = app.placement(
        "RE-Ra-M",
        merge_host="node2",
        merge_hosts=["node3", "node4"],
    )
    metrics = SimulatedEngine(
        cluster, graph, placement, policy="DD",
        policy_overrides=app.policy_overrides("RE-Ra-M"),
    ).run()
    assert metrics.makespan > 0
    # The gather's result is shape-compatible with the single merge's.
    result = metrics.result
    assert result["algorithm"] == "active"
    assert result["buffers"] == 4  # one composited buffer per tile


def test_merge_copies_validation(scenario):
    dataset, profile, isovalue = scenario
    storage = StorageMap.balanced(profile.files, [HostDisks("h0")])
    with pytest.raises(ConfigurationError, match="merge_copies"):
        IsosurfaceApp(profile, storage, merge_copies=0)
    with pytest.raises(ConfigurationError, match="merge_tiles"):
        IsosurfaceApp(profile, storage, merge_copies=2, merge_tiles=1)
    # merge_tiles without tiling is meaningless but harmless at 1 copy.
    app = IsosurfaceApp(profile, storage, merge_copies=1)
    assert app.tile_map() is None
    assert app.policy_overrides("RE-Ra-M") == {}


def test_merge_hosts_must_match_copies(scenario):
    app = make_app(scenario, "active", ("h0", "h1"), merge_copies=2)
    with pytest.raises(ConfigurationError, match="merge_hosts"):
        app.placement("RE-Ra-M", merge_hosts=["h0"])
