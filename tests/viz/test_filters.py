"""Unit tests for the real isosurface filters (outside the engines)."""

import numpy as np
import pytest

from repro.core.buffer import DataBuffer
from repro.core.filter import FilterContext
from repro.data import HostDisks, ParSSimDataset, StorageMap
from repro.errors import DataError
from repro.viz.camera import Camera
from repro.viz.filters import (
    TRIANGLE_BYTES,
    ChunkPayload,
    ExtractFilter,
    ExtractRasterFilter,
    MergeAPFilter,
    MergeZFilter,
    RasterAPFilter,
    RasterZFilter,
    ReadFilter,
    TrianglePayload,
)
from repro.viz.profile import DatasetProfile


class Collector:
    """A FilterContext capturing writes for direct filter testing."""

    def __init__(self, host="h0", copy_index=0, copies_on_host=1, total=1):
        self.written: list[tuple[str, DataBuffer]] = []
        self.ctx = FilterContext(
            filter_name="test",
            host=host,
            copy_index=copy_index,
            copies_on_host=copies_on_host,
            total_copies=total,
            output_streams=["out"],
            write_fn=lambda stream, buf: self.written.append((stream, buf)),
        )


@pytest.fixture(scope="module")
def world():
    dataset = ParSSimDataset((17, 17, 17), timesteps=1, seed=3)
    iso = 0.35
    profile = DatasetProfile.measured("w", dataset, 8, 4, isovalue=iso)
    storage = StorageMap.balanced(profile.files, [HostDisks("h0")])
    return dataset, profile, storage, iso


def test_read_filter_emits_one_buffer_per_chunk(world):
    dataset, profile, storage, _iso = world
    col = Collector()
    ReadFilter(dataset, storage, timestep=0).flush(col.ctx)
    assert len(col.written) == len(profile.chunks)
    total_bytes = sum(buf.nbytes for _s, buf in col.written)
    assert total_bytes == sum(c.nbytes for c in profile.chunks)
    ids = sorted(buf.tags["chunk"] for _s, buf in col.written)
    assert ids == [c.chunk_id for c in profile.chunks]


def test_read_filter_copies_split_files(world):
    dataset, profile, storage, _iso = world
    chunks_seen = []
    for idx in range(2):
        col = Collector(copy_index=idx, copies_on_host=2, total=2)
        ReadFilter(dataset, storage, timestep=0).flush(col.ctx)
        chunks_seen.append({buf.tags["chunk"] for _s, buf in col.written})
    assert chunks_seen[0].isdisjoint(chunks_seen[1])
    assert len(chunks_seen[0] | chunks_seen[1]) == len(profile.chunks)


def test_read_filter_unknown_host_reads_nothing(world):
    dataset, _profile, storage, _iso = world
    col = Collector(host="ghost")
    ReadFilter(dataset, storage, timestep=0).flush(col.ctx)
    assert col.written == []


def test_extract_filter_counts_match_profile(world):
    dataset, profile, storage, iso = world
    read_col = Collector()
    ReadFilter(dataset, storage, timestep=0).flush(read_col.ctx)
    extract = ExtractFilter(iso)
    out_col = Collector()
    for _stream, buf in read_col.written:
        extract.handle(out_col.ctx, buf)
    total_tris = sum(
        len(b.payload.triangles) for _s, b in out_col.written
    )
    assert total_tris == profile.total_triangles(0)
    for _s, buf in out_col.written:
        assert buf.nbytes == len(buf.payload.triangles) * TRIANGLE_BYTES


def test_extract_filter_skips_empty_chunks():
    extract = ExtractFilter(isovalue=99.0)  # nothing crosses this level
    col = Collector()
    chunk_payload = ChunkPayload(
        chunk=None, scalars=np.zeros((4, 4, 4), dtype=np.float32)
    )
    # Build a fake chunk with start for origin computation.
    from repro.data.chunks import ChunkSpec

    chunk_payload = ChunkPayload(
        ChunkSpec(0, (0, 0, 0), (0, 0, 0), (4, 4, 4)),
        np.zeros((4, 4, 4), dtype=np.float32),
    )
    extract.handle(col.ctx, DataBuffer(256, chunk_payload))
    assert col.written == []


def test_raster_z_filter_flushes_full_zbuffer():
    cam = Camera(eye=(0, 0, 10), target=(0, 0, 0), up=(0, 1, 0),
                 width=16, height=16, view_width=4.0)
    raster = RasterZFilter(cam)
    col = Collector()
    raster.init(col.ctx)
    tri = np.array([[[-1, -1, 0], [1, -1, 0], [0, 1, 0]]], dtype=np.float32)
    raster.handle(col.ctx, DataBuffer(36, TrianglePayload(tri)))
    assert col.written == []  # z-buffer holds until EOW
    raster.flush(col.ctx)
    assert sum(b.nbytes for _s, b in col.written) == 16 * 16 * 8


def test_raster_ap_filter_streams_immediately():
    cam = Camera(eye=(0, 0, 10), target=(0, 0, 0), up=(0, 1, 0),
                 width=16, height=16, view_width=4.0)
    raster = RasterAPFilter(cam)
    col = Collector()
    raster.init(col.ctx)
    tri = np.array([[[-1, -1, 0], [1, -1, 0], [0, 1, 0]]], dtype=np.float32)
    raster.handle(col.ctx, DataBuffer(36, TrianglePayload(tri)))
    assert len(col.written) == 1  # WPA emitted per input buffer
    assert col.written[0][1].payload.entries > 0


def test_merge_filters_compose_images():
    cam = Camera(eye=(0, 0, 10), target=(0, 0, 0), up=(0, 1, 0),
                 width=16, height=16, view_width=4.0)
    tri = np.array([[[-1, -1, 0], [1, -1, 0], [0, 1, 0]]], dtype=np.float32)
    # z-buffer path
    rz = RasterZFilter(cam)
    cz = Collector()
    rz.init(cz.ctx)
    rz.handle(cz.ctx, DataBuffer(36, TrianglePayload(tri)))
    rz.flush(cz.ctx)
    mz = MergeZFilter(16, 16)
    mz.init(Collector().ctx)
    for _s, buf in cz.written:
        mz.handle(None, buf)
    rz_result = mz.result()
    # active-pixel path
    ra = RasterAPFilter(cam)
    ca = Collector()
    ra.init(ca.ctx)
    ra.handle(ca.ctx, DataBuffer(36, TrianglePayload(tri)))
    ma = MergeAPFilter(16, 16)
    ma.init(Collector().ctx)
    for _s, buf in ca.written:
        ma.handle(None, buf)
    ap_result = ma.result()
    np.testing.assert_array_equal(rz_result.image, ap_result.image)
    assert rz_result.active_pixels == ap_result.active_pixels > 0


def test_extract_raster_filter_validation():
    cam = Camera(eye=(0, 0, 10), target=(0, 0, 0), up=(0, 1, 0),
                 width=8, height=8)
    with pytest.raises(DataError):
        ExtractRasterFilter(0.5, cam, algorithm="bogus")


def test_merge_result_before_run_raises():
    from repro.errors import EngineError

    for merge in (MergeZFilter(8, 8), MergeAPFilter(8, 8)):
        with pytest.raises(EngineError, match="run the pipeline first"):
            merge.result()
