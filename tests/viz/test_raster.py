"""Tests for fragment generation, the z-buffer, and active-pixel rendering."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.viz.active_pixel import (
    WPA_ENTRY_BYTES,
    ActivePixelMerger,
    ActivePixelRaster,
)
from repro.viz.raster import ZBUFFER_ENTRY_BYTES, ZBuffer, triangle_fragments


def big_tri(depth=1.0):
    """A triangle covering the lower-left half of a 10x10 screen."""
    return np.array([[0.0, 0.0, depth], [10.0, 0.0, depth], [0.0, 10.0, depth]])


def test_fragments_cover_half_square():
    pix, depth = triangle_fragments(big_tri(), 10, 10)
    # Lower-left half of a 10x10 pixel grid at pixel centres; the inclusive
    # edge rule (w >= 0) also takes the 10 centres on the hypotenuse: 55.
    assert pix.size == 55
    np.testing.assert_allclose(depth, 1.0)


def test_fragments_interpolate_depth():
    tri = np.array([[0.0, 0.0, 1.0], [10.0, 0.0, 3.0], [0.0, 10.0, 5.0]])
    pix, depth = triangle_fragments(tri, 10, 10)
    assert depth.min() >= 1.0
    assert depth.max() <= 5.0
    # Depth at the corner-most fragment (0.5, 0.5) is close to vertex 0.
    corner = np.argmin(pix)
    assert depth[corner] == pytest.approx(1.0 + 0.05 * 2 + 0.05 * 4, abs=0.01)


def test_fragments_clip_to_viewport():
    tri = np.array([[-5.0, -5.0, 1.0], [15.0, -5.0, 1.0], [-5.0, 15.0, 1.0]])
    pix, _ = triangle_fragments(tri, 10, 10)
    assert pix.min() >= 0
    assert pix.max() < 100


def test_fragments_degenerate_triangle_empty():
    tri = np.array([[1.0, 1.0, 1.0], [2.0, 2.0, 1.0], [3.0, 3.0, 1.0]])
    pix, _ = triangle_fragments(tri, 10, 10)
    assert pix.size == 0


def test_fragments_behind_camera_dropped():
    pix, _ = triangle_fragments(big_tri(depth=-1.0), 10, 10)
    assert pix.size == 0


def test_fragments_fully_offscreen():
    tri = np.array([[20.0, 20.0, 1.0], [30.0, 20.0, 1.0], [20.0, 30.0, 1.0]])
    pix, _ = triangle_fragments(tri, 10, 10)
    assert pix.size == 0


def test_zbuffer_depth_test():
    zb = ZBuffer(10, 10)
    red = np.array([255, 0, 0], dtype=np.uint8)
    blue = np.array([0, 0, 255], dtype=np.uint8)
    zb.rasterize(big_tri(depth=5.0)[None], red[None])
    zb.rasterize(big_tri(depth=2.0)[None], blue[None])  # nearer wins
    img = zb.image()
    assert (img[2, 2] == blue).all()
    zb.rasterize(big_tri(depth=9.0)[None], red[None])  # farther loses
    assert (zb.image()[2, 2] == blue).all()


def test_zbuffer_merge_consistency():
    rng = np.random.default_rng(1)
    tris = rng.uniform(0, 10, size=(40, 3, 3))
    tris[:, :, 2] = rng.uniform(1, 5, size=(40, 3))
    colors = rng.integers(0, 255, size=(40, 3), dtype=np.uint8)
    # Render all in one buffer.
    whole = ZBuffer(10, 10)
    whole.rasterize(tris, colors)
    # Render split over 3 "copies" and merge.
    parts = [ZBuffer(10, 10) for _ in range(3)]
    for i in range(40):
        parts[i % 3].rasterize(tris[i : i + 1], colors[i : i + 1])
    merged = ZBuffer(10, 10)
    for part in parts:
        merged.merge(part)
    np.testing.assert_array_equal(whole.image(), merged.image())
    np.testing.assert_array_equal(whole.depth, merged.depth)


def test_zbuffer_slabs_roundtrip():
    rng = np.random.default_rng(2)
    tris = rng.uniform(0, 10, size=(10, 3, 3))
    tris[:, :, 2] = 2.0
    colors = rng.integers(0, 255, size=(10, 3), dtype=np.uint8)
    zb = ZBuffer(10, 10)
    zb.rasterize(tris, colors)
    slabs = zb.slabs(entries_per_buffer=16)
    assert len(slabs) == int(np.ceil(100 / 16))
    assert sum(s.nbytes for s in slabs) == 100 * ZBUFFER_ENTRY_BYTES
    rebuilt = ZBuffer(10, 10)
    for slab in slabs:
        rebuilt.merge_slab(slab)
    np.testing.assert_array_equal(rebuilt.image(), zb.image())


def test_zbuffer_total_bytes_formula():
    zb = ZBuffer(2048, 2048)
    assert zb.total_bytes == 2048 * 2048 * 8  # the paper's 32 MB


def test_zbuffer_validation():
    with pytest.raises(ConfigurationError):
        ZBuffer(0, 10)
    zb = ZBuffer(4, 4)
    with pytest.raises(ConfigurationError):
        zb.rasterize(big_tri()[None], np.zeros((2, 3), dtype=np.uint8))
    with pytest.raises(ConfigurationError):
        zb.merge(ZBuffer(5, 5))
    with pytest.raises(ConfigurationError):
        zb.slabs(0)


def test_active_pixel_equivalent_to_zbuffer():
    rng = np.random.default_rng(3)
    tris = rng.uniform(0, 20, size=(60, 3, 3))
    tris[:, :, 2] = rng.uniform(1, 5, size=(60, 3))
    colors = rng.integers(0, 255, size=(60, 3), dtype=np.uint8)
    zb = ZBuffer(20, 20)
    zb.rasterize(tris, colors)
    ap = ActivePixelRaster(20, 20, capacity_entries=37)
    merger = ActivePixelMerger(20, 20)
    for i in range(0, 60, 7):  # uneven input buffers
        for buf in ap.process(tris[i : i + 7], colors[i : i + 7]):
            merger.merge(buf)
    np.testing.assert_array_equal(merger.image(), zb.image())
    assert merger.active_pixels() == zb.active_pixels()


def test_active_pixel_emits_per_input_buffer():
    ap = ActivePixelRaster(10, 10, capacity_entries=1000)
    red = np.array([[255, 0, 0]], dtype=np.uint8)
    bufs = ap.process(big_tri(depth=1.0)[None], red)
    assert len(bufs) == 1  # partial emission at end of the input buffer
    assert bufs[0].entries == 55
    assert bufs[0].nbytes == 55 * WPA_ENTRY_BYTES
    # The WPA restarts: processing again re-emits the same pixels.
    bufs2 = ap.process(big_tri(depth=1.0)[None], red)
    assert bufs2[0].entries == 55


def test_active_pixel_full_buffer_emission():
    ap = ActivePixelRaster(10, 10, capacity_entries=10)
    red = np.array([[255, 0, 0]], dtype=np.uint8)
    bufs = ap.process(big_tri(depth=1.0)[None], red)
    # 55 entries at capacity 10 -> 5 full + 1 partial.
    assert [b.entries for b in bufs] == [10, 10, 10, 10, 10, 5]


def test_active_pixel_sparse_volume_advantage():
    # One small triangle: AP ships only its pixels, z-buffer ships all.
    ap = ActivePixelRaster(64, 64, capacity_entries=4096)
    tri = np.array([[1.0, 1.0, 1.0], [4.0, 1.0, 1.0], [1.0, 4.0, 1.0]])
    bufs = ap.process(tri[None], np.array([[1, 2, 3]], dtype=np.uint8))
    ap_bytes = sum(b.nbytes for b in bufs)
    zb = ZBuffer(64, 64)
    assert ap_bytes < zb.total_bytes / 100


def test_active_pixel_within_batch_dedup():
    # Two overlapping triangles in ONE input buffer: each covered pixel
    # appears once in the emission, with the nearer triangle's colour.
    ap = ActivePixelRaster(10, 10, capacity_entries=1000)
    tris = np.stack([big_tri(depth=5.0), big_tri(depth=2.0)])
    colors = np.array([[255, 0, 0], [0, 0, 255]], dtype=np.uint8)
    bufs = ap.process(tris, colors)
    assert len(bufs) == 1
    buf = bufs[0]
    assert buf.entries == 55  # no duplicates
    assert len(np.unique(buf.pixels)) == 55
    assert (buf.color == np.array([0, 0, 255])).all()
    np.testing.assert_allclose(buf.depth, 2.0)


def test_active_pixel_validation():
    with pytest.raises(ConfigurationError):
        ActivePixelRaster(0, 10)
    with pytest.raises(ConfigurationError):
        ActivePixelRaster(10, 10, capacity_entries=0)
    ap = ActivePixelRaster(10, 10)
    with pytest.raises(ConfigurationError):
        ap.process(big_tri()[None], np.zeros((2, 3), dtype=np.uint8))


def test_merger_counts():
    ap = ActivePixelRaster(10, 10, capacity_entries=20)
    merger = ActivePixelMerger(10, 10)
    red = np.array([[255, 0, 0]], dtype=np.uint8)
    for buf in ap.process(big_tri(depth=1.0)[None], red):
        merger.merge(buf)
    assert merger.buffers_merged == 3  # 55 entries at capacity 20
    assert merger.entries_merged == 55


from hypothesis import given, settings
from hypothesis import strategies as st


@given(seed=st.integers(min_value=0, max_value=10_000),
       batch=st.integers(min_value=1, max_value=13),
       capacity=st.integers(min_value=3, max_value=200))
@settings(max_examples=30, deadline=None)
def test_property_ap_equals_zbuffer(seed, batch, capacity):
    """For any triangle soup, batching and WPA capacity, the active-pixel
    path composites to exactly the z-buffer image."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 40))
    tris = rng.uniform(-2, 18, size=(n, 3, 3))
    tris[:, :, 2] = rng.uniform(0.5, 6.0, size=(n, 3))
    colors = rng.integers(0, 255, size=(n, 3), dtype=np.uint8)

    zb = ZBuffer(16, 16)
    zb.rasterize(tris, colors)

    ap = ActivePixelRaster(16, 16, capacity_entries=capacity)
    merger = ActivePixelMerger(16, 16)
    for i in range(0, n, batch):
        for buf in ap.process(tris[i : i + batch], colors[i : i + batch]):
            merger.merge(buf)
    np.testing.assert_array_equal(merger.image(), zb.image())
