"""Tests for isosurface extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DataError
from repro.viz.marching_cubes import (
    CORNER_OFFSETS,
    TRI_TABLE,
    extract_triangles,
    triangle_count,
)


def sphere_field(n=25, radius=0.7):
    g = np.linspace(-1, 1, n, dtype=np.float32)
    Z, Y, X = np.meshgrid(g, g, g, indexing="ij")
    return -np.sqrt(X**2 + Y**2 + Z**2), -radius  # inside where r < radius


def tri_area(tris):
    e1 = tris[:, 1] - tris[:, 0]
    e2 = tris[:, 2] - tris[:, 0]
    return 0.5 * np.linalg.norm(np.cross(e1, e2), axis=1).sum()


def test_table_structure():
    assert len(TRI_TABLE) == 256
    assert TRI_TABLE[0].shape[0] == 0
    assert TRI_TABLE[255].shape[0] == 0
    assert max(t.shape[0] for t in TRI_TABLE) <= 12
    # Complementary configs produce the same number of triangles.
    for cfg in range(256):
        assert TRI_TABLE[cfg].shape[0] == TRI_TABLE[255 - cfg].shape[0]


def test_table_edges_cross_the_surface():
    # Every stored edge pairs an inside corner with an outside corner.
    for cfg in range(256):
        inside = [(cfg >> c) & 1 for c in range(8)]
        for tri in TRI_TABLE[cfg]:
            for a, b in tri:
                assert inside[a] == 1 and inside[b] == 0


def test_corner_offsets():
    assert CORNER_OFFSETS.shape == (8, 3)
    assert CORNER_OFFSETS[0].tolist() == [0, 0, 0]
    assert CORNER_OFFSETS[7].tolist() == [1, 1, 1]


def test_empty_field_no_triangles():
    S = np.zeros((5, 5, 5), dtype=np.float32)
    assert len(extract_triangles(S, 0.5)) == 0
    assert triangle_count(S, 0.5) == 0


def test_full_field_no_triangles():
    S = np.ones((5, 5, 5), dtype=np.float32)
    assert len(extract_triangles(S, 0.5)) == 0


def test_planar_surface_exact():
    nz, ny, nx = 6, 5, 7
    S = np.broadcast_to(
        np.arange(nz, dtype=np.float32)[:, None, None], (nz, ny, nx)
    ).copy()
    tris = extract_triangles(S, 2.5)
    assert len(tris) > 0
    np.testing.assert_allclose(tris[:, :, 2], 2.5, atol=1e-6)
    assert tri_area(tris) == pytest.approx((nx - 1) * (ny - 1))


def test_planar_surface_offset_interpolation():
    # Plane at z = 2.25 (interpolated a quarter of the way up a cell).
    S = np.broadcast_to(
        np.arange(6, dtype=np.float32)[:, None, None], (6, 6, 6)
    ).copy()
    tris = extract_triangles(S, 2.25)
    np.testing.assert_allclose(tris[:, :, 2], 2.25, atol=1e-6)


def test_sphere_area_close_to_analytic():
    S, iso = sphere_field(n=33, radius=0.7)
    tris = extract_triangles(S, iso)
    r_grid = 0.7 / (2 / 32)  # radius in grid units
    expected = 4 * np.pi * r_grid**2
    assert tri_area(tris) == pytest.approx(expected, rel=0.01)


def test_triangle_count_matches_extraction():
    S, iso = sphere_field(n=17)
    assert triangle_count(S, iso) == len(extract_triangles(S, iso))


def test_origin_and_spacing_applied():
    S, iso = sphere_field(n=9)
    base = extract_triangles(S, iso)
    shifted = extract_triangles(S, iso, origin=(10.0, 20.0, 30.0))
    np.testing.assert_allclose(
        shifted, base + np.array([10.0, 20.0, 30.0]), atol=1e-4
    )
    scaled = extract_triangles(S, iso, spacing=(2.0, 2.0, 2.0))
    np.testing.assert_allclose(scaled, base * 2.0, atol=1e-4)


def test_chunked_extraction_matches_whole_grid():
    # Extract per overlapping chunk; triangle multiset must match the whole
    # grid's (the declustered pipeline invariant).
    from repro.data.chunks import partition_grid

    S, iso = sphere_field(n=17)
    whole = extract_triangles(S, iso)
    pieces = []
    for chunk in partition_grid(S.shape, (2, 2, 2), overlap=1):
        sub = S[chunk.slices()]
        origin = (
            float(chunk.start[2]),
            float(chunk.start[1]),
            float(chunk.start[0]),
        )
        t = extract_triangles(sub, iso, origin=origin)
        if len(t):
            pieces.append(t)
    combined = np.concatenate(pieces)
    assert len(combined) == len(whole)
    # Compare as sorted centroid sets.
    ca = np.sort(whole.mean(axis=1), axis=0)
    cb = np.sort(combined.mean(axis=1), axis=0)
    np.testing.assert_allclose(ca, cb, atol=1e-4)


def test_vertices_lie_within_active_cells():
    S, iso = sphere_field(n=13)
    tris = extract_triangles(S, iso)
    n = S.shape[0]
    assert tris.min() >= 0.0
    assert tris.max() <= n - 1


def test_small_grid_rejected():
    with pytest.raises(DataError):
        extract_triangles(np.zeros((1, 5, 5), dtype=np.float32), 0.5)
    with pytest.raises(DataError):
        extract_triangles(np.zeros((5, 5), dtype=np.float32), 0.5)


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None)
def test_property_watertight_closed_surfaces(seed):
    # Random smooth blob: the extracted surface of a field that is entirely
    # below iso at the grid boundary must be closed -> every boundary edge
    # of the triangle soup is shared by an even number of triangles.
    rng = np.random.default_rng(seed)
    n = 9
    g = np.linspace(-1, 1, n, dtype=np.float32)
    Z, Y, X = np.meshgrid(g, g, g, indexing="ij")
    cz, cy, cx = rng.uniform(-0.3, 0.3, size=3)
    r = rng.uniform(0.3, 0.6)
    S = r - np.sqrt((X - cx) ** 2 + (Y - cy) ** 2 + (Z - cz) ** 2)
    tris = extract_triangles(S, 0.0)
    if len(tris) == 0:
        return
    # Quantise vertices; count edge occurrences.
    q = np.round(tris * 4096).astype(np.int64)
    edges = {}
    for tri in q:
        for i in range(3):
            a = tuple(tri[i])
            b = tuple(tri[(i + 1) % 3])
            if a == b:
                continue  # degenerate edge; skip
            key = (min(a, b), max(a, b))
            edges[key] = edges.get(key, 0) + 1
    odd = [k for k, v in edges.items() if v % 2]
    assert not odd, f"{len(odd)} boundary edges on a closed surface"


def test_anisotropic_spacing():
    S, iso = sphere_field(n=9)
    base = extract_triangles(S, iso)
    stretched = extract_triangles(S, iso, spacing=(1.0, 2.0, 4.0))
    np.testing.assert_allclose(stretched[:, :, 0], base[:, :, 0], atol=1e-4)
    np.testing.assert_allclose(stretched[:, :, 1], base[:, :, 1] * 2.0, atol=1e-4)
    np.testing.assert_allclose(stretched[:, :, 2], base[:, :, 2] * 4.0, atol=1e-4)


def test_isovalue_monotonicity_on_sphere():
    # Smaller radius (higher iso on -r field) -> fewer triangles.
    S, _ = sphere_field(n=21, radius=0.7)
    big = triangle_count(S, -0.8)
    small = triangle_count(S, -0.3)
    assert small < big
