"""Unit and property tests for the distributed tile framebuffer.

The contract under test: routing raster output through per-tile merge
copies and pasting the composited tiles back together is *bit-exact*
against the single-merge baseline, for both hidden-surface-removal
algorithms, on any valid tile map.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buffer import DataBuffer
from repro.core.filter import FilterContext
from repro.core.tiles import TileMap
from repro.errors import EngineError
from repro.viz.active_pixel import WPABuffer
from repro.viz.raster import ZBuffer
from repro.viz.tiled import (
    TileGatherFilter,
    TileImage,
    TileMergeFilter,
    TileSlab,
    split_wpa,
    zbuffer_tile_slabs,
)


class Collector:
    """A FilterContext capturing writes for direct filter testing."""

    def __init__(self):
        self.written: list[DataBuffer] = []
        self.ctx = FilterContext(
            filter_name="test",
            host="h0",
            copy_index=0,
            copies_on_host=1,
            total_copies=1,
            output_streams=["out"],
            write_fn=lambda _stream, buf: self.written.append(buf),
        )


def soup_zbuffer(width, height, triangles, seed=0):
    """Rasterise a random-ish triangle soup into a fresh z-buffer."""
    rng = np.random.default_rng(seed)
    zbuf = ZBuffer(width, height)
    if triangles:
        tris = np.stack(
            [
                np.column_stack(
                    [
                        rng.uniform(-2, width + 2, 3),
                        rng.uniform(-2, height + 2, 3),
                        rng.uniform(0.1, 10.0, 3),
                    ]
                )
                for _ in range(triangles)
            ]
        )
        colors = rng.integers(1, 255, size=(triangles, 3), dtype=np.uint8)
        zbuf.rasterize(tris, colors)
    return zbuf


def run_tiled(zbufs, tile_map, algorithm, entries_per_buffer=64):
    """Producer-split -> per-owner TileMergeFilter -> TileGatherFilter."""
    # One merge copy per owner, routed exactly as TileRouted would.
    merges = []
    merge_cols = []
    for _owner in range(tile_map.n_owners):
        tm = TileMergeFilter(tile_map, algorithm)
        col = Collector()
        tm.init(col.ctx)
        merges.append(tm)
        merge_cols.append(col)
    for zbuf in zbufs:
        if algorithm == "zbuffer":
            parts = [
                (tile, slab, slab.nbytes)
                for tile, slab in zbuffer_tile_slabs(
                    zbuf, tile_map, entries_per_buffer
                )
            ]
        else:
            active = np.flatnonzero(np.isfinite(zbuf.depth))
            wpa = WPABuffer(
                active, zbuf.depth[active], zbuf.color[active]
            )
            parts = [
                (tile, sub, sub.nbytes) for tile, sub in split_wpa(wpa, tile_map)
            ]
        for tile, payload, nbytes in parts:
            buf = DataBuffer(
                max(nbytes, 1),
                payload,
                tags={"tile": tile.index, "tile_owner": tile.owner},
            )
            merges[tile.owner].handle(merge_cols[tile.owner].ctx, buf)
    gather = TileGatherFilter(tile_map.width, tile_map.height)
    gather_col = Collector()
    gather.init(gather_col.ctx)
    for tm, col in zip(merges, merge_cols):
        tm.flush(col.ctx)
        tm.finalize(col.ctx)
        for buf in col.written:
            gather.handle(gather_col.ctx, buf)
    gather.flush(gather_col.ctx)
    return gather.result()


def single_merge(zbufs, width, height):
    ref = ZBuffer(width, height)
    for zbuf in zbufs:
        ref.merge(zbuf)
    return ref


# -- producer-side splitting -------------------------------------------------


def test_zbuffer_tile_slabs_cover_each_tile_in_local_order():
    zbuf = soup_zbuffer(8, 6, triangles=5)
    tmap = TileMap.rows(8, 6, 3)
    per_tile: dict[int, list[TileSlab]] = {}
    for tile, slab in zbuffer_tile_slabs(zbuf, tmap, entries_per_buffer=7):
        assert len(slab.depth) <= 7
        per_tile.setdefault(tile.index, []).append(slab)
    assert set(per_tile) == {0, 1, 2}
    for tile in tmap.tiles:
        slabs = per_tile[tile.index]
        # Slabs are tile-local, contiguous, and cover every tile pixel.
        assert slabs[0].start == 0
        covered = sum(len(s.depth) for s in slabs)
        assert covered == tile.pixels
        depth = np.concatenate([s.depth for s in slabs])
        expected = zbuf.depth.reshape(6, 8)[
            tile.y0 : tile.y1, tile.x0 : tile.x1
        ].reshape(-1)
        np.testing.assert_array_equal(depth, expected)


def test_split_wpa_partitions_entries_with_global_pixels():
    tmap = TileMap.rows(4, 4, 2)
    wpa = WPABuffer(
        np.array([0, 5, 9, 15]),  # rows 0, 1, 2, 3
        np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32),
        np.full((4, 3), 7, dtype=np.uint8),
    )
    parts = split_wpa(wpa, tmap)
    assert [tile.index for tile, _sub in parts] == [0, 1]
    np.testing.assert_array_equal(parts[0][1].pixels, [0, 5])
    np.testing.assert_array_equal(parts[1][1].pixels, [9, 15])
    # Pixel indices stay global; the merge converts to tile-local.
    assert parts[1][1].pixels.min() >= 8


def test_split_wpa_drops_uncovered_entries():
    from repro.core.tiles import Tile

    half = TileMap(4, 4, [Tile(0, 0, 0, 4, 2, 0)])  # bottom half uncovered
    wpa = WPABuffer(
        np.array([0, 15]),
        np.array([1.0, 2.0], dtype=np.float32),
        np.zeros((2, 3), dtype=np.uint8),
    )
    parts = split_wpa(wpa, half)
    assert len(parts) == 1
    np.testing.assert_array_equal(parts[0][1].pixels, [0])


# -- merge / gather filters --------------------------------------------------


@pytest.mark.parametrize("algorithm", ["zbuffer", "active"])
def test_tiled_equals_single_merge(algorithm):
    zbufs = [soup_zbuffer(16, 12, 6, seed=s) for s in range(3)]
    ref = single_merge(zbufs, 16, 12)
    for tmap in (
        TileMap.rows(16, 12, 4, 2),
        TileMap.rows(16, 12, 5),  # non-divisible bands
        TileMap.grid(16, 12, 4, 3),
    ):
        out = run_tiled(zbufs, tmap, algorithm)
        np.testing.assert_array_equal(out.image, ref.image())
        assert out.active_pixels == ref.active_pixels()


def test_zero_fragment_tile_stays_background():
    # All fragments in the top row band; the other owners see nothing.
    zbuf = ZBuffer(8, 8)
    zbuf.merge_entries(
        np.array([0, 1]),
        np.array([1.0, 2.0], dtype=np.float32),
        np.full((2, 3), 9, dtype=np.uint8),
    )
    tmap = TileMap.rows(8, 8, 4)
    out = run_tiled([zbuf], tmap, "active")
    assert out.active_pixels == 2
    np.testing.assert_array_equal(out.image, zbuf.image())
    assert out.image[2:].max() == 0  # untouched tiles stay black


def test_merge_requires_tile_tag():
    tm = TileMergeFilter(TileMap.rows(4, 4, 2), "zbuffer")
    col = Collector()
    tm.init(col.ctx)
    slab = TileSlab(
        0, 0, np.zeros(1, dtype=np.float32), np.zeros((1, 3), dtype=np.uint8)
    )
    with pytest.raises(EngineError, match="'tile' tag"):
        tm.handle(col.ctx, DataBuffer(8, slab))


def test_merge_rejects_unknown_algorithm():
    from repro.errors import DataError

    with pytest.raises(DataError, match="algorithm"):
        TileMergeFilter(TileMap.rows(4, 4, 2), "painter")


def test_merge_emits_one_tile_image_per_seen_tile():
    tmap = TileMap.rows(4, 4, 2, 2)
    tm = TileMergeFilter(tmap, "active")
    col = Collector()
    tm.init(col.ctx)
    wpa = WPABuffer(
        np.array([0]),
        np.array([1.0], dtype=np.float32),
        np.full((1, 3), 5, dtype=np.uint8),
    )
    tm.handle(col.ctx, DataBuffer(8, wpa, tags={"tile": 0}))
    tm.handle(col.ctx, DataBuffer(8, wpa, tags={"tile": 0}))
    tm.flush(col.ctx)
    assert len(col.written) == 1
    payload = col.written[0].payload
    assert isinstance(payload, TileImage)
    assert payload.tile == 0
    assert payload.buffers_merged == 2
    assert payload.active_pixels == 1
    assert col.written[0].tags == {"tile": 0}


def test_gather_result_before_run_raises():
    gather = TileGatherFilter(4, 4)
    with pytest.raises(EngineError, match="run the pipeline first"):
        gather.result()
    col = Collector()
    gather.init(col.ctx)
    with pytest.raises(EngineError, match="run the pipeline first"):
        gather.result()  # init alone is not a completed run
    gather.flush(col.ctx)
    result = gather.result()
    assert result.image.shape == (4, 4, 3)
    assert result.active_pixels == 0


# -- the paper's consistency property, tiled edition -------------------------


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    triangles=st.integers(0, 8),
    rasters=st.integers(1, 3),
    n_tiles=st.integers(1, 9),
    data=st.data(),
)
def test_property_tiled_matches_single_merge(
    seed, triangles, rasters, n_tiles, data
):
    width, height = 13, 9
    n_tiles = min(n_tiles, height)
    owners = data.draw(st.integers(1, n_tiles))
    algorithm = data.draw(st.sampled_from(["zbuffer", "active"]))
    zbufs = [
        soup_zbuffer(width, height, triangles, seed=seed + i)
        for i in range(rasters)
    ]
    tmap = TileMap.rows(width, height, n_tiles, owners)
    ref = single_merge(zbufs, width, height)
    out = run_tiled(zbufs, tmap, algorithm, entries_per_buffer=17)
    np.testing.assert_array_equal(out.image, ref.image())
    assert out.active_pixels == ref.active_pixels()
