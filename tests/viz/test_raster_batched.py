"""The batched raster kernel must emit exactly the reference's fragments.

``rasterize_triangles`` bucket-processes whole triangle soups; the contract
is bit-identical (pixel, depth) fragments, in the reference's order, for
arbitrary input — including degenerate (zero-area), fully clipped,
behind-camera and shared-edge triangles, in both float32 and float64.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.viz.raster import ZBuffer, rasterize_triangles, triangle_fragments

WIDTH, HEIGHT = 40, 32


def reference_fragments(tris):
    pix, dep, counts = [], [], []
    for tri in tris:
        p, d = triangle_fragments(tri, WIDTH, HEIGHT)
        pix.append(p)
        dep.append(d)
        counts.append(p.size)
    if not pix:
        return (
            np.empty(0, np.int64),
            np.empty(0, np.float64),
            np.zeros(0, np.int64),
        )
    return (
        np.concatenate(pix),
        np.concatenate(dep),
        np.array(counts, dtype=np.int64),
    )


def assert_matches_reference(tris):
    pix_b, dep_b, counts_b = rasterize_triangles(tris, WIDTH, HEIGHT)
    pix_r, dep_r, counts_r = reference_fragments(tris)
    np.testing.assert_array_equal(counts_b, counts_r)
    np.testing.assert_array_equal(pix_b, pix_r)
    # Bit-exact: the batched kernel replicates the reference's dtype paths.
    np.testing.assert_array_equal(dep_b, dep_r)


coord = st.floats(
    min_value=-60.0, max_value=100.0, allow_nan=False, allow_infinity=False,
    width=32,
)
depth_val = st.floats(
    min_value=-5.0, max_value=50.0, allow_nan=False, allow_infinity=False,
    width=32,
)
vertex = st.tuples(coord, coord, depth_val)
triangle = st.tuples(vertex, vertex, vertex)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(triangle, min_size=0, max_size=25),
    st.sampled_from([np.float32, np.float64]),
)
def test_matches_reference_on_random_soups(tri_list, dtype):
    tris = np.array(tri_list, dtype=dtype).reshape(-1, 3, 3)
    assert_matches_reference(tris)


@settings(max_examples=30, deadline=None)
@given(st.lists(triangle, min_size=1, max_size=10), st.data())
def test_matches_reference_with_degenerates(tri_list, data):
    tris = np.array(tri_list, dtype=np.float32).reshape(-1, 3, 3)
    # Force degenerate cases in random slots: collapsed vertices (zero
    # area), collinear vertices, far off-viewport, behind the camera.
    for i in range(len(tris)):
        kind = data.draw(
            st.sampled_from(["keep", "collapse", "collinear", "off", "behind"])
        )
        if kind == "collapse":
            tris[i, 1] = tris[i, 0]
        elif kind == "collinear":
            tris[i, 2, :2] = 2 * tris[i, 1, :2] - tris[i, 0, :2]
        elif kind == "off":
            tris[i, :, :2] += 1e4
        elif kind == "behind":
            tris[i, :, 2] = -np.abs(tris[i, :, 2]) - 1.0
    assert_matches_reference(tris)


def test_empty_and_shape_validation():
    pix, dep, counts = rasterize_triangles(np.empty((0, 3, 3)), WIDTH, HEIGHT)
    assert pix.size == 0 and dep.size == 0 and counts.size == 0
    with pytest.raises(ConfigurationError, match="3, 3"):
        rasterize_triangles(np.zeros((4, 2, 3)), WIDTH, HEIGHT)


def test_extreme_coordinates_do_not_overflow():
    tris = np.array(
        [
            [[1e30, 1e30, 1.0], [1e30, -1e30, 1.0], [-1e30, 0.0, 1.0]],
            [[-1e30, -1e30, 1.0], [-1e30, -1e30, 1.0], [-1e30, -1e30, 1.0]],
            [[5.0, 5.0, 1.0], [20.0, 5.0, 1.0], [5.0, 20.0, 1.0]],
        ],
        dtype=np.float64,
    )
    assert_matches_reference(tris)


def test_shared_edge_fragments_identical():
    # Two triangles sharing an edge: fragments on the shared edge must come
    # out identically from both kernels (inclusive >= 0 test on both sides).
    quad = np.array(
        [
            [[4.0, 4.0, 1.0], [20.0, 4.0, 2.0], [4.0, 20.0, 3.0]],
            [[20.0, 4.0, 2.0], [20.0, 20.0, 4.0], [4.0, 20.0, 3.0]],
        ],
        dtype=np.float32,
    )
    assert_matches_reference(quad)


def test_chunked_groups_match_single_pass():
    # Many same-shape boxes force the group chunking path when max_cells is
    # tiny; results must not depend on the chunking.
    rng = np.random.default_rng(3)
    base = np.array(
        [[2.0, 2.0, 1.0], [10.0, 2.0, 2.0], [2.0, 10.0, 3.0]], dtype=np.float64
    )
    offsets = rng.integers(0, 20, size=(50, 1, 1)).astype(np.float64)
    tris = base[None, :, :] + offsets
    a = rasterize_triangles(tris, WIDTH, HEIGHT, max_cells=16)
    b = rasterize_triangles(tris, WIDTH, HEIGHT, max_cells=1 << 20)
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x, y)


def test_zbuffer_image_matches_sequential_loop():
    # The batched ZBuffer.rasterize reduction must reproduce the old
    # per-triangle loop on ordinary scenes.
    rng = np.random.default_rng(11)
    tris = (rng.random((80, 3, 3)) * np.array([WIDTH, HEIGHT, 5.0])).astype(
        np.float32
    )
    colors = rng.integers(1, 255, (len(tris), 3)).astype(np.uint8)

    batched = ZBuffer(WIDTH, HEIGHT)
    batched.rasterize(tris, colors)

    sequential = ZBuffer(WIDTH, HEIGHT)
    for tri, rgb in zip(tris, colors):
        pixels, depth = triangle_fragments(tri, WIDTH, HEIGHT)
        if pixels.size == 0:
            continue
        wins = depth < sequential.depth[pixels]
        if wins.any():
            won = pixels[wins]
            sequential.depth[won] = depth[wins]
            sequential.color[won] = rgb

    np.testing.assert_array_equal(batched.image(), sequential.image())
    np.testing.assert_array_equal(batched.depth, sequential.depth)
