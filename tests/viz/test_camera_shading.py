"""Tests for the camera transforms and shading."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.viz.camera import Camera
from repro.viz.shading import shade_triangles, triangle_normals


def front_camera(width=100, height=100, view_width=10.0):
    # Looking down -z at the origin from z=+10; x right, y up.
    return Camera(
        eye=(0, 0, 10),
        target=(0, 0, 0),
        up=(0, 1, 0),
        width=width,
        height=height,
        view_width=view_width,
    )


def test_center_projects_to_image_center():
    cam = front_camera()
    xy, depth = cam.project_points(np.array([[0.0, 0.0, 0.0]]))
    assert xy[0] == pytest.approx([50.0, 50.0])
    assert depth[0] == pytest.approx(10.0)


def test_axes_orientation():
    cam = front_camera()
    xy, _ = cam.project_points(np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]]))
    assert xy[0][0] > 50.0  # +x goes right
    assert xy[1][1] < 50.0  # +y goes up (smaller pixel row)


def test_depth_increases_away_from_camera():
    cam = front_camera()
    _, depth = cam.project_points(np.array([[0, 0, 5.0], [0, 0, -5.0]]))
    assert depth[0] < depth[1]


def test_ortho_scale():
    cam = front_camera(view_width=10.0)
    xy, _ = cam.project_points(np.array([[5.0, 0.0, 0.0]]))
    assert xy[0][0] == pytest.approx(100.0)  # right edge


def test_perspective_foreshortening():
    cam = Camera(
        eye=(0, 0, 10),
        target=(0, 0, 0),
        up=(0, 1, 0),
        width=100,
        height=100,
        projection="persp",
        fov_degrees=60.0,
    )
    near, _ = cam.project_points(np.array([[1.0, 0.0, 5.0]]))
    far, _ = cam.project_points(np.array([[1.0, 0.0, -5.0]]))
    # The same world offset spans fewer pixels farther away.
    assert abs(near[0][0] - 50) > abs(far[0][0] - 50)


def test_cull_behind_camera():
    cam = front_camera()
    tri = np.array([[[0, 0, 20.0], [1, 0, 20.0], [0, 1, 20.0]]])  # behind eye
    assert len(cam.project_triangles(tri)) == 0


def test_cull_offscreen():
    cam = front_camera(view_width=2.0)
    tri = np.array([[[100, 0, 0.0], [101, 0, 0.0], [100, 1, 0.0]]])
    assert len(cam.project_triangles(tri)) == 0


def test_project_and_cull_indices():
    cam = front_camera(view_width=2.0)
    tris = np.array(
        [
            [[0, 0, 0.0], [0.1, 0, 0.0], [0, 0.1, 0.0]],  # visible
            [[100, 0, 0.0], [101, 0, 0.0], [100, 1, 0.0]],  # offscreen
            [[0.2, 0.2, 0.0], [0.3, 0.2, 0.0], [0.2, 0.3, 0.0]],  # visible
        ]
    )
    screen, kept = cam.project_and_cull(tris)
    assert kept.tolist() == [0, 2]
    assert screen.shape == (2, 3, 3)


def test_empty_input():
    cam = front_camera()
    assert cam.project_triangles(np.empty((0, 3, 3))).shape == (0, 3, 3)
    screen, kept = cam.project_and_cull(np.empty((0, 3, 3)))
    assert screen.shape == (0, 3, 3) and kept.size == 0


def test_camera_validation():
    with pytest.raises(ConfigurationError):
        Camera(eye=(0, 0, 0), target=(0, 0, 0))
    with pytest.raises(ConfigurationError):
        Camera(eye=(0, 0, 1), target=(0, 0, 0), up=(0, 0, 1))  # parallel up
    with pytest.raises(ConfigurationError):
        Camera(eye=(0, 0, 1), target=(0, 0, 0), projection="weird")
    with pytest.raises(ConfigurationError):
        Camera(eye=(0, 0, 1), target=(0, 0, 0), width=0)


def test_fit_grid_sees_whole_grid():
    cam = Camera.fit_grid((9, 17, 33), width=64, height=64)
    corners = np.array(
        [
            [x, y, z]
            for x in (0, 32)
            for y in (0, 16)
            for z in (0, 8)
        ],
        dtype=np.float64,
    )
    xy, depth = cam.project_points(corners)
    assert (depth > 0).all()
    assert (xy >= 0).all()
    assert (xy[:, 0] <= 64).all() and (xy[:, 1] <= 64).all()


def test_normals_unit_length():
    tris = np.array(
        [
            [[0, 0, 0], [1, 0, 0], [0, 1, 0]],
            [[0, 0, 0], [0, 0, 2], [0, 3, 0]],
        ],
        dtype=np.float64,
    )
    n = triangle_normals(tris)
    np.testing.assert_allclose(np.linalg.norm(n, axis=1), 1.0)
    np.testing.assert_allclose(np.abs(n[0]), [0, 0, 1])
    np.testing.assert_allclose(np.abs(n[1]), [1, 0, 0])


def test_degenerate_normal_is_zero():
    tris = np.array([[[0, 0, 0], [1, 1, 1], [2, 2, 2]]], dtype=np.float64)
    np.testing.assert_allclose(triangle_normals(tris), 0.0)


def test_shading_brightness_order():
    # A triangle facing the light is brighter than a grazing one.
    facing = np.array([[[0, 0, 0], [1, 0, 0], [0, 1, 0]]], dtype=np.float64)
    grazing = np.array([[[0, 0, 0], [1, 0, 0], [0, 0, 1]]], dtype=np.float64)
    light = (0.0, 0.0, 1.0)
    bright = shade_triangles(facing, light_direction=light)
    dim = shade_triangles(grazing, light_direction=light)
    assert (bright[0].astype(int) > dim[0].astype(int)).all()


def test_shading_two_sided():
    tri = np.array([[[0, 0, 0], [1, 0, 0], [0, 1, 0]]], dtype=np.float64)
    flipped = tri[:, ::-1, :]
    light = (0.3, 0.2, 0.9)
    np.testing.assert_array_equal(
        shade_triangles(tri, light_direction=light),
        shade_triangles(flipped, light_direction=light),
    )


def test_shading_validation():
    tri = np.zeros((1, 3, 3))
    with pytest.raises(ConfigurationError):
        shade_triangles(tri, light_direction=(0, 0, 0))
    with pytest.raises(ConfigurationError):
        shade_triangles(tri, ambient=2.0)


def test_shading_range():
    rng = np.random.default_rng(0)
    tris = rng.uniform(-1, 1, size=(50, 3, 3))
    rgb = shade_triangles(tris, base_color=(200, 100, 50), ambient=0.2)
    assert rgb.dtype == np.uint8
    assert (rgb[:, 0] <= 200).all()
