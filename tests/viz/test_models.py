"""Unit tests for the simulated cost models."""

import pytest

from repro.core.buffer import DataBuffer
from repro.errors import ConfigurationError
from repro.viz.active_pixel import WPA_ENTRY_BYTES
from repro.viz.filters import TRIANGLE_BYTES
from repro.viz.models import (
    BufferSizes,
    CostParams,
    ExtractModel,
    ExtractRasterModel,
    MergeModel,
    RasterAPModel,
    RasterZBModel,
    _emit_stream_buffers,
    _split_counts,
)
from repro.viz.raster import ZBUFFER_ENTRY_BYTES


def test_split_counts_exact_total():
    for total in (0, 1, 7, 100, 12345):
        shares = _split_counts(total, [3, 5, 2])
        assert sum(shares) == total


def test_split_counts_proportionality():
    shares = _split_counts(100, [1, 1, 2])
    assert shares[2] == pytest.approx(50, abs=1)


def test_split_counts_zero_weights():
    assert sum(_split_counts(10, [0, 0])) == 10


def test_emit_stream_buffers_sizes_and_tags():
    bufs = _emit_stream_buffers(250, 100, triangles=25)
    assert [b.nbytes for b in bufs] == [100, 100, 50]
    assert sum(b.tags["triangles"] for b in bufs) == 25


def test_emit_stream_buffers_empty():
    assert _emit_stream_buffers(0, 100, triangles=0) == []


def test_cost_params_fragment_scaling():
    costs = CostParams(fragments_per_triangle_2048=10.0)
    assert costs.fragments_per_triangle(2048, 2048) == pytest.approx(10.0)
    assert costs.fragments_per_triangle(512, 512) == pytest.approx(10.0 / 16)


def test_buffer_sizes_validation():
    with pytest.raises(ConfigurationError):
        BufferSizes(read=0)


def test_extract_model_costs_and_outputs():
    costs = CostParams(extract_per_voxel=1e-6, extract_per_triangle=1e-5)
    model = ExtractModel(costs, BufferSizes(triangles=1024))
    buf = DataBuffer(5000, tags={"voxels": 1000, "triangles": 50})
    assert model.cost(buf) == pytest.approx(1000 * 1e-6 + 50 * 1e-5)
    outs = list(model.react(buf))
    assert sum(b.nbytes for b in outs) == 50 * TRIANGLE_BYTES
    assert sum(b.tags["triangles"] for b in outs) == 50


def test_raster_zb_model_flush_volume():
    model = RasterZBModel(CostParams(), BufferSizes(zbuffer_slab=1 << 20), 512, 512)
    assert list(model.react(DataBuffer(10, tags={"triangles": 5}))) == []
    outs = list(model.flush_outputs())
    assert sum(b.nbytes for b in outs) == 512 * 512 * ZBUFFER_ENTRY_BYTES
    assert model.flush_cost() > 0


def test_raster_ap_model_streams_entries():
    costs = CostParams(fragments_per_triangle_2048=8.0, ap_entry_ratio=1.0)
    model = RasterAPModel(costs, BufferSizes(wpa=1 << 16), 2048, 2048)
    buf = DataBuffer(10, tags={"triangles": 100})
    outs = list(model.react(buf))
    assert sum(b.nbytes for b in outs) == 800 * WPA_ENTRY_BYTES
    assert list(model.flush_outputs()) == []
    assert model.flush_cost() == 0.0


def test_merge_model_cost_per_entry():
    costs = CostParams(merge_zb_per_entry=1e-6, merge_ap_per_entry=2e-6)
    zb = MergeModel(costs, "zbuffer")
    assert zb.cost(DataBuffer(800)) == pytest.approx(100 * 1e-6)
    ap = MergeModel(costs, "active")
    assert ap.cost(DataBuffer(120)) == pytest.approx(10 * 2e-6)
    assert ap.result()["buffers"] == 1
    with pytest.raises(ConfigurationError):
        MergeModel(costs, "wrong")


def test_extract_raster_model_zb_vs_ap():
    costs = CostParams()
    buffers = BufferSizes()
    zb = ExtractRasterModel(costs, buffers, 512, 512, "zbuffer")
    ap = ExtractRasterModel(costs, buffers, 512, 512, "active")
    buf = DataBuffer(1000, tags={"voxels": 100, "triangles": 40})
    # AP pays the per-entry cost on top of shared extract+raster work.
    assert ap.cost(buf) > zb.cost(buf)
    # ZB emits nothing until flush; AP emits immediately.
    assert list(zb.react(buf)) == []
    assert list(ap.react(buf)) != []
    assert sum(b.nbytes for b in zb.flush_outputs()) == 512 * 512 * 8
    assert list(ap.flush_outputs()) == []
    with pytest.raises(ConfigurationError):
        ExtractRasterModel(costs, buffers, 512, 512, "nope")


def test_untagged_buffer_costs_nothing():
    model = ExtractModel(CostParams(), BufferSizes())
    assert model.cost(DataBuffer(100)) == 0.0
    assert list(model.react(DataBuffer(100))) == []
