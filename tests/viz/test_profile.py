"""Tests for dataset profiles and the paper-scale presets."""

import numpy as np
import pytest

from repro.data import ParSSimDataset
from repro.errors import DataError
from repro.viz.marching_cubes import triangle_count
from repro.viz.profile import DatasetProfile, dataset_1p5gb, dataset_25gb


def test_synthetic_hits_triangle_total_exactly():
    profile = DatasetProfile.synthetic(
        "t", (33, 33, 33), nchunks=64, nfiles=16, timesteps=3,
        total_triangles=12_345, seed=1,
    )
    for t in range(3):
        assert profile.total_triangles(t) == 12_345


def test_synthetic_distribution_is_nonuniform_shell():
    profile = DatasetProfile.synthetic(
        "t", (33, 33, 33), nchunks=64, nfiles=16, timesteps=1,
        total_triangles=100_000, seed=2,
    )
    counts = profile.tri_counts[0]
    assert counts.max() > 3 * max(counts.min(), 1)  # concentrated on a shell
    assert (counts >= 0).all()


def test_synthetic_distribution_drifts_over_time():
    profile = DatasetProfile.synthetic(
        "t", (33, 33, 33), nchunks=64, nfiles=16, timesteps=5,
        total_triangles=50_000, seed=3,
    )
    assert not np.array_equal(profile.tri_counts[0], profile.tri_counts[4])


def test_synthetic_deterministic_by_seed():
    mk = lambda: DatasetProfile.synthetic(  # noqa: E731
        "t", (17, 17, 17), nchunks=8, nfiles=4, timesteps=2,
        total_triangles=1000, seed=9,
    )
    a, b = mk(), mk()
    for t in range(2):
        np.testing.assert_array_equal(a.tri_counts[t], b.tri_counts[t])


def test_measured_profile_matches_real_counts():
    dataset = ParSSimDataset((17, 17, 17), timesteps=2, seed=5)
    iso = 0.35
    profile = DatasetProfile.measured("m", dataset, 8, 4, isovalue=iso)
    for t in range(2):
        for chunk in profile.chunks:
            scalars = dataset.chunk_field(chunk, t, 0)
            assert profile.triangles(t, chunk.chunk_id) == triangle_count(
                scalars, iso
            )


def test_profile_validation():
    profile = DatasetProfile.synthetic(
        "t", (17, 17, 17), nchunks=8, nfiles=4, timesteps=1,
        total_triangles=100, seed=0,
    )
    with pytest.raises(DataError):
        DatasetProfile(
            "bad", (17, 17, 17), profile.chunks, profile.files, 1,
            {0: np.zeros(3, dtype=np.int64)},  # wrong length
        )
    with pytest.raises(DataError):
        DatasetProfile.synthetic(
            "t", (17, 17, 17), nchunks=8, nfiles=4, timesteps=1,
            total_triangles=-1,
        )


def test_dataset_presets_full_scale_shapes():
    p15 = dataset_1p5gb(scale=1.0)
    # One field of the 1.5 GB dataset is ~37 MB of scalars (208^3 x 4 B).
    assert p15.grid_shape == (208, 208, 208)
    assert 35e6 < p15.bytes_per_timestep < 42e6
    assert len(p15.files) == 64
    assert p15.timesteps == 10

    p25 = dataset_25gb(scale=1.0)
    # A 25 GB dataset timestep is ~2.5 GB.
    assert 2.4e9 < p25.bytes_per_timestep < 3.0e9
    assert len(p25.chunks) == 24_576
    assert len(p25.files) == 64


def test_dataset_presets_scaling():
    full = dataset_1p5gb(scale=1.0)
    tenth = dataset_1p5gb(scale=0.1)
    ratio = tenth.bytes_per_timestep / full.bytes_per_timestep
    assert 0.05 < ratio < 0.2
    with pytest.raises(DataError):
        dataset_1p5gb(scale=0.0)
    with pytest.raises(DataError):
        dataset_25gb(scale=1.5)


def test_bytes_per_timestep_includes_ghosts():
    profile = DatasetProfile.synthetic(
        "t", (17, 17, 17), nchunks=8, nfiles=4, timesteps=1,
        total_triangles=10, seed=0,
    )
    raw = 17 * 17 * 17 * 4
    assert profile.bytes_per_timestep > raw  # ghost layers overlap
    assert profile.bytes_per_timestep < raw * 1.6
