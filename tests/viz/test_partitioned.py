"""Tests for the image-partitioned (merge-free) extension."""

import numpy as np
import pytest

from repro.core.placement import Placement
from repro.data import HostDisks, ParSSimDataset, StorageMap
from repro.engines import SimulatedEngine, ThreadedEngine
from repro.errors import ConfigurationError
from repro.sim import Environment, homogeneous_cluster
from repro.viz.app import IsosurfaceApp
from repro.viz.camera import Camera
from repro.viz.partitioned import (
    PartitionedReadExtractFilter,
    StripRasterFilter,
    assemble_strips,
    build_partitioned_graph,
    region_stream,
    x_strips,
)
from repro.viz.profile import DatasetProfile


def test_x_strips_cover_width_exactly():
    strips = x_strips(100, 3)
    assert strips[0][0] == 0
    assert strips[-1][1] == 100
    assert all(a[1] == b[0] for a, b in zip(strips, strips[1:]))


def test_x_strips_validation():
    with pytest.raises(ConfigurationError):
        x_strips(100, 0)
    with pytest.raises(ConfigurationError):
        x_strips(2, 3)


@pytest.fixture(scope="module")
def scenario():
    dataset = ParSSimDataset((13, 13, 13), timesteps=1, species=1, seed=9)
    iso = 0.35
    profile = DatasetProfile.measured("p", dataset, nchunks=8, nfiles=4, isovalue=iso)
    storage = StorageMap.balanced(profile.files, [HostDisks("h0")])
    return dataset, profile, storage, iso


def test_partitioned_matches_merge_based_image(scenario):
    dataset, profile, storage, iso = scenario
    width = height = 40
    camera = Camera.fit_grid(profile.grid_shape, width=width, height=height)

    # Reference: the standard merge-based pipeline.
    app = IsosurfaceApp(
        profile, storage, width=width, height=height, algorithm="zbuffer",
        dataset=dataset, isovalue=iso,
    )
    ref = (
        ThreadedEngine(app.graph("RE-Ra-M"), app.placement("RE-Ra-M"))
        .run()
        .result.image
    )

    # Partitioned: 3 strip owners, no merge filter.
    from repro.core.graph import FilterGraph

    strips = x_strips(width, 3)
    graph = FilterGraph()
    graph.add_filter(
        "RE",
        factory=lambda: PartitionedReadExtractFilter(
            dataset, storage, 0, iso, camera, strips
        ),
        is_source=True,
    )
    placement = Placement().place("RE", ["h0"])
    for region, strip in enumerate(strips):
        name = f"Ra{region}"
        graph.add_filter(
            name, factory=lambda s=strip: StripRasterFilter(camera, s)
        )
        graph.connect("RE", name, name=region_stream(region))
        placement.place(name, ["h0"])
    metrics = ThreadedEngine(graph, placement).run()
    image = assemble_strips(metrics.result, width, height)
    np.testing.assert_array_equal(image, ref)


def test_assemble_strips_requires_full_cover():
    with pytest.raises(ConfigurationError):
        assemble_strips([((0, 5), np.zeros((4, 5, 3), dtype=np.uint8))], 10, 4)


def sim_partitioned(regions, weights=None, nodes=4, tris=40_000):
    profile = DatasetProfile.synthetic(
        "p", (33, 33, 33), nchunks=64, nfiles=16, timesteps=1,
        total_triangles=tris, seed=4,
    )
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=nodes)
    names = [f"node{i}" for i in range(nodes)]
    storage = StorageMap.balanced(profile.files, [HostDisks(names[0], 2)])
    graph = build_partitioned_graph(
        profile, storage, timestep=0, width=512, height=512,
        regions=regions, region_weights=weights,
    )
    placement = Placement().place("RE", [names[0]])
    for region in range(regions):
        placement.place(f"Ra{region}", [names[(region + 1) % nodes]])
    return SimulatedEngine(cluster, graph, placement, policy="RR").run()


def test_sim_partitioned_distributes_triangles():
    metrics = sim_partitioned(regions=3)
    results = metrics.result
    assert len(results) == 3
    total = sum(r["triangles"] for r in results)
    # Even split within rounding (one round() per chunk per region).
    shares = sorted(r["triangles"] for r in results)
    assert shares[-1] - shares[0] < 0.1 * total


def test_sim_partitioned_skewed_weights_create_imbalance():
    metrics = sim_partitioned(regions=2, weights=[3.0, 1.0])
    results = sorted(r["triangles"] for r in metrics.result)
    assert results[1] > 2.0 * results[0]


def test_sim_partitioned_imbalance_slows_run():
    balanced = sim_partitioned(regions=2, weights=[1.0, 1.0]).makespan
    skewed = sim_partitioned(regions=2, weights=[5.0, 1.0]).makespan
    assert skewed > balanced


def test_build_partitioned_graph_validation():
    profile = DatasetProfile.synthetic(
        "p", (17, 17, 17), nchunks=8, nfiles=4, timesteps=1,
        total_triangles=100, seed=0,
    )
    storage = StorageMap.balanced(profile.files, [HostDisks("h")])
    with pytest.raises(ConfigurationError):
        build_partitioned_graph(
            profile, storage, 0, 64, 64, regions=2, region_weights=[1.0]
        )
    with pytest.raises(ConfigurationError):
        build_partitioned_graph(
            profile, storage, 0, 64, 64, regions=2, region_weights=[0.0, 0.0]
        )
    with pytest.raises(ConfigurationError):
        build_partitioned_graph(profile, storage, 0, 64, 64, regions=0)
