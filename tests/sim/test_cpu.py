"""Unit tests for the processor-sharing CPU model."""

import pytest

from repro.sim.cpu import ProcessorSharingCPU
from repro.sim.kernel import Environment


def run_tasks(cores, speed, tasks, background=0):
    """Run (start_time, work) tasks; return dict task_index -> finish time."""
    env = Environment()
    cpu = ProcessorSharingCPU(env, cores=cores, speed=speed)
    if background:
        cpu.set_background_load(background)
    finish = {}

    def submit(env, idx, start, work):
        if start:
            yield env.timeout(start)
        yield cpu.execute(work)
        finish[idx] = env.now

    for i, (start, work) in enumerate(tasks):
        env.process(submit(env, i, start, work))
    env.run()
    return finish


def test_single_task_runs_at_full_speed():
    finish = run_tasks(cores=1, speed=1.0, tasks=[(0.0, 4.0)])
    assert finish[0] == pytest.approx(4.0)


def test_speed_scales_execution():
    finish = run_tasks(cores=1, speed=2.0, tasks=[(0.0, 4.0)])
    assert finish[0] == pytest.approx(2.0)


def test_two_tasks_share_one_core():
    # Two equal tasks on 1 core: each runs at 1/2 rate -> both finish at 8.
    finish = run_tasks(cores=1, speed=1.0, tasks=[(0.0, 4.0), (0.0, 4.0)])
    assert finish[0] == pytest.approx(8.0)
    assert finish[1] == pytest.approx(8.0)


def test_two_tasks_two_cores_full_rate():
    finish = run_tasks(cores=2, speed=1.0, tasks=[(0.0, 4.0), (0.0, 4.0)])
    assert finish[0] == pytest.approx(4.0)
    assert finish[1] == pytest.approx(4.0)


def test_unequal_tasks_processor_sharing():
    # Tasks of work 1 and 3 on one core: share until the short one finishes
    # at t=2 (each got 1 unit), then the long one runs alone, finishing at 4.
    finish = run_tasks(cores=1, speed=1.0, tasks=[(0.0, 1.0), (0.0, 3.0)])
    assert finish[0] == pytest.approx(2.0)
    assert finish[1] == pytest.approx(4.0)


def test_late_arrival_slows_running_task():
    # Task A (work 4) alone until t=2 (2 done), then shares with B (work 1):
    # B finishes at t=4 (1 unit at rate 1/2); A has 1 left, finishes at t=5.
    finish = run_tasks(cores=1, speed=1.0, tasks=[(0.0, 4.0), (2.0, 1.0)])
    assert finish[1] == pytest.approx(4.0)
    assert finish[0] == pytest.approx(5.0)


def test_background_job_halves_throughput():
    finish = run_tasks(cores=1, speed=1.0, tasks=[(0.0, 4.0)], background=1)
    assert finish[0] == pytest.approx(8.0)


def test_background_jobs_scale_slowdown():
    # 1 task + 3 background on 1 core: task rate 1/4 -> work 2 takes 8.
    finish = run_tasks(cores=1, speed=1.0, tasks=[(0.0, 2.0)], background=3)
    assert finish[0] == pytest.approx(8.0)


def test_multicore_absorbs_background():
    # 1 task + 1 bg on 2 cores: both get a full core -> no slowdown.
    finish = run_tasks(cores=2, speed=1.0, tasks=[(0.0, 4.0)], background=1)
    assert finish[0] == pytest.approx(4.0)


def test_background_change_mid_task():
    env = Environment()
    cpu = ProcessorSharingCPU(env, cores=1)
    finish = []

    def task(env):
        yield cpu.execute(4.0)
        finish.append(env.now)

    def loader(env):
        yield env.timeout(2.0)
        cpu.set_background_load(1)  # halve the task's rate from t=2

    env.process(task(env))
    env.process(loader(env))
    env.run()
    # 2 units done by t=2; remaining 2 at rate 1/2 -> +4 -> t=6.
    assert finish == [pytest.approx(6.0)]


def test_zero_work_completes_immediately():
    env = Environment()
    cpu = ProcessorSharingCPU(env, cores=1)
    done = []

    def task(env):
        yield cpu.execute(0.0)
        done.append(env.now)

    env.process(task(env))
    env.run()
    assert done == [0.0]


def test_many_tasks_conservation():
    # Total work conservation: with 1 core at speed 1 and all tasks present
    # from t=0, makespan equals total work regardless of sharing.
    works = [0.5, 1.5, 2.0, 3.0, 0.25]
    finish = run_tasks(cores=1, speed=1.0, tasks=[(0.0, w) for w in works])
    assert max(finish.values()) == pytest.approx(sum(works))


def test_statistics():
    env = Environment()
    cpu = ProcessorSharingCPU(env, cores=1)

    def task(env):
        yield cpu.execute(3.0)

    env.process(task(env))
    env.run()
    assert cpu.tasks_completed == 1
    assert cpu.work_completed == pytest.approx(3.0)
    assert cpu.busy_integral == pytest.approx(3.0)


def test_invalid_arguments():
    env = Environment()
    with pytest.raises(ValueError):
        ProcessorSharingCPU(env, cores=0)
    with pytest.raises(ValueError):
        ProcessorSharingCPU(env, cores=1, speed=0.0)
    cpu = ProcessorSharingCPU(env, cores=1)
    with pytest.raises(ValueError):
        cpu.set_background_load(-1)


def test_current_task_rate_reflects_sharing():
    env = Environment()
    cpu = ProcessorSharingCPU(env, cores=2, speed=1.0)
    assert cpu.current_task_rate() == 0.0
    cpu.set_background_load(4)
    assert cpu.current_task_rate() == pytest.approx(0.5)
