"""Unit tests for the max-min fair flow network."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.kernel import Environment
from repro.sim.network import Network


def simple_net(env, capacity=100.0, latency=0.0, overhead=0.0):
    """One link A->B with given capacity."""
    net = Network(env)
    link = net.add_link("ab", capacity)
    net.set_route("A", "B", [link], latency, overhead)
    return net


def test_single_transfer_time():
    env = Environment()
    net = simple_net(env, capacity=100.0, latency=0.5)
    done = []

    def sender(env):
        yield net.transfer("A", "B", 200)
        done.append(env.now)

    env.process(sender(env))
    env.run()
    assert done == [pytest.approx(2.5)]  # 200/100 + 0.5 latency


def test_two_flows_share_bandwidth():
    env = Environment()
    net = simple_net(env, capacity=100.0)
    done = {}

    def sender(env, tag):
        yield net.transfer("A", "B", 100)
        done[tag] = env.now

    env.process(sender(env, "x"))
    env.process(sender(env, "y"))
    env.run()
    # Both at 50 B/s -> both finish at t=2.
    assert done["x"] == pytest.approx(2.0)
    assert done["y"] == pytest.approx(2.0)


def test_flow_completion_frees_bandwidth():
    env = Environment()
    net = simple_net(env, capacity=100.0)
    done = {}

    def sender(env, tag, nbytes):
        yield net.transfer("A", "B", nbytes)
        done[tag] = env.now

    env.process(sender(env, "small", 50))
    env.process(sender(env, "big", 150))
    env.run()
    # Shared at 50/s until small drains at t=1; big then has 100 left at
    # 100/s -> finishes at t=2.
    assert done["small"] == pytest.approx(1.0)
    assert done["big"] == pytest.approx(2.0)


def test_maxmin_bottleneck_and_spare_capacity():
    # Flow 1 traverses L1(100) only; flows 2,3 traverse L1 and L2(60).
    # Max-min: L2 gives 30 each to flows 2,3; flow 1 then gets 40 on L1.
    env = Environment()
    net = Network(env)
    l1 = net.add_link("l1", 100.0)
    l2 = net.add_link("l2", 60.0)
    net.set_route("A", "B", [l1], 0.0)
    net.set_route("A", "C", [l1, l2], 0.0)
    rates = {}

    def probe(env):
        # Start three long flows, then inspect allocation via finish times.
        e1 = net.transfer("A", "B", 400)
        e2 = net.transfer("A", "C", 300)
        e3 = net.transfer("A", "C", 300)
        t0 = env.now
        yield e2
        rates["f2_done"] = env.now - t0
        yield e3
        yield e1
        rates["f1_done"] = env.now - t0

    env.process(probe(env))
    env.run()
    # Flows 2,3 at 30 B/s -> 300 bytes in 10 s.
    assert rates["f2_done"] == pytest.approx(10.0)
    # Flow 1: 40 B/s for 10 s (400 bytes) -> done at t=10 too.
    assert rates["f1_done"] == pytest.approx(10.0)


def test_local_transfer_bypasses_links():
    env = Environment()
    net = Network(env, local_bandwidth=100.0, local_latency=0.5)
    done = []

    def sender(env):
        yield net.transfer("A", "A", 100)
        done.append(env.now)

    env.process(sender(env))
    env.run()
    assert done == [pytest.approx(1.5)]


def test_zero_byte_message_costs_latency_and_overhead():
    env = Environment()
    net = simple_net(env, capacity=100.0, latency=0.2, overhead=0.05)
    done = []

    def sender(env):
        yield net.transfer("A", "B", 0)
        done.append(env.now)

    env.process(sender(env))
    env.run()
    assert done == [pytest.approx(0.25)]


def test_missing_route_raises():
    env = Environment()
    net = Network(env)
    with pytest.raises(ConfigurationError):
        net.transfer("A", "B", 10)


def test_duplicate_link_rejected():
    env = Environment()
    net = Network(env)
    net.add_link("l", 10)
    with pytest.raises(ConfigurationError):
        net.add_link("l", 10)


def test_statistics():
    env = Environment()
    net = simple_net(env, capacity=100.0)

    def sender(env):
        yield net.transfer("A", "B", 100)

    env.process(sender(env))
    env.run()
    assert net.transfers_started == 1
    assert net.transfers_completed == 1
    assert net.bytes_delivered == pytest.approx(100)
    assert net.links["ab"].bytes_carried == 100
    assert net.links["ab"].messages == 1


def test_staggered_arrivals_rate_adjustment():
    env = Environment()
    net = simple_net(env, capacity=100.0)
    done = {}

    def sender(env, tag, start, nbytes):
        yield env.timeout(start)
        yield net.transfer("A", "B", nbytes)
        done[tag] = env.now

    env.process(sender(env, "a", 0.0, 200))
    env.process(sender(env, "b", 1.0, 100))
    env.run()
    # a: 100 bytes done by t=1; then shares (50/s each). b drains 100 in 2s
    # (t=3); a's last 100-? ... a has 100 left at t=1, gets 50/s until t=3
    # (100 done) -> finishes exactly at t=3 as well.
    assert done["b"] == pytest.approx(3.0)
    assert done["a"] == pytest.approx(3.0)
