"""Unit tests for the FIFO disk model."""

import pytest

from repro.errors import SimulationError
from repro.sim.disk import Disk
from repro.sim.kernel import Environment


def test_single_read_time():
    env = Environment()
    disk = Disk(env, bandwidth=100.0, seek_time=1.0)
    done = []

    def reader(env):
        yield disk.read(200)
        done.append(env.now)

    env.process(reader(env))
    env.run()
    assert done == [pytest.approx(3.0)]  # 1s seek + 200/100


def test_fifo_serialization():
    env = Environment()
    disk = Disk(env, bandwidth=100.0, seek_time=0.5)
    done = {}

    def reader(env, tag):
        yield disk.read(100)
        done[tag] = env.now

    env.process(reader(env, "a"))
    env.process(reader(env, "b"))
    env.run()
    assert done["a"] == pytest.approx(1.5)
    assert done["b"] == pytest.approx(3.0)


def test_idle_gap_not_charged():
    env = Environment()
    disk = Disk(env, bandwidth=100.0, seek_time=0.0)
    done = []

    def reader(env):
        yield disk.read(100)
        yield env.timeout(10.0)  # disk idle
        yield disk.read(100)
        done.append(env.now)

    env.process(reader(env))
    env.run()
    assert done == [pytest.approx(12.0)]


def test_zero_byte_read_costs_seek_only():
    env = Environment()
    disk = Disk(env, bandwidth=1e6, seek_time=0.25)
    done = []

    def reader(env):
        yield disk.read(0)
        done.append(env.now)

    env.process(reader(env))
    env.run()
    assert done == [pytest.approx(0.25)]


def test_negative_read_rejected():
    env = Environment()
    disk = Disk(env, bandwidth=1e6)
    with pytest.raises(SimulationError):
        disk.read(-1)


def test_constructor_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Disk(env, bandwidth=0)
    with pytest.raises(ValueError):
        Disk(env, bandwidth=10, seek_time=-1)


def test_statistics_and_utilization():
    env = Environment()
    disk = Disk(env, bandwidth=100.0, seek_time=0.0)

    def reader(env):
        yield disk.read(100)
        yield env.timeout(1.0)

    env.process(reader(env))
    env.run()
    assert disk.bytes_read == 100
    assert disk.requests == 1
    assert disk.busy_time == pytest.approx(1.0)
    assert disk.utilization() == pytest.approx(0.5)
