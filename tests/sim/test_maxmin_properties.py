"""Property tests for the max-min fair bandwidth allocator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Environment
from repro.sim.network import Network


@st.composite
def topology_and_flows(draw):
    nlinks = draw(st.integers(min_value=1, max_value=4))
    capacities = [
        draw(st.floats(min_value=10.0, max_value=1000.0)) for _ in range(nlinks)
    ]
    nflows = draw(st.integers(min_value=1, max_value=6))
    flows = []
    for _ in range(nflows):
        path = sorted(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=nlinks - 1),
                    min_size=1,
                    max_size=nlinks,
                )
            )
        )
        size = draw(st.integers(min_value=1000, max_value=100_000))
        flows.append((path, size))
    return capacities, flows


@given(topology_and_flows())
@settings(max_examples=80, deadline=None)
def test_maxmin_feasible_and_saturating(setup):
    capacities, flows = setup
    env = Environment()
    net = Network(env)
    links = [net.add_link(f"l{i}", c) for i, c in enumerate(capacities)]
    for i, (path, size) in enumerate(flows):
        net.set_route(f"S{i}", f"D{i}", [links[j] for j in path], latency=0.0)
        net.transfer(f"S{i}", f"D{i}", size)

    rates = net.current_rates()
    assert len(rates) == len(flows)
    # Feasibility: no link carries more than its capacity.
    usage = {f"l{i}": 0.0 for i in range(len(capacities))}
    for names, rate in rates:
        assert rate > 0
        for name in names:
            usage[name] += rate
    for i, cap in enumerate(capacities):
        assert usage[f"l{i}"] <= cap * (1 + 1e-9)
    # Max-min: every flow crosses at least one saturated link (otherwise its
    # rate could be raised without hurting anyone).
    for names, _rate in rates:
        assert any(
            usage[name] >= capacities[int(name[1:])] * (1 - 1e-6)
            for name in names
        )
    # Liveness: the simulation drains all flows.
    env.run()
    assert net.active_flows == 0
    assert net.transfers_completed == len(flows)
