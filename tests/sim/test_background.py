"""Tests for background-load helpers and schedules."""

import pytest

from repro.sim.background import (
    LoadPhase,
    apply_background_load,
    scheduled_background_load,
)
from repro.sim.cluster import homogeneous_cluster
from repro.sim.kernel import Environment


def test_load_phase_validation():
    with pytest.raises(ValueError):
        LoadPhase(-1.0, 0)
    with pytest.raises(ValueError):
        LoadPhase(1.0, -2)
    LoadPhase(0.0, 0)  # zero-duration phases are allowed


def test_apply_background_load():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=3)
    apply_background_load(cluster, 5, ["node0", "node2"])
    assert cluster.host("node0").cpu.background_jobs == 5
    assert cluster.host("node1").cpu.background_jobs == 0
    assert cluster.host("node2").cpu.background_jobs == 5


def test_scheduled_load_runs_phases_in_order():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=1)
    host = cluster.host("node0")
    phases = [LoadPhase(2.0, 4), LoadPhase(3.0, 1)]
    scheduled_background_load(env, cluster, ["node0"], phases)
    env.run(until=1.0)
    assert host.cpu.background_jobs == 4
    env.run(until=3.0)
    assert host.cpu.background_jobs == 1
    env.run()  # schedule ends, load reset to zero
    assert host.cpu.background_jobs == 0
    assert env.now == 5.0


def test_scheduled_load_repeats():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=1)
    host = cluster.host("node0")
    phases = [LoadPhase(1.0, 2), LoadPhase(1.0, 0)]
    scheduled_background_load(env, cluster, ["node0"], phases, repeat=True)
    env.run(until=0.5)
    assert host.cpu.background_jobs == 2
    env.run(until=1.5)
    assert host.cpu.background_jobs == 0
    env.run(until=2.5)
    assert host.cpu.background_jobs == 2  # cycled back


def test_repeating_schedule_needs_positive_duration():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=1)
    with pytest.raises(ValueError):
        scheduled_background_load(
            env, cluster, ["node0"], [LoadPhase(0.0, 1)], repeat=True
        )


def test_schedule_slows_concurrent_work():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=1)
    host = cluster.host("node0")
    # 1s of load-free time, then 4 jobs forever.
    scheduled_background_load(
        env, cluster, ["node0"], [LoadPhase(1.0, 0), LoadPhase(100.0, 4)]
    )
    done = []

    def work(env):
        yield host.compute(2.0)
        done.append(env.now)

    env.process(work(env))
    env.run(until=60.0)
    # 1 unit done in the quiet second; remaining 1 unit at rate 1/5 -> t=6.
    assert done == [pytest.approx(6.0)]
