"""Unit tests for the DES kernel: events, processes, conditions, run()."""

import pytest

from repro.errors import Interrupt, SimulationError
from repro.sim.kernel import Environment


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(2.5)

    env.process(proc(env))
    env.run()
    assert env.now == 2.5


def test_timeout_carries_value():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(1.0, value="hello")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_process_return_value_via_run_until():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return 42

    p = env.process(proc(env))
    assert env.run(until=p) == 42


def test_sequential_timeouts_accumulate():
    env = Environment()
    marks = []

    def proc(env):
        for delay in (1.0, 2.0, 3.0):
            yield env.timeout(delay)
            marks.append(env.now)

    env.process(proc(env))
    env.run()
    assert marks == [1.0, 3.0, 6.0]


def test_same_time_events_fire_in_fifo_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in "abc":
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    got = []

    def waiter(env):
        value = yield ev
        got.append((env.now, value))

    def firer(env):
        yield env.timeout(3.0)
        ev.succeed("payload")

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert got == [(3.0, "payload")]


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter(env):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def firer(env):
        yield env.timeout(1.0)
        ev.fail(ValueError("boom"))

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert caught == ["boom"]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_unhandled_process_exception_escapes_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise RuntimeError("process crashed")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="process crashed"):
        env.run()


def test_waiting_on_failed_process_propagates():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise RuntimeError("inner")

    def outer(env, inner):
        with pytest.raises(RuntimeError, match="inner"):
            yield inner
        return "survived"

    inner = env.process(bad(env))
    outer_p = env.process(outer(env, inner))
    assert env.run(until=outer_p) == "survived"


def test_yield_already_processed_event_continues_immediately():
    env = Environment()
    results = []

    def proc(env):
        t = env.timeout(1.0, value="early")
        yield env.timeout(5.0)
        value = yield t  # t fired long ago; should not block
        results.append((env.now, value))

    env.process(proc(env))
    env.run()
    assert results == [(5.0, "early")]


def test_yield_non_event_raises_inside_process():
    env = Environment()

    def proc(env):
        yield "nonsense"

    env.process(proc(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_run_until_time_stops_short():
    env = Environment()
    marks = []

    def proc(env):
        for _ in range(10):
            yield env.timeout(1.0)
            marks.append(env.now)

    env.process(proc(env))
    env.run(until=3.5)
    assert env.now == 3.5
    assert marks == [1.0, 2.0, 3.0]
    env.run()  # finish the rest
    assert marks[-1] == 10.0


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_run_until_event_never_fires_is_error():
    env = Environment()
    ev = env.event()

    def proc(env):
        yield env.timeout(1.0)

    env.process(proc(env))
    with pytest.raises(SimulationError, match="ran out of events"):
        env.run(until=ev)


def test_all_of_waits_for_every_event():
    env = Environment()
    times = []

    def proc(env):
        a = env.timeout(1.0, value="a")
        b = env.timeout(4.0, value="b")
        result = yield env.all_of([a, b])
        times.append(env.now)
        assert set(result.values()) == {"a", "b"}

    env.process(proc(env))
    env.run()
    assert times == [4.0]


def test_any_of_fires_on_first():
    env = Environment()
    times = []

    def proc(env):
        a = env.timeout(1.0, value="a")
        b = env.timeout(4.0, value="b")
        result = yield env.any_of([a, b])
        times.append(env.now)
        assert "a" in set(result.values())

    env.process(proc(env))
    env.run()
    assert times == [1.0]


def test_all_of_empty_triggers_immediately():
    env = Environment()

    def proc(env):
        result = yield env.all_of([])
        return result

    p = env.process(proc(env))
    assert env.run(until=p) == {}


def test_interrupt_raises_in_process():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            log.append((env.now, exc.cause))

    def attacker(env, target):
        yield env.timeout(2.0)
        target.interrupt("preempted")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == [(2.0, "preempted")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive
    assert p.ok


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0
    env.run()
    assert env.peek() == float("inf")


def test_deterministic_trace_repeatable():
    def build_and_run():
        env = Environment()
        order = []

        def worker(env, tag, delay):
            yield env.timeout(delay)
            order.append(tag)
            yield env.timeout(delay)
            order.append(tag.upper())

        for i, delay in enumerate([2.0, 1.0, 2.0, 1.0]):
            env.process(worker(env, f"w{i}", delay))
        env.run()
        return order

    assert build_and_run() == build_and_run()
