"""Unit tests for the simulated bounded FIFO Store."""

import pytest

from repro.errors import StreamClosedError
from repro.sim.kernel import Environment
from repro.sim.store import Store


def test_put_then_get_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i in range(3):
            yield store.put(i)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [0, 1, 2]


def test_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    times = []

    def consumer(env):
        item = yield store.get()
        times.append((env.now, item))

    def producer(env):
        yield env.timeout(5.0)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert times == [(5.0, "late")]


def test_put_blocks_when_full():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env):
        yield store.put("a")
        t0 = env.now
        yield store.put("b")  # must wait for the consumer
        times.append((t0, env.now))

    def consumer(env):
        yield env.timeout(3.0)
        yield store.get()
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert times == [(0.0, 3.0)]


def test_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_direct_handoff_to_waiting_getter():
    env = Environment()
    store = Store(env, capacity=1)
    got = []

    def consumer(env):
        got.append((yield store.get()))

    def producer(env):
        yield env.timeout(1.0)
        yield store.put("x")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == ["x"]
    assert len(store) == 0


def test_multiple_getters_served_in_order():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, tag):
        item = yield store.get()
        got.append((tag, item))

    def producer(env):
        yield env.timeout(1.0)
        yield store.put("first")
        yield store.put("second")

    env.process(consumer(env, "c0"))
    env.process(consumer(env, "c1"))
    env.process(producer(env))
    env.run()
    assert got == [("c0", "first"), ("c1", "second")]


def test_close_fails_waiting_getters():
    env = Environment()
    store = Store(env)
    outcomes = []

    def consumer(env):
        try:
            yield store.get()
        except StreamClosedError:
            outcomes.append("closed")

    def closer(env):
        yield env.timeout(2.0)
        store.close()

    env.process(consumer(env))
    env.process(closer(env))
    env.run()
    assert outcomes == ["closed"]


def test_close_drains_remaining_items_first():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        yield store.put(1)
        yield store.put(2)
        store.close()

    def consumer(env):
        yield env.timeout(1.0)
        got.append((yield store.get()))
        got.append((yield store.get()))
        try:
            yield store.get()
        except StreamClosedError:
            got.append("eow")

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [1, 2, "eow"]


def test_put_after_close_fails():
    env = Environment()
    store = Store(env)
    store.close()
    outcomes = []

    def producer(env):
        try:
            yield store.put("x")
        except StreamClosedError:
            outcomes.append("rejected")

    env.process(producer(env))
    env.run()
    assert outcomes == ["rejected"]


def test_close_is_idempotent():
    env = Environment()
    store = Store(env)
    store.close()
    store.close()
    assert store.closed and store.exhausted


def test_statistics_track_traffic():
    env = Environment()
    store = Store(env, capacity=2)

    def producer(env):
        for i in range(4):
            yield store.put(i)

    def consumer(env):
        yield env.timeout(1.0)
        for _ in range(4):
            yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert store.total_put == 4
    assert store.total_got == 4
    assert store.peak_occupancy == 2


def test_blocked_putter_admitted_on_get():
    env = Environment()
    store = Store(env, capacity=1)
    order = []

    def producer(env):
        yield store.put("a")
        yield store.put("b")
        order.append(("put-b-done", env.now))

    def consumer(env):
        yield env.timeout(1.0)
        order.append(((yield store.get()), env.now))
        order.append(((yield store.get()), env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    # The blocked putter is admitted during get(), before the getter's own
    # resume callback runs, so its completion is observed first.
    assert order == [("put-b-done", 1.0), ("a", 1.0), ("b", 1.0)]
