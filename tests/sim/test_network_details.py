"""Additional network model tests: overheads, routes, multi-hop latency."""

import pytest

from repro.sim.cluster import (
    FAST_ETHERNET,
    FAST_ETHERNET_LATENCY,
    FAST_ETHERNET_MSG_OVERHEAD,
    GIGABIT_LATENCY,
    GIGABIT_MSG_OVERHEAD,
    Cluster,
    LinkSpec,
    umd_testbed,
)
from repro.sim.kernel import Environment
from repro.sim.network import Network


def send(env, net_or_cluster, src, dst, nbytes):
    done = []

    def proc(env):
        yield net_or_cluster.transfer(src, dst, nbytes)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    return done[0]


def test_per_message_overhead_charged_once_per_transfer():
    env = Environment()
    net = Network(env)
    link = net.add_link("l", 1000.0)
    net.set_route("A", "B", [link], latency=0.1, message_overhead=0.05)
    t = send(env, net, "A", "B", 1000)
    assert t == pytest.approx(1.0 + 0.1 + 0.05)


def test_multi_hop_latency_accumulates():
    env = Environment()
    c = Cluster(env)
    c.add_switch("a")
    c.add_switch("b")
    c.add_switch("core")
    spec = LinkSpec(1e6, latency=0.01, message_overhead=0.0)
    c.connect_switches("a", "core", spec)
    c.connect_switches("core", "b", spec)
    nic = LinkSpec(1e6, latency=0.001, message_overhead=0.0)
    c.add_host("h0", "a", cores=1, nic=nic)
    c.add_host("h1", "b", cores=1, nic=nic)
    c.finalize()
    t = send(env, c, "h0", "h1", 0)
    # 2 NIC latencies + 2 trunk latencies.
    assert t == pytest.approx(0.001 * 2 + 0.01 * 2)


def test_umd_rogue_to_rogue_over_fast_ethernet():
    env = Environment()
    cluster = umd_testbed(env, red_nodes=0, blue_nodes=0, rogue_nodes=2,
                          deathstar=False)
    t = send(env, cluster, "rogue0", "rogue1", int(FAST_ETHERNET))
    # ~1 s of bandwidth plus small fixed costs.
    fixed = 2 * (FAST_ETHERNET_LATENCY + FAST_ETHERNET_MSG_OVERHEAD)
    assert t == pytest.approx(1.0 + fixed, rel=1e-6)


def test_umd_blue_to_blue_faster_than_rogue_to_rogue():
    nbytes = 10_000_000
    env1 = Environment()
    c1 = umd_testbed(env1, red_nodes=0, blue_nodes=2, rogue_nodes=0,
                     deathstar=False)
    blue = send(env1, c1, "blue0", "blue1", nbytes)
    env2 = Environment()
    c2 = umd_testbed(env2, red_nodes=0, blue_nodes=0, rogue_nodes=2,
                     deathstar=False)
    rogue = send(env2, c2, "rogue0", "rogue1", nbytes)
    assert blue < rogue / 5  # Gigabit vs Fast Ethernet


def test_gigabit_fixed_costs_cheaper_than_fast_ethernet():
    assert GIGABIT_LATENCY < FAST_ETHERNET_LATENCY
    assert GIGABIT_MSG_OVERHEAD < FAST_ETHERNET_MSG_OVERHEAD


def test_bidirectional_transfers_do_not_contend():
    # Full duplex: A->B and B->A at the same time each get full bandwidth.
    env = Environment()
    c = Cluster(env)
    c.add_switch("sw")
    nic = LinkSpec(1000.0, 0.0)
    c.add_host("h0", "sw", cores=1, nic=nic)
    c.add_host("h1", "sw", cores=1, nic=nic)
    c.finalize()
    done = {}

    def proc(env, src, dst, tag):
        yield c.transfer(src, dst, 1000)
        done[tag] = env.now

    env.process(proc(env, "h0", "h1", "fwd"))
    env.process(proc(env, "h1", "h0", "rev"))
    env.run()
    assert done["fwd"] == pytest.approx(1.0)
    assert done["rev"] == pytest.approx(1.0)


def test_same_direction_transfers_share_tx_link():
    env = Environment()
    c = Cluster(env)
    c.add_switch("sw")
    nic = LinkSpec(1000.0, 0.0)
    c.add_host("h0", "sw", cores=1, nic=nic)
    c.add_host("h1", "sw", cores=1, nic=nic)
    c.add_host("h2", "sw", cores=1, nic=nic)
    c.finalize()
    done = {}

    def proc(env, dst, tag):
        yield c.transfer("h0", dst, 1000)
        done[tag] = env.now

    env.process(proc(env, "h1", "a"))
    env.process(proc(env, "h2", "b"))
    env.run()
    # Both leave through h0.tx at 500 B/s each.
    assert done["a"] == pytest.approx(2.0)
    assert done["b"] == pytest.approx(2.0)
