"""Unit tests for the cluster topology builder and the UMD testbed model."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.cluster import (
    FAST_ETHERNET,
    GIGABIT,
    Cluster,
    LinkSpec,
    homogeneous_cluster,
    umd_testbed,
)
from repro.sim.kernel import Environment


def test_build_simple_cluster_and_transfer():
    env = Environment()
    c = Cluster(env)
    c.add_switch("sw")
    c.add_host("h0", "sw", cores=1, nic=LinkSpec(100.0, 0.0))
    c.add_host("h1", "sw", cores=1, nic=LinkSpec(100.0, 0.0))
    c.finalize()
    done = []

    def sender(env):
        yield c.transfer("h0", "h1", 100)
        done.append(env.now)

    env.process(sender(env))
    env.run()
    assert done == [pytest.approx(1.0)]


def test_transfer_before_finalize_rejected():
    env = Environment()
    c = Cluster(env)
    c.add_switch("sw")
    c.add_host("h0", "sw", cores=1)
    c.add_host("h1", "sw", cores=1)
    with pytest.raises(ConfigurationError):
        c.transfer("h0", "h1", 1)


def test_mutation_after_finalize_rejected():
    env = Environment()
    c = Cluster(env)
    c.add_switch("sw")
    c.add_host("h0", "sw", cores=1)
    c.finalize()
    with pytest.raises(ConfigurationError):
        c.add_switch("sw2")


def test_duplicate_names_rejected():
    env = Environment()
    c = Cluster(env)
    c.add_switch("sw")
    with pytest.raises(ConfigurationError):
        c.add_switch("sw")
    c.add_host("h", "sw", cores=1)
    with pytest.raises(ConfigurationError):
        c.add_host("h", "sw", cores=1)


def test_unknown_switch_rejected():
    env = Environment()
    c = Cluster(env)
    with pytest.raises(ConfigurationError):
        c.add_host("h", "nope", cores=1)


def test_disconnected_switches_rejected():
    env = Environment()
    c = Cluster(env)
    c.add_switch("a")
    c.add_switch("b")
    c.add_host("h0", "a", cores=1)
    c.add_host("h1", "b", cores=1)
    with pytest.raises(ConfigurationError):
        c.finalize()


def test_inter_switch_route_includes_trunk():
    env = Environment()
    c = Cluster(env)
    c.add_switch("a")
    c.add_switch("b")
    c.connect_switches("a", "b", LinkSpec(50.0, 0.0))
    c.add_host("h0", "a", cores=1, nic=LinkSpec(100.0, 0.0))
    c.add_host("h1", "b", cores=1, nic=LinkSpec(100.0, 0.0))
    c.finalize()
    done = []

    def sender(env):
        yield c.transfer("h0", "h1", 100)
        done.append(env.now)

    env.process(sender(env))
    env.run()
    assert done == [pytest.approx(2.0)]  # trunk at 50 B/s is the bottleneck


def test_umd_testbed_inventory():
    env = Environment()
    c = umd_testbed(env)
    assert len(c.hosts_in("red")) == 8
    assert len(c.hosts_in("blue")) == 8
    assert len(c.hosts_in("rogue")) == 8
    assert len(c.hosts_in("deathstar")) == 1

    rogue0 = c.host("rogue0")
    assert rogue0.cores == 1
    assert rogue0.speed == pytest.approx(1.0)
    assert len(rogue0.disks) == 2

    blue0 = c.host("blue0")
    assert blue0.cores == 2
    assert blue0.speed == pytest.approx(550 / 650)
    assert len(blue0.disks) == 2

    red0 = c.host("red0")
    assert red0.cores == 2
    assert len(red0.disks) == 1

    ds = c.host("deathstar0")
    assert ds.cores == 8


def test_umd_testbed_link_speeds():
    env = Environment()
    c = umd_testbed(env)
    # Rogue NICs are Fast Ethernet; Blue NICs are Gigabit.
    assert c.network.links["rogue0.tx"].capacity == pytest.approx(FAST_ETHERNET)
    assert c.network.links["blue0.tx"].capacity == pytest.approx(GIGABIT)
    # Deathstar reaches the core over Fast Ethernet.
    assert c.network.links["deathstar->core"].capacity == pytest.approx(FAST_ETHERNET)
    # Blue-to-rogue traffic transits the gigabit core.
    links, latency, overhead = c.network.route("blue0", "rogue0")
    names = [ln.name for ln in links]
    assert names[0] == "blue0.tx"
    assert names[-1] == "rogue0.rx"
    assert "blue->core" in names and "core->rogue" in names
    assert latency > 0
    assert overhead > 0


def test_umd_testbed_scaled_down():
    env = Environment()
    c = umd_testbed(env, red_nodes=2, blue_nodes=2, rogue_nodes=2, deathstar=False)
    assert len(c.hosts) == 6
    assert "deathstar0" not in c.hosts


def test_homogeneous_cluster():
    env = Environment()
    c = homogeneous_cluster(env, nodes=4, cores=1, speed=1.0)
    assert len(c.hosts) == 4
    assert all(h.cores == 1 for h in c.hosts.values())


def test_background_load_helper():
    env = Environment()
    c = homogeneous_cluster(env, nodes=2)
    c.set_background_load(4, hosts=["node0"])
    assert c.host("node0").cpu.background_jobs == 4
    assert c.host("node1").cpu.background_jobs == 0
    c.set_background_load(1)
    assert c.host("node1").cpu.background_jobs == 1


def test_host_compute_and_disk():
    env = Environment()
    c = homogeneous_cluster(env, nodes=1, disks=[(100.0, 0.0)])
    host = c.host("node0")
    done = []

    def work(env):
        yield host.compute(2.0)
        yield host.read_disk(100)
        done.append(env.now)

    env.process(work(env))
    env.run()
    assert done == [pytest.approx(3.0)]


def test_read_disk_bad_index():
    env = Environment()
    c = homogeneous_cluster(env, nodes=1, disks=[(100.0, 0.0)])
    with pytest.raises(ConfigurationError):
        c.host("node0").read_disk(10, disk_index=5)
