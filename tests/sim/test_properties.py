"""Property-based tests (hypothesis) for the simulation substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cpu import ProcessorSharingCPU
from repro.sim.disk import Disk
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.store import Store


@given(
    works=st.lists(
        st.floats(min_value=0.01, max_value=50.0, allow_nan=False),
        min_size=1,
        max_size=10,
    ),
    cores=st.integers(min_value=1, max_value=4),
    speed=st.floats(min_value=0.25, max_value=4.0),
)
@settings(max_examples=100, deadline=None)
def test_cpu_work_conservation(works, cores, speed):
    """With all tasks present from t=0, makespan is bounded by theory.

    Lower bound: total_work / (cores * speed) and max_work / speed.
    Upper bound: total work serialised on one core.  All completions in
    non-... every task completes; accounted work equals submitted work.
    """
    env = Environment()
    cpu = ProcessorSharingCPU(env, cores=cores, speed=speed)
    done = []

    def submit(env, work):
        yield cpu.execute(work)
        done.append(env.now)

    for work in works:
        env.process(submit(env, work))
    env.run()
    assert len(done) == len(works)
    makespan = max(done)
    total = sum(works)
    lower = max(total / (cores * speed), max(works) / speed)
    assert makespan >= lower - 1e-6
    assert makespan <= total / speed + 1e-6
    assert cpu.work_completed == pytest.approx(total, rel=1e-9)
    assert cpu.active_tasks == 0


@given(
    works=st.lists(
        st.floats(min_value=0.01, max_value=10.0), min_size=2, max_size=8
    )
)
@settings(max_examples=50, deadline=None)
def test_cpu_single_core_equal_tasks_finish_together(works):
    """On one core, identical tasks submitted together finish together."""
    env = Environment()
    cpu = ProcessorSharingCPU(env, cores=1)
    done = []
    work = works[0]

    def submit(env):
        yield cpu.execute(work)
        done.append(env.now)

    for _ in range(len(works)):
        env.process(submit(env))
    env.run()
    assert all(t == pytest.approx(done[0]) for t in done)
    assert done[0] == pytest.approx(work * len(works))


@given(
    sizes=st.lists(
        st.integers(min_value=1, max_value=10_000), min_size=1, max_size=12
    ),
    bandwidth=st.floats(min_value=10.0, max_value=1e6),
    seek=st.floats(min_value=0.0, max_value=0.1),
)
@settings(max_examples=60, deadline=None)
def test_disk_fifo_total_time(sizes, bandwidth, seek):
    """Back-to-back reads take exactly the sum of their service times."""
    env = Environment()
    disk = Disk(env, bandwidth=bandwidth, seek_time=seek)
    finished = []

    def reader(env):
        for size in sizes:
            yield disk.read(size)
        finished.append(env.now)

    env.process(reader(env))
    env.run()
    expected = sum(seek + s / bandwidth for s in sizes)
    assert finished[0] == pytest.approx(expected, rel=1e-9)
    assert disk.bytes_read == sum(sizes)


@given(
    nbytes=st.lists(
        st.integers(min_value=1, max_value=100_000), min_size=1, max_size=8
    ),
    capacity=st.floats(min_value=100.0, max_value=1e6),
)
@settings(max_examples=60, deadline=None)
def test_network_single_link_conservation(nbytes, capacity):
    """Concurrent flows through one link finish exactly when the link has
    carried all bytes: makespan == total_bytes / capacity (max-min keeps the
    link saturated while any flow is active)."""
    env = Environment()
    net = Network(env)
    link = net.add_link("l", capacity)
    net.set_route("A", "B", [link], latency=0.0)
    done = []

    def sender(env, size):
        yield net.transfer("A", "B", size)
        done.append(env.now)

    for size in nbytes:
        env.process(sender(env, size))
    env.run()
    assert max(done) == pytest.approx(sum(nbytes) / capacity, rel=1e-6)
    assert net.transfers_completed == len(nbytes)


@given(
    items=st.lists(st.integers(), min_size=1, max_size=30),
    capacity=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=60, deadline=None)
def test_store_preserves_order_and_content(items, capacity):
    """Whatever the capacity, a store delivers all items in FIFO order."""
    env = Environment()
    store = Store(env, capacity=capacity)
    received = []

    def producer(env):
        for item in items:
            yield store.put(item)
        store.close()

    def consumer(env):
        while True:
            try:
                received.append((yield store.get()))
            except Exception:
                return

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items
    assert store.peak_occupancy <= capacity
