"""Tests for the ADR baseline: partitioning and runtime behaviour."""

import pytest

from repro.adr import ADRRuntime, static_partition
from repro.data.chunks import partition_grid
from repro.errors import ConfigurationError
from repro.sim import Environment, homogeneous_cluster
from repro.viz.profile import DatasetProfile


def profile(nchunks=64, tris=20_000):
    return DatasetProfile.synthetic(
        "t", (33, 33, 33), nchunks=nchunks, nfiles=16,
        timesteps=2, total_triangles=tris, seed=0,
    )


def run_adr(nodes=4, width=256, background=None, **kw):
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=nodes)
    names = [f"node{i}" for i in range(nodes)]
    if background:
        for host, jobs in background.items():
            cluster.host(host).set_background_load(jobs)
    runtime = ADRRuntime(cluster, names, profile(), width=width, height=width, **kw)
    return runtime.run()


def test_static_partition_uniform():
    chunks = partition_grid((9, 9, 9), (4, 4, 4))
    assignment = static_partition(chunks, ["a", "b", "c"])
    sizes = [len(v) for v in assignment.values()]
    assert sum(sizes) == 64
    assert max(sizes) - min(sizes) <= 1


def test_static_partition_all_chunks_once():
    chunks = partition_grid((9, 9, 9), (2, 2, 2))
    assignment = static_partition(chunks, ["a", "b"])
    ids = sorted(c.chunk_id for v in assignment.values() for c in v)
    assert ids == [c.chunk_id for c in chunks]


def test_static_partition_validation():
    chunks = partition_grid((5, 5, 5), (1, 1, 1))
    with pytest.raises(ConfigurationError):
        static_partition(chunks, [])
    with pytest.raises(ConfigurationError):
        static_partition([], ["a"])


def test_adr_runs_and_scales():
    t1 = run_adr(nodes=1).makespan
    t4 = run_adr(nodes=4).makespan
    assert t4 < t1  # parallel local phase


def test_adr_phases_sum_to_makespan():
    result = run_adr(nodes=4)
    assert result.makespan == pytest.approx(
        result.local_phase + result.merge_phase, rel=1e-6
    )
    assert result.local_phase > 0
    assert result.merge_phase > 0


def test_adr_single_node_no_network_merge():
    result = run_adr(nodes=1)
    assert result.merge_phase < 0.2  # image extraction only


def test_adr_chunk_accounting():
    result = run_adr(nodes=4)
    assert sum(result.chunks_per_node.values()) == 64
    assert result.bytes_read == profile().bytes_per_timestep


def test_adr_larger_image_costs_more():
    small = run_adr(nodes=4, width=128).makespan
    large = run_adr(nodes=4, width=1024).makespan
    assert large > small


def test_adr_background_load_hurts_proportionally():
    # Loading half the nodes inflates the local phase: the paper's core
    # claim about static partitioning is that the slowest node gates it.
    clean = run_adr(nodes=4)
    loaded = run_adr(nodes=4, background={"node0": 4, "node1": 4})
    assert loaded.local_phase > 2.0 * clean.local_phase
    # Unloaded nodes finished early but could not help.
    assert loaded.node_finish["node2"] < loaded.node_finish["node0"]


def test_adr_timestep_selects_profile_column():
    r0 = run_adr(nodes=2, timestep=0)
    r1 = run_adr(nodes=2, timestep=1)
    assert r0.makespan != r1.makespan  # triangle distribution drifts


def test_adr_validation():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=2)
    with pytest.raises(ConfigurationError):
        ADRRuntime(cluster, [], profile())
    with pytest.raises(ConfigurationError):
        ADRRuntime(cluster, ["node0"], profile(), io_depth=0)
    with pytest.raises(ConfigurationError):
        ADRRuntime(cluster, ["node0"], profile(), timestep=9)
    diskless = homogeneous_cluster(Environment(), nodes=1, disks=[])
    with pytest.raises(ConfigurationError):
        ADRRuntime(diskless, ["node0"], profile())


def test_adr_io_overlap_benefit():
    # Deep I/O window should be no slower than serial (depth 1 still
    # overlaps one read with compute; compare against a tiny disk).
    deep = run_adr(nodes=2, io_depth=8).makespan
    shallow = run_adr(nodes=2, io_depth=1).makespan
    assert deep <= shallow * 1.01


def test_adr_deterministic():
    assert run_adr(nodes=3).makespan == run_adr(nodes=3).makespan


def test_weighted_partition_proportional():
    from repro.adr import weighted_static_partition
    from repro.data.chunks import partition_grid

    chunks = partition_grid((9, 9, 9), (4, 4, 4))  # 64 chunks
    assignment = weighted_static_partition(chunks, ["slow", "fast"], [1.0, 3.0])
    assert len(assignment["fast"]) == 48
    assert len(assignment["slow"]) == 16
    ids = sorted(c.chunk_id for v in assignment.values() for c in v)
    assert ids == [c.chunk_id for c in chunks]


def test_weighted_partition_validation():
    from repro.adr import weighted_static_partition
    from repro.data.chunks import partition_grid

    chunks = partition_grid((5, 5, 5), (2, 2, 2))
    with pytest.raises(ConfigurationError):
        weighted_static_partition(chunks, ["a"], [1.0, 2.0])
    with pytest.raises(ConfigurationError):
        weighted_static_partition(chunks, ["a", "b"], [1.0, 0.0])
    with pytest.raises(ConfigurationError):
        weighted_static_partition([], ["a"], [1.0])


def test_adr_multicore_node_uses_all_cores():
    # Same total work on 1 node: a 2-core node's local phase is ~half the
    # 1-core node's once I/O overlap is accounted for.
    env1 = Environment()
    c1 = homogeneous_cluster(env1, nodes=1, cores=1)
    one = ADRRuntime(c1, ["node0"], profile(), width=128, height=128).run()
    env2 = Environment()
    c2 = homogeneous_cluster(env2, nodes=1, cores=2)
    two = ADRRuntime(c2, ["node0"], profile(), width=128, height=128).run()
    assert two.local_phase < 0.75 * one.local_phase


def test_adr_weighted_runtime_matches_partition():
    env = Environment()
    cluster = homogeneous_cluster(env, nodes=2)
    runtime = ADRRuntime(
        cluster, ["node0", "node1"], profile(), width=128, height=128,
        partition_weights=[3.0, 1.0],
    )
    result = runtime.run()
    assert result.chunks_per_node["node0"] == 48
    assert result.chunks_per_node["node1"] == 16
    with pytest.raises(ConfigurationError):
        ADRRuntime(cluster, ["node0"], profile(), partition_weights=[1.0, 2.0])
