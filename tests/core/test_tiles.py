"""Unit tests for the tile map: geometry, lookup, and validation."""

import numpy as np
import pytest

from repro.core.tiles import Tile, TileMap
from repro.errors import ConfigurationError


# -- construction ------------------------------------------------------------


def test_ctor_rejects_bad_dimensions_and_empty_maps():
    with pytest.raises(ConfigurationError, match="dimensions"):
        TileMap(0, 8, [Tile(0, 0, 0, 1, 1, 0)])
    with pytest.raises(ConfigurationError, match="at least one tile"):
        TileMap(8, 8, [])
    with pytest.raises(ConfigurationError, match="index order"):
        TileMap(8, 8, [Tile(1, 0, 0, 8, 8, 0)])


def test_tile_geometry_properties():
    tile = Tile(0, 2, 1, 7, 4, 0)
    assert tile.width == 5
    assert tile.height == 3
    assert tile.pixels == 15
    assert "owner=0" in repr(tile)


# -- rows / grid factories ---------------------------------------------------


def test_rows_partitions_exactly():
    tmap = TileMap.rows(16, 16, 4)
    assert tmap.problems() == []
    assert len(tmap.tiles) == 4
    assert tmap.n_owners == 4
    assert sum(t.pixels for t in tmap.tiles) == 16 * 16


def test_rows_non_divisible_viewport_covers_every_pixel():
    # 7 rows over a height of 16: bands of 2 and 3 rows, no gaps.
    tmap = TileMap.rows(5, 16, 7)
    assert tmap.problems() == []
    heights = [t.height for t in tmap.tiles]
    assert sum(heights) == 16
    assert set(heights) == {2, 3}


def test_rows_owner_round_robin():
    tmap = TileMap.rows(8, 8, 4, n_owners=2)
    assert tmap.n_owners == 2
    assert [t.owner for t in tmap.tiles] == [0, 1, 0, 1]
    assert [t.index for t in tmap.tiles_of_owner(1)] == [1, 3]


def test_rows_validates_counts():
    with pytest.raises(ConfigurationError, match="n_tiles"):
        TileMap.rows(8, 4, 5)
    with pytest.raises(ConfigurationError, match="n_owners"):
        TileMap.rows(8, 8, 2, n_owners=3)


def test_grid_raster_order_and_coverage():
    tmap = TileMap.grid(10, 6, 3, 2)
    assert tmap.problems() == []
    assert len(tmap.tiles) == 6
    # Raster order: the second row of tiles starts at index 3.
    assert tmap.tiles[3].y0 == 3
    assert sum(t.pixels for t in tmap.tiles) == 60


def test_one_by_one_viewport_and_tiles():
    tmap = TileMap.rows(1, 1, 1)
    assert tmap.problems() == []
    assert tmap.tiles[0].pixels == 1
    grid = TileMap.grid(2, 2, 2, 2)  # four 1x1 tiles
    assert grid.problems() == []
    assert all(t.pixels == 1 for t in grid.tiles)


# -- lookup ------------------------------------------------------------------


def test_tile_of_vectorised_lookup():
    tmap = TileMap.rows(4, 4, 2)
    pixels = np.array([0, 3, 4, 8, 15])  # rows 0, 0, 1, 2, 3
    np.testing.assert_array_equal(tmap.tile_of(pixels), [0, 0, 0, 1, 1])


def test_tile_of_reports_uncovered_pixels():
    gap = TileMap(4, 4, [Tile(0, 0, 0, 4, 2, 0)])
    assert gap.tile_of(np.array([0]))[0] == 0
    assert gap.tile_of(np.array([15]))[0] == -1


# -- problems() --------------------------------------------------------------


def test_problems_empty_area_and_bounds():
    tmap = TileMap(4, 4, [Tile(0, 0, 0, 4, 0, 0), Tile(1, 0, 0, 4, 6, 0)])
    problems = " ".join(tmap.problems())
    assert "non-positive area" in problems
    assert "exceeds" in problems


def test_problems_gap_overlap_and_owner_holes():
    gap = TileMap(4, 4, [Tile(0, 0, 0, 4, 2, 0)])
    assert any("covered by no tile" in p for p in gap.problems())

    overlap = TileMap(
        4, 4, [Tile(0, 0, 0, 4, 3, 0), Tile(1, 0, 2, 4, 4, 1)]
    )
    assert any("multiple tiles" in p for p in overlap.problems())

    holes = TileMap(
        4, 4, [Tile(0, 0, 0, 4, 2, 0), Tile(1, 0, 2, 4, 4, 2)]
    )
    assert any("not contiguous" in p for p in holes.problems())

    negative = TileMap(4, 4, [Tile(0, 0, 0, 4, 4, -1)])
    assert any("negative owner" in p for p in negative.problems())


def test_repr_mentions_shape_and_owners():
    assert "8x4" in repr(TileMap.rows(8, 4, 2))
