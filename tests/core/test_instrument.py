"""Unit tests for run instrumentation."""

import pytest

from repro.core.instrument import RunMetrics, StreamStats


def test_stream_stats_record():
    stats = StreamStats()
    stats.record("a", "b", 100)
    stats.record("a", "b", 50)
    stats.record("a", "c", 25)
    assert stats.buffers == 3
    assert stats.bytes == 175
    assert stats.by_route[("a", "b")] == 2
    assert stats.by_route[("a", "c")] == 1
    assert stats.by_dst_host == {"b": 2, "c": 1}


def test_metrics_new_copy_and_filter_aggregates():
    metrics = RunMetrics()
    c1 = metrics.new_copy("Ra", "h0", 0)
    c2 = metrics.new_copy("Ra", "h1", 0)
    c3 = metrics.new_copy("M", "h0", 0)
    c1.busy_time = 2.0
    c1.io_time = 0.5
    c1.buffers_in = 10
    c2.busy_time = 3.0
    c2.buffers_in = 20
    c3.busy_time = 1.0
    assert metrics.filter_busy_time("Ra") == pytest.approx(5.0)
    assert metrics.filter_io_time("Ra") == pytest.approx(0.5)
    assert metrics.filter_buffers_in("Ra") == 30
    assert metrics.filter_busy_time("M") == pytest.approx(1.0)
    assert metrics.filter_busy_time("missing") == 0.0


def test_stream_totals_missing_stream():
    metrics = RunMetrics()
    assert metrics.stream_totals("nope") == (0, 0)
    metrics.streams["s"].record("a", "b", 7)
    assert metrics.stream_totals("s") == (1, 7)


def test_buffers_per_copy_by_class():
    metrics = RunMetrics()
    for host, n in (("rogue0", 10), ("rogue1", 20), ("blue0", 40)):
        copy = metrics.new_copy("Ra", host, 0)
        copy.buffers_in = n
    classes = {"rogue0": "rogue", "rogue1": "rogue", "blue0": "blue"}
    result = metrics.buffers_per_copy_by_class("Ra", classes)
    assert result == {"rogue": 15.0, "blue": 40.0}


def test_buffers_per_copy_unknown_host_uses_host_name():
    metrics = RunMetrics()
    metrics.new_copy("Ra", "mystery", 0).buffers_in = 5
    result = metrics.buffers_per_copy_by_class("Ra", {})
    assert result == {"mystery": 5.0}


def test_summary_shape():
    metrics = RunMetrics()
    metrics.new_copy("f", "h", 0)
    metrics.streams["s"].record("h", "h", 9)
    metrics.makespan = 1.5
    metrics.ack_messages = 3
    summary = metrics.summary()
    assert summary["makespan"] == 1.5
    assert summary["streams"] == {"s": (1, 9)}
    assert summary["filters"] == ["f"]
    assert summary["ack_messages"] == 3


def make_balanced_metrics():
    """Books that balance: 1 source -> 2 consumed buffers on one stream."""
    metrics = RunMetrics()
    src = metrics.new_copy("src", "h0", 0)
    snk = metrics.new_copy("snk", "h0", 0)
    src.buffers_out = 2
    src.finished_at = 1.0
    snk.buffers_in = 2
    snk.finished_at = 2.0
    metrics.streams["s"].record("h0", "h0", 10)
    metrics.streams["s"].record("h0", "h0", 10)
    metrics.makespan = 2.0
    return metrics


def test_validate_passes_on_balanced_books():
    metrics = make_balanced_metrics()
    assert metrics.validate() is metrics  # chains


def test_validate_rejects_unconsumed_buffers():
    from repro.errors import MetricsError

    metrics = make_balanced_metrics()
    metrics.copies[1].buffers_in = 1  # one delivered buffer vanished
    with pytest.raises(MetricsError, match="buffers_in"):
        metrics.validate()


def test_validate_rejects_phantom_sends():
    from repro.errors import MetricsError

    metrics = make_balanced_metrics()
    metrics.copies[0].buffers_out = 3
    with pytest.raises(MetricsError, match="buffers_out"):
        metrics.validate()


def test_validate_rejects_ack_bytes_mismatch():
    from repro.errors import MetricsError

    metrics = make_balanced_metrics()
    metrics.ack_nbytes = 64
    metrics.ack_messages = 2
    metrics.ack_bytes = 100  # != 2 * 64
    with pytest.raises(MetricsError, match="ack_bytes"):
        metrics.validate()


def test_validate_rejects_unaccounted_ack_bytes():
    from repro.errors import MetricsError

    metrics = make_balanced_metrics()
    metrics.ack_messages = 2  # engine never set ack_nbytes nor ack_bytes
    with pytest.raises(MetricsError, match="ack_bytes is 0"):
        metrics.validate()


def test_validate_rejects_more_acks_than_buffers():
    from repro.errors import MetricsError

    metrics = make_balanced_metrics()
    metrics.ack_nbytes = 64
    metrics.ack_messages = 5
    metrics.ack_bytes = 5 * 64
    with pytest.raises(MetricsError, match="exceeds delivered"):
        metrics.validate()


def test_validate_rejects_missing_finish_times():
    from repro.errors import MetricsError

    metrics = make_balanced_metrics()
    for copy in metrics.copies:
        copy.finished_at = 0.0
    with pytest.raises(MetricsError, match="finish time"):
        metrics.validate()


def test_validate_rejects_negative_times():
    from repro.errors import MetricsError

    metrics = make_balanced_metrics()
    metrics.copies[0].busy_time = -1.0
    with pytest.raises(MetricsError, match="negative busy_time"):
        metrics.validate()


def test_validate_with_graph_cross_checks_per_filter():
    from repro.core.graph import FilterGraph
    from repro.errors import MetricsError

    graph = FilterGraph()
    graph.add_filter("src", is_source=True)
    graph.add_filter("snk")
    graph.connect("src", "snk", name="s")
    metrics = make_balanced_metrics()
    metrics.validate(graph)
    metrics.copies[1].buffers_in = 3
    metrics.copies[0].buffers_out = 3  # keep totals self-consistent
    metrics.streams["s"].record("h0", "h0", 10)
    metrics.copies[1].filter_name = "other"
    with pytest.raises(MetricsError, match="snk"):
        metrics.validate(graph)


def test_summary_includes_ack_bytes():
    metrics = RunMetrics()
    metrics.ack_messages = 3
    metrics.ack_bytes = 192
    summary = metrics.summary()
    assert summary["ack_messages"] == 3
    assert summary["ack_bytes"] == 192
