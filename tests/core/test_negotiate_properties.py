"""Property tests for buffer-size negotiation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import FilterGraph
from repro.core.negotiate import declare_bounds, negotiate
from repro.errors import GraphError


@st.composite
def disclosures(draw):
    """A 2-filter graph plus a random set of consistent-or-not disclosures."""
    entries = []
    for who in ("a", "b"):
        if draw(st.booleans()):
            minimum = draw(st.integers(min_value=1, max_value=10_000))
            has_max = draw(st.booleans())
            maximum = (
                draw(st.integers(min_value=minimum, max_value=20_000))
                if has_max
                else None
            )
            entries.append((who, minimum, maximum))
    default = draw(st.integers(min_value=1, max_value=10_000))
    return entries, default


@given(disclosures())
@settings(max_examples=120, deadline=None)
def test_negotiated_size_within_every_disclosure(setup):
    entries, default = setup
    g = FilterGraph()
    g.add_filter("a", is_source=True)
    g.add_filter("b")
    g.connect("a", "b")
    feasible_floor = max((m for _w, m, _x in entries), default=1)
    ceilings = [x for _w, _m, x in entries if x is not None]
    feasible_ceiling = min(ceilings) if ceilings else None
    for who, minimum, maximum in entries:
        declare_bounds(g, who, "a->b", minimum, maximum)

    if feasible_ceiling is not None and feasible_floor > feasible_ceiling:
        try:
            negotiate(g, default=default)
        except GraphError:
            return
        raise AssertionError("infeasible disclosures must raise")

    size = negotiate(g, default=default)["a->b"]
    for _who, minimum, maximum in entries:
        assert size >= minimum
        if maximum is not None:
            assert size <= maximum
    # Never inflate beyond what someone asked for: size is the default
    # unless a minimum pushes above it or a maximum caps it.
    assert size >= min(default, size)
