"""Unit tests for Placement."""

import pytest

from repro.core.graph import FilterGraph
from repro.core.placement import CopySetSpec, Placement
from repro.errors import PlacementError


def graph2():
    g = FilterGraph()
    g.add_filter("src", is_source=True)
    g.add_filter("sink")
    g.connect("src", "sink")
    return g


def test_place_accepts_mixed_entry_forms():
    p = Placement()
    p.place("f", ["h0", ("h1", 3), CopySetSpec("h2", 2)])
    sets = p.copysets("f")
    assert [(s.host, s.copies) for s in sets] == [("h0", 1), ("h1", 3), ("h2", 2)]
    assert p.total_copies("f") == 6
    assert p.hosts_of("f") == ["h0", "h1", "h2"]


def test_spread():
    p = Placement().spread("f", ["a", "b"], copies_per_host=2)
    assert p.total_copies("f") == 4


def test_zero_copies_rejected():
    with pytest.raises(PlacementError):
        CopySetSpec("h", 0)


def test_duplicate_host_rejected():
    with pytest.raises(PlacementError):
        Placement().place("f", ["h0", ("h0", 2)])


def test_empty_placement_rejected():
    with pytest.raises(PlacementError):
        Placement().place("f", [])


def test_unplaced_filter_query_raises():
    with pytest.raises(PlacementError):
        Placement().copysets("missing")


def test_validate_happy_path():
    g = graph2()
    p = Placement().place("src", ["h0"]).place("sink", ["h1"])
    p.validate(g, ["h0", "h1"])


def test_validate_missing_filter():
    g = graph2()
    p = Placement().place("src", ["h0"])
    with pytest.raises(PlacementError, match="no placement"):
        p.validate(g, ["h0"])


def test_validate_unknown_host():
    g = graph2()
    p = Placement().place("src", ["h0"]).place("sink", ["ghost"])
    with pytest.raises(PlacementError, match="unknown host"):
        p.validate(g, ["h0"])


def test_validate_extra_filter():
    g = graph2()
    p = (
        Placement()
        .place("src", ["h0"])
        .place("sink", ["h0"])
        .place("phantom", ["h0"])
    )
    with pytest.raises(PlacementError, match="not in the graph"):
        p.validate(g, ["h0"])


def test_chaining_returns_self():
    p = Placement()
    assert p.place("f", ["h"]) is p
    assert p.spread("g", ["h"]) is p
    assert set(p.placed_filters()) == {"f", "g"}
