"""Unit tests for the RateBased (extension) writer policy."""

import pytest

from repro.core.policies import RateBased, Target, make_policy_factory
from repro.errors import ConfigurationError


def targets(*hosts, local_host=None):
    return [
        Target(i, h, 1, local=(h == local_host)) for i, h in enumerate(hosts)
    ]


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def test_probes_unmeasured_targets_first():
    policy = RateBased()
    policy.clock = FakeClock()
    tgts = targets("a", "b", "c")
    policy.bind(tgts)
    probed = set()
    for _ in range(3):
        pick = policy.select()
        probed.add(pick.host)
        policy.on_sent(pick)
    assert probed == {"a", "b", "c"}


def test_prefers_faster_target_after_measurement():
    policy = RateBased(alpha=1.0)
    clock = FakeClock()
    policy.clock = clock
    tgts = targets("slow", "fast")
    policy.bind(tgts)
    # Probe both at t=0.
    for _ in range(2):
        policy.on_sent(policy.select())
    # fast acks after 1s, slow after 10s.
    clock.t = 1.0
    policy.on_ack(tgts[1])
    clock.t = 10.0
    policy.on_ack(tgts[0])
    # Now fast (score 1) should win over slow (score 10), repeatedly up to
    # the point where fast's outstanding count makes slow cheaper.
    first = policy.select()
    assert first.host == "fast"
    sent = {"slow": 0, "fast": 0}
    for _ in range(9):
        pick = policy.select()
        policy.on_sent(pick)
        sent[pick.host] += 1
    assert sent["fast"] > sent["slow"]


def test_window_blocks():
    policy = RateBased(window=2)
    policy.clock = FakeClock()
    tgts = targets("only")
    policy.bind(tgts)
    policy.on_sent(policy.select())
    policy.on_sent(policy.select())
    assert policy.select() is None
    policy.on_ack(tgts[0])
    assert policy.select() is not None


def test_ewma_update():
    policy = RateBased(alpha=0.5)
    clock = FakeClock()
    policy.clock = clock
    tgts = targets("t")
    policy.bind(tgts)
    policy.on_sent(tgts[0])
    clock.t = 4.0
    policy.on_ack(tgts[0])  # first sample: ewma = 4
    policy.on_sent(tgts[0])
    clock.t = 6.0
    policy.on_ack(tgts[0])  # sample 2: ewma = 0.5*2 + 0.5*4 = 3
    assert policy._ewma[0] == pytest.approx(3.0)


def test_local_tiebreak_on_equal_scores():
    policy = RateBased()
    policy.clock = FakeClock()
    policy.bind(targets("remote", "local", local_host="local"))
    assert policy.select().host == "local"  # both unmeasured -> score 0 tie


def test_spurious_ack_rejected():
    policy = RateBased()
    policy.clock = FakeClock()
    tgts = targets("a")
    policy.bind(tgts)
    with pytest.raises(ConfigurationError):
        policy.on_ack(tgts[0])


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        RateBased(window=0)
    with pytest.raises(ConfigurationError):
        RateBased(alpha=0.0)
    with pytest.raises(ConfigurationError):
        RateBased(alpha=1.5)


def test_registered_in_factory():
    policy = make_policy_factory("rate", window=3)()
    assert isinstance(policy, RateBased)
    assert policy.window == 3


def test_fifo_send_ack_matching():
    # Acks consume send timestamps in order (FIFO per target).
    policy = RateBased(alpha=1.0)
    clock = FakeClock()
    policy.clock = clock
    tgts = targets("t")
    policy.bind(tgts)
    policy.on_sent(tgts[0])  # sent at t=0
    clock.t = 1.0
    policy.on_sent(tgts[0])  # sent at t=1
    clock.t = 5.0
    policy.on_ack(tgts[0])  # matches the t=0 send -> latency 5
    assert policy._ewma[0] == pytest.approx(5.0)
    clock.t = 6.0
    policy.on_ack(tgts[0])  # matches the t=1 send -> latency 5
    assert policy._ewma[0] == pytest.approx(5.0)
