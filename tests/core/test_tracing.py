"""Unit tests for the engine-agnostic tracing layer."""

import threading

import pytest

from repro.core.tracing import EVENT_KINDS, QueueSample, TraceEvent, Tracer


def make_tracer():
    """A tracer with one copy's worth of hand-written activity."""
    tracer = Tracer(clock="sim")
    tracer.record(0.0, "f@h#0", "recv", "s")
    tracer.record(0.1, "f@h#0", "compute", "start")
    tracer.record(0.3, "f@h#0", "compute", "end")
    tracer.record(0.3, "f@h#0", "io", "start")
    tracer.record(0.4, "f@h#0", "io", "end")
    tracer.record(0.4, "f@h#0", "blocked", "start")
    tracer.record(0.6, "f@h#0", "blocked", "end")
    tracer.record(0.6, "f@h#0", "send", "s->h2")
    tracer.record(0.7, "f@h#0", "ack", "0.125")
    tracer.record(0.8, "f@h#0", "flush", "start")
    tracer.record(0.9, "f@h#0", "flush", "end")
    tracer.record(1.0, "f@h#0", "done")
    tracer.sample_queue(0.0, "f@h", 3)
    tracer.sample_queue(0.5, "f@h", 1)
    return tracer


def test_unknown_kind_rejected():
    tracer = Tracer()
    with pytest.raises(ValueError, match="unknown trace event kind"):
        tracer.record(0.0, "c", "teleport")


def test_all_schema_kinds_accepted():
    tracer = Tracer()
    for kind in EVENT_KINDS:
        tracer.record(0.0, "c", kind)
    assert len(tracer.events) == len(EVENT_KINDS)


def test_spans_and_blocked_time():
    tracer = make_tracer()
    assert tracer.busy_spans("f@h#0") == [(0.1, 0.3)]
    assert tracer.spans("f@h#0", "io") == [(0.3, 0.4)]
    assert tracer.blocked_spans("f@h#0") == [(0.4, 0.6)]
    assert tracer.blocked_time("f@h#0") == pytest.approx(0.2)
    with pytest.raises(ValueError, match="not recorded as spans"):
        tracer.spans("f@h#0", "recv")


def test_utilisation_accounting():
    tracer = make_tracer()
    util = tracer.utilisation()["f@h#0"]
    assert util["span"] == pytest.approx(1.0)
    assert util["busy"] == pytest.approx(0.2 + 0.1)  # compute + flush
    assert util["io"] == pytest.approx(0.1)
    assert util["blocked"] == pytest.approx(0.2)
    assert util["idle"] == pytest.approx(1.0 - 0.3 - 0.1 - 0.2)


def test_ack_latencies_and_histogram():
    tracer = Tracer()
    for value in (0.001, 0.002, 0.004, 0.008):
        tracer.record(0.0, "p@h#0", "ack", f"{value}")
    tracer.record(0.0, "p@h#0", "ack", "not-a-number")  # skipped, not fatal
    latencies = tracer.ack_latencies()
    assert latencies == [0.001, 0.002, 0.004, 0.008]
    histogram = tracer.ack_latency_histogram(bins=7)
    assert sum(count for _lo, _hi, count in histogram) == 4
    assert histogram[0][0] == pytest.approx(0.001)
    assert histogram[-1][1] == pytest.approx(0.008)
    assert Tracer().ack_latency_histogram() == []


def test_queue_depth_stats():
    tracer = make_tracer()
    stats = tracer.queue_depth_stats()["f@h"]
    assert stats["samples"] == 2
    assert stats["min"] == 1.0
    assert stats["max"] == 3.0
    assert stats["mean"] == pytest.approx(2.0)


def test_dropped_surfaced_everywhere():
    tracer = Tracer(limit=2)
    for i in range(5):
        tracer.record(float(i), "c", "recv")
    tracer.sample_queue(0.0, "q", 1)  # also counted against the limit
    assert len(tracer.events) == 2
    assert tracer.dropped == 4
    assert tracer.summary()["dropped"] == 4
    assert "TRUNCATED" in tracer.timeline()
    assert "4" in tracer.report()
    assert "dropped" in tracer.report()


def test_empty_timeline_mentions_drops():
    tracer = Tracer(limit=1)
    tracer.sample_queue(0.0, "q", 1)
    tracer.record(0.0, "c", "recv")
    assert "dropped" in tracer.timeline()


def test_timeline_paints_marks():
    tracer = make_tracer()
    text = tracer.timeline(width=32)
    assert "f@h#0" in text
    assert "#" in text  # compute
    assert "." in text  # blocked
    assert "TRUNCATED" not in text


def test_report_sections():
    report = make_tracer().report(width=32)
    assert "per-copy utilisation" in report
    assert "ack latency" in report
    assert "queue depth" in report


def test_jsonl_round_trip(tmp_path):
    tracer = make_tracer()
    tracer.dropped = 3  # pretend truncation; meta must carry it
    path = tmp_path / "trace.jsonl"
    tracer.to_jsonl(str(path))
    loaded = Tracer.from_jsonl(str(path))
    assert loaded.events == tracer.events
    assert loaded.queue_samples == tracer.queue_samples
    assert loaded.dropped == 3
    assert loaded.clock == "sim"
    assert loaded.limit == tracer.limit
    # The loaded trace renders the same timeline.
    assert loaded.timeline(width=24) == tracer.timeline(width=24)


def test_jsonl_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "event", "t": 0.0, "copy": "c", "kind": "recv"}\nnot json\n')
    with pytest.raises(ValueError, match="line 2"):
        Tracer.from_jsonl(str(path))


def test_jsonl_skips_unknown_record_types(tmp_path):
    path = tmp_path / "future.jsonl"
    path.write_text(
        '{"type": "meta", "version": 99, "clock": "sim", "dropped": 0}\n'
        '{"type": "hologram", "t": 0.0}\n'
        '{"type": "event", "t": 1.0, "copy": "c", "kind": "done", "detail": ""}\n'
    )
    loaded = Tracer.from_jsonl(str(path))
    assert loaded.events == [TraceEvent(1.0, "c", "done", "")]


def test_record_is_thread_safe():
    tracer = Tracer()
    errors = []

    def spam(tid):
        try:
            for i in range(500):
                tracer.record(float(i), f"copy{tid}", "recv")
                tracer.sample_queue(float(i), f"q{tid}", i % 5)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=spam, args=(t,)) for t in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(tracer.events) + len(tracer.queue_samples) == 8 * 1000
    assert tracer.dropped == 0


def test_limit_validation():
    with pytest.raises(ValueError):
        Tracer(limit=0)


def test_queue_sample_dataclass_round_values():
    sample = QueueSample(1.0, "q", 4)
    assert sample.depth == 4


def test_timeline_rejects_degenerate_width():
    tracer = make_tracer()
    for width in (0, -3):
        with pytest.raises(ValueError, match="width"):
            tracer.timeline(width=width)
    assert "|" in tracer.timeline(width=1)  # minimum width still renders


def test_stage_busy_sums_copies_per_filter():
    tracer = Tracer()
    # Two Ra copies and one M copy; busy = compute + flush spans.
    tracer.record(0.0, "Ra@h0#0", "compute", "start")
    tracer.record(1.0, "Ra@h0#0", "compute", "end")
    tracer.record(0.5, "Ra@h1#0", "compute", "start")
    tracer.record(2.5, "Ra@h1#0", "compute", "end")
    tracer.record(3.0, "M@h0#0", "flush", "start")
    tracer.record(3.25, "M@h0#0", "flush", "end")
    busy = tracer.stage_busy()
    assert busy == pytest.approx({"Ra": 3.0, "M": 0.25})
    assert list(busy) == ["M", "Ra"]  # sorted by stage name


def test_stage_busy_empty_tracer():
    assert Tracer().stage_busy() == {}
