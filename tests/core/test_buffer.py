"""Unit tests for DataBuffer, buffer chunking, and the shared-memory codec."""

import numpy as np
import pytest

from repro.core.buffer import BufferCodec, DataBuffer, chunk_bytes


def test_buffer_basic():
    buf = DataBuffer(1024, payload=[1, 2], tags={"chunk": 7})
    assert buf.nbytes == 1024
    assert buf.payload == [1, 2]
    assert buf.tags["chunk"] == 7


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        DataBuffer(-1)


def test_with_tags_merges_without_mutating():
    buf = DataBuffer(10, tags={"a": 1})
    buf2 = buf.with_tags(b=2)
    assert buf2.tags == {"a": 1, "b": 2}
    assert buf.tags == {"a": 1}
    assert buf2.nbytes == 10


def test_chunk_bytes_exact_division():
    assert chunk_bytes(400, 100) == [100, 100, 100, 100]


def test_chunk_bytes_remainder():
    assert chunk_bytes(450, 100) == [100, 100, 100, 100, 50]


def test_chunk_bytes_smaller_than_buffer():
    assert chunk_bytes(42, 100) == [42]


def test_chunk_bytes_zero():
    assert chunk_bytes(0, 100) == []


def test_chunk_bytes_validation():
    with pytest.raises(ValueError):
        chunk_bytes(100, 0)
    with pytest.raises(ValueError):
        chunk_bytes(-1, 10)


def test_chunk_bytes_conserves_total():
    for total in (0, 1, 99, 100, 101, 12345):
        assert sum(chunk_bytes(total, 100)) == total


# -- BufferCodec ---------------------------------------------------------------


def round_trip(codec, buffer):
    encoded = codec.encode(buffer)
    decoded, lease = codec.decode(encoded)
    return encoded, decoded, lease


def test_codec_large_arrays_go_to_shared_memory():
    arr = np.arange(30_000, dtype=np.float64)
    codec = BufferCodec(shm_threshold=1024)
    encoded, decoded, lease = round_trip(
        codec, DataBuffer(arr.nbytes, payload=arr, tags={"chunk": 3})
    )
    assert len(encoded.segments) == 1
    assert encoded.shared_bytes == arr.nbytes
    assert len(encoded.header) < 4096  # header stays small
    assert decoded.nbytes == arr.nbytes
    assert decoded.tags == {"chunk": 3}
    np.testing.assert_array_equal(decoded.payload, arr)
    lease.release()


def test_codec_small_arrays_stay_inline():
    arr = np.arange(16, dtype=np.float64)
    codec = BufferCodec(shm_threshold=1024)
    encoded, decoded, lease = round_trip(codec, DataBuffer(128, payload=arr))
    assert encoded.segments == ()
    np.testing.assert_array_equal(decoded.payload, arr)
    lease.release()


class NestedPayload:
    """Pickle-friendly payload wrapper (module-level for the codec tests)."""

    def __init__(self, tris, label):
        self.tris = tris
        self.label = label


def test_codec_nested_payload_objects():
    tris = np.random.default_rng(1).random((500, 3, 3)).astype(np.float32)
    codec = BufferCodec(shm_threshold=1024)
    encoded, decoded, lease = round_trip(
        codec, DataBuffer(tris.nbytes, payload=NestedPayload(tris, "soup"))
    )
    assert len(encoded.segments) == 1  # array found inside the object graph
    assert decoded.payload.label == "soup"
    np.testing.assert_array_equal(decoded.payload.tris, tris)
    lease.release()


def test_codec_inline_mode_has_no_segments():
    arr = np.arange(30_000, dtype=np.float64)
    codec = BufferCodec(use_shared_memory=False)
    encoded, decoded, lease = round_trip(codec, DataBuffer(0, payload=arr))
    assert encoded.segments == ()
    np.testing.assert_array_equal(decoded.payload, arr)
    lease.release()  # no-op, still safe


def test_codec_lease_release_is_idempotent():
    arr = np.zeros(20_000)
    codec = BufferCodec(shm_threshold=1024)
    _encoded, decoded, lease = round_trip(codec, DataBuffer(0, payload=arr))
    view = decoded.payload
    lease.release()
    lease.release()
    # The view stays readable until garbage collected (the mapping outlives
    # the unlink).
    assert view.sum() == 0.0


def test_codec_release_encoded_frees_segments():
    from multiprocessing import shared_memory

    arr = np.zeros(20_000)
    codec = BufferCodec(shm_threshold=1024)
    encoded = codec.encode(DataBuffer(0, payload=arr))
    name = encoded.segments[0][0]
    BufferCodec.release_encoded(encoded)
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)
    BufferCodec.release_encoded(encoded)  # idempotent


def test_codec_threshold_validation():
    with pytest.raises(ValueError):
        BufferCodec(shm_threshold=0)


def test_codec_preserves_non_contiguous_and_object_payloads():
    base = np.arange(40_000, dtype=np.float64).reshape(200, 200)
    strided = base[::2, ::2]  # non-contiguous view
    codec = BufferCodec(shm_threshold=1024)
    _encoded, decoded, lease = round_trip(
        codec, DataBuffer(0, payload={"view": strided, "meta": [1, "two"]})
    )
    np.testing.assert_array_equal(decoded.payload["view"], strided)
    assert decoded.payload["meta"] == [1, "two"]
    lease.release()
