"""Unit tests for DataBuffer and buffer chunking."""

import pytest

from repro.core.buffer import DataBuffer, chunk_bytes


def test_buffer_basic():
    buf = DataBuffer(1024, payload=[1, 2], tags={"chunk": 7})
    assert buf.nbytes == 1024
    assert buf.payload == [1, 2]
    assert buf.tags["chunk"] == 7


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        DataBuffer(-1)


def test_with_tags_merges_without_mutating():
    buf = DataBuffer(10, tags={"a": 1})
    buf2 = buf.with_tags(b=2)
    assert buf2.tags == {"a": 1, "b": 2}
    assert buf.tags == {"a": 1}
    assert buf2.nbytes == 10


def test_chunk_bytes_exact_division():
    assert chunk_bytes(400, 100) == [100, 100, 100, 100]


def test_chunk_bytes_remainder():
    assert chunk_bytes(450, 100) == [100, 100, 100, 100, 50]


def test_chunk_bytes_smaller_than_buffer():
    assert chunk_bytes(42, 100) == [42]


def test_chunk_bytes_zero():
    assert chunk_bytes(0, 100) == []


def test_chunk_bytes_validation():
    with pytest.raises(ValueError):
        chunk_bytes(100, 0)
    with pytest.raises(ValueError):
        chunk_bytes(-1, 10)


def test_chunk_bytes_conserves_total():
    for total in (0, 1, 99, 100, 101, 12345):
        assert sum(chunk_bytes(total, 100)) == total
