"""Tests for stream buffer-size negotiation."""

import pytest

from repro.core.graph import FilterGraph
from repro.core.negotiate import BufferBounds, declare_bounds, negotiate
from repro.errors import GraphError


def graph():
    g = FilterGraph()
    g.add_filter("a", is_source=True)
    g.add_filter("b")
    g.add_filter("c")
    g.connect("a", "b")
    g.connect("b", "c")
    return g


def test_bounds_validation():
    with pytest.raises(GraphError):
        BufferBounds(0)
    with pytest.raises(GraphError):
        BufferBounds(100, 50)
    BufferBounds(100, 100)  # min == max allowed


def test_default_when_nothing_disclosed():
    sizes = negotiate(graph(), default=4096)
    assert sizes == {"a->b": 4096, "b->c": 4096}


def test_minimum_raises_size():
    g = graph()
    declare_bounds(g, "b", "a->b", minimum=10_000)
    sizes = negotiate(g, default=4096)
    assert sizes["a->b"] == 10_000
    assert sizes["b->c"] == 4096


def test_maximum_caps_default():
    g = graph()
    declare_bounds(g, "a", "a->b", minimum=1, maximum=2048)
    assert negotiate(g, default=65536)["a->b"] == 2048


def test_largest_minimum_wins():
    g = graph()
    declare_bounds(g, "a", "a->b", minimum=1000)
    declare_bounds(g, "b", "a->b", minimum=3000)
    # With a small runtime default, the strictest disclosed minimum rules.
    assert negotiate(g, default=1024)["a->b"] == 3000


def test_min_equals_max_pins_size():
    g = graph()
    declare_bounds(g, "a", "a->b", minimum=2 << 20, maximum=2 << 20)
    assert negotiate(g)["a->b"] == 2 << 20


def test_incompatible_disclosures_rejected():
    g = graph()
    declare_bounds(g, "a", "a->b", minimum=1, maximum=100)
    declare_bounds(g, "b", "a->b", minimum=500)
    with pytest.raises(GraphError, match="exceeds"):
        negotiate(g)


def test_declare_validation():
    g = graph()
    with pytest.raises(GraphError):
        declare_bounds(g, "ghost", "a->b", 10)
    with pytest.raises(GraphError):
        declare_bounds(g, "a", "nope", 10)
    with pytest.raises(GraphError):
        declare_bounds(g, "c", "a->b", 10)  # not an endpoint


def test_bad_default_rejected():
    with pytest.raises(GraphError):
        negotiate(graph(), default=0)


def test_app_level_negotiation_feeds_models():
    """The isosurface app's negotiated sizes drive the model buffers."""
    from repro.data import HostDisks, StorageMap
    from repro.viz.app import IsosurfaceApp
    from repro.viz.models import BufferSizes
    from repro.viz.profile import DatasetProfile

    profile = DatasetProfile.synthetic(
        "n", (17, 17, 17), nchunks=8, nfiles=4, timesteps=1,
        total_triangles=1000, seed=0,
    )
    storage = StorageMap.balanced(profile.files, [HostDisks("h")])
    app = IsosurfaceApp(
        profile, storage, width=256, height=256, algorithm="zbuffer",
        buffers=BufferSizes(read=100_000, triangles=50_000,
                            zbuffer_slab=1 << 20, wpa=8192),
    )
    g = app.graph("R-E-Ra-M")
    # The z-buffer raster pinned its merge stream; sizes flowed to models.
    raster_model = g.filters["Ra"].sim_factory()
    assert raster_model.buffers.zbuffer_slab == 1 << 20
    read_model = g.filters["R"].sim_factory()
    assert read_model.buffers.read == 100_000
