"""Unit tests for RR / WRR / DD writer policies."""

import pytest

from repro.core.policies import (
    DemandDriven,
    RoundRobin,
    Target,
    WeightedRoundRobin,
    make_policy_factory,
)
from repro.errors import ConfigurationError


def targets(*spec, local_host=None):
    """Build targets from (host, copies) pairs."""
    return [
        Target(i, host, copies, local=(host == local_host))
        for i, (host, copies) in enumerate(spec)
    ]


def test_rr_cycles_evenly():
    policy = RoundRobin()
    policy.bind(targets(("a", 1), ("b", 1), ("c", 1)))
    picks = [policy.select().host for _ in range(6)]
    assert picks == ["a", "b", "c", "a", "b", "c"]


def test_rr_ignores_copy_counts():
    policy = RoundRobin()
    policy.bind(targets(("a", 4), ("b", 1)))
    picks = [policy.select().host for _ in range(4)]
    assert picks == ["a", "b", "a", "b"]


def test_wrr_proportional_to_copies():
    policy = WeightedRoundRobin()
    policy.bind(targets(("a", 2), ("b", 1)))
    picks = [policy.select().host for _ in range(6)]
    assert picks.count("a") == 4
    assert picks.count("b") == 2


def test_wrr_interleaves():
    policy = WeightedRoundRobin()
    policy.bind(targets(("a", 2), ("b", 1)))
    # One cycle: round 0 -> a, b ; round 1 -> a.
    assert [policy.select().host for _ in range(3)] == ["a", "b", "a"]


def test_wrr_equal_copies_behaves_like_rr():
    policy = WeightedRoundRobin()
    policy.bind(targets(("a", 2), ("b", 2)))
    picks = [policy.select().host for _ in range(4)]
    assert picks == ["a", "b", "a", "b"]


def test_dd_prefers_least_unacked():
    policy = DemandDriven(window=8)
    tgts = targets(("a", 1), ("b", 1))
    policy.bind(tgts)
    first = policy.select()
    policy.on_sent(first)
    second = policy.select()
    policy.on_sent(second)
    assert {first.host, second.host} == {"a", "b"}
    # Ack "a" -> next pick must be the acked (now least-loaded) target.
    policy.on_ack(tgts[0])
    assert policy.select().host == "a"


def test_dd_window_blocks():
    policy = DemandDriven(window=2)
    tgts = targets(("a", 1))
    policy.bind(tgts)
    for _ in range(2):
        policy.on_sent(policy.select())
    assert policy.select() is None  # window full
    policy.on_ack(tgts[0])
    assert policy.select() is not None


def test_dd_local_tiebreak():
    policy = DemandDriven(window=4)
    policy.bind(targets(("remote", 1), ("local", 1), local_host="local"))
    pick = policy.select()
    assert pick.host == "local"


def test_dd_local_tiebreak_disabled():
    policy = DemandDriven(window=4, prefer_local=False)
    policy.bind(targets(("remote", 1), ("local", 1), local_host="local"))
    assert policy.select().host == "remote"  # first in stable order


def test_dd_load_shifts_to_faster_consumer():
    # Simulate: target "slow" never acks, target "fast" acks instantly.
    policy = DemandDriven(window=4)
    tgts = targets(("slow", 1), ("fast", 1))
    policy.bind(tgts)
    sent = {"slow": 0, "fast": 0}
    for _ in range(20):
        pick = policy.select()
        if pick is None:
            break
        policy.on_sent(pick)
        sent[pick.host] += 1
        if pick.host == "fast":
            policy.on_ack(pick)
    assert sent["fast"] > sent["slow"]
    # "slow" receives exactly one buffer: after that its unacked count stays
    # above "fast"'s (which acks instantly), so it is never selected again.
    assert sent["slow"] == 1


def test_dd_spurious_ack_rejected():
    policy = DemandDriven()
    tgts = targets(("a", 1))
    policy.bind(tgts)
    with pytest.raises(ConfigurationError):
        policy.on_ack(tgts[0])


def test_dd_window_validation():
    with pytest.raises(ConfigurationError):
        DemandDriven(window=0)


def test_bind_empty_rejected():
    with pytest.raises(ConfigurationError):
        RoundRobin().bind([])


def test_sent_counter_maintained():
    policy = RoundRobin()
    tgts = targets(("a", 1), ("b", 1))
    policy.bind(tgts)
    for _ in range(5):
        policy.on_sent(policy.select())
    assert tgts[0].sent == 3
    assert tgts[1].sent == 2


def test_factory_registry():
    assert isinstance(make_policy_factory("rr")(), RoundRobin)
    assert isinstance(make_policy_factory("WRR")(), WeightedRoundRobin)
    dd = make_policy_factory("DD", window=9)()
    assert isinstance(dd, DemandDriven)
    assert dd.window == 9
    with pytest.raises(ConfigurationError):
        make_policy_factory("bogus")


def test_factory_instances_do_not_share_state():
    factory = make_policy_factory("RR")
    p1, p2 = factory(), factory()
    p1.bind(targets(("a", 1), ("b", 1)))
    p2.bind(targets(("a", 1), ("b", 1)))
    p1.select()
    assert p2.select().host == "a"  # p2 unaffected by p1's cursor


def test_wrr_rebind_resets_cursor():
    # Rebinding to a new target set must restart the cycle: a stale cursor
    # would skew the first picks toward whatever offset the old cycle
    # happened to stop at.
    policy = WeightedRoundRobin()
    policy.bind(targets(("a", 2), ("b", 1)))
    for _ in range(2):  # advance mid-cycle: a, b consumed, cursor at 2
        policy.select()
    policy.bind(targets(("c", 1), ("d", 1)))
    assert [policy.select().host for _ in range(4)] == ["c", "d", "c", "d"]


def test_wrr_rebind_same_targets_restarts_cycle():
    policy = WeightedRoundRobin()
    new = targets(("a", 2), ("b", 1))
    policy.bind(new)
    policy.select()  # cursor at 1
    policy.bind(new)
    assert policy.select().host == "a"


def test_rate_probes_each_target_once_before_estimating():
    from repro.core.policies import RateBased

    policy = RateBased(window=4, prefer_local=False)
    clock = [0.0]
    policy.clock = lambda: clock[0]
    policy.bind(targets(("a", 1), ("b", 1)))
    # First two sends are probes (one per unmeasured idle target).
    first = policy.select()
    policy.on_sent(first)
    second = policy.select()
    policy.on_sent(second)
    assert {first.host, second.host} == {"a", "b"}
    # Acks form estimates; selection proceeds from scores, never None
    # while windows have room.
    clock[0] = 1.0
    policy.on_ack(first)
    policy.on_ack(second)
    assert policy.select() is not None


# -- TILE (content routing) --------------------------------------------------


def tile_policy(n=3):
    from repro.core.policies import TileRouted

    policy = TileRouted()
    policy.bind(targets(*[(f"h{i}", 1) for i in range(n)]))
    return policy


def test_tile_routes_by_owner_tag():
    policy = tile_policy(3)
    assert policy.route({"tile_owner": 2}).host == "h2"
    assert policy.route({"tile_owner": 0}).host == "h0"
    # A table lookup, not a cycle: the same tag always lands the same host.
    assert policy.route({"tile_owner": 2}).host == "h2"


def test_tile_select_without_tags_raises():
    with pytest.raises(ConfigurationError, match="route"):
        tile_policy().select()


def test_tile_missing_or_bad_tag_raises():
    policy = tile_policy()
    with pytest.raises(ConfigurationError, match="tile_owner"):
        policy.route(None)
    with pytest.raises(ConfigurationError, match="tile_owner"):
        policy.route({"other": 1})
    with pytest.raises(ConfigurationError, match="tile_owner"):
        policy.route({"tile_owner": "1"})
    with pytest.raises(ConfigurationError, match="tile_owner"):
        policy.route({"tile_owner": True})  # bool is not an owner index


def test_tile_out_of_range_owner_raises():
    with pytest.raises(ConfigurationError, match="out of range"):
        tile_policy(2).route({"tile_owner": 2})
    with pytest.raises(ConfigurationError, match="out of range"):
        tile_policy(2).route({"tile_owner": -1})


def test_tile_custom_tag_and_describe():
    from repro.core.policies import TileRouted

    policy = TileRouted(tag="band")
    policy.bind(targets(("a", 1)))
    assert policy.route({"band": 0}).host == "a"
    described = policy.describe()
    assert described["name"] == "TileRouted"
    assert described["content_routed"] is True
    assert described["tag"] == "band"
    with pytest.raises(ConfigurationError, match="non-empty"):
        TileRouted(tag="")


def test_tile_registered_in_factory():
    from repro.core.policies import TileRouted

    policy = make_policy_factory("TILE")()
    assert isinstance(policy, TileRouted)
    assert policy.needs_ack is False


def test_capacity_policies_route_ignores_tags():
    # The default route() hook is select(): tags are irrelevant to RR.
    policy = RoundRobin()
    policy.bind(targets(("a", 1), ("b", 1)))
    assert policy.route({"tile_owner": 1}).host == "a"
    assert policy.route(None).host == "b"
    assert policy.describe()["content_routed"] is False
