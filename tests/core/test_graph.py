"""Unit tests for FilterGraph construction and validation."""

import pytest

from repro.core.graph import FilterGraph
from repro.errors import GraphError


def pipeline_graph():
    g = FilterGraph()
    g.add_filter("read", is_source=True)
    g.add_filter("extract")
    g.add_filter("raster")
    g.add_filter("merge")
    g.connect("read", "extract")
    g.connect("extract", "raster")
    g.connect("raster", "merge")
    return g


def test_pipeline_builds_and_validates():
    g = pipeline_graph()
    g.validate()
    assert [f.name for f in g.sources()] == ["read"]
    assert [f.name for f in g.sinks()] == ["merge"]
    assert g.topological_order() == ["read", "extract", "raster", "merge"]


def test_stream_default_names():
    g = pipeline_graph()
    assert set(g.streams) == {"read->extract", "extract->raster", "raster->merge"}


def test_duplicate_filter_rejected():
    g = FilterGraph()
    g.add_filter("a", is_source=True)
    with pytest.raises(GraphError):
        g.add_filter("a")


def test_empty_name_rejected():
    g = FilterGraph()
    with pytest.raises(GraphError):
        g.add_filter("")


def test_unknown_endpoint_rejected():
    g = FilterGraph()
    g.add_filter("a", is_source=True)
    with pytest.raises(GraphError):
        g.connect("a", "missing")


def test_self_loop_rejected():
    g = FilterGraph()
    g.add_filter("a", is_source=True)
    with pytest.raises(GraphError):
        g.connect("a", "a")


def test_duplicate_stream_name_rejected():
    g = FilterGraph()
    g.add_filter("a", is_source=True)
    g.add_filter("b")
    g.add_filter("c")
    g.connect("a", "b", name="s")
    with pytest.raises(GraphError):
        g.connect("a", "c", name="s")


def test_cycle_detected():
    g = FilterGraph()
    g.add_filter("a", is_source=True)
    g.add_filter("b")
    g.add_filter("c")
    g.connect("a", "b")
    g.connect("b", "c")
    g.connect("c", "b")
    with pytest.raises(GraphError, match="cycle"):
        g.validate()


def test_orphan_non_source_rejected():
    g = FilterGraph()
    g.add_filter("lonely")  # no inputs, not marked source
    with pytest.raises(GraphError, match="is_source"):
        g.validate()


def test_source_with_inputs_rejected():
    g = FilterGraph()
    g.add_filter("a", is_source=True)
    g.add_filter("b", is_source=True)
    g.connect("a", "b")
    with pytest.raises(GraphError, match="must not have inputs"):
        g.validate()


def test_empty_graph_rejected():
    with pytest.raises(GraphError, match="no filters"):
        FilterGraph().validate()


def test_upstream_of():
    g = pipeline_graph()
    assert g.upstream_of("raster") == {"read", "extract"}
    assert g.upstream_of("read") == set()
    with pytest.raises(GraphError):
        g.upstream_of("nope")


def test_fan_out_and_fan_in():
    g = FilterGraph()
    g.add_filter("src", is_source=True)
    g.add_filter("a")
    g.add_filter("b")
    g.add_filter("sink")
    g.connect("src", "a")
    g.connect("src", "b")
    g.connect("a", "sink")
    g.connect("b", "sink")
    g.validate()
    assert len(g.filters["src"].outputs) == 2
    assert len(g.filters["sink"].inputs) == 2
