"""Calibration regression: full-scale Table 2 must stay near the paper.

The cost constants in :class:`repro.viz.models.CostParams` were calibrated
so a full-scale (scale=1.0) run of the Tables 1-2 baseline lands near the
paper's measured filter times on a Rogue node.  This test pins that
calibration so future changes to the models or substrate cannot silently
drift away from the paper's Table 2:

    paper (z-buffer): R 0.68s  E 1.65s  Ra 9.43s  M 0.90s
"""

import pytest

from repro.experiments.table1 import baseline_pipeline
from repro.viz.profile import dataset_1p5gb


@pytest.fixture(scope="module")
def full_scale_run():
    profile = dataset_1p5gb(scale=1.0)
    return {
        algorithm: baseline_pipeline(profile, algorithm, 2048, 2048)
        for algorithm in ("zbuffer", "active")
    }


def _time(metrics, name):
    return metrics.filter_busy_time(name) + metrics.filter_io_time(name)


def test_read_time_near_paper(full_scale_run):
    # Paper: 0.68 s.  Read is disk-bound; allow generous tolerance.
    t = _time(full_scale_run["zbuffer"], "R")
    assert 0.4 < t < 2.0


def test_extract_time_near_paper(full_scale_run):
    # Paper: 1.65 s.
    t = _time(full_scale_run["zbuffer"], "E")
    assert 1.1 < t < 2.5


def test_raster_time_near_paper(full_scale_run):
    # Paper: 9.43 s (z-buffer), 11.67 s (active pixel).
    zb = _time(full_scale_run["zbuffer"], "Ra")
    ap = _time(full_scale_run["active"], "Ra")
    assert 7.0 < zb < 13.0
    assert 8.5 < ap < 16.0
    assert ap > zb  # active pixel pays the WPA bookkeeping


def test_merge_time_near_paper(full_scale_run):
    # Paper: 0.90 s (z-buffer), 0.73 s (active pixel).
    zb = _time(full_scale_run["zbuffer"], "M")
    ap = _time(full_scale_run["active"], "M")
    assert 0.5 < zb < 1.5
    assert 0.2 < ap < 1.2


def test_raster_share_near_three_quarters(full_scale_run):
    metrics = full_scale_run["zbuffer"]
    total = sum(_time(metrics, f) for f in ("R", "E", "Ra", "M"))
    share = _time(metrics, "Ra") / total
    assert 0.6 < share < 0.85  # paper: 74.5 %


def test_stream_volumes_near_table1(full_scale_run):
    metrics = full_scale_run["zbuffer"]
    # Paper: R->E 38.6 MB, E->Ra 11.8 MB, Ra->M 32.0 MB.
    _, read_bytes = metrics.stream_totals("R->E")
    assert 35e6 < read_bytes < 45e6
    _, tri_bytes = metrics.stream_totals("E->Ra")
    assert 6e6 < tri_bytes < 15e6
    _, zb_bytes = metrics.stream_totals("Ra->M")
    assert zb_bytes == 2048 * 2048 * 8
    # Active pixel Ra->M near the paper's 28.5 MB.
    _, ap_bytes = full_scale_run["active"].stream_totals("Ra->M")
    assert 18e6 < ap_bytes < 36e6


def test_buffer_counts_near_table1(full_scale_run):
    metrics = full_scale_run["zbuffer"]
    read_buffers, _ = metrics.stream_totals("R->E")
    # Paper: 443 buffers at its (undisclosed) buffer size; ours: 88 KiB
    # buffers over ~39 MB -> same few-hundred ballpark.
    assert 300 < read_buffers < 700
    zb_buffers, _ = metrics.stream_totals("Ra->M")
    assert zb_buffers == 16  # 32 MiB in 2 MiB slabs, exactly as the paper
