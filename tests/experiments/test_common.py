"""Unit tests for the experiment machinery (ResultTable, helpers)."""

import pytest

from repro.experiments.common import ResultTable, mean


def sample():
    table = ResultTable("T", ["a", "b", "value"])
    table.add(a=1, b="x", value=10.0)
    table.add(a=1, b="y", value=20.0)
    table.add(a=2, b="x", value=30.0)
    return table


def test_mean():
    assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        mean([])


def test_add_rejects_unknown_columns():
    table = ResultTable("T", ["a"])
    with pytest.raises(KeyError):
        table.add(a=1, bogus=2)


def test_column_and_select():
    table = sample()
    assert table.column("value") == [10.0, 20.0, 30.0]
    assert table.select(a=1) == [
        {"a": 1, "b": "x", "value": 10.0},
        {"a": 1, "b": "y", "value": 20.0},
    ]
    assert table.select(a=1, b="y") == [{"a": 1, "b": "y", "value": 20.0}]
    assert table.select(a=99) == []


def test_value_unique_match():
    table = sample()
    assert table.value("value", a=2, b="x") == 30.0
    with pytest.raises(KeyError):
        table.value("value", a=1)  # two matches
    with pytest.raises(KeyError):
        table.value("value", a=99)  # no match


def test_format_aligns_and_includes_notes():
    table = sample()
    table.notes.append("hello")
    text = table.format()
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[2] and "value" in lines[2]
    assert any("10.000" in line for line in lines)
    assert text.endswith("note: hello")


def test_format_empty_table():
    table = ResultTable("Empty", ["x"])
    text = table.format()
    assert "Empty" in text
    assert "x" in text


def test_missing_cells_render_blank():
    table = ResultTable("T", ["a", "b"])
    table.add(a=1)
    assert table.column("b") == [None]
    assert "1" in table.format()
