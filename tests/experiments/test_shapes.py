"""Shape tests: every table/figure reproduces the paper's qualitative claims.

These run each experiment at a reduced scale and assert the orderings,
ratios and trends the paper reports — the reproduction contract defined in
DESIGN.md.  Absolute numbers are not compared (different substrate).
"""

import pytest

from repro.experiments import figure4, figure5, figure7, table1, table2, table3, table4, table5

SCALE_SMALL = 0.02


# ---------------------------------------------------------------- Table 1
@pytest.fixture(scope="module")
def t1():
    return table1.run(scale=0.05)


def test_table1_upstream_streams_algorithm_independent(t1):
    for stream in ("R->E", "E->Ra"):
        zb = t1.value("buffers", algorithm="zbuffer", stream=stream)
        ap = t1.value("buffers", algorithm="active", stream=stream)
        assert zb == ap


def test_table1_zbuffer_merge_volume_exact(t1):
    mb = t1.value("MB", algorithm="zbuffer", stream="Ra->M")
    assert mb == pytest.approx(2048 * 2048 * 8 / 1e6, rel=1e-6)
    assert t1.value("buffers", algorithm="zbuffer", stream="Ra->M") == 16


def test_table1_active_many_small_buffers(t1):
    zb_buffers = t1.value("buffers", algorithm="zbuffer", stream="Ra->M")
    ap_buffers = t1.value("buffers", algorithm="active", stream="Ra->M")
    ap_mb = t1.value("MB", algorithm="active", stream="Ra->M")
    zb_mb = t1.value("MB", algorithm="zbuffer", stream="Ra->M")
    assert ap_buffers > 5 * zb_buffers
    assert ap_mb < zb_mb


def test_table1_extract_reduces_volume(t1):
    read_mb = t1.value("MB", algorithm="active", stream="R->E")
    tri_mb = t1.value("MB", algorithm="active", stream="E->Ra")
    assert tri_mb < read_mb


# ---------------------------------------------------------------- Table 2
@pytest.fixture(scope="module")
def t2():
    return table2.run(scale=0.05)


def test_table2_raster_dominates(t2):
    for algorithm in ("zbuffer", "active"):
        ra = t2.value("percent", algorithm=algorithm, filter="Ra")
        assert ra > 40.0
        for other in ("R", "E", "M"):
            assert ra > t2.value("percent", algorithm=algorithm, filter=other)


def test_table2_percentages_sum_to_100(t2):
    for algorithm in ("zbuffer", "active"):
        rows = t2.select(algorithm=algorithm)
        assert sum(r["percent"] for r in rows) == pytest.approx(100.0)


def test_table2_active_raster_costs_more_merge_less(t2):
    assert t2.value("seconds", algorithm="active", filter="Ra") > t2.value(
        "seconds", algorithm="zbuffer", filter="Ra"
    )
    assert t2.value("seconds", algorithm="active", filter="M") < t2.value(
        "seconds", algorithm="zbuffer", filter="M"
    )


# ---------------------------------------------------------------- Figure 4
@pytest.fixture(scope="module")
def f4():
    return figure4.run(scale=SCALE_SMALL, timesteps=(0,))


def test_figure4_adr_wins_single_dedicated_node(f4):
    for image in (512, 2048):
        adr = f4.value("seconds", nodes=1, image=image, system="ADR")
        zb = f4.value("seconds", nodes=1, image=image, system="DC Z-buffer")
        ap = f4.value("seconds", nodes=1, image=image, system="DC Active Pixel")
        assert adr <= zb
        assert adr <= ap
        # "competitive": DC within ~60% on one node.
        assert zb < 1.6 * adr


def test_figure4_active_pixel_wins_at_scale(f4):
    ap = f4.value("seconds", nodes=8, image=2048, system="DC Active Pixel")
    adr = f4.value("seconds", nodes=8, image=2048, system="ADR")
    zb = f4.value("seconds", nodes=8, image=2048, system="DC Z-buffer")
    assert ap < adr < zb


def test_figure4_systems_scale_down_with_nodes(f4):
    for system in ("ADR", "DC Active Pixel"):
        t1n = f4.value("seconds", nodes=1, image=512, system=system)
        t8n = f4.value("seconds", nodes=8, image=512, system=system)
        assert t8n < t1n / 2


# ---------------------------------------------------------------- Figure 5
@pytest.fixture(scope="module")
def f5():
    return figure5.run(
        scale=SCALE_SMALL,
        per_side_counts=(2, 4),
        background_levels=(0, 16),
        image_sizes=(512, 2048),
    )


def test_figure5_adr_degrades_with_load(f5):
    for side in ("2+2", "4+4"):
        quiet = f5.value(
            "seconds", **{"rogue+blue": side}, bg_jobs=0, image=2048, system="ADR"
        )
        loaded = f5.value(
            "seconds", **{"rogue+blue": side}, bg_jobs=16, image=2048, system="ADR"
        )
        assert loaded > 3.0 * quiet


def test_figure5_datacutter_degrades_less_than_adr(f5):
    # "Stable behavior" in the paper is relative to ADR: the DC versions'
    # load-degradation factor is smaller, so their normalised value falls.
    def degradation(system, side="2+2"):
        quiet = f5.value(
            "seconds", **{"rogue+blue": side}, bg_jobs=0, image=2048, system=system
        )
        loaded = f5.value(
            "seconds", **{"rogue+blue": side}, bg_jobs=16, image=2048, system=system
        )
        return loaded / quiet

    adr = degradation("ADR")
    for system in ("DC Z-buffer", "DC Active Pixel"):
        assert degradation(system) < adr


def test_figure5_normalized_drops_below_one_under_load(f5):
    for side in ("2+2", "4+4"):
        for system in ("DC Z-buffer", "DC Active Pixel"):
            norm = f5.value(
                "normalized",
                **{"rogue+blue": side},
                bg_jobs=16,
                image=2048,
                system=system,
            )
            assert norm < 0.75


# ---------------------------------------------------------------- Table 3
@pytest.fixture(scope="module")
def t3():
    return table3.run(
        scale=SCALE_SMALL,
        per_side_counts=(2,),
        background_levels=(0, 4, 16),
        image_sizes=(2048,),
    )


def test_table3_rogue_share_falls_with_load(t3):
    for algorithm in ("DC Z-buffer", "DC A.Pixel"):
        shares = [
            t3.value(
                "rogue_share",
                **{"rogue+blue": "2+2"},
                bg_jobs=jobs,
                image=2048,
                algorithm=algorithm,
            )
            for jobs in (0, 4, 16)
        ]
        assert shares[0] > shares[1] > shares[2]
        assert shares[0] > 0.4  # near-even when unloaded
        assert shares[2] < 0.4  # strongly shifted at 16 jobs


# ---------------------------------------------------------------- Table 4
@pytest.fixture(scope="module")
def t4():
    return table4.run(
        scale=SCALE_SMALL,
        background_levels=(0, 4),
        image_sizes=(2048,),
    )


def test_table4_dd_never_worse_than_rr(t4):
    for row in t4.select(policy="RR"):
        dd = t4.value(
            "seconds",
            bg_jobs=row["bg_jobs"],
            image=row["image"],
            config=row["config"],
            algorithm=row["algorithm"],
            policy="DD",
        )
        assert dd <= row["seconds"] * 1.05


def test_table4_rera_gains_nothing_from_dd(t4):
    for jobs in (0, 4):
        rr = t4.value(
            "seconds", bg_jobs=jobs, image=2048, config="RERa-M",
            algorithm="active", policy="RR",
        )
        dd = t4.value(
            "seconds", bg_jobs=jobs, image=2048, config="RERa-M",
            algorithm="active", policy="DD",
        )
        assert dd == pytest.approx(rr, rel=1e-9)


def test_table4_re_ra_m_is_best_config(t4):
    # The paper finds RE-Ra-M best "in most cases"; we require it to beat
    # the SPMD-like RERa-M outright and stay within 15% of R-ERa-M (at
    # reduced dataset scale the RE/ERa communication trade-off narrows).
    for jobs in (0, 4):
        best = t4.value(
            "seconds", bg_jobs=jobs, image=2048, config="RE-Ra-M",
            algorithm="active", policy="DD",
        )
        rera = t4.value(
            "seconds", bg_jobs=jobs, image=2048, config="RERa-M",
            algorithm="active", policy="DD",
        )
        r_era = t4.value(
            "seconds", bg_jobs=jobs, image=2048, config="R-ERa-M",
            algorithm="active", policy="DD",
        )
        assert best <= rera
        assert best <= r_era * 1.15


def test_table4_dd_gap_grows_with_load(t4):
    def gap(jobs):
        rr = t4.value(
            "seconds", bg_jobs=jobs, image=2048, config="R-ERa-M",
            algorithm="active", policy="RR",
        )
        dd = t4.value(
            "seconds", bg_jobs=jobs, image=2048, config="R-ERa-M",
            algorithm="active", policy="DD",
        )
        return rr / dd

    assert gap(4) > gap(0)


def test_table4_zbuffer_slower_at_2048(t4):
    zb = t4.value(
        "seconds", bg_jobs=0, image=2048, config="RE-Ra-M",
        algorithm="zbuffer", policy="DD",
    )
    ap = t4.value(
        "seconds", bg_jobs=0, image=2048, config="RE-Ra-M",
        algorithm="active", policy="DD",
    )
    assert zb > 2.0 * ap


# ---------------------------------------------------------------- Table 5
@pytest.fixture(scope="module")
def t5():
    return table5.run(scale=SCALE_SMALL, data_node_counts=(1, 8))


def test_table5_wrr_beats_rr(t5):
    # The paper's WRR-best claim holds throughout for RE-Ra-M.  For
    # R-ERa-M it holds at few data nodes; at 8 data nodes and reduced
    # dataset scale, shipping raw voxel buffers to the slow-linked 8-way
    # node is bandwidth-bound, so we only assert the RE-Ra-M ordering
    # there (see EXPERIMENTS.md).
    for nodes in (1, 8):
        wrr = t5.value("seconds", data_nodes=nodes, config="RE-Ra-M", policy="WRR")
        rr = t5.value("seconds", data_nodes=nodes, config="RE-Ra-M", policy="RR")
        assert wrr <= rr * 1.02
    wrr1 = t5.value("seconds", data_nodes=1, config="R-ERa-M", policy="WRR")
    rr1 = t5.value("seconds", data_nodes=1, config="R-ERa-M", policy="RR")
    assert wrr1 <= rr1 * 1.02


def test_table5_wrr_best_for_re_ra_m_at_scale(t5):
    wrr = t5.value("seconds", data_nodes=8, config="RE-Ra-M", policy="WRR")
    dd = t5.value("seconds", data_nodes=8, config="RE-Ra-M", policy="DD")
    assert wrr <= dd


def test_table5_re_ra_m_beats_r_era_m(t5):
    for nodes in (1, 8):
        re = t5.value("seconds", data_nodes=nodes, config="RE-Ra-M", policy="WRR")
        r_era = t5.value("seconds", data_nodes=nodes, config="R-ERa-M", policy="WRR")
        assert re <= r_era


def test_table5_compute_node_helps_few_data_nodes(t5):
    one = t5.value("seconds", data_nodes=1, config="RE-Ra-M", policy="WRR")
    eight = t5.value("seconds", data_nodes=8, config="RE-Ra-M", policy="WRR")
    assert eight < one  # more data nodes still faster overall


# ---------------------------------------------------------------- Figure 7
@pytest.fixture(scope="module")
def f7():
    return figure7.run(scale=SCALE_SMALL, skew_levels=(0.0, 0.75))


def test_figure7_rera_most_sensitive_to_skew(f7):
    def growth(config):
        base = f7.value("seconds", skew="0%", config=config, policy="DD")
        skew = f7.value("seconds", skew="75%", config=config, policy="DD")
        return skew / base

    assert growth("RERa-M") > growth("R-ERa-M")
    assert growth("RERa-M") > growth("RE-Ra-M")


def test_figure7_re_ra_m_best_under_skew(f7):
    # RE-Ra-M clearly beats the SPMD-like RERa-M under skew; against
    # R-ERa-M it is best in the paper and within a whisker here (at reduced
    # scale both decoupled configurations converge) — allow 10%.
    re_ra = f7.value("seconds", skew="75%", config="RE-Ra-M", policy="DD")
    rera = f7.value("seconds", skew="75%", config="RERa-M", policy="DD")
    r_era = f7.value("seconds", skew="75%", config="R-ERa-M", policy="DD")
    assert re_ra < rera
    assert re_ra <= r_era * 1.10


def test_figure7_dd_helps_under_skew(f7):
    rr = f7.value("seconds", skew="75%", config="RE-Ra-M", policy="RR")
    dd = f7.value("seconds", skew="75%", config="RE-Ra-M", policy="DD")
    assert dd <= rr
