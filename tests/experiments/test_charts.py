"""Tests for the ASCII bar-chart renderer and the experiments entry point."""

from repro.experiments.charts import bar_chart
from repro.experiments.common import ResultTable


def sample_table():
    t = ResultTable("Demo", ["group", "system", "seconds"])
    t.add(group="g1", system="A", seconds=1.0)
    t.add(group="g1", system="B", seconds=2.0)
    t.add(group="g2", system="A", seconds=4.0)
    t.add(group="g2", system="B", seconds=0.5)
    return t


def test_bar_lengths_proportional():
    chart = bar_chart(sample_table(), "seconds", ["group"], "system", width=40)
    lines = chart.splitlines()
    bars = {
        line.split()[0]: line.count("#")
        for line in lines
        if "#" in line
    }
    # The peak (4.0) gets the full width; 2.0 gets half of it.
    assert max(bars.values()) == 40
    a_g1 = next(line for line in lines if line.strip().startswith("A")).count("#")
    b_g1 = [line for line in lines if line.strip().startswith("B")][0].count("#")
    assert abs(b_g1 - 2 * a_g1) <= 1


def test_groups_and_values_present():
    chart = bar_chart(sample_table(), "seconds", ["group"], "system")
    assert "group=g1" in chart
    assert "group=g2" in chart
    assert "4.000" in chart


def test_empty_table():
    t = ResultTable("Empty", ["group", "system", "seconds"])
    assert "(no data)" in bar_chart(t, "seconds", ["group"], "system")


def test_zero_values_do_not_crash():
    t = ResultTable("Zeros", ["group", "system", "seconds"])
    t.add(group="g", system="A", seconds=0.0)
    chart = bar_chart(t, "seconds", ["group"], "system")
    assert "0.000" in chart


def test_main_single_experiment_via_cli(capsys):
    # The experiments CLI path is exercised in tests/test_cli.py; here we
    # check the package __main__ plumbing imports cleanly.
    import repro.experiments.__main__ as entry

    assert callable(entry.main)
    assert len(entry.MODULES) == 8


def test_validation_report_all_exact_or_estimate():
    from repro.experiments import validation

    table = validation.run(grid=13, image=48)
    for row in table.rows:
        assert row["agreement"] == "exact" or row["agreement"].startswith(
            "estimate"
        ), row
    digest_row = table.select(
        quantity="image digest (zbuffer vs active)"
    )[0]
    assert digest_row["agreement"] == "exact"


def test_figure2a_renders(tmp_path):
    from repro.experiments import figure2a

    out = tmp_path / "fig.ppm"
    table = figure2a.run(grid=17, image=48, output=out)
    assert out.exists()
    assert table.value("value", quantity="triangles") > 0
    assert table.value("value", quantity="active pixels") > 20
