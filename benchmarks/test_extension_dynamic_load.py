"""Bench: the time-varying-load extension experiment.

Alternating quiet/overloaded phases on the Rogue nodes while timesteps
render; adaptive policies must track the change (see
repro/experiments/dynamic_load.py).
"""

from repro.experiments import dynamic_load
from repro.experiments.common import mean


def test_extension_dynamic_load(benchmark):
    table = benchmark.pedantic(
        dynamic_load.run,
        kwargs={"timesteps": (0, 1, 2)},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["title"] = table.title
    avg = {
        policy: mean(r["seconds"] for r in table.select(policy=policy))
        for policy in ("RR", "DD", "RATE")
    }
    benchmark.extra_info["avg_seconds"] = {k: round(v, 3) for k, v in avg.items()}
    # Count-based DD re-adapts fastest under oscillating load.
    assert avg["DD"] < avg["RR"]
    assert avg["DD"] <= avg["RATE"]
