"""Merge scaling: the distributed tile framebuffer vs the single Merge.

The single Merge filter is the pipeline's one stage that cannot be
transparently copied — the paper's bottleneck for every decomposition.
These benches scale the tile-routed merge (``merge_copies`` 1 -> 8 on the
simulated engine, 1 -> 4 on the process engine) and record the scaling
table into ``BENCH_pipeline.json`` under ``merge_scaling``.

The process-engine metric is *busy-time* merge throughput — merged
z-buffer entries divided by the slowest merge copy's traced busy seconds —
a better denominator than end-to-end wall time when other stages dominate
the scene.  Busy spans are still wall-clock, so concurrent merge copies
preempting each other on an oversubscribed machine inflate them; the
scaling assertion is gated on >= 4 cores (the numbers are recorded
either way, and the simulated table shows the contention-free scaling).
"""

import os
import time

import numpy as np

from repro.core.tracing import Tracer
from repro.data import HostDisks, ParSSimDataset, StorageMap
from repro.engines import ProcessEngine, SimulatedEngine
from repro.sim import Environment, homogeneous_cluster
from repro.viz import IsosurfaceApp
from repro.viz.profile import DatasetProfile

ISOVALUE = 0.35
SIM_COPIES = (1, 2, 4, 8)
REAL_COPIES = (1, 2, 4)


def merge_busy(tracer, merge_copies):
    """The slowest merge copy's busy seconds (TM when tiled, M when not)."""
    stage = "TM@" if merge_copies > 1 else "M@"
    busy = [
        row["busy"]
        for copy, row in tracer.utilisation().items()
        if copy.startswith(stage)
    ]
    assert len(busy) == merge_copies, f"expected {merge_copies} {stage} copies"
    return max(busy)


def test_simulated_merge_scaling(benchmark, pipeline_report):
    """Makespan of a merge-bound scene, merge copies 1 -> 8 (simulated)."""
    profile = DatasetProfile.synthetic(
        "scale", (33, 33, 33), nchunks=16, nfiles=8, timesteps=1,
        total_triangles=60_000,
    )
    data_hosts = ["node0", "node1", "node2", "node3"]
    storage = StorageMap.balanced(
        profile.files, [HostDisks(h, 2) for h in data_hosts]
    )

    def run_all():
        rows = {}
        for copies in SIM_COPIES:
            env = Environment()
            cluster = homogeneous_cluster(env, nodes=14)
            app = IsosurfaceApp(
                profile, storage, width=512, height=512,
                algorithm="zbuffer", merge_copies=copies,
            )
            graph = app.graph("RE-Ra-M")
            placement = app.placement(
                "RE-Ra-M",
                compute_hosts=data_hosts,
                merge_host="node4",
                merge_hosts=(
                    [f"node{5 + i}" for i in range(copies)]
                    if copies > 1 else None
                ),
            )
            metrics = SimulatedEngine(
                cluster, graph, placement, policy="DD",
                policy_overrides=app.policy_overrides("RE-Ra-M"),
            ).run()
            rows[copies] = round(metrics.makespan, 4)
        return rows

    makespans = benchmark.pedantic(run_all, rounds=1, iterations=1)
    benchmark.extra_info["makespans"] = makespans
    assert makespans[8] < makespans[1], (
        f"8 merge copies did not beat the single merge: {makespans}"
    )
    pipeline_report.setdefault("merge_scaling", {})["simulated"] = {
        "config": "RE-Ra-M",
        "algorithm": "zbuffer",
        "image": "512x512",
        "makespan_s_by_copies": {str(c): makespans[c] for c in SIM_COPIES},
        "speedup_8_vs_1": round(makespans[1] / makespans[8], 3),
    }


def test_process_merge_scaling(benchmark, pipeline_report):
    """Busy-time merge throughput, merge copies 1 -> 4 (process engine)."""
    width = height = 128
    extract_copies = 4
    dataset = ParSSimDataset((33, 33, 33), timesteps=1, species=1, seed=7)
    profile = DatasetProfile.measured(
        "bench", dataset, nchunks=16, nfiles=8, isovalue=ISOVALUE
    )
    storage = StorageMap.balanced(profile.files, [HostDisks("h0")])
    # Every raster copy ships its full z-buffer, so the merge stage always
    # depth-tests extract_copies * width * height entries in total.
    merged_entries = extract_copies * width * height

    def run_all():
        rows = {}
        images = {}
        for copies in REAL_COPIES:
            app = IsosurfaceApp(
                profile, storage, width=width, height=height,
                algorithm="zbuffer", dataset=dataset, isovalue=ISOVALUE,
                merge_copies=copies,
            )
            graph = app.graph("R-E-Ra-M")
            placement = app.placement(
                "R-E-Ra-M", compute_hosts=["h0"],
                copies_per_host=extract_copies,
            )
            tracer = Tracer()
            t0 = time.perf_counter()
            metrics = ProcessEngine(
                graph, placement, policy="DD", tracer=tracer,
                policy_overrides=app.policy_overrides("R-E-Ra-M"),
            ).run()
            wall = time.perf_counter() - t0
            busy = merge_busy(tracer, copies)
            rows[copies] = {
                "wall_s": round(wall, 4),
                "merge_busy_s": round(busy, 4),
                "entries_per_busy_s": round(merged_entries / busy, 1),
            }
            images[copies] = metrics.result.image
        return rows, images

    rows, images = benchmark.pedantic(run_all, rounds=1, iterations=1)
    # Tiling must never change the image.
    for copies in REAL_COPIES[1:]:
        np.testing.assert_array_equal(images[copies], images[1])
    assert images[1].max() > 0
    throughput = {c: rows[c]["entries_per_busy_s"] for c in REAL_COPIES}
    # Busy spans are wall-clock: on an oversubscribed machine concurrent
    # merge copies preempt each other and inflate every span, so the
    # scaling assertion (like the process-vs-threaded speedup gate) only
    # holds where the copies actually run in parallel.
    if (os.cpu_count() or 1) >= 4:
        assert throughput[4] > throughput[1], (
            f"partitioned merge did not raise busy-time throughput: {rows}"
        )
    benchmark.extra_info["rows"] = rows
    pipeline_report.setdefault("merge_scaling", {})["process"] = {
        "config": "R-E-Ra-M",
        "algorithm": "zbuffer",
        "image": f"{width}x{height}",
        "extract_copies": extract_copies,
        "merged_entries": merged_entries,
        "by_copies": {str(c): rows[c] for c in REAL_COPIES},
        "throughput_gain_4_vs_1": round(throughput[4] / throughput[1], 3),
    }
