"""Bench: regenerate Table 1 (stream buffer counts and volumes)."""

from repro.experiments import table1


def test_table1_stream_volume(regenerate):
    table = regenerate(table1.run, scale=0.1)
    # Sanity: the z-buffer Ra->M volume is exactly W*H*8 bytes.
    assert table.value("buffers", algorithm="zbuffer", stream="Ra->M") == 16
    assert (
        table.value("buffers", algorithm="active", stream="Ra->M")
        > table.value("buffers", algorithm="zbuffer", stream="Ra->M")
    )
