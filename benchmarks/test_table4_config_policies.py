"""Bench: regenerate Table 4 (configurations x policies under load)."""

from repro.experiments import table4


def test_table4_config_policies(regenerate):
    table = regenerate(
        table4.run,
        scale=0.02,
        background_levels=(0, 4, 16),
        image_sizes=(512, 2048),
    )
    rr = table.value(
        "seconds", bg_jobs=16, image=2048, config="R-ERa-M",
        algorithm="active", policy="RR",
    )
    dd = table.value(
        "seconds", bg_jobs=16, image=2048, config="R-ERa-M",
        algorithm="active", policy="DD",
    )
    assert dd < rr  # DD absorbs the load imbalance
