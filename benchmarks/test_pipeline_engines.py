"""Real-pipeline throughput: threaded vs process engine on one fixed scene.

A fixed extract→raster→merge isosurface scene (R-E-Ra-M, 4 Extract copies,
Demand-Driven writers) runs once per engine under the benchmark timer.  Both
runs must produce bit-identical images; the measured wall time, triangles/sec
and pixels/sec land in ``BENCH_pipeline.json`` via the ``pipeline_report``
fixture.  On machines with >= 4 cores the process engine must beat the
threaded engine (which serialises all NumPy work behind the GIL) by >= 2x.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.tracing import Tracer
from repro.data import HostDisks, ParSSimDataset, StorageMap
from repro.engines import ProcessEngine, ThreadedEngine
from repro.viz import IsosurfaceApp
from repro.viz.profile import DatasetProfile

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
#: Fresh throughput may not fall more than this fraction below the
#: committed baseline (same machine class only — gated on cpu_count).
REGRESSION_TOLERANCE = 0.30

ENGINES = {"threaded": ThreadedEngine, "process": ProcessEngine}
WIDTH = HEIGHT = 128
EXTRACT_COPIES = 4
ISOVALUE = 0.35


@pytest.fixture(scope="module")
def scene():
    dataset = ParSSimDataset((33, 33, 33), timesteps=1, species=1, seed=7)
    profile = DatasetProfile.measured(
        "bench", dataset, nchunks=16, nfiles=8, isovalue=ISOVALUE
    )
    return dataset, profile


def build(scene):
    dataset, profile = scene
    storage = StorageMap.balanced(profile.files, [HostDisks("h0")])
    app = IsosurfaceApp(
        profile,
        storage,
        width=WIDTH,
        height=HEIGHT,
        algorithm="zbuffer",
        dataset=dataset,
        isovalue=ISOVALUE,
    )
    graph = app.graph("R-E-Ra-M")
    placement = app.placement(
        "R-E-Ra-M", compute_hosts=["h0"], copies_per_host=EXTRACT_COPIES
    )
    return graph, placement, profile


@pytest.mark.parametrize("engine_name", list(ENGINES))
def test_pipeline_engine_throughput(
    benchmark, pipeline_report, scene, engine_name
):
    graph, placement, profile = build(scene)
    engine_cls = ENGINES[engine_name]

    def run():
        tracer = Tracer()
        t0 = time.perf_counter()
        metrics = engine_cls(graph, placement, policy="DD", tracer=tracer).run()
        return metrics, time.perf_counter() - t0, tracer

    metrics, wall, tracer = benchmark.pedantic(run, rounds=1, iterations=1)
    metrics.validate(graph)
    triangles = profile.total_triangles(0)
    pixels = WIDTH * HEIGHT
    benchmark.extra_info["triangles"] = triangles
    pipeline_report["engines"][engine_name] = {
        "wall_s": round(wall, 4),
        "triangles": triangles,
        "triangles_per_s": round(triangles / wall, 1),
        "pixels_per_s": round(pixels / wall, 1),
        "extract_copies": EXTRACT_COPIES,
        "image": f"{WIDTH}x{HEIGHT}",
        "policy": "DD",
        "stage_busy_s": {
            stage: round(seconds, 4)
            for stage, seconds in tracer.stage_busy().items()
        },
        "_image": metrics.result.image,
    }


def test_engines_bit_identical_and_process_speedup(pipeline_report):
    engines = pipeline_report["engines"]
    if set(engines) != set(ENGINES):
        pytest.skip("both engine benchmarks must run first")
    np.testing.assert_array_equal(
        engines["threaded"]["_image"], engines["process"]["_image"]
    )
    assert engines["threaded"]["_image"].max() > 0
    speedup = engines["threaded"]["wall_s"] / engines["process"]["wall_s"]
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, (
            f"process engine only {speedup:.2f}x threaded on "
            f"{os.cpu_count()} cores"
        )


def test_throughput_regression_guard(pipeline_report):
    """Fresh pixels/sec must stay within tolerance of the committed baseline.

    The ``pipeline_report`` fixture only rewrites ``BENCH_pipeline.json``
    at session end, so reading it here still sees the committed numbers.
    Skips when no baseline is committed or it was measured on a machine
    with a different core count (wall throughput is not comparable).
    """
    fresh = pipeline_report["engines"]
    if not fresh:
        pytest.skip("engine benchmarks must run first")
    if not BASELINE_PATH.exists():
        pytest.skip("no committed baseline")
    try:
        baseline = json.loads(BASELINE_PATH.read_text())
    except ValueError:
        pytest.skip("baseline file is not valid JSON")
    if baseline.get("cpu_count") != os.cpu_count():
        pytest.skip(
            f"baseline measured on cpu_count={baseline.get('cpu_count')}, "
            f"this machine has {os.cpu_count()}"
        )
    for engine_name, record in baseline.get("engines", {}).items():
        committed = record.get("pixels_per_s")
        measured = fresh.get(engine_name, {}).get("pixels_per_s")
        if not committed or not measured:
            continue
        floor = committed * (1.0 - REGRESSION_TOLERANCE)
        assert measured >= floor, (
            f"{engine_name} engine regressed: {measured:.1f} pixels/s vs "
            f"committed {committed:.1f} (floor {floor:.1f})"
        )
