"""Ablation: ADR's asynchronous I/O window.

The paper credits ADR with maintaining "an optimal number of active
asynchronous disk I/O calls" to overlap retrieval with computation.  This
bench sweeps the window: depth 1 still overlaps one read with compute;
larger windows only help when per-chunk service times vary; the benefit
saturates quickly — exactly why "an optimal number" is small.
"""

from repro.adr import ADRRuntime
from repro.sim import Environment, homogeneous_cluster
from repro.viz.profile import dataset_25gb


def sweep_io_depth(depths=(1, 2, 4, 16), scale=0.02):
    profile = dataset_25gb(scale=scale)
    out = {}
    for depth in depths:
        env = Environment()
        cluster = homogeneous_cluster(env, nodes=4)
        nodes = [f"node{i}" for i in range(4)]
        result = ADRRuntime(
            cluster, nodes, profile, width=512, height=512, io_depth=depth
        ).run()
        out[depth] = result.makespan
    return out


def test_ablation_adr_io_depth(benchmark):
    times = benchmark.pedantic(sweep_io_depth, rounds=1, iterations=1)
    benchmark.extra_info["makespans"] = {str(k): round(v, 3) for k, v in times.items()}
    # Deeper windows never hurt and saturate fast.
    assert times[4] <= times[1] * 1.001
    assert times[16] == times[4]
