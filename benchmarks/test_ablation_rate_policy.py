"""Ablation: the RateBased extension policy vs the paper's three.

The paper's future work asks for "other dynamic strategies for buffer
distribution".  RateBased adds an EWMA service-time estimate per copy set
on top of DD's outstanding-count window.  The bench races all four policies
on a heterogeneous loaded cluster.
"""

from repro.data import HostDisks, StorageMap
from repro.experiments.common import run_datacutter
from repro.sim import Environment, umd_testbed
from repro.viz.profile import dataset_25gb


def race_policies(scale=0.02):
    profile = dataset_25gb(scale=scale)
    out = {}
    for policy in ("RR", "WRR", "DD", "RATE"):
        env = Environment()
        cluster = umd_testbed(
            env, red_nodes=0, blue_nodes=4, rogue_nodes=4, deathstar=False
        )
        nodes = [f"rogue{i}" for i in range(4)] + [f"blue{i}" for i in range(4)]
        cluster.set_background_load(8, hosts=nodes[:4])
        storage = StorageMap.balanced(profile.files, [HostDisks(h, 2) for h in nodes])
        [metrics] = run_datacutter(
            cluster,
            profile,
            storage,
            configuration="RE-Ra-M",
            algorithm="active",
            policy=policy,
            width=2048,
            height=2048,
            compute_hosts=nodes,
            merge_host="blue0",
        )
        out[policy] = metrics.makespan
    return out


def test_ablation_rate_policy(benchmark):
    times = benchmark.pedantic(race_policies, rounds=1, iterations=1)
    benchmark.extra_info["makespans"] = {k: round(v, 3) for k, v in times.items()}
    # The adaptive policies beat the oblivious ones under load imbalance...
    assert times["DD"] < times["RR"]
    assert times["RATE"] < times["RR"]
    # ...and the rate estimator is at least competitive with DD.
    assert times["RATE"] <= times["DD"] * 1.10
