"""Ablation: image-replicated Merge vs image-partitioned rasters.

The paper's conclusions propose partitioning the image space among the
raster filters to eliminate the Merge bottleneck, at the risk of load
imbalance when subregion work is uneven.  This bench measures both sides:

- with many raster copies, the merge-free design wins (no single node
  receives every WPA buffer);
- with skewed region weights, the partitioned design loses its edge (the
  heaviest strip owner gates the run) while the merge-based pipeline is
  indifferent to where triangles land on screen.
"""

from repro.core.placement import Placement
from repro.data import HostDisks, StorageMap
from repro.engines import SimulatedEngine
from repro.sim import Environment, umd_testbed
from repro.viz.app import IsosurfaceApp
from repro.viz.partitioned import build_partitioned_graph
from repro.viz.profile import dataset_25gb

NODES = 8


def _cluster():
    env = Environment()
    cluster = umd_testbed(
        env, red_nodes=0, blue_nodes=0, rogue_nodes=NODES, deathstar=False
    )
    return cluster, [f"rogue{i}" for i in range(NODES)]


def run_merge_based(profile, width=2048):
    cluster, nodes = _cluster()
    storage = StorageMap.balanced(profile.files, [HostDisks(h, 2) for h in nodes])
    app = IsosurfaceApp(profile, storage, width=width, height=width, algorithm="active")
    metrics = SimulatedEngine(
        cluster,
        app.graph("RE-Ra-M"),
        app.placement("RE-Ra-M", compute_hosts=nodes),
        policy="DD",
    ).run()
    return metrics.makespan


def run_partitioned(profile, weights=None, width=2048):
    cluster, nodes = _cluster()
    storage = StorageMap.balanced(profile.files, [HostDisks(h, 2) for h in nodes])
    graph = build_partitioned_graph(
        profile, storage, timestep=0, width=width, height=width,
        regions=NODES, region_weights=weights,
    )
    placement = Placement().spread("RE", nodes)
    for region in range(NODES):
        placement.place(f"Ra{region}", [nodes[region]])
    return SimulatedEngine(cluster, graph, placement, policy="RR").run().makespan


def compare(scale=0.05):
    profile = dataset_25gb(scale=scale)
    skewed = [4.0] + [1.0] * (NODES - 1)  # one strip holds ~1/3 of the surface
    return {
        "merge": run_merge_based(profile),
        "partitioned_even": run_partitioned(profile),
        "partitioned_skewed": run_partitioned(profile, weights=skewed),
    }


def test_ablation_image_partition(benchmark):
    times = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["makespans"] = {k: round(v, 3) for k, v in times.items()}
    # Eliminating the merge bottleneck pays off with many copies...
    assert times["partitioned_even"] < times["merge"]
    # ...but screen-space load imbalance eats the advantage.
    assert times["partitioned_skewed"] > times["partitioned_even"]
