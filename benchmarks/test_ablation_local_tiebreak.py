"""Ablation: DD's co-located-copy tie-break.

The paper: "In the event of a tie, any local colocated copies will be
chosen" — the mechanism that lets DD implicitly avoid network traffic.
This bench runs the same scenario with the tie-break on and off.
"""

from repro.core.policies import DemandDriven
from repro.data import HostDisks, StorageMap
from repro.experiments.common import run_datacutter
from repro.sim import Environment, umd_testbed
from repro.viz.profile import dataset_25gb


def compare_tiebreak(scale=0.02):
    profile = dataset_25gb(scale=scale)
    out = {}
    for prefer_local in (True, False):
        env = Environment()
        # Rogue-only: Fast Ethernet makes avoided transfers visible.
        cluster = umd_testbed(
            env, red_nodes=0, blue_nodes=0, rogue_nodes=4, deathstar=False
        )
        nodes = [f"rogue{i}" for i in range(4)]
        storage = StorageMap.balanced(profile.files, [HostDisks(h, 2) for h in nodes])
        [metrics] = run_datacutter(
            cluster,
            profile,
            storage,
            configuration="RE-Ra-M",
            algorithm="active",
            policy=lambda p=prefer_local: DemandDriven(prefer_local=p),
            width=2048,
            height=2048,
            compute_hosts=nodes,
        )
        local_buffers = sum(
            count
            for (src, dst), count in metrics.streams["RE->Ra"].by_route.items()
            if src == dst
        )
        out[prefer_local] = {
            "makespan": metrics.makespan,
            "local_buffers": local_buffers,
        }
    return out


def test_ablation_local_tiebreak(benchmark):
    result = benchmark.pedantic(compare_tiebreak, rounds=1, iterations=1)
    benchmark.extra_info["with_tiebreak"] = result[True]
    benchmark.extra_info["without_tiebreak"] = result[False]
    # The tie-break keeps more buffers on the producing host...
    assert result[True]["local_buffers"] > result[False]["local_buffers"]
    # ...and never hurts the makespan.
    assert result[True]["makespan"] <= result[False]["makespan"] * 1.02
