"""Bench: regenerate Table 2 (per-filter processing time shares)."""

from repro.experiments import table2


def test_table2_filter_times(regenerate):
    table = regenerate(table2.run, scale=0.1)
    for algorithm in ("zbuffer", "active"):
        ra = table.value("percent", algorithm=algorithm, filter="Ra")
        assert ra > 40.0  # Raster dominates
