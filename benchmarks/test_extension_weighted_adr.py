"""Extension: weighted static partitioning — ADR's obvious repair, and why
it is not enough.

If heterogeneity is *static and known* (Blue's 2x550 MHz cores vs Rogue's
1x650 MHz), ADR can simply give the fast nodes proportionally more chunks.
This bench shows the weighted partition fixes exactly that case — and
nothing more: under *dynamic* background load it degrades just like plain
ADR, while the DataCutter pipeline with DD keeps adapting.  This isolates
the paper's claim that the win comes from run-time adaptation, not from
merely knowing the hardware.
"""

from repro.adr import ADRRuntime
from repro.data import HostDisks, StorageMap
from repro.experiments.common import run_datacutter
from repro.sim import Environment, umd_testbed
from repro.viz.profile import dataset_25gb

ROGUE = [f"rogue{i}" for i in range(4)]
BLUE = [f"blue{i}" for i in range(4)]
# Per-core speed x cores: rogue 1x1.0, blue 2x(550/650).
WEIGHTS = [1.0] * 4 + [2 * 550 / 650] * 4


def _cluster(jobs):
    env = Environment()
    cluster = umd_testbed(
        env, red_nodes=0, blue_nodes=4, rogue_nodes=4, deathstar=False
    )
    cluster.set_background_load(jobs, hosts=ROGUE)
    return cluster


def measure(scale=0.02):
    profile = dataset_25gb(scale=scale)
    out = {}
    for jobs in (0, 16):
        adr_plain = ADRRuntime(
            _cluster(jobs), ROGUE + BLUE, profile, width=512, height=512
        ).run().makespan
        adr_weighted = ADRRuntime(
            _cluster(jobs), ROGUE + BLUE, profile, width=512, height=512,
            partition_weights=WEIGHTS,
        ).run().makespan
        cluster = _cluster(jobs)
        storage = StorageMap.balanced(
            profile.files, [HostDisks(h, 2) for h in ROGUE + BLUE]
        )
        [metrics] = run_datacutter(
            cluster, profile, storage,
            configuration="RE-Ra-M", algorithm="active", policy="DD",
            width=512, height=512,
            compute_hosts=ROGUE + BLUE, merge_host=BLUE[0],
        )
        out[jobs] = {
            "adr": adr_plain,
            "adr_weighted": adr_weighted,
            "dc_dd": metrics.makespan,
        }
    return out


def test_extension_weighted_adr(benchmark):
    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["makespans"] = {
        str(jobs): {k: round(v, 3) for k, v in row.items()}
        for jobs, row in times.items()
    }
    quiet, loaded = times[0], times[16]
    # Known static heterogeneity: the weighted partition beats plain ADR.
    assert quiet["adr_weighted"] < quiet["adr"]
    # Dynamic load: weighting cannot help — it degrades like plain ADR...
    assert loaded["adr_weighted"] > 3.0 * quiet["adr_weighted"]
    # ...while the adaptive pipeline stays well ahead.
    assert loaded["dc_dd"] < 0.7 * loaded["adr_weighted"]
