"""Bench: the automatic placement advisor vs a naive one-copy placement.

The paper's authors chose copy counts by hand (e.g. seven raster copies on
the 8-way node); `repro.planner.auto_place` derives them from the cost
model and host inventory, and sheds copies that would not fit in RAM.
"""

from repro.data import HostDisks, StorageMap
from repro.engines import SimulatedEngine
from repro.planner import auto_place
from repro.sim import Environment, umd_testbed
from repro.viz import IsosurfaceApp
from repro.viz.profile import dataset_25gb


def compare(scale=0.05):
    def build():
        profile = dataset_25gb(scale=scale)
        env = Environment()
        cluster = umd_testbed(
            env, red_nodes=0, blue_nodes=8, rogue_nodes=0, deathstar=False
        )
        names = [f"blue{i}" for i in range(8)]
        storage = StorageMap.balanced(
            profile.files, [HostDisks(h, 2) for h in names]
        )
        app = IsosurfaceApp(
            profile, storage, width=2048, height=2048, algorithm="active"
        )
        return app, cluster, names

    app, cluster, names = build()
    naive = SimulatedEngine(
        cluster,
        app.graph("RE-Ra-M"),
        app.placement("RE-Ra-M", compute_hosts=names),
        policy="DD",
    ).run().makespan

    app, cluster, names = build()
    advice = auto_place(app, "RE-Ra-M", cluster)
    auto = SimulatedEngine(
        cluster, app.graph("RE-Ra-M"), advice.placement, policy="DD"
    ).run().makespan
    return {"naive": naive, "auto": auto, "bottleneck": advice.bottleneck}


def test_extension_auto_placement(benchmark):
    result = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["makespans"] = {
        "naive": round(result["naive"], 3),
        "auto": round(result["auto"], 3),
    }
    assert result["bottleneck"] == "Ra"
    # The advisor's per-core raster copies match or beat one-copy-per-host.
    assert result["auto"] <= result["naive"] * 1.05
