"""Cold-spawn vs warm-pool query latency on the quickstart pipeline.

The quickstart pipeline shape — RE-Ra-M, Demand-Driven writers, two
transparent Raster copies on one host, active-pixel rendering — is run at
interactive query scale (13^3 grid, 32^2 frame) two ways:

* **cold**: the full per-query cold path a spawn-per-query service pays —
  pipeline assembly (measured profile, graph, placement) plus
  ``ProcessEngine(...)`` construction plus ``.run()``.  Every query forks
  one process per filter copy and builds all shared-memory queues from
  scratch.
* **warm**: the same query submitted to an already-primed
  :class:`~repro.engines.pool.WarmPool` (pool built once, first query
  discarded as the priming run), so only per-query work remains.

Both paths must render bit-identical images.  Latencies are best-of-N
(``min``, as ``timeit`` does — the estimator least sensitive to scheduler
noise on small containers); the speedup lands in ``BENCH_pipeline.json``
under ``warm_pool`` via the ``pipeline_report`` fixture.  The assertion
floor is deliberately below the typically observed ~6x so CI noise cannot
flake it; the recorded number tracks the real ratio across PRs.
"""

import time

import numpy as np

from repro.data import HostDisks, ParSSimDataset, StorageMap
from repro.engines import ProcessEngine, WarmPool
from repro.viz import IsosurfaceApp
from repro.viz.profile import DatasetProfile

GRID = 13
WIDTH = HEIGHT = 32
TIMESTEPS = 2
NCHUNKS = 8
NFILES = 4
ISOVALUE = 0.35
RASTER_COPIES = 2
COLD_ROUNDS = 3
WARM_ROUNDS = 6


def build_pipeline():
    """The full per-query assembly a cold service pays, from scratch."""
    dataset = ParSSimDataset(
        (GRID, GRID, GRID), timesteps=TIMESTEPS, species=2, seed=7
    )
    profile = DatasetProfile.measured(
        "warm-bench", dataset, nchunks=NCHUNKS, nfiles=NFILES, isovalue=ISOVALUE
    )
    storage = StorageMap.balanced(profile.files, [HostDisks("host0")])
    app = IsosurfaceApp(
        profile,
        storage,
        width=WIDTH,
        height=HEIGHT,
        algorithm="active",
        dataset=dataset,
        isovalue=ISOVALUE,
    )
    graph = app.graph("RE-Ra-M")
    placement = app.placement("RE-Ra-M", copies_per_host=RASTER_COPIES)
    return graph, placement


def test_warm_pool_speedup(benchmark, pipeline_report):
    # Process-wide warm-up: first fork + first pool in a fresh interpreter
    # pay one-off costs (importing children, thread spin-up) that belong to
    # neither path.
    graph, placement = build_pipeline()
    warmup = WarmPool(graph, placement, policy="DD", max_inflight=2)
    warmup.run()
    warmup.close()

    def measure():
        colds = []
        for _ in range(COLD_ROUNDS):
            t0 = time.perf_counter()
            g, p = build_pipeline()
            metrics = ProcessEngine(g, p, policy="DD").run()
            colds.append(time.perf_counter() - t0)
        cold_image = metrics.result.image

        g, p = build_pipeline()
        with WarmPool(g, p, policy="DD", max_inflight=2) as pool:
            pool.run()  # the cold first query primes the pool
            warms = []
            for _ in range(WARM_ROUNDS):
                t0 = time.perf_counter()
                metrics = pool.submit(None).result()
                warms.append(time.perf_counter() - t0)
        return min(colds), min(warms), cold_image, metrics.result.image

    cold_s, warm_s, cold_image, warm_image = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    np.testing.assert_array_equal(cold_image, warm_image)
    assert cold_image.max() > 0
    speedup = cold_s / warm_s
    benchmark.extra_info["speedup"] = round(speedup, 2)
    pipeline_report["warm_pool"] = {
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup_warm_vs_cold": round(speedup, 2),
        "cold_rounds": COLD_ROUNDS,
        "warm_rounds": WARM_ROUNDS,
        "estimator": "min",
        "cold_path": "pipeline assembly + ProcessEngine construction + run",
        "warm_path": "submit to primed WarmPool",
        "grid": f"{GRID}^3",
        "image": f"{WIDTH}x{HEIGHT}",
        "config": "RE-Ra-M",
        "policy": "DD",
        "raster_copies": RASTER_COPIES,
    }
    # Noise floor, not the headline: BENCH_pipeline.json records the real
    # ratio (~6x on a single-core container, higher with real cores).
    assert speedup >= 3.0, (
        f"warm pool only {speedup:.2f}x faster than cold spawn "
        f"(cold {cold_s * 1e3:.1f} ms, warm {warm_s * 1e3:.1f} ms)"
    )
