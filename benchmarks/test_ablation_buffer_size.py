"""Ablation: stream buffer size.

The DataCutter runtime chooses buffer sizes within the filter-declared
bounds (paper Section 2).  Two observable effects:

- requests below the producers' disclosed 16 KiB minimum are clamped by
  the negotiation (`repro.core.negotiate`), so 1 KiB and 4 KiB behave
  identically;
- above the floor, throughput is remarkably flat on these links — per-
  message fixed costs (25-90 us) are small against 16 KiB+ payloads, and
  larger buffers trade a little pipelining granularity for fewer messages.
"""

from repro.data import HostDisks, StorageMap
from repro.engines import SimulatedEngine
from repro.sim import Environment, umd_testbed
from repro.viz.app import IsosurfaceApp
from repro.viz.models import BufferSizes
from repro.viz.profile import dataset_25gb

NODES = ["rogue0", "rogue1", "blue0", "blue1"]


def sweep_buffer_sizes(sizes=(1, 4, 64, 1024), scale=0.02):
    """Sweep buffer size in KiB; returns size -> makespan."""
    profile = dataset_25gb(scale=scale)
    out = {}
    for size_kib in sizes:
        env = Environment()
        cluster = umd_testbed(
            env, red_nodes=0, blue_nodes=2, rogue_nodes=2, deathstar=False
        )
        storage = StorageMap.balanced(
            profile.files, [HostDisks(h, 2) for h in NODES]
        )
        app = IsosurfaceApp(
            profile,
            storage,
            width=2048,
            height=2048,
            algorithm="active",
            buffers=BufferSizes(
                read=size_kib * 1024,
                triangles=size_kib * 1024,
                wpa=size_kib * 1024,
            ),
        )
        metrics = SimulatedEngine(
            cluster,
            app.graph("RE-Ra-M"),
            app.placement("RE-Ra-M", compute_hosts=NODES),
            policy="DD",
        ).run()
        out[size_kib] = metrics.makespan
    return out


def test_ablation_buffer_size(benchmark):
    times = benchmark.pedantic(sweep_buffer_sizes, rounds=1, iterations=1)
    benchmark.extra_info["makespans"] = {
        f"{k}KiB": round(v, 3) for k, v in times.items()
    }
    # Below the disclosed 16 KiB minimum the negotiation clamps: identical.
    assert times[1] == times[4]
    # Above the floor the band is flat (within 10%) on these links.
    values = list(times.values())
    assert max(values) < 1.10 * min(values)
