"""Zipf-mix ablation for the serve-path result cache.

Interactive exploration traffic is highly repetitive — a few popular
(isovalue, view, timestep) combinations dominate.  This bench drives the
query service with a Zipf-distributed mix over a small set of distinct
queries, with and without the :mod:`repro.cache` tiers, and records
throughput versus hit rate into ``BENCH_pipeline.json``.

Acceptance bar (asserted here and guarded in CI): at a hit rate of at
least 0.5 the cached service serves the mix at >= 2x the uncached
throughput, with every response byte-identical to the uncached render.
"""

import multiprocessing
import time

import numpy as np
import pytest

from repro.serve import QueryService, SceneSpec

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the query service pools need the fork start method",
)

SCENE = SceneSpec(
    "bench", grid=11, timesteps=2, species=2, nchunks=8, nfiles=4, seed=7,
    isovalue=0.35,
)
IMAGE = 32
COPIES = 2
N_QUERIES = 36
ZIPF_S = 1.1

#: The distinct queries, popularity rank order.
DISTINCT = [
    {"isovalue": 0.35, "timestep": 0},
    {"isovalue": 0.40, "timestep": 0},
    {"isovalue": 0.35, "timestep": 1},
    {"isovalue": 0.35, "timestep": 0, "view": {"azimuth": 60, "elevation": 10}},
    {"isovalue": 0.30, "timestep": 1},
    {"isovalue": 0.45, "timestep": 0, "view": {"azimuth": -45, "elevation": 40}},
]


def _zipf_mix():
    """N_QUERIES draws from DISTINCT with p ∝ 1/rank^s (deterministic)."""
    ranks = np.arange(1, len(DISTINCT) + 1, dtype=float)
    p = ranks**-ZIPF_S
    p /= p.sum()
    rng = np.random.default_rng(0)
    return [DISTINCT[i] for i in rng.choice(len(DISTINCT), N_QUERIES, p=p)]


def _service(**kw):
    return QueryService(
        scenes=[SCENE], config="R-E-Ra-M", width=IMAGE, height=IMAGE,
        copies=COPIES, **kw,
    )


def _run_mix(service, mix):
    """Serve the mix after one warm-up query; return (wall_s, frames)."""
    service.render(dict(mix[0]))  # cold build + first fill out of the timing
    frames = []
    t0 = time.perf_counter()
    for query in mix:
        frames.append(service.render(dict(query))["frame_b64"])
    return time.perf_counter() - t0, frames


def test_cache_zipf_throughput(benchmark, pipeline_report):
    mix = _zipf_mix()

    def measure():
        uncached = _service()
        try:
            base_s, base_frames = _run_mix(uncached, mix)
        finally:
            uncached.close()
        cached = _service(cache_mb=64)
        try:
            cache_s, cache_frames = _run_mix(cached, mix)
            stats = cached.cache_stats()["shared"]
        finally:
            cached.close()
        return base_s, base_frames, cache_s, cache_frames, stats

    base_s, base_frames, cache_s, cache_frames, stats = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    # Bit-exactness: every cached response equals the uncached render.
    assert cache_frames == base_frames

    hit_rate = stats["hit_rate"]
    speedup = base_s / cache_s
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["hit_rate"] = hit_rate
    assert hit_rate >= 0.5, f"Zipf mix should mostly hit, got {hit_rate}"
    assert speedup >= 2.0, (
        f"cached serve should be >= 2x uncached at hit rate {hit_rate}, "
        f"got {speedup:.2f}x"
    )

    pipeline_report["cache"] = {
        "queries": N_QUERIES,
        "distinct": len(DISTINCT),
        "zipf_s": ZIPF_S,
        "scene": {"grid": SCENE.grid, "image": IMAGE, "copies": COPIES},
        "config": "R-E-Ra-M",
        "cache_mb": 64,
        "uncached_s": round(base_s, 4),
        "cached_s": round(cache_s, 4),
        "uncached_qps": round(N_QUERIES / base_s, 2),
        "cached_qps": round(N_QUERIES / cache_s, 2),
        "speedup_cached_vs_uncached": round(speedup, 2),
        "hit_rate": hit_rate,
        "bytes_saved": stats["bytes_saved"],
        "bit_exact": True,
    }


def test_cache_baseline_guard():
    """The committed BENCH_pipeline.json carries a healthy cache block."""
    import json
    from pathlib import Path

    path = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
    payload = json.loads(path.read_text())
    cache = payload.get("cache")
    assert cache, "BENCH_pipeline.json is missing the cache section"
    assert cache["bit_exact"] is True
    assert cache["hit_rate"] >= 0.5
    assert cache["speedup_cached_vs_uncached"] >= 2.0
