"""Bench: regenerate Figure 4 (ADR vs DataCutter, homogeneous nodes)."""

from repro.experiments import figure4


def test_figure4_adr_homogeneous(regenerate):
    table = regenerate(figure4.run, scale=0.02, timesteps=(0, 1))
    ap = table.value("seconds", nodes=8, image=2048, system="DC Active Pixel")
    adr = table.value("seconds", nodes=8, image=2048, system="ADR")
    assert ap < adr  # the paper's 8-node/2048^2 crossover
