"""Ablation: Demand-Driven sliding-window size.

The paper describes DD as "a sliding window mechanism based on buffer
consumption rate" without fixing the window.  The sweep shows the dynamics
under load imbalance: a tight window tracks consumption rate closely (a
buffer is only committed to a consumer that just proved it is draining),
while larger windows pre-commit buffers to slow consumers and converge to
a fixed plateau once the window exceeds the copy-set queue depth.  The ack
round-trip is cheap relative to buffer service times on these links, so
the paper-era worry about over-tight windows only materialises on much
slower networks (see Table 5's DD-vs-WRR discussion).
"""

from repro.core.policies import DemandDriven
from repro.data import HostDisks, StorageMap
from repro.experiments.common import run_datacutter
from repro.sim import Environment, umd_testbed
from repro.viz.profile import dataset_25gb


def sweep_windows(windows=(1, 2, 4, 16), scale=0.02):
    profile = dataset_25gb(scale=scale)
    out = {}
    for window in windows:
        env = Environment()
        cluster = umd_testbed(
            env, red_nodes=0, blue_nodes=4, rogue_nodes=4, deathstar=False
        )
        nodes = [f"rogue{i}" for i in range(4)] + [f"blue{i}" for i in range(4)]
        cluster.set_background_load(8, hosts=nodes[:4])
        storage = StorageMap.balanced(profile.files, [HostDisks(h, 2) for h in nodes])
        [metrics] = run_datacutter(
            cluster,
            profile,
            storage,
            configuration="RE-Ra-M",
            algorithm="active",
            policy=lambda w=window: DemandDriven(window=w),
            width=2048,
            height=2048,
            compute_hosts=nodes,
            merge_host="blue0",
        )
        out[window] = metrics.makespan
    return out


def test_ablation_dd_window(benchmark):
    times = benchmark.pedantic(sweep_windows, rounds=1, iterations=1)
    benchmark.extra_info["makespans"] = {str(k): round(v, 3) for k, v in times.items()}
    # Under load imbalance the tightest window adapts best...
    assert times[1] <= times[16]
    # ...and behaviour plateaus once the window exceeds queue depth.
    assert times[4] == times[16]
