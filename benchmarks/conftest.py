"""Benchmark configuration.

Each bench regenerates one of the paper's tables/figures through the full
simulation stack and reports the wall time of doing so.  Experiments are
deterministic, so a single round is measured; the regenerated table itself
is attached to ``benchmark.extra_info`` for inspection in the JSON output.
"""

import pytest


@pytest.fixture
def regenerate(benchmark):
    """Run an experiment once under the benchmark timer; return its table."""

    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        benchmark.extra_info["rows"] = len(result.rows)
        benchmark.extra_info["title"] = result.title
        return result

    return _run
