"""Benchmark configuration.

Each bench regenerates one of the paper's tables/figures through the full
simulation stack and reports the wall time of doing so.  Experiments are
deterministic, so a single round is measured; the regenerated table itself
is attached to ``benchmark.extra_info`` for inspection in the JSON output.

``test_pipeline_engines.py`` additionally records real-pipeline throughput
(threaded vs process engine), ``test_warm_pool.py`` records cold-spawn
vs warm-pool query latency, and ``test_merge_scaling.py`` records the
distributed-tile-framebuffer scaling table, all into
``BENCH_pipeline.json`` at the repo root via the :func:`pipeline_report`
fixture, so the perf trajectory of the real engines is tracked across
PRs.  The baseline file is committed; rerunning the benches refreshes it
in place.
"""

import json
import os
import time
from pathlib import Path

import pytest

BENCH_PIPELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


@pytest.fixture
def regenerate(benchmark):
    """Run an experiment once under the benchmark timer; return its table."""

    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        benchmark.extra_info["rows"] = len(result.rows)
        benchmark.extra_info["title"] = result.title
        return result

    return _run


@pytest.fixture(scope="session")
def pipeline_report():
    """Collect per-engine pipeline measurements; write BENCH_pipeline.json.

    Tests store one record per engine under ``report["engines"][name]``
    (wall seconds, triangles/sec, pixels/sec, plus scene facts); the warm
    pool bench stores its cold/warm latencies under ``report["warm_pool"]``.
    At session end the collected records — and the process/threaded speedup
    when both ran — are serialised to the repo root.  Non-JSON extras (e.g.
    rendered images kept for parity assertions) go under keys starting with
    ``_`` and are stripped before writing.

    When only a subset of the benches ran, previously written sections are
    preserved so a partial rerun does not erase the rest of the baseline.
    """
    report = {"engines": {}}
    yield report
    if (
        not report["engines"]
        and "warm_pool" not in report
        and "merge_scaling" not in report
        and "deep_analysis" not in report
        and "cache" not in report
    ):
        return
    engines = {
        name: {k: v for k, v in rec.items() if not k.startswith("_")}
        for name, rec in report["engines"].items()
    }
    previous = {}
    if BENCH_PIPELINE_PATH.exists():
        try:
            previous = json.loads(BENCH_PIPELINE_PATH.read_text())
        except ValueError:
            previous = {}
    payload = {
        "benchmark": "pipeline_engines",
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cpu_count": os.cpu_count(),
        "engines": engines or previous.get("engines", {}),
    }
    threaded = payload["engines"].get("threaded")
    process = payload["engines"].get("process")
    if threaded and process:
        payload["speedup_process_vs_threaded"] = round(
            threaded["wall_s"] / process["wall_s"], 3
        )
    warm_pool = report.get("warm_pool", previous.get("warm_pool"))
    if warm_pool:
        payload["warm_pool"] = warm_pool
    merge_scaling = report.get("merge_scaling", previous.get("merge_scaling"))
    if merge_scaling:
        payload["merge_scaling"] = merge_scaling
    deep_analysis = report.get("deep_analysis", previous.get("deep_analysis"))
    if deep_analysis:
        payload["deep_analysis"] = deep_analysis
    cache = report.get("cache", previous.get("cache"))
    if cache:
        payload["cache"] = cache
    BENCH_PIPELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
