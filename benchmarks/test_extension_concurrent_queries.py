"""Bench: concurrent-query throughput on a shared cluster."""

from repro.experiments import concurrent_queries


def test_extension_concurrent_queries(benchmark):
    table = benchmark.pedantic(
        concurrent_queries.run, kwargs={"levels": (1, 2, 4)},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["rows"] = [
        {k: round(v, 3) if isinstance(v, float) else v for k, v in row.items()}
        for row in table.rows
    ]
    one = table.value("throughput_qps", queries=1)
    two = table.value("throughput_qps", queries=2)
    assert two > one  # batching overlaps I/O, network and compute phases
    lat1 = table.value("mean_latency", queries=1)
    lat4 = table.value("mean_latency", queries=4)
    assert lat4 < 4 * lat1  # work-conserving sharing, not serialisation
