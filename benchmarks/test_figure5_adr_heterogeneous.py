"""Bench: regenerate Figure 5 (background-load heterogeneity)."""

from repro.experiments import figure5


def test_figure5_adr_heterogeneous(regenerate):
    table = regenerate(
        figure5.run,
        scale=0.02,
        per_side_counts=(2, 4),
        background_levels=(0, 4, 16),
        image_sizes=(512, 2048),
    )
    norm = table.value(
        "normalized",
        **{"rogue+blue": "2+2"},
        bg_jobs=16,
        image=2048,
        system="DC Active Pixel",
    )
    assert norm < 0.75  # DC stays stable while ADR degrades
