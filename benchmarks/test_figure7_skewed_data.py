"""Bench: regenerate Figure 7 (skewed data distribution)."""

from repro.experiments import figure7


def test_figure7_skewed_data(regenerate):
    table = regenerate(figure7.run, scale=0.02)
    balanced = table.value("seconds", skew="0%", config="RERa-M", policy="DD")
    skewed = table.value("seconds", skew="75%", config="RERa-M", policy="DD")
    assert skewed > balanced  # the SPMD-like config pays for skew
