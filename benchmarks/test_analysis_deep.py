"""Deep-analysis micro-benchmark: the engine-hook passes must stay cheap.

Every engine runs the three deep passes (effect inference, resource
dataflow, the bounded protocol model checker) at construction, so their
cost is paid before every pipeline run and every warm-pool query.  This
bench times ``verify_pipeline(deep=True)`` at the engine-hook bounds
over the four IsosurfaceApp decompositions and asserts the whole sweep
stays under 250 ms; per-config wall times are recorded into
``BENCH_pipeline.json`` under ``deep_analysis``.

The bound is the *truncated* engine pass (``protocol_max_states=4000``,
F904 INFO on truncation); the exhaustive deadlock-freedom proofs —
~210k states for R-E-Ra-M on two hosts — live in
``tests/analysis/test_protocol.py`` and ``repro lint --deep``.
"""

import time

from repro.analysis import verify_pipeline
from repro.core.policies import make_policy_factory
from repro.data import HostDisks, StorageMap
from repro.viz import IsosurfaceApp
from repro.viz.profile import DatasetProfile

CONFIGS = ("R-E-Ra-M", "RE-Ra-M", "R-ERa-M", "RERa-M")
HOSTS = ["h0", "h1"]
DEEP_BUDGET_S = 0.250

DD = make_policy_factory("DD")


def make_app():
    profile = DatasetProfile.synthetic(
        "deep-bench", (16, 16, 16), nchunks=8, nfiles=4, timesteps=1,
        total_triangles=500,
    )
    storage = StorageMap.balanced(
        profile.files, [HostDisks(h) for h in HOSTS]
    )
    return IsosurfaceApp(profile, storage, width=32, height=32)


def test_deep_passes_within_engine_budget(benchmark, pipeline_report):
    """All four configs' deep passes together finish inside 250 ms."""
    app = make_app()
    targets = []
    for config in CONFIGS:
        overrides = app.policy_overrides(config)
        targets.append(
            (
                config,
                app.graph(config),
                app.placement(config, compute_hosts=HOSTS),
                lambda s, o=overrides: o.get(s, DD),
            )
        )

    per_config = {}

    def sweep():
        total_rules = []
        for config, g, p, policy_for in targets:
            t0 = time.perf_counter()
            report = verify_pipeline(
                g, p, known_hosts=HOSTS, policy_for=policy_for, deep=True
            )
            per_config[config] = round(time.perf_counter() - t0, 6)
            assert not report.errors, report.rule_ids()
            total_rules.append(len(report.diagnostics))
        return total_rules

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    elapsed = sum(per_config.values())
    assert elapsed < DEEP_BUDGET_S, (
        f"deep passes took {elapsed * 1000:.1f} ms over {len(CONFIGS)} "
        f"configs (budget {DEEP_BUDGET_S * 1000:.0f} ms): {per_config}"
    )
    pipeline_report["deep_analysis"] = {
        "configs": per_config,
        "total_s": round(elapsed, 6),
        "budget_s": DEEP_BUDGET_S,
        "protocol_max_states": 4000,
    }
    benchmark.extra_info["per_config_s"] = per_config
