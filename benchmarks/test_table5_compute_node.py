"""Bench: regenerate Table 5 (8-way compute node over a slow link)."""

from repro.experiments import table5


def test_table5_compute_node(regenerate):
    table = regenerate(table5.run, scale=0.02)
    wrr = table.value("seconds", data_nodes=8, config="RE-Ra-M", policy="WRR")
    rr = table.value("seconds", data_nodes=8, config="RE-Ra-M", policy="RR")
    assert wrr <= rr
