"""Bench: regenerate Table 3 (DD shifts buffers away from loaded nodes)."""

from repro.experiments import table3


def test_table3_dd_buffer_shift(regenerate):
    table = regenerate(
        table3.run,
        scale=0.02,
        per_side_counts=(2,),
        background_levels=(0, 16),
        image_sizes=(512, 2048),
    )
    unloaded = table.value(
        "rogue_share",
        **{"rogue+blue": "2+2"},
        bg_jobs=0,
        image=2048,
        algorithm="DC A.Pixel",
    )
    loaded = table.value(
        "rogue_share",
        **{"rogue+blue": "2+2"},
        bg_jobs=16,
        image=2048,
        algorithm="DC A.Pixel",
    )
    assert loaded < unloaded
