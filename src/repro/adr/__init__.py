"""Active Data Repository baseline: static partitioning + SPMD z-buffer
rendering with overlapped asynchronous I/O (paper Section 4.2)."""

from repro.adr.partition import static_partition, weighted_static_partition
from repro.adr.runtime import ADRResult, ADRRuntime

__all__ = ["ADRResult", "ADRRuntime", "static_partition", "weighted_static_partition"]
