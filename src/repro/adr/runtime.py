"""The Active Data Repository (ADR) baseline runtime (simulated).

ADR (paper references [12, 15], Section 4.2) is an SPMD framework for
generalized-reduction applications on homogeneous clusters:

- the dataset is statically partitioned over the nodes;
- each node overlaps asynchronous local disk I/O with computation, keeping
  a bounded window of outstanding reads;
- every node renders into a local z-buffer (the accumulator);
- after a global barrier, partial z-buffers are combined with a partitioned
  all-to-all reduction and gathered at node 0, which extracts the image.

The strengths (tight I/O-compute overlap on dedicated homogeneous nodes)
and the key weakness (no work can move between nodes, so the slowest node
gates the run) both fall directly out of this structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adr.partition import static_partition, weighted_static_partition
from repro.data.chunks import ChunkSpec
from repro.errors import ConfigurationError, StreamClosedError
from repro.sim.cluster import Cluster
from repro.sim.store import Store
from repro.viz.models import CostParams
from repro.viz.profile import DatasetProfile
from repro.viz.raster import ZBUFFER_ENTRY_BYTES

__all__ = ["ADRResult", "ADRRuntime"]


@dataclass
class ADRResult:
    """Measurements from one ADR query execution."""

    makespan: float
    local_phase: float
    merge_phase: float
    node_finish: dict[str, float] = field(default_factory=dict)
    chunks_per_node: dict[str, int] = field(default_factory=dict)
    bytes_read: int = 0


class ADRRuntime:
    """Run one isosurface query (one timestep) ADR-style.

    Parameters
    ----------
    cluster:
        Finalized simulated cluster (shared with any background load).
    nodes:
        Host names participating in the query; the dataset is partitioned
        over exactly these.
    profile:
        Dataset description (chunk layout + per-chunk triangle counts).
    width / height:
        Output image size.
    costs:
        The same calibrated constants the DataCutter models use, so ADR and
        DataCutter runs are directly comparable.
    timestep:
        Which stored timestep to render.
    io_depth:
        Outstanding asynchronous disk reads per node (ADR is "tuned" — it
        keeps the disk busy while computing).
    partition_weights:
        Optional per-node weights for a *weighted* static partition — a
        repair for known, static heterogeneity (faster nodes get more
        chunks).  Still a compile-time decision; see
        :func:`repro.adr.partition.weighted_static_partition`.
    """

    def __init__(
        self,
        cluster: Cluster,
        nodes: list[str],
        profile: DatasetProfile,
        width: int = 2048,
        height: int = 2048,
        costs: CostParams | None = None,
        timestep: int = 0,
        io_depth: int = 4,
        partition_weights: list[float] | None = None,
    ):
        if not nodes:
            raise ConfigurationError("ADR needs at least one node")
        for node in nodes:
            host = cluster.host(node)
            if not host.disks:
                raise ConfigurationError(f"ADR node {node!r} has no disks")
        if io_depth < 1:
            raise ConfigurationError(f"io_depth must be >= 1, got {io_depth}")
        if not 0 <= timestep < profile.timesteps:
            raise ConfigurationError(
                f"timestep {timestep} outside [0, {profile.timesteps})"
            )
        self.cluster = cluster
        self.env = cluster.env
        self.nodes = list(nodes)
        self.profile = profile
        self.width = width
        self.height = height
        self.costs = costs or CostParams()
        self.timestep = timestep
        self.io_depth = io_depth
        if partition_weights is not None and len(partition_weights) != len(nodes):
            raise ConfigurationError("need one partition weight per node")
        self.partition_weights = partition_weights

    # -- cost arithmetic -----------------------------------------------------
    def _chunk_compute(self, chunk: ChunkSpec) -> float:
        tris = self.profile.triangles(self.timestep, chunk.chunk_id)
        frag = self.costs.fragments_per_triangle(self.width, self.height)
        return (
            chunk.nbytes * self.costs.read_per_byte
            + chunk.points * self.costs.extract_per_voxel
            + tris * self.costs.extract_per_triangle
            + tris * self.costs.raster_per_triangle
            + tris * frag * self.costs.raster_per_fragment
        )

    @property
    def _zb_bytes(self) -> int:
        return self.width * self.height * ZBUFFER_ENTRY_BYTES

    # -- execution ---------------------------------------------------------
    def run(self) -> ADRResult:
        """Execute one query; returns phase timings."""
        env = self.env
        start = env.now
        if self.partition_weights is not None:
            assignment = weighted_static_partition(
                self.profile.chunks, self.nodes, self.partition_weights
            )
        else:
            assignment = static_partition(self.profile.chunks, self.nodes)
        result = ADRResult(0.0, 0.0, 0.0)
        result.chunks_per_node = {n: len(assignment[n]) for n in self.nodes}

        local_procs = []
        for node in self.nodes:
            local_procs.append(
                env.process(
                    self._node_local_phase(node, assignment[node], result),
                    name=f"adr-local@{node}",
                )
            )
        barrier = env.all_of(local_procs)

        def query():
            yield barrier
            local_done = env.now
            result.local_phase = local_done - start
            yield from self._reduce_zbuffers()
            result.merge_phase = env.now - local_done

        done = env.process(query(), name="adr-query")
        env.run(until=done)
        result.makespan = env.now - start
        return result

    def _node_local_phase(self, node: str, chunks: list[ChunkSpec], result: ADRResult):
        """Overlapped I/O + compute over this node's static partition.

        One reader keeps ``io_depth`` asynchronous reads outstanding; one
        compute worker per core drains the ready queue (ADR is "highly
        parallel" — a 2-way node renders two chunks at once).
        """
        host = self.cluster.host(node)
        env = self.env
        ready: Store = Store(env, capacity=self.io_depth, name=f"adr-io@{node}")

        def reader():
            ndisks = len(host.disks)
            for i, chunk in enumerate(chunks):
                yield host.read_disk(
                    chunk.nbytes, disk_index=i % ndisks, sequential=i >= ndisks
                )
                result.bytes_read += chunk.nbytes
                yield ready.put(chunk)
            ready.close()

        env.process(reader(), name=f"adr-read@{node}")

        def worker():
            while True:
                try:
                    chunk = yield ready.get()
                except StreamClosedError:
                    return
                yield host.compute(self._chunk_compute(chunk))

        workers = [
            env.process(worker(), name=f"adr-compute@{node}#{i}")
            for i in range(host.cores)
        ]
        yield env.all_of(workers)
        result.node_finish[node] = env.now

    def _reduce_zbuffers(self):
        """Partitioned all-to-all z-buffer reduction, then gather to node 0.

        ADR is tuned for exactly this operation: the image space is divided
        into one partition per node; every node ships each foreign partition
        of its local z-buffer to that partition's owner (all transfers
        concurrent), owners depth-merge what they receive, and the merged
        partitions are gathered at the first node, which extracts the final
        image.  A single-node run skips the network entirely.
        """
        env = self.env
        names = self.nodes
        n = len(names)
        entries = self.width * self.height
        part_bytes = self._zb_bytes // n
        part_entries = entries // n
        if n > 1:
            # Scatter/merge: each node processes its partition.
            workers = [
                env.process(
                    self._partition_owner(i, part_bytes, part_entries),
                    name=f"adr-owner@{names[i]}",
                )
                for i in range(n)
            ]
            yield env.all_of(workers)
            # Gather merged partitions (RGB image slices) at the root.
            root = names[0]
            gathers = [
                env.process(
                    self._gather(names[i], root, part_bytes),
                    name=f"adr-gather@{names[i]}",
                )
                for i in range(1, n)
            ]
            yield env.all_of(gathers)
        # Root extracts the final image from the composited buffer.
        yield self.cluster.host(names[0]).compute(
            entries * self.costs.merge_zb_per_entry * 0.25
        )

    def _partition_owner(self, owner_idx: int, part_bytes: int, part_entries: int):
        """Receive every other node's slice of this partition and merge it."""
        env = self.env
        names = self.nodes
        owner = names[owner_idx]
        receives = [
            self.cluster.transfer(src, owner, part_bytes)
            for src in names
            if src != owner
        ]
        yield env.all_of(receives)
        merge_work = part_entries * (len(names) - 1) * self.costs.merge_zb_per_entry
        yield self.cluster.host(owner).compute(merge_work)

    def _gather(self, src: str, root: str, part_bytes: int):
        if src == root:
            return
        yield self.cluster.transfer(src, root, part_bytes)
