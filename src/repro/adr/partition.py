"""Static dataset partitioning for the Active Data Repository baseline.

ADR expects the dataset "uniformly partitioned over the nodes in use"
(paper Section 4.2) and cannot rebalance at run time — the property that
makes it degrade under heterogeneity.  Chunks are dealt to nodes in Hilbert
order (locality parity with the DataCutter declustering) and, within a
node, round-robin across its disks.
"""

from __future__ import annotations

from repro.data.chunks import ChunkSpec
from repro.data.hilbert import hilbert_index
from repro.errors import ConfigurationError

__all__ = ["static_partition", "weighted_static_partition"]


def _hilbert_ordered(chunks: list[ChunkSpec]) -> list[ChunkSpec]:
    max_coord = max(max(c.index) for c in chunks)
    order = max(1, max_coord.bit_length())
    if (1 << order) <= max_coord:  # pragma: no cover - defensive
        order += 1
    return sorted(chunks, key=lambda c: hilbert_index(c.index, order))


def static_partition(
    chunks: list[ChunkSpec], nodes: list[str]
) -> dict[str, list[ChunkSpec]]:
    """Deal chunks uniformly over ``nodes`` in Hilbert order.

    Returns node -> chunk list; list lengths differ by at most one.
    """
    if not nodes:
        raise ConfigurationError("ADR partition needs at least one node")
    if not chunks:
        raise ConfigurationError("ADR partition needs at least one chunk")
    ordered = _hilbert_ordered(chunks)
    assignment: dict[str, list[ChunkSpec]] = {node: [] for node in nodes}
    for pos, chunk in enumerate(ordered):
        assignment[nodes[pos % len(nodes)]].append(chunk)
    return assignment


def weighted_static_partition(
    chunks: list[ChunkSpec], nodes: list[str], weights: list[float]
) -> dict[str, list[ChunkSpec]]:
    """Deal chunks proportionally to per-node ``weights`` in Hilbert order.

    An obvious repair to ADR's homogeneity assumption: if Blue nodes are
    known to be faster than Rogue nodes, give them proportionally more
    chunks.  This fixes *static, known* heterogeneity but remains a
    compile-time decision — it cannot react to background load, which is
    what the DataCutter policies exploit (see
    ``benchmarks/test_extension_weighted_adr.py``).
    """
    if not nodes:
        raise ConfigurationError("ADR partition needs at least one node")
    if not chunks:
        raise ConfigurationError("ADR partition needs at least one chunk")
    if len(weights) != len(nodes):
        raise ConfigurationError("need exactly one weight per node")
    if any(w <= 0 for w in weights):
        raise ConfigurationError("weights must be > 0")
    total = float(sum(weights))
    ordered = _hilbert_ordered(chunks)
    assignment: dict[str, list[ChunkSpec]] = {node: [] for node in nodes}
    # Largest-remainder apportionment over the Hilbert order: walk the
    # chunks once, always assigning to the node furthest behind its quota.
    quotas = [w / total for w in weights]
    given = [0] * len(nodes)
    for pos, chunk in enumerate(ordered, start=1):
        deficits = [pos * q - g for q, g in zip(quotas, given)]
        winner = deficits.index(max(deficits))
        assignment[nodes[winner]].append(chunk)
        given[winner] += 1
    return assignment
