"""``repro serve``: a long-lived isosurface query service on warm pools.

The paper's pipelines are meant to serve interactive exploration — "the
client specifies a region of interest, an isovalue and a viewing screen" —
but the batch engines cold-spawn every process per run.  This module turns
the real pipeline into a query service in the paper's client/server
shape: a thin asyncio frontend accepts JSON queries over TCP, multiplexes
them onto :class:`~repro.engines.pool.WarmPool` pipelines kept warm
between queries, and returns rendered frames.

Protocol: newline-delimited JSON, one request per line, one response per
line (stdlib only — no HTTP).  Requests::

    {"cmd": "query", "isovalue": 0.4, "timestep": 1,
     "view": {"azimuth": 60, "elevation": 30}, "trace": false}
    {"cmd": "ping"} | {"cmd": "stats"} | {"cmd": "shutdown"}

``cmd`` defaults to ``"query"``.  A query response carries the frame as a
base64 PPM (``frame_b64``), per-query latency, stream/ack totals and a
``warm`` flag (False when this query cold-built its pool).  Admission is
bounded: beyond ``admission_limit`` concurrently running queries the server
answers ``{"ok": false, "rejected": true}`` immediately instead of queueing
without bound.

Query → pipeline binding: the (scene, configuration, algorithm, image
size, policy, copies) tuple keys the pool — those parameters are baked
into filter instances at construction.  The per-query knobs (isovalue,
timestep, camera orbit) ride the unit of work and are honoured by the viz
filters via their ``ctx.uow`` overrides, so successive queries reuse the
same warm processes.

Result caching (``cache_mb > 0``)
---------------------------------
Repetitive traffic is served through the :mod:`repro.cache` tiers.  The
cache attaches per pool to the standalone extract stage and only when
:func:`repro.analysis.effects.certify_memoisable` passes — with the
shipped configurations that is exactly ``R-E-Ra-M``; the fused
configurations are *refused* (E703/E706, surfaced in the response's
``cache`` block) and run uncached.  On a triangle-tier hit the cached
per-chunk triangles ride ``uow["triangles"]`` and the Read/Extract
stages skip storage and marching cubes; on a full tile-set hit the frame
is reconstructed from cached tiles without running the pipeline at all.
Failed metadata lookups (unknown dataset, out-of-range timestep) are
answered from the negative tier.  ``cache_scope`` selects one shared
cache for every pool (``"shared"``, the default — popular content is
shared across image sizes and merge fan-outs) or a private cache per
pool (``"pool"``).
"""

from __future__ import annotations

import asyncio
import base64
import json
import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.cache import (
    CachedTile,
    ResultCache,
    TriangleSet,
    content_key,
    make_triangle_set,
)
from repro.core.tiles import Tile, TileMap
from repro.engines.pool import PoolManager, WarmPool
from repro.errors import (
    AnalysisError,
    ConfigurationError,
    EngineError,
    ReproError,
)

__all__ = ["QueryService", "SceneSpec", "ppm_bytes", "run_server"]

CONFIGURATIONS = ("R-E-Ra-M", "RE-Ra-M", "R-ERa-M", "RERa-M")

#: The extract-carrying stage per configuration — the subgraph a result
#: cache tries to attach to.  Only the standalone ``E`` stage certifies
#: (pure); the fused stages are IO/stateful and are refused (E703/E706).
_CACHE_MEMBERS = {
    "R-E-Ra-M": ("E",),
    "RE-Ra-M": ("RE",),
    "R-ERa-M": ("ERa",),
    "RERa-M": ("RERa",),
}


def ppm_bytes(image) -> bytes:
    """Serialise an (H, W, 3) uint8 image as binary PPM (P6)."""
    height, width = image.shape[:2]
    return f"P6 {width} {height} 255\n".encode() + image.tobytes()


def _coerce_int(
    value: Any,
    name: str,
    minimum: "int | None" = None,
    maximum: "int | None" = None,
) -> int:
    """A request field as an int, or :class:`ConfigurationError`.

    Bare ``int("banana")`` / ``int(None)`` raise ``ValueError`` /
    ``TypeError``, which used to escape ``render()`` and kill the
    connection without an error response; coercion failures and
    out-of-range values are now uniform configuration errors.
    """
    try:
        out = int(value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"{name} must be an integer, got {value!r}"
        ) from None
    if isinstance(value, float) and value != out:
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if minimum is not None and out < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {out}")
    if maximum is not None and out > maximum:
        raise ConfigurationError(f"{name} must be <= {maximum}, got {out}")
    return out


def _coerce_float(value: Any, name: str) -> float:
    """A request field as a finite float, or :class:`ConfigurationError`."""
    try:
        out = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"{name} must be a number, got {value!r}"
        ) from None
    if not math.isfinite(out):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
    return out


def _frame_tiles(width: int, height: int, merge_copies: int) -> "list[Tile]":
    """The cached-frame partition: the PR 5 row bands, or one full tile."""
    if merge_copies > 1:
        return TileMap.rows(width, height, merge_copies, merge_copies).tiles
    return [Tile(0, 0, 0, width, height, 0)]


@dataclass(frozen=True)
class SceneSpec:
    """One servable dataset: the quickstart scene's knobs, named.

    The service generates the ParSSim dataset in memory at first use and
    declusters it over one host — the serving testbed is a single machine,
    where transparent copies (one process each) supply the parallelism.
    """

    name: str
    grid: int = 33
    timesteps: int = 3
    species: int = 2
    nchunks: int = 27
    nfiles: int = 8
    seed: int = 7
    isovalue: float = 0.35

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.grid, self.grid, self.grid)


class QueryService:
    """Render isosurface queries on pooled pipelines.

    ``render`` is synchronous and thread-safe — the asyncio frontend calls
    it through an executor.  Pools are cached in a
    :class:`~repro.engines.pool.PoolManager` keyed by pipeline identity;
    the first query for a key pays the cold build (fork + filter
    construction), subsequent ones run warm.  With ``cache_mb > 0``
    results are memoised through :mod:`repro.cache` (see the module
    docstring for tiering and the certification contract).
    """

    def __init__(
        self,
        scenes: "list[SceneSpec] | None" = None,
        config: str = "RE-Ra-M",
        algorithm: str = "active",
        width: int = 256,
        height: int = 256,
        policy: str = "DD",
        copies: int = 2,
        merge_copies: int = 1,
        max_pools: int = 4,
        max_inflight: int = 2,
        pool_idle_timeout: "float | None" = 300.0,
        cache_mb: float = 0.0,
        cache_scope: str = "shared",
    ):
        if config not in CONFIGURATIONS:
            raise ConfigurationError(
                f"config must be one of {CONFIGURATIONS}, got {config!r}"
            )
        if merge_copies < 1:
            raise ConfigurationError(
                f"merge_copies must be >= 1, got {merge_copies}"
            )
        if cache_mb < 0:
            raise ConfigurationError(
                f"cache_mb must be >= 0, got {cache_mb}"
            )
        if cache_scope not in ("shared", "pool"):
            raise ConfigurationError(
                f"cache_scope must be 'shared' or 'pool', got {cache_scope!r}"
            )
        scenes = scenes or [SceneSpec("default")]
        self.scenes = {scene.name: scene for scene in scenes}
        self.default_scene = scenes[0].name
        self.config = config
        self.algorithm = algorithm
        self.width = width
        self.height = height
        self.policy = policy
        self.copies = copies
        self.merge_copies = merge_copies
        self.max_inflight = max_inflight
        self.pools = PoolManager(
            max_pools=max_pools, idle_timeout=pool_idle_timeout
        )
        self.cache_mb = float(cache_mb)
        self.cache_scope = cache_scope
        self._shared_cache: "ResultCache | None" = None
        self._negative_cache: "ResultCache | None" = None
        if self.cache_mb > 0:
            if cache_scope == "shared":
                self._shared_cache = ResultCache(
                    int(self.cache_mb * 2**20), name="serve-shared"
                )
                self._negative_cache = self._shared_cache
            else:
                # Per-pool caches hold pipeline results; negative lookups
                # precede pool selection, so they get a small service-wide
                # cache of their own.
                self._negative_cache = ResultCache(
                    256 * 1024, name="serve-negative"
                )
        #: pool key -> (cache, subgraph signature) once a certified
        #: binding exists; lets full tile-set hits skip the pool entirely.
        self._cache_info: "dict[Any, tuple[ResultCache, str]]" = {}
        #: configuration -> E703/E706 refusal text (uncached fallback)
        self._cache_refusals: "dict[str, str]" = {}
        self._assets: "dict[str, tuple[Any, Any, Any]]" = {}
        self._assets_lock = threading.Lock()
        self.queries_served = 0
        self.queries_failed = 0
        self._count_lock = threading.Lock()

    # -- pipeline construction ----------------------------------------------
    def _scene_assets(self, scene: SceneSpec) -> "tuple[Any, Any, Any]":
        """(dataset, profile, storage) for a scene, built once and reused."""
        from repro.data import HostDisks, ParSSimDataset, StorageMap
        from repro.viz.profile import DatasetProfile

        with self._assets_lock:
            assets = self._assets.get(scene.name)
            if assets is None:
                dataset = ParSSimDataset(
                    scene.shape, timesteps=scene.timesteps,
                    species=scene.species, seed=scene.seed,
                )
                profile = DatasetProfile.measured(
                    scene.name, dataset, nchunks=scene.nchunks,
                    nfiles=scene.nfiles, isovalue=scene.isovalue,
                )
                storage = StorageMap.balanced(
                    profile.files, [HostDisks("host0")]
                )
                assets = (dataset, profile, storage)
                self._assets[scene.name] = assets
        return assets

    def _pool_cache(self) -> "ResultCache | None":
        if self.cache_mb <= 0:
            return None
        if self.cache_scope == "shared":
            return self._shared_cache
        return ResultCache(int(self.cache_mb * 2**20), name="serve-pool")

    def _build_pool(
        self, scene: SceneSpec, config: str, algorithm: str,
        width: int, height: int, merge_copies: int,
    ) -> WarmPool:
        from repro.viz import IsosurfaceApp

        dataset, profile, storage = self._scene_assets(scene)
        app = IsosurfaceApp(
            profile,
            storage,
            width=width,
            height=height,
            algorithm=algorithm,
            dataset=dataset,
            isovalue=scene.isovalue,
            merge_copies=merge_copies,
        )
        graph = app.graph(config)
        placement = app.placement(config, copies_per_host=self.copies)
        overrides = app.policy_overrides(config)
        cache = self._pool_cache()
        if cache is not None:
            try:
                return WarmPool(
                    graph,
                    placement,
                    policy=self.policy,
                    policy_overrides=overrides,
                    max_inflight=self.max_inflight,
                    cache=cache,
                    cache_members=_CACHE_MEMBERS[config],
                )
            except AnalysisError as exc:
                # Certify-before-memoise: the subgraph is not provably
                # pure, so this configuration runs uncached (the E703/E706
                # findings are surfaced in responses and stats).
                report = getattr(exc, "report", None)
                if report is not None and report.errors:
                    self._cache_refusals[config] = "; ".join(
                        f"[{d.rule}] {d.message}" for d in report.errors
                    )
                else:
                    self._cache_refusals[config] = str(exc)
        return WarmPool(
            graph,
            placement,
            policy=self.policy,
            policy_overrides=overrides,
            max_inflight=self.max_inflight,
        )

    # -- cache plumbing ------------------------------------------------------
    def _resolve_scene(
        self, name: str, events: "list[tuple[str, str, int]]"
    ) -> SceneSpec:
        scene = self.scenes.get(name)
        if scene is not None:
            return scene
        negative = self._negative_cache
        nkey = content_key("negative", "dataset", name)
        if negative is not None:
            cached = negative.get("negative", nkey)
            if cached is not None:
                events.append(("negative", "hit", len(cached)))
                raise ConfigurationError(cached)
        message = f"unknown dataset {name!r}; have {sorted(self.scenes)}"
        if negative is not None:
            negative.put("negative", nkey, message, len(message))
            events.append(("negative", "miss", 0))
        raise ConfigurationError(message)

    def _check_timestep(
        self,
        scene: SceneSpec,
        timestep: int,
        events: "list[tuple[str, str, int]]",
    ) -> None:
        if 0 <= timestep < scene.timesteps:
            return
        negative = self._negative_cache
        nkey = content_key("negative", "timestep", scene.name, timestep)
        if negative is not None:
            cached = negative.get("negative", nkey)
            if cached is not None:
                events.append(("negative", "hit", len(cached)))
                raise ConfigurationError(cached)
        message = (
            f"timestep {timestep} out of range for {scene.name!r} "
            f"(has {scene.timesteps})"
        )
        if negative is not None:
            negative.put("negative", nkey, message, len(message))
            events.append(("negative", "miss", 0))
        raise ConfigurationError(message)

    def _extract_triangles(
        self, scene: SceneSpec, timestep: int, isovalue: float
    ) -> "dict[int, np.ndarray]":
        """Per-chunk marching cubes, exactly as the pipeline computes it.

        Same chunk partition (the profile's), same generator, same
        ``extract_triangles`` kernel and the same world origin per chunk
        — so injected triangles are bit-identical to what the Read →
        Extract stages would have produced for this unit of work.
        """
        from repro.viz.marching_cubes import extract_triangles

        dataset, profile, _storage = self._scene_assets(scene)
        out: dict[int, np.ndarray] = {}
        for data_file in profile.files:
            for chunk in data_file.chunks:
                scalars = dataset.chunk_field(chunk, timestep, 0)
                origin = (
                    float(chunk.start[2]),
                    float(chunk.start[1]),
                    float(chunk.start[0]),
                )
                out[chunk.chunk_id] = extract_triangles(
                    scalars, isovalue, origin=origin
                )
        return out

    def _try_cached_frame(
        self,
        cache: ResultCache,
        frame_key: str,
        width: int,
        height: int,
        merge_copies: int,
        events: "list[tuple[str, str, int]]",
    ) -> "tuple[np.ndarray, CachedTile] | None":
        """Rebuild the frame from cached tiles, or None on any gap."""
        tiles = _frame_tiles(width, height, merge_copies)
        keys = [content_key(frame_key, tile.index) for tile in tiles]
        missing = [k for k in keys if not cache.peek("tiles", k)]
        if missing:
            cache.get("tiles", missing[0])  # register exactly one miss
            events.append(("tiles", "miss", 0))
            return None
        records = [cache.get("tiles", k) for k in keys]
        if any(record is None for record in records):  # raced an eviction
            events.append(("tiles", "miss", 0))
            return None
        image = np.zeros((height, width, 3), np.uint8)
        for record in records:
            h, w = record.image.shape[:2]
            image[record.y0 : record.y0 + h, record.x0 : record.x0 + w] = (
                record.image
            )
        events.append(
            ("tiles", "hit", sum(record.nbytes for record in records))
        )
        return image, records[0]

    def _store_tiles(
        self,
        cache: ResultCache,
        frame_key: str,
        result: Any,
        width: int,
        height: int,
        merge_copies: int,
    ) -> None:
        for tile in _frame_tiles(width, height, merge_copies):
            sub = np.ascontiguousarray(
                result.image[tile.y0 : tile.y1, tile.x0 : tile.x1]
            )
            record = CachedTile(
                tile.index, tile.x0, tile.y0, sub,
                result.active_pixels, result.buffers_merged,
            )
            cache.put(
                "tiles", content_key(frame_key, tile.index), record,
                record.nbytes,
            )

    def _cache_mode(self, config: str) -> str:
        if self.cache_mb <= 0:
            return "off"
        if config in self._cache_refusals:
            return "refused"
        return self.cache_scope

    def _cache_block(
        self, config: str, events: "list[tuple[str, str, int]]"
    ) -> "dict[str, Any]":
        block: dict[str, Any] = {"mode": self._cache_mode(config)}
        for tier, outcome, _nbytes in events:
            block[tier] = outcome
        block["bytes_saved"] = sum(
            nbytes for _tier, outcome, nbytes in events if outcome == "hit"
        )
        if block["mode"] == "refused":
            block["error"] = self._cache_refusals[config]
        return block

    @staticmethod
    def _record_cache_events(
        tracer: Any,
        events: "list[tuple[str, str, int]]",
        elapsed: float,
    ) -> None:
        if tracer is None:
            return
        if not tracer.clock:
            tracer.clock = "wall"
        for tier, outcome, nbytes in events:
            tracer.record(
                elapsed, "cache", f"cache_{outcome}",
                f"tier={tier} nbytes={nbytes}",
            )

    # -- queries -------------------------------------------------------------
    def render(self, request: "dict[str, Any]") -> "dict[str, Any]":
        """Execute one query; returns the JSON-serialisable response dict.

        Raises :class:`~repro.errors.ReproError` on invalid requests or
        pipeline failures — the server wraps those into error responses.
        """
        from repro.core.tracing import Tracer
        from repro.viz.camera import Camera

        t0 = time.perf_counter()
        events: list[tuple[str, str, int]] = []
        scene_name = str(request.get("dataset", self.default_scene))
        scene = self._resolve_scene(scene_name, events)
        config = str(request.get("config", self.config))
        if config not in CONFIGURATIONS:
            raise ConfigurationError(
                f"config must be one of {CONFIGURATIONS}, got {config!r}"
            )
        algorithm = str(request.get("algorithm", self.algorithm))
        width = _coerce_int(
            request.get("width", self.width), "width", minimum=1, maximum=16384
        )
        height = _coerce_int(
            request.get("height", self.height), "height",
            minimum=1, maximum=16384,
        )
        isovalue = _coerce_float(
            request.get("isovalue", scene.isovalue), "isovalue"
        )
        timestep = _coerce_int(request.get("timestep", 0), "timestep")
        self._check_timestep(scene, timestep, events)
        merge_copies = _coerce_int(
            request.get("merge_copies", self.merge_copies), "merge_copies",
            minimum=1,
        )
        view = request.get("view")
        if view is not None and not isinstance(view, dict):
            raise ConfigurationError(
                f"view must be an object with azimuth/elevation, "
                f"got {view!r}"
            )
        uow: dict[str, Any] = {"isovalue": isovalue, "timestep": timestep}
        azimuth = elevation = None
        if view:
            azimuth = _coerce_float(view.get("azimuth", 30.0), "view.azimuth")
            elevation = _coerce_float(
                view.get("elevation", 25.0), "view.elevation"
            )
            uow["camera"] = Camera.orbit(
                scene.shape,
                azimuth_deg=azimuth,
                elevation_deg=elevation,
                width=width,
                height=height,
            )
        tracer = Tracer() if request.get("trace") else None

        # merge_copies is pool-keyed like any other placement parameter:
        # a different fan-out is a different process topology, so it gets
        # its own warm pipeline rather than rebuilding an existing one.
        key = (scene_name, config, algorithm, width, height,
               self.policy, self.copies, merge_copies)

        # Content-addressed key material.  The scene facts fully determine
        # the generated dataset; (nchunks, nfiles) fully determine the
        # declustered chunk partition the profile derives from them.
        dataset_digest = content_key(
            "scene", scene.name, scene.grid, scene.timesteps,
            scene.species, scene.seed,
        )
        chunk_digest = content_key("chunks", scene.nchunks, scene.nfiles)
        view_tag = (
            ("orbit", azimuth, elevation) if view else ("default-camera",)
        )

        def frame_key_for(tri: TriangleSet, signature: str) -> str:
            return content_key(
                "frame", signature, tri.digest, view_tag,
                width, height, algorithm, config, merge_copies,
            )

        def triangle_key_for(signature: str) -> str:
            return content_key(
                "tri", signature, dataset_digest, chunk_digest,
                timestep, isovalue,
            )

        # -- fast path: a fully cached frame skips the pool outright
        cache: "ResultCache | None" = None
        signature: "str | None" = None
        tri: "TriangleSet | None" = None
        info = self._cache_info.get(key)
        if info is not None:
            cache, signature = info
            tri = cache.get("triangles", triangle_key_for(signature))
            if tri is not None:
                events.append(("triangles", "hit", tri.nbytes))
                cached = self._try_cached_frame(
                    cache, frame_key_for(tri, signature),
                    width, height, merge_copies, events,
                )
                if cached is not None:
                    image, meta = cached
                    return self._cached_response(
                        request, scene_name, config, algorithm, width,
                        height, isovalue, timestep, merge_copies, view,
                        azimuth, elevation, image, meta, events, tracer, t0,
                    )
            else:
                events.append(("triangles", "miss", 0))

        pool, created = self.pools.get(
            key,
            lambda: self._build_pool(
                scene, config, algorithm, width, height, merge_copies
            ),
        )
        if cache is None and pool.cache_binding is not None:
            cache = pool.cache_binding.cache
            signature = pool.cache_binding.signature
            self._cache_info[key] = (cache, signature)
            tri = cache.get("triangles", triangle_key_for(signature))
            events.append(
                ("triangles", "hit", tri.nbytes) if tri is not None
                else ("triangles", "miss", 0)
            )

        frame_key: "str | None" = None
        if cache is not None and signature is not None:
            if tri is None:
                # Triangle-tier miss: extract once, serve-side, and let
                # every copy of this query (and every later one) inject.
                tri = make_triangle_set(
                    self._extract_triangles(scene, timestep, isovalue)
                )
                cache.put(
                    "triangles", triangle_key_for(signature), tri, tri.nbytes
                )
            frame_key = frame_key_for(tri, signature)
            uow["triangles"] = dict(tri.triangles)

        try:
            metrics = pool.submit(uow, tracer=tracer).result()
        except EngineError:
            with self._count_lock:
                self.queries_failed += 1
            raise
        result = metrics.result
        if cache is not None and frame_key is not None:
            self._store_tiles(
                cache, frame_key, result, width, height, merge_copies
            )
        metrics.cache_hits = sum(1 for _, o, _ in events if o == "hit")
        metrics.cache_misses = sum(1 for _, o, _ in events if o == "miss")
        metrics.cache_bytes_saved = sum(
            n for _, o, n in events if o == "hit"
        )
        latency = time.perf_counter() - t0
        self._record_cache_events(tracer, events, latency)
        with self._count_lock:
            self.queries_served += 1
        response: dict[str, Any] = {
            "ok": True,
            "dataset": scene_name,
            "config": config,
            "algorithm": algorithm,
            "width": width,
            "height": height,
            "isovalue": isovalue,
            "timestep": timestep,
            "merge_copies": merge_copies,
            "warm": not created,
            "cached": False,
            "pool_cycle": pool.cycles_completed,
            "latency_s": round(latency, 6),
            "makespan_s": round(metrics.makespan, 6),
            "active_pixels": result.active_pixels,
            "buffers_merged": result.buffers_merged,
            "acks": metrics.ack_messages,
            "cache": self._cache_block(config, events),
            "streams": {
                name: [stats.buffers, stats.bytes]
                for name, stats in sorted(metrics.streams.items())
            },
            "frame_b64": base64.b64encode(ppm_bytes(result.image)).decode(),
        }
        if view:
            response["view"] = {"azimuth": azimuth, "elevation": elevation}
        if tracer is not None:
            response["trace"] = {
                "events": len(tracer.events),
                "queue_samples": len(tracer.queue_samples),
                "dropped": tracer.dropped,
            }
        return response

    def _cached_response(
        self,
        request: "dict[str, Any]",
        scene_name: str,
        config: str,
        algorithm: str,
        width: int,
        height: int,
        isovalue: float,
        timestep: int,
        merge_copies: int,
        view: Any,
        azimuth: "float | None",
        elevation: "float | None",
        image: np.ndarray,
        meta: CachedTile,
        events: "list[tuple[str, str, int]]",
        tracer: Any,
        t0: float,
    ) -> "dict[str, Any]":
        """A query answered wholly from the tile tier (no pipeline run)."""
        latency = time.perf_counter() - t0
        self._record_cache_events(tracer, events, latency)
        with self._count_lock:
            self.queries_served += 1
        response: dict[str, Any] = {
            "ok": True,
            "dataset": scene_name,
            "config": config,
            "algorithm": algorithm,
            "width": width,
            "height": height,
            "isovalue": isovalue,
            "timestep": timestep,
            "merge_copies": merge_copies,
            "warm": True,
            "cached": True,
            "pool_cycle": None,
            "latency_s": round(latency, 6),
            "makespan_s": 0.0,
            "active_pixels": meta.active_pixels,
            "buffers_merged": meta.buffers_merged,
            "acks": 0,
            "cache": self._cache_block(config, events),
            "streams": {},
            "frame_b64": base64.b64encode(ppm_bytes(image)).decode(),
        }
        if view:
            response["view"] = {"azimuth": azimuth, "elevation": elevation}
        if tracer is not None:
            response["trace"] = {
                "events": len(tracer.events),
                "queue_samples": len(tracer.queue_samples),
                "dropped": tracer.dropped,
            }
        return response

    def cache_stats(self) -> "dict[str, Any]":
        """Service-level cache facts (also embedded in :meth:`stats`)."""
        out: dict[str, Any] = {
            "enabled": self.cache_mb > 0,
            "scope": self.cache_scope if self.cache_mb > 0 else None,
            "cache_mb": self.cache_mb,
            "refusals": dict(self._cache_refusals),
        }
        if self._shared_cache is not None:
            out["shared"] = self._shared_cache.stats()
        if (
            self._negative_cache is not None
            and self._negative_cache is not self._shared_cache
        ):
            out["negative"] = self._negative_cache.stats()
        return out

    def stats(self) -> "dict[str, Any]":
        with self._count_lock:
            served, failed = self.queries_served, self.queries_failed
        return {
            "scenes": sorted(self.scenes),
            "config": self.config,
            "algorithm": self.algorithm,
            "merge_copies": self.merge_copies,
            "queries_served": served,
            "queries_failed": failed,
            "cache": self.cache_stats(),
            "pools": self.pools.stats(),
        }

    def close(self) -> None:
        self.pools.close_all()


# -- the asyncio frontend ----------------------------------------------------
async def _serve(
    service: QueryService,
    host: str,
    port: int,
    admission_limit: int,
    ready: "Callable[[int], None] | None",
) -> None:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    inflight = 0  # touched only on the event loop: no lock needed

    async def handle(reader, writer):
        try:
            await _handle_connection(reader, writer)
        except (asyncio.CancelledError, ConnectionError):
            pass  # client gone or server shutting down mid-read
        finally:
            writer.close()

    async def _handle_connection(reader, writer):
        nonlocal inflight
        while not stop.is_set():
            line = await reader.readline()
            if not line:
                break
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                response = {"ok": False, "error": f"bad request: {exc}"}
            else:
                cmd = request.get("cmd", "query")
                if cmd == "ping":
                    response = {"ok": True, "pong": True}
                elif cmd == "stats":
                    response = {"ok": True, "stats": service.stats()}
                elif cmd == "shutdown":
                    response = {"ok": True, "bye": True}
                    stop.set()
                elif cmd == "query":
                    if inflight >= admission_limit:
                        response = {
                            "ok": False,
                            "rejected": True,
                            "error": (
                                f"server busy: {inflight} queries in flight "
                                f"(admission limit {admission_limit})"
                            ),
                        }
                    else:
                        inflight += 1
                        try:
                            response = await loop.run_in_executor(
                                None, service.render, request
                            )
                        except ReproError as exc:
                            response = {"ok": False, "error": str(exc)}
                        finally:
                            inflight -= 1
                else:
                    response = {"ok": False, "error": f"unknown cmd {cmd!r}"}
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()

    server = await asyncio.start_server(handle, host, port)
    bound_port = server.sockets[0].getsockname()[1]
    if ready is not None:
        ready(bound_port)
    print(
        f"repro serve: listening on {host}:{bound_port} "
        f"(scenes: {', '.join(sorted(service.scenes))})",
        flush=True,
    )
    async with server:
        await stop.wait()


def run_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8642,
    admission_limit: int = 8,
    ready: "Callable[[int], None] | None" = None,
) -> None:
    """Run the service until a ``shutdown`` command arrives.

    ``port=0`` binds an ephemeral port; ``ready`` (if given) receives the
    bound port once the server is accepting — used by tests and scripted
    clients to avoid races.
    """
    try:
        asyncio.run(_serve(service, host, port, admission_limit, ready))
    finally:
        service.close()
