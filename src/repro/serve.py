"""``repro serve``: a long-lived isosurface query service on warm pools.

The paper's pipelines are meant to serve interactive exploration — "the
client specifies a region of interest, an isovalue and a viewing screen" —
but the batch engines cold-spawn every process per run.  This module turns
the real pipeline into a query service in the paper's client/server
shape: a thin asyncio frontend accepts JSON queries over TCP, multiplexes
them onto :class:`~repro.engines.pool.WarmPool` pipelines kept warm
between queries, and returns rendered frames.

Protocol: newline-delimited JSON, one request per line, one response per
line (stdlib only — no HTTP).  Requests::

    {"cmd": "query", "isovalue": 0.4, "timestep": 1,
     "view": {"azimuth": 60, "elevation": 30}, "trace": false}
    {"cmd": "ping"} | {"cmd": "stats"} | {"cmd": "shutdown"}

``cmd`` defaults to ``"query"``.  A query response carries the frame as a
base64 PPM (``frame_b64``), per-query latency, stream/ack totals and a
``warm`` flag (False when this query cold-built its pool).  Admission is
bounded: beyond ``admission_limit`` concurrently running queries the server
answers ``{"ok": false, "rejected": true}`` immediately instead of queueing
without bound.

Query → pipeline binding: the (scene, configuration, algorithm, image
size, policy, copies) tuple keys the pool — those parameters are baked
into filter instances at construction.  The per-query knobs (isovalue,
timestep, camera orbit) ride the unit of work and are honoured by the viz
filters via their ``ctx.uow`` overrides, so successive queries reuse the
same warm processes.
"""

from __future__ import annotations

import asyncio
import base64
import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.engines.pool import PoolManager, WarmPool
from repro.errors import ConfigurationError, EngineError, ReproError

__all__ = ["QueryService", "SceneSpec", "ppm_bytes", "run_server"]

CONFIGURATIONS = ("R-E-Ra-M", "RE-Ra-M", "R-ERa-M", "RERa-M")


def ppm_bytes(image) -> bytes:
    """Serialise an (H, W, 3) uint8 image as binary PPM (P6)."""
    height, width = image.shape[:2]
    return f"P6 {width} {height} 255\n".encode() + image.tobytes()


@dataclass(frozen=True)
class SceneSpec:
    """One servable dataset: the quickstart scene's knobs, named.

    The service generates the ParSSim dataset in memory at first use and
    declusters it over one host — the serving testbed is a single machine,
    where transparent copies (one process each) supply the parallelism.
    """

    name: str
    grid: int = 33
    timesteps: int = 3
    species: int = 2
    nchunks: int = 27
    nfiles: int = 8
    seed: int = 7
    isovalue: float = 0.35

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.grid, self.grid, self.grid)


class QueryService:
    """Render isosurface queries on pooled pipelines.

    ``render`` is synchronous and thread-safe — the asyncio frontend calls
    it through an executor.  Pools are cached in a
    :class:`~repro.engines.pool.PoolManager` keyed by pipeline identity;
    the first query for a key pays the cold build (fork + filter
    construction), subsequent ones run warm.
    """

    def __init__(
        self,
        scenes: "list[SceneSpec] | None" = None,
        config: str = "RE-Ra-M",
        algorithm: str = "active",
        width: int = 256,
        height: int = 256,
        policy: str = "DD",
        copies: int = 2,
        merge_copies: int = 1,
        max_pools: int = 4,
        max_inflight: int = 2,
        pool_idle_timeout: "float | None" = 300.0,
    ):
        if config not in CONFIGURATIONS:
            raise ConfigurationError(
                f"config must be one of {CONFIGURATIONS}, got {config!r}"
            )
        if merge_copies < 1:
            raise ConfigurationError(
                f"merge_copies must be >= 1, got {merge_copies}"
            )
        scenes = scenes or [SceneSpec("default")]
        self.scenes = {scene.name: scene for scene in scenes}
        self.default_scene = scenes[0].name
        self.config = config
        self.algorithm = algorithm
        self.width = width
        self.height = height
        self.policy = policy
        self.copies = copies
        self.merge_copies = merge_copies
        self.max_inflight = max_inflight
        self.pools = PoolManager(
            max_pools=max_pools, idle_timeout=pool_idle_timeout
        )
        self.queries_served = 0
        self.queries_failed = 0
        self._count_lock = threading.Lock()

    # -- pipeline construction ----------------------------------------------
    def _build_pool(
        self, scene: SceneSpec, config: str, algorithm: str,
        width: int, height: int, merge_copies: int,
    ) -> WarmPool:
        from repro.data import HostDisks, ParSSimDataset, StorageMap
        from repro.viz import IsosurfaceApp
        from repro.viz.profile import DatasetProfile

        dataset = ParSSimDataset(
            scene.shape, timesteps=scene.timesteps, species=scene.species,
            seed=scene.seed,
        )
        profile = DatasetProfile.measured(
            scene.name, dataset, nchunks=scene.nchunks, nfiles=scene.nfiles,
            isovalue=scene.isovalue,
        )
        storage = StorageMap.balanced(profile.files, [HostDisks("host0")])
        app = IsosurfaceApp(
            profile,
            storage,
            width=width,
            height=height,
            algorithm=algorithm,
            dataset=dataset,
            isovalue=scene.isovalue,
            merge_copies=merge_copies,
        )
        return WarmPool(
            app.graph(config),
            app.placement(config, copies_per_host=self.copies),
            policy=self.policy,
            policy_overrides=app.policy_overrides(config),
            max_inflight=self.max_inflight,
        )

    # -- queries -------------------------------------------------------------
    def render(self, request: "dict[str, Any]") -> "dict[str, Any]":
        """Execute one query; returns the JSON-serialisable response dict.

        Raises :class:`~repro.errors.ReproError` on invalid requests or
        pipeline failures — the server wraps those into error responses.
        """
        from repro.core.tracing import Tracer
        from repro.viz.camera import Camera

        t0 = time.perf_counter()
        scene_name = str(request.get("dataset", self.default_scene))
        scene = self.scenes.get(scene_name)
        if scene is None:
            raise ConfigurationError(
                f"unknown dataset {scene_name!r}; have "
                f"{sorted(self.scenes)}"
            )
        config = str(request.get("config", self.config))
        if config not in CONFIGURATIONS:
            raise ConfigurationError(
                f"config must be one of {CONFIGURATIONS}, got {config!r}"
            )
        algorithm = str(request.get("algorithm", self.algorithm))
        width = int(request.get("width", self.width))
        height = int(request.get("height", self.height))
        isovalue = float(request.get("isovalue", scene.isovalue))
        timestep = int(request.get("timestep", 0))
        if not 0 <= timestep < scene.timesteps:
            raise ConfigurationError(
                f"timestep {timestep} out of range for {scene_name!r} "
                f"(has {scene.timesteps})"
            )
        merge_copies = int(request.get("merge_copies", self.merge_copies))
        if merge_copies < 1:
            raise ConfigurationError(
                f"merge_copies must be >= 1, got {merge_copies}"
            )
        uow: dict[str, Any] = {"isovalue": isovalue, "timestep": timestep}
        view = request.get("view")
        if view:
            uow["camera"] = Camera.orbit(
                scene.shape,
                azimuth_deg=float(view.get("azimuth", 30.0)),
                elevation_deg=float(view.get("elevation", 25.0)),
                width=width,
                height=height,
            )

        # merge_copies is pool-keyed like any other placement parameter:
        # a different fan-out is a different process topology, so it gets
        # its own warm pipeline rather than rebuilding an existing one.
        key = (scene_name, config, algorithm, width, height,
               self.policy, self.copies, merge_copies)
        pool, created = self.pools.get(
            key,
            lambda: self._build_pool(
                scene, config, algorithm, width, height, merge_copies
            ),
        )
        tracer = Tracer() if request.get("trace") else None
        try:
            metrics = pool.submit(uow, tracer=tracer).result()
        except EngineError:
            with self._count_lock:
                self.queries_failed += 1
            raise
        result = metrics.result
        latency = time.perf_counter() - t0
        with self._count_lock:
            self.queries_served += 1
        response: dict[str, Any] = {
            "ok": True,
            "dataset": scene_name,
            "config": config,
            "algorithm": algorithm,
            "width": width,
            "height": height,
            "isovalue": isovalue,
            "timestep": timestep,
            "merge_copies": merge_copies,
            "warm": not created,
            "pool_cycle": pool.cycles_completed,
            "latency_s": round(latency, 6),
            "makespan_s": round(metrics.makespan, 6),
            "active_pixels": result.active_pixels,
            "buffers_merged": result.buffers_merged,
            "acks": metrics.ack_messages,
            "streams": {
                name: [stats.buffers, stats.bytes]
                for name, stats in sorted(metrics.streams.items())
            },
            "frame_b64": base64.b64encode(ppm_bytes(result.image)).decode(),
        }
        if view:
            response["view"] = {
                "azimuth": float(view.get("azimuth", 30.0)),
                "elevation": float(view.get("elevation", 25.0)),
            }
        if tracer is not None:
            response["trace"] = {
                "events": len(tracer.events),
                "queue_samples": len(tracer.queue_samples),
                "dropped": tracer.dropped,
            }
        return response

    def stats(self) -> "dict[str, Any]":
        with self._count_lock:
            served, failed = self.queries_served, self.queries_failed
        return {
            "scenes": sorted(self.scenes),
            "config": self.config,
            "algorithm": self.algorithm,
            "merge_copies": self.merge_copies,
            "queries_served": served,
            "queries_failed": failed,
            "pools": self.pools.stats(),
        }

    def close(self) -> None:
        self.pools.close_all()


# -- the asyncio frontend ----------------------------------------------------
async def _serve(
    service: QueryService,
    host: str,
    port: int,
    admission_limit: int,
    ready: "Callable[[int], None] | None",
) -> None:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    inflight = 0  # touched only on the event loop: no lock needed

    async def handle(reader, writer):
        try:
            await _handle_connection(reader, writer)
        except (asyncio.CancelledError, ConnectionError):
            pass  # client gone or server shutting down mid-read
        finally:
            writer.close()

    async def _handle_connection(reader, writer):
        nonlocal inflight
        while not stop.is_set():
            line = await reader.readline()
            if not line:
                break
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                response = {"ok": False, "error": f"bad request: {exc}"}
            else:
                cmd = request.get("cmd", "query")
                if cmd == "ping":
                    response = {"ok": True, "pong": True}
                elif cmd == "stats":
                    response = {"ok": True, "stats": service.stats()}
                elif cmd == "shutdown":
                    response = {"ok": True, "bye": True}
                    stop.set()
                elif cmd == "query":
                    if inflight >= admission_limit:
                        response = {
                            "ok": False,
                            "rejected": True,
                            "error": (
                                f"server busy: {inflight} queries in flight "
                                f"(admission limit {admission_limit})"
                            ),
                        }
                    else:
                        inflight += 1
                        try:
                            response = await loop.run_in_executor(
                                None, service.render, request
                            )
                        except ReproError as exc:
                            response = {"ok": False, "error": str(exc)}
                        finally:
                            inflight -= 1
                else:
                    response = {"ok": False, "error": f"unknown cmd {cmd!r}"}
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()

    server = await asyncio.start_server(handle, host, port)
    bound_port = server.sockets[0].getsockname()[1]
    if ready is not None:
        ready(bound_port)
    print(
        f"repro serve: listening on {host}:{bound_port} "
        f"(scenes: {', '.join(sorted(service.scenes))})",
        flush=True,
    )
    async with server:
        await stop.wait()


def run_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8642,
    admission_limit: int = 8,
    ready: "Callable[[int], None] | None" = None,
) -> None:
    """Run the service until a ``shutdown`` command arrives.

    ``port=0`` binds an ephemeral port; ``ready`` (if given) receives the
    bound port once the server is accepting — used by tests and scripted
    clients to avoid races.
    """
    try:
        asyncio.run(_serve(service, host, port, admission_limit, ready))
    finally:
        service.close()
