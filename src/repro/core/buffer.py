"""Data buffers: the unit of communication between filters.

All stream traffic is fixed-size buffers (paper Section 2).  A
:class:`DataBuffer` carries an explicit byte count (used by the simulated
engine for network/disk accounting) and an optional payload (real data, used
by the threaded engine and by trace-driven simulation).  ``tags`` is an open
dictionary for application metadata (chunk id, timestep, scanline range...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["DataBuffer", "chunk_bytes"]


@dataclass
class DataBuffer:
    """One stream buffer.

    Parameters
    ----------
    nbytes:
        Size on the wire in bytes.  Must be >= 0.
    payload:
        Optional real contents (any object; typically NumPy arrays).
    tags:
        Application metadata travelling with the buffer.
    """

    nbytes: int
    payload: Any = None
    tags: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"buffer nbytes must be >= 0, got {self.nbytes}")

    def with_tags(self, **tags: Any) -> "DataBuffer":
        """Return a copy of this buffer with additional tags."""
        merged = dict(self.tags)
        merged.update(tags)
        return DataBuffer(self.nbytes, self.payload, merged)


def chunk_bytes(total_bytes: int, buffer_size: int) -> list[int]:
    """Split ``total_bytes`` into fixed-size buffer payloads.

    Returns the byte count of each buffer: all ``buffer_size`` except a
    possibly smaller final one.  ``total_bytes == 0`` yields no buffers.
    """
    if buffer_size < 1:
        raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
    if total_bytes < 0:
        raise ValueError(f"total_bytes must be >= 0, got {total_bytes}")
    full, rest = divmod(total_bytes, buffer_size)
    sizes = [buffer_size] * full
    if rest:
        sizes.append(rest)
    return sizes
