"""Data buffers: the unit of communication between filters.

All stream traffic is fixed-size buffers (paper Section 2).  A
:class:`DataBuffer` carries an explicit byte count (used by the simulated
engine for network/disk accounting) and an optional payload (real data, used
by the threaded/process engines and by trace-driven simulation).  ``tags`` is
an open dictionary for application metadata (chunk id, timestep, scanline
range...).

:class:`BufferCodec` serialises buffers for transport between transparent
copies that do not share an address space.  Large NumPy arrays anywhere in
the payload travel through ``multiprocessing.shared_memory`` segments (one
memcpy in, zero-copy attach out) while the remaining object structure rides
a small pickle header — the process engine's queues carry only the header
plus segment names.  The threaded engine accepts the same codec (mostly for
testing) so both real engines share one wire format.
"""

from __future__ import annotations

import io
import os
import pickle
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "DataBuffer",
    "chunk_bytes",
    "BufferCodec",
    "EncodedBuffer",
    "PayloadLease",
]


@dataclass
class DataBuffer:
    """One stream buffer.

    Parameters
    ----------
    nbytes:
        Size on the wire in bytes.  Must be >= 0.
    payload:
        Optional real contents (any object; typically NumPy arrays).
    tags:
        Application metadata travelling with the buffer.
    """

    nbytes: int
    payload: Any = None
    tags: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"buffer nbytes must be >= 0, got {self.nbytes}")

    def with_tags(self, **tags: Any) -> "DataBuffer":
        """Return a copy of this buffer with additional tags."""
        merged = dict(self.tags)
        merged.update(tags)
        return DataBuffer(self.nbytes, self.payload, merged)


@dataclass(frozen=True)
class EncodedBuffer:
    """The wire form of one :class:`DataBuffer` (cheap to pickle).

    ``header`` is a pickle of the buffer with every exported array replaced
    by a persistent-id reference; ``segments`` describes the shared-memory
    segment backing each reference as ``(name, shape, dtype_str)``.
    """

    header: bytes
    segments: tuple[tuple[str, tuple[int, ...], str], ...]
    nbytes: int  # wire size of the original buffer (accounting convenience)

    @property
    def shared_bytes(self) -> int:
        """Payload bytes carried in shared memory rather than the header."""
        return sum(
            int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
            for _name, shape, dtype in self.segments
        )


class PayloadLease:
    """Ownership of the shared-memory segments behind one decoded buffer.

    The decoded payload's arrays are *views into shared memory*; they stay
    valid until :meth:`release` is called (the engine releases after the
    consuming filter's ``handle`` returns, mirroring DataCutter's recycling
    of stream buffers).  A filter that must retain payload data beyond the
    callback copies it.  ``release`` is idempotent.
    """

    def __init__(self, shms: list[Any]) -> None:
        self._shms = shms

    def release(self) -> None:
        """Unlink the backing segments and drop this lease's references.

        The OS frees the memory once the last mapping closes — arrays still
        referencing a segment keep it mapped until they are garbage
        collected, so release never invalidates live views mid-use.
        """
        shms, self._shms = self._shms, []
        for shm in shms:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            # Detach the mapping from the SharedMemory wrapper before the
            # wrapper is garbage collected: its __del__ runs close(), which
            # unmaps the region even while NumPy views still point into it
            # (NumPy keeps the mmap alive via .base but holds no buffer
            # export that would block the unmap — readers would fault).
            # With the wrapper's references dropped, plain refcounting
            # makes the region live exactly as long as the last view.
            shm._buf = None
            shm._mmap = None
            fd = getattr(shm, "_fd", -1)
            if fd >= 0:
                os.close(fd)
                shm._fd = -1


class _SegmentPickler(pickle.Pickler):
    """Pickler that spills large contiguous arrays to shared memory."""

    def __init__(self, fh: io.BytesIO, threshold: int) -> None:
        super().__init__(fh, protocol=pickle.HIGHEST_PROTOCOL)
        self.threshold = threshold
        self.segments: list[Any] = []  # SharedMemory objects
        self.descriptors: list[tuple[str, tuple[int, ...], str]] = []

    def persistent_id(self, obj: Any) -> "int | None":
        if (
            isinstance(obj, np.ndarray)
            and obj.nbytes >= self.threshold
            and obj.dtype != object
        ):
            from multiprocessing import shared_memory

            arr = np.ascontiguousarray(obj)
            seg = shared_memory.SharedMemory(create=True, size=arr.nbytes)
            np.ndarray(arr.shape, arr.dtype, buffer=seg.buf)[...] = arr
            self.segments.append(seg)
            self.descriptors.append((seg.name, arr.shape, arr.dtype.str))
            return len(self.descriptors) - 1
        return None


class _SegmentUnpickler(pickle.Unpickler):
    """Unpickler that resolves persistent ids to shared-memory arrays."""

    def __init__(self, fh: io.BytesIO, encoded: "EncodedBuffer") -> None:
        super().__init__(fh)
        self.encoded = encoded
        self.shms: list[Any] = []

    def persistent_load(self, pid: Any) -> np.ndarray:
        from multiprocessing import shared_memory

        name, shape, dtype = self.encoded.segments[pid]
        shm = shared_memory.SharedMemory(name=name)
        self.shms.append(shm)
        return np.ndarray(shape, np.dtype(dtype), buffer=shm.buf)


class BufferCodec:
    """Serialise :class:`DataBuffer` objects for cross-process streams.

    Parameters
    ----------
    shm_threshold:
        Arrays of at least this many bytes go to shared memory; smaller
        ones (and object-dtype arrays) pickle inline in the header.  The
        default (64 KiB) keeps headers under a pipe write while moving
        every scalar block / triangle array / z-buffer slab out of band.
    use_shared_memory:
        ``False`` pickles everything inline — useful on platforms without
        POSIX shared memory or for debugging; the wire format is unchanged
        (``segments`` is simply empty).

    The codec is stateless and fork-safe: it may be shared by every copy of
    a run.  ``encode`` performs exactly one copy of each large array (into
    its segment); ``decode`` attaches the segments zero-copy and returns a
    :class:`PayloadLease` governing their lifetime.
    """

    def __init__(self, shm_threshold: int = 64 * 1024, use_shared_memory: bool = True):
        if shm_threshold < 1:
            raise ValueError(f"shm_threshold must be >= 1, got {shm_threshold}")
        self.shm_threshold = shm_threshold
        self.use_shared_memory = use_shared_memory

    def encode(self, buffer: DataBuffer) -> EncodedBuffer:
        """Encode one buffer; creates the backing shared-memory segments."""
        fh = io.BytesIO()
        if self.use_shared_memory:
            pickler = _SegmentPickler(fh, self.shm_threshold)
            pickler.dump(buffer)
            descriptors = tuple(pickler.descriptors)
            # Close our mapping now; the segments stay alive (named) until
            # the consumer unlinks them via its PayloadLease.
            for seg in pickler.segments:
                seg.close()
        else:
            pickle.dump(buffer, fh, protocol=pickle.HIGHEST_PROTOCOL)
            descriptors = ()
        return EncodedBuffer(fh.getvalue(), descriptors, buffer.nbytes)

    def decode(self, encoded: EncodedBuffer) -> tuple[DataBuffer, PayloadLease]:
        """Decode one buffer zero-copy; the lease controls segment lifetime."""
        fh = io.BytesIO(encoded.header)
        unpickler = _SegmentUnpickler(fh, encoded)
        buffer: DataBuffer = unpickler.load()
        return buffer, PayloadLease(unpickler.shms)

    @staticmethod
    def release_encoded(encoded: EncodedBuffer) -> None:
        """Free an encoded buffer's segments without decoding it.

        Error paths (a consumer draining its queue after a failure) call
        this so discarded buffers never leak shared memory.
        """
        from multiprocessing import shared_memory

        for name, _shape, _dtype in encoded.segments:
            try:
                shm = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue
            shm.unlink()
            shm.close()


def chunk_bytes(total_bytes: int, buffer_size: int) -> list[int]:
    """Split ``total_bytes`` into fixed-size buffer payloads.

    Returns the byte count of each buffer: all ``buffer_size`` except a
    possibly smaller final one.  ``total_bytes == 0`` yields no buffers.
    """
    if buffer_size < 1:
        raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
    if total_bytes < 0:
        raise ValueError(f"total_bytes must be >= 0, got {total_bytes}")
    full, rest = divmod(total_bytes, buffer_size)
    sizes = [buffer_size] * full
    if rest:
        sizes.append(rest)
    return sizes
