"""Run instrumentation: the counters behind every table in the paper.

Engines populate a :class:`RunMetrics` while executing a unit of work:

- per-stream totals (buffers and bytes) -> Table 1;
- per-filter busy time -> Table 2;
- per-copy received-buffer counts, grouped by host or node class -> Table 3;
- wall-clock makespan -> Tables 4-5, Figures 4, 5, 7.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

from repro.errors import MetricsError

__all__ = ["DEFAULT_ACK_BYTES", "StreamStats", "CopyStats", "RunMetrics"]

#: Wire size of a demand-driven acknowledgment message; shared by both
#: engines so DD overhead accounting is comparable across backends.
DEFAULT_ACK_BYTES = 64


@dataclass
class StreamStats:
    """Traffic on one logical stream."""

    buffers: int = 0
    bytes: int = 0
    #: (src_host, dst_host) -> buffer count
    by_route: dict[tuple[str, str], int] = field(default_factory=dict)
    #: dst_host -> buffer count
    by_dst_host: dict[str, int] = field(default_factory=dict)

    def record(self, src_host: str, dst_host: str, nbytes: int) -> None:
        """Account one buffer moving ``src_host`` -> ``dst_host``."""
        self.buffers += 1
        self.bytes += nbytes
        route = (src_host, dst_host)
        self.by_route[route] = self.by_route.get(route, 0) + 1
        self.by_dst_host[dst_host] = self.by_dst_host.get(dst_host, 0) + 1


@dataclass
class CopyStats:
    """Activity of one transparent copy."""

    filter_name: str
    host: str
    copy_index: int
    buffers_in: int = 0
    buffers_out: int = 0
    busy_time: float = 0.0
    io_time: float = 0.0
    finished_at: float = 0.0


class RunMetrics:
    """All measurements from one engine run (one unit of work)."""

    def __init__(self) -> None:
        self.streams: dict[str, StreamStats] = defaultdict(StreamStats)
        self.copies: list[CopyStats] = []
        self.makespan: float = 0.0
        self.result: Any = None
        #: total acknowledgment messages sent (DD overhead accounting)
        self.ack_messages: int = 0
        self.ack_bytes: int = 0
        #: per-message ack wire size the engine used (0 = engine never set it)
        self.ack_nbytes: int = 0
        #: result-cache lookups this run benefited from / paid for
        #: (``repro.cache`` via the serve layer; 0 when no cache attached)
        self.cache_hits: int = 0
        self.cache_misses: int = 0
        #: stored bytes the cache hits saved the pipeline from recomputing
        self.cache_bytes_saved: int = 0

    # -- registration ----------------------------------------------------------
    def new_copy(self, filter_name: str, host: str, copy_index: int) -> CopyStats:
        """Create and register a per-copy stats record."""
        stats = CopyStats(filter_name, host, copy_index)
        self.copies.append(stats)
        return stats

    # -- aggregate queries -----------------------------------------------------
    def filter_busy_time(self, filter_name: str) -> float:
        """Total CPU busy time across all copies of one filter."""
        return sum(c.busy_time for c in self.copies if c.filter_name == filter_name)

    def filter_io_time(self, filter_name: str) -> float:
        """Total disk time across all copies of one filter."""
        return sum(c.io_time for c in self.copies if c.filter_name == filter_name)

    def filter_buffers_in(self, filter_name: str) -> int:
        """Total buffers consumed by all copies of one filter."""
        return sum(c.buffers_in for c in self.copies if c.filter_name == filter_name)

    def stream_totals(self, stream: str) -> tuple[int, int]:
        """(buffers, bytes) carried by one logical stream."""
        stats = self.streams.get(stream)
        if stats is None:
            return (0, 0)
        return (stats.buffers, stats.bytes)

    def buffers_per_copy_by_class(
        self, filter_name: str, host_class: dict[str, str]
    ) -> dict[str, float]:
        """Average buffers received per copy, grouped by node class.

        ``host_class`` maps host name -> class label (e.g. ``"rogue"`` /
        ``"blue"``).  This is the Table 3 statistic.
        """
        received: dict[str, int] = defaultdict(int)
        count: dict[str, int] = defaultdict(int)
        for copy in self.copies:
            if copy.filter_name != filter_name:
                continue
            cls = host_class.get(copy.host, copy.host)
            received[cls] += copy.buffers_in
            count[cls] += 1
        return {cls: received[cls] / count[cls] for cls in count}

    def summary(self) -> dict[str, Any]:
        """A compact dictionary view (used by reports and tests)."""
        return {
            "makespan": self.makespan,
            "streams": {
                name: (s.buffers, s.bytes) for name, s in self.streams.items()
            },
            "filters": sorted({c.filter_name for c in self.copies}),
            "ack_messages": self.ack_messages,
            "ack_bytes": self.ack_bytes,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_bytes_saved": self.cache_bytes_saved,
        }

    # -- consistency -----------------------------------------------------------
    def validate(self, graph: Any = None) -> "RunMetrics":
        """Cross-check counter conservation; raise :class:`MetricsError` if
        the run's books don't balance.

        Checks (all engine-agnostic):

        - every buffer recorded on a stream was sent by exactly one copy and
          consumed by exactly one copy (``sum(buffers_out) == stream buffers
          == sum(buffers_in)``);
        - ack conservation: ``ack_bytes == ack_messages * ack_nbytes`` (a
          policy that acknowledges messages must account their bytes), and
          at most one ack per delivered buffer;
        - no negative times; a run that moved buffers has a positive
          makespan and at least one positive per-copy finish time.

        With ``graph`` (a :class:`repro.core.graph.FilterGraph`) the stream
        totals are additionally checked per filter: the buffers carried by a
        filter's input streams must equal the buffers its copies consumed.

        Returns ``self`` so call sites can chain
        ``engine.run().validate(graph)``.
        """
        problems: list[str] = []
        stream_buffers = sum(s.buffers for s in self.streams.values())
        total_out = sum(c.buffers_out for c in self.copies)
        total_in = sum(c.buffers_in for c in self.copies)
        if total_out != stream_buffers:
            problems.append(
                f"buffers_out total {total_out} != stream buffer total "
                f"{stream_buffers}"
            )
        if total_in != stream_buffers:
            problems.append(
                f"buffers_in total {total_in} != stream buffer total "
                f"{stream_buffers} (delivered buffers must be consumed "
                f"exactly once)"
            )
        if self.ack_nbytes:
            expected_ack_bytes = self.ack_messages * self.ack_nbytes
            if self.ack_bytes != expected_ack_bytes:
                problems.append(
                    f"ack_bytes {self.ack_bytes} != ack_messages "
                    f"{self.ack_messages} * ack_nbytes {self.ack_nbytes}"
                )
        elif self.ack_messages and not self.ack_bytes:
            problems.append(
                f"{self.ack_messages} ack messages counted but ack_bytes is 0"
            )
        if self.ack_messages > stream_buffers:
            problems.append(
                f"ack_messages {self.ack_messages} exceeds delivered buffers "
                f"{stream_buffers} (at most one ack per buffer)"
            )
        if self.makespan < 0:
            problems.append(f"negative makespan {self.makespan}")
        for copy in self.copies:
            label = f"{copy.filter_name}@{copy.host}#{copy.copy_index}"
            for attr in ("busy_time", "io_time", "finished_at"):
                value = getattr(copy, attr)
                if value < 0:
                    problems.append(f"{label}: negative {attr} {value}")
        if stream_buffers and self.copies:
            if all(c.finished_at == 0.0 for c in self.copies):
                problems.append(
                    "buffers moved but no copy recorded a finish time "
                    "(finished_at never set)"
                )
        if graph is not None:
            for name, spec in graph.filters.items():
                if not spec.inputs:
                    continue
                expected = sum(
                    self.streams[s.name].buffers
                    for s in spec.inputs
                    if s.name in self.streams
                )
                got = self.filter_buffers_in(name)
                if expected != got:
                    problems.append(
                        f"filter {name!r}: input streams carried {expected} "
                        f"buffers but its copies consumed {got}"
                    )
        if problems:
            raise MetricsError("; ".join(problems))
        return self
