"""Tile maps: partitioning a viewport among distributed merge copies.

A :class:`TileMap` splits a ``width x height`` viewport into rectangular
:class:`Tile` regions, each *owned* by one of N merge copies (the
distributed-framebuffer scheme: fragments are routed to the copy owning
their tile, composited locally, and gathered into the final image).  The
map is pure geometry — it knows nothing about hosts or engines; the
``owner`` index corresponds, by convention, to the owning filter's copy-set
order in the :class:`~repro.core.placement.Placement` (copy set ``o``
receives every buffer tagged with owner ``o``).

Construction is deliberately permissive: :meth:`TileMap.problems` reports
coverage gaps, overlaps, out-of-bounds tiles and owner-numbering holes as
text, and the static pipeline verifier (rule ``Z402``) turns any problem
into an ERROR before an engine runs.  The :meth:`TileMap.rows` and
:meth:`TileMap.grid` factories always build valid maps, including viewports
not divisible by the tile count and degenerate 1x1 tiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Tile", "TileMap"]


@dataclass(frozen=True)
class Tile:
    """One rectangle of the viewport: ``[x0, x1) x [y0, y1)``, one owner."""

    index: int
    x0: int
    y0: int
    x1: int
    y1: int
    owner: int

    @property
    def width(self) -> int:
        """Tile width in pixels."""
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        """Tile height in pixels."""
        return self.y1 - self.y0

    @property
    def pixels(self) -> int:
        """Tile area in pixels."""
        return self.width * self.height

    def __repr__(self) -> str:
        return (
            f"<Tile {self.index} [{self.x0}:{self.x1})x[{self.y0}:{self.y1}) "
            f"owner={self.owner}>"
        )


class TileMap:
    """An owner-assigned rectangular partition of a viewport.

    Parameters
    ----------
    width / height:
        Viewport size in pixels.
    tiles:
        The partition; ``tiles[i].index`` must equal ``i``.  Geometry and
        owner numbering are *not* validated here — see :meth:`problems`.
    """

    def __init__(self, width: int, height: int, tiles: list[Tile]) -> None:
        if width < 1 or height < 1:
            raise ConfigurationError("tile map dimensions must be >= 1")
        if not tiles:
            raise ConfigurationError("tile map needs at least one tile")
        for i, tile in enumerate(tiles):
            if tile.index != i:
                raise ConfigurationError(
                    f"tile at position {i} has index {tile.index}; tiles "
                    f"must be listed in index order"
                )
        self.width = width
        self.height = height
        self.tiles = list(tiles)

    # -- factories -----------------------------------------------------------
    @classmethod
    def rows(
        cls, width: int, height: int, n_tiles: int, n_owners: int | None = None
    ) -> "TileMap":
        """Horizontal row bands, remainder rows spread over the first bands.

        ``n_owners`` defaults to ``n_tiles`` (one tile per owner); with
        fewer owners the bands are assigned round-robin so each owner's
        tiles interleave across the image.
        """
        if not 1 <= n_tiles <= height:
            raise ConfigurationError(
                f"need 1 <= n_tiles <= height, got {n_tiles} for height {height}"
            )
        owners = n_tiles if n_owners is None else n_owners
        if not 1 <= owners <= n_tiles:
            raise ConfigurationError(
                f"need 1 <= n_owners <= n_tiles, got {owners} for {n_tiles} tiles"
            )
        tiles = []
        for t in range(n_tiles):
            y0 = t * height // n_tiles
            y1 = (t + 1) * height // n_tiles
            tiles.append(Tile(t, 0, y0, width, y1, t % owners))
        return cls(width, height, tiles)

    @classmethod
    def grid(
        cls,
        width: int,
        height: int,
        tiles_x: int,
        tiles_y: int,
        n_owners: int | None = None,
    ) -> "TileMap":
        """A ``tiles_x x tiles_y`` rectangular grid in raster order."""
        if not 1 <= tiles_x <= width or not 1 <= tiles_y <= height:
            raise ConfigurationError(
                f"need 1 <= tiles_x <= width and 1 <= tiles_y <= height, "
                f"got {tiles_x}x{tiles_y} for {width}x{height}"
            )
        total = tiles_x * tiles_y
        owners = total if n_owners is None else n_owners
        if not 1 <= owners <= total:
            raise ConfigurationError(
                f"need 1 <= n_owners <= {total}, got {owners}"
            )
        tiles = []
        for ty in range(tiles_y):
            y0 = ty * height // tiles_y
            y1 = (ty + 1) * height // tiles_y
            for tx in range(tiles_x):
                x0 = tx * width // tiles_x
                x1 = (tx + 1) * width // tiles_x
                index = ty * tiles_x + tx
                tiles.append(Tile(index, x0, y0, x1, y1, index % owners))
        return cls(width, height, tiles)

    # -- queries -------------------------------------------------------------
    @property
    def n_owners(self) -> int:
        """Number of owners the map routes to (highest owner index + 1)."""
        return max(tile.owner for tile in self.tiles) + 1

    @cached_property
    def _tile_lookup(self) -> np.ndarray:
        """Flat pixel index -> tile index (int32; -1 where uncovered).

        Overlapping tiles keep the *highest* tile index in the lookup; the
        overlap itself is reported by :meth:`problems`.
        """
        lookup = np.full(self.width * self.height, -1, dtype=np.int32)
        grid = lookup.reshape(self.height, self.width)
        for tile in self.tiles:
            x0, x1 = max(tile.x0, 0), min(tile.x1, self.width)
            y0, y1 = max(tile.y0, 0), min(tile.y1, self.height)
            if x0 < x1 and y0 < y1:
                grid[y0:y1, x0:x1] = tile.index
        return lookup

    def tile_of(self, pixels: np.ndarray) -> np.ndarray:
        """Vectorised lookup: flat pixel indices -> owning tile indices."""
        return self._tile_lookup[pixels]

    def tiles_of_owner(self, owner: int) -> list[Tile]:
        """All tiles assigned to one owner, in index order."""
        return [tile for tile in self.tiles if tile.owner == owner]

    # -- validation ----------------------------------------------------------
    def problems(self) -> list[str]:
        """Every way this map fails the partition contract, as text.

        Checks: tiles inside the viewport with positive area, full
        coverage, no overlaps, and owner indices forming ``0..N-1`` with
        every owner owning at least one tile.  An empty list means the map
        is a valid owner-assigned partition.
        """
        out: list[str] = []
        covered = np.zeros((self.height, self.width), dtype=np.int16)
        for tile in self.tiles:
            if tile.x0 >= tile.x1 or tile.y0 >= tile.y1:
                out.append(f"tile {tile.index} has non-positive area")
                continue
            if (
                tile.x0 < 0
                or tile.y0 < 0
                or tile.x1 > self.width
                or tile.y1 > self.height
            ):
                out.append(
                    f"tile {tile.index} exceeds the {self.width}x"
                    f"{self.height} viewport"
                )
            x0, x1 = max(tile.x0, 0), min(tile.x1, self.width)
            y0, y1 = max(tile.y0, 0), min(tile.y1, self.height)
            if x0 < x1 and y0 < y1:
                covered[y0:y1, x0:x1] += 1
            if tile.owner < 0:
                out.append(f"tile {tile.index} has negative owner {tile.owner}")
        uncovered = int((covered == 0).sum())
        if uncovered:
            out.append(
                f"{uncovered} of {self.width * self.height} pixels are "
                f"covered by no tile"
            )
        overlapped = int((covered > 1).sum())
        if overlapped:
            out.append(f"{overlapped} pixels are covered by multiple tiles")
        owners = {tile.owner for tile in self.tiles if tile.owner >= 0}
        if owners:
            missing = sorted(set(range(max(owners) + 1)) - owners)
            if missing:
                out.append(
                    f"owner indices are not contiguous: {missing} own no tile"
                )
        return out

    def __repr__(self) -> str:
        return (
            f"<TileMap {self.width}x{self.height} {len(self.tiles)} tiles "
            f"{self.n_owners} owners>"
        )
