"""Filter interfaces: real filters and simulated filter models.

Two complementary contracts, mirroring the two execution engines:

:class:`Filter`
    A real component in the DataCutter callback style: ``init`` /
    per-buffer processing / ``flush`` at end-of-work / ``finalize``.  Used by
    the threaded engine, where ``handle`` does actual (NumPy) work and writes
    real buffers downstream.

:class:`SimFilter` / :class:`SimSource`
    Cost-and-behaviour models used by the simulated engine.  A
    :class:`SimFilter` prices each buffer in reference core-seconds and
    states what buffers it emits; a :class:`SimSource` describes the work a
    source (Read) copy performs: disk reads plus the buffers produced.

The split keeps engine mechanics out of application code: the isosurface
application registers a real filter *and* a matching model per stage, built
from the same parameters.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.core.buffer import DataBuffer

__all__ = ["FilterContext", "Filter", "SimFilter", "SimSource", "SourceItem"]


class FilterContext:
    """What a running filter copy can see and do.

    Engines construct one per copy (per work cycle).  ``write`` routes a
    buffer to the copy's writer for the named output stream (or the only
    output stream when the filter has exactly one).  ``copy_index`` /
    ``copies_on_host`` / ``total_copies`` let copies partition source work;
    ``uow`` carries the current unit-of-work descriptor.
    """

    def __init__(
        self,
        filter_name: str,
        host: str,
        copy_index: int,
        copies_on_host: int,
        total_copies: int,
        output_streams: list[str],
        write_fn: Any,
        uow: Any = None,
    ) -> None:
        self.filter_name = filter_name
        self.host = host
        self.copy_index = copy_index
        self.copies_on_host = copies_on_host
        self.total_copies = total_copies
        self.output_streams = list(output_streams)
        self._write_fn = write_fn
        #: The current unit of work's descriptor (paper: e.g. "rendering of
        #: a simulation dataset from a particular viewing direction").
        #: ``None`` for single-UOW runs; set per cycle by ``run_cycles``.
        self.uow = uow

    def write(self, buffer: DataBuffer, stream: str | None = None) -> None:
        """Send ``buffer`` downstream on ``stream``.

        ``stream`` may be omitted when the filter has exactly one output.
        """
        if stream is None:
            if len(self.output_streams) != 1:
                raise ValueError(
                    f"filter {self.filter_name!r} has "
                    f"{len(self.output_streams)} output streams; "
                    f"write() needs an explicit stream name"
                )
            stream = self.output_streams[0]
        elif stream not in self.output_streams:
            raise ValueError(
                f"filter {self.filter_name!r} has no output stream {stream!r}"
            )
        self._write_fn(stream, buffer)


class Filter:
    """Base class for real filters (threaded engine).

    Lifecycle per unit-of-work:  ``init`` -> ``handle`` per input buffer (in
    arrival order, any input stream) -> ``flush`` once every input stream has
    delivered end-of-work -> ``finalize``.

    Subclasses override the hooks they need; a pure transformer only needs
    ``handle``, an accumulator (z-buffer raster, merge) also uses ``flush``.
    """

    def init(self, ctx: FilterContext) -> None:
        """Pre-allocate per-UOW resources (paper: the init callback)."""

    def handle(self, ctx: FilterContext, buffer: DataBuffer) -> None:
        """Process one input buffer; write outputs via ``ctx.write``."""
        raise NotImplementedError

    def flush(self, ctx: FilterContext) -> None:
        """Called once after end-of-work, before ``finalize``."""

    def finalize(self, ctx: FilterContext) -> None:
        """Release per-UOW resources (paper: the finalize callback)."""


class SimFilter:
    """Cost/behaviour model of a non-source filter for the simulated engine.

    One instance is created per transparent copy per unit-of-work, so models
    may keep internal state (accumulators).  All costs are in reference
    core-seconds (1.0 = one second on a paper Rogue node).
    """

    def start(self, ctx: FilterContext) -> None:
        """Per-copy initialisation (e.g. allocate a z-buffer model)."""

    def cost(self, buffer: DataBuffer) -> float:
        """CPU cost of processing ``buffer``."""
        raise NotImplementedError

    def react(self, buffer: DataBuffer) -> Iterable[DataBuffer]:
        """Buffers emitted in response to ``buffer`` (may be empty)."""
        return ()

    def flush_cost(self) -> float:
        """CPU cost of end-of-work processing."""
        return 0.0

    def flush_outputs(self) -> Iterable[DataBuffer]:
        """Buffers emitted at end-of-work (e.g. the z-buffer contents)."""
        return ()

    def result(self) -> Any:
        """Sink filters may expose a final result (e.g. the merged image)."""
        return None

    def memory_bytes(self) -> int:
        """Estimated resident memory of one copy (accumulators, scratch).

        Used by :meth:`repro.engines.simulated.SimulatedEngine.memory_audit`
        to check placements against host RAM (the paper's Rogue nodes have
        128 MB — three 2048^2 z-buffers do not fit comfortably).
        """
        return 0


@dataclass
class SourceItem:
    """One unit of source work: a disk read followed by emitted buffers.

    ``sequential`` marks the read as a continuation of the previous one on
    the same disk (no seek) — consecutive chunks of one declustered file.
    """

    read_bytes: int = 0
    disk_index: int = 0
    cpu: float = 0.0
    sequential: bool = False
    outputs: list[DataBuffer] = field(default_factory=list)


class SimSource:
    """Work description of a source (Read) filter for the simulated engine.

    ``items`` yields the :class:`SourceItem` sequence for one transparent
    copy; the engine interleaves disk reads, CPU charges and downstream
    sends.  Copies on the same host typically split the host's local files
    among themselves via ``copy_index`` / ``copies_on_host``.
    """

    def items(self, ctx: FilterContext) -> Iterator[SourceItem]:
        """The work items for the copy described by ``ctx``."""
        raise NotImplementedError

    def flush_cost(self) -> float:
        """CPU cost of end-of-work processing (combined filters that
        accumulate, e.g. a z-buffer RERa source, pay it here)."""
        return 0.0

    def flush_outputs(self) -> Iterable[DataBuffer]:
        """Buffers emitted at end-of-work, after all items."""
        return ()

    def memory_bytes(self) -> int:
        """Estimated resident memory of one copy (see SimFilter)."""
        return 0
