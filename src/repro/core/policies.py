"""Writer policies: how a producer copy distributes buffers among copy sets.

When the logical consumer of a stream is transparently copied, every
producer copy owns a *writer* that picks, per buffer, which consumer copy
set receives it (paper Section 2, Figure 1).  Three policies are studied:

- **Round Robin (RR)** — cyclic over copy sets, one buffer per host per turn.
- **Weighted Round Robin (WRR)** — cyclic, with each host appearing once per
  copy it runs (buffers sent linearly proportional to copies per host).
- **Demand Driven (DD)** — a sliding-window scheme: the consumer acknowledges
  each buffer when it starts processing it; the producer sends to the copy
  set with the fewest unacknowledged buffers, preferring a co-located copy
  set on ties.  When every copy set has a full window the writer blocks
  until an acknowledgment returns.

A policy instance belongs to exactly one writer (one producer copy, one
output stream); engines create instances via a factory so copies never share
state.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Callable, Mapping
from typing import Any

from repro.errors import ConfigurationError

__all__ = [
    "Target",
    "WriterPolicy",
    "RoundRobin",
    "WeightedRoundRobin",
    "DemandDriven",
    "RateBased",
    "TileRouted",
    "PolicyFactory",
    "make_policy_factory",
]


class Target:
    """A writer's view of one consumer copy set.

    ``unacked`` is maintained by the policy via :meth:`WriterPolicy.on_sent`
    and :meth:`WriterPolicy.on_ack`; ``sent`` counts all buffers routed to
    this copy set by the owning writer.
    """

    __slots__ = ("index", "host", "copies", "local", "unacked", "sent")

    def __init__(self, index: int, host: str, copies: int, local: bool) -> None:
        self.index = index
        self.host = host
        self.copies = copies
        self.local = local
        self.unacked = 0
        self.sent = 0

    def __repr__(self) -> str:
        return (
            f"<Target {self.index} host={self.host} copies={self.copies} "
            f"unacked={self.unacked}>"
        )


class WriterPolicy(ABC):
    """Per-writer buffer routing decision logic."""

    #: True if the engine must deliver consumer acknowledgments to this
    #: policy (Demand Driven and Rate Based need them).
    needs_ack: bool = False

    #: True if the policy routes on buffer *content* (tags) rather than on
    #: load/rotation state.  Content-routed policies pair with consumers
    #: that partition their input deterministically (e.g. a tile-mapped
    #: merge); the verifier's ``Z4xx`` tile rules key off this flag.
    content_routed: bool = False

    def __init__(self) -> None:
        self.targets: list[Target] = []
        #: Time source; engines override it (the simulated engine injects
        #: the simulation clock) so time-aware policies see the right time.
        self.clock: Callable[[], float] = time.monotonic

    def bind(self, targets: list[Target]) -> None:
        """Attach the consumer copy sets this writer can route to."""
        if not targets:
            raise ConfigurationError("writer bound with no targets")
        self.targets = list(targets)

    def describe(self) -> dict[str, object]:
        """Static self-description for the analysis layer and tracing.

        Returns the policy class name, whether it consumes consumer
        acknowledgments, and its sliding-window size (``None`` for
        unwindowed policies).  :func:`repro.analysis.verify_flow` probes
        one unbound instance per stream through this hook instead of
        poking at concrete subclasses.
        """
        window = getattr(self, "window", None)
        return {
            "name": type(self).__name__,
            "needs_ack": self.needs_ack,
            "content_routed": self.content_routed,
            "window": window if isinstance(window, int) else None,
        }

    @abstractmethod
    def select(self) -> Target | None:
        """Pick the destination for the next buffer.

        Returns ``None`` when the policy cannot send right now (DD with all
        windows full); the engine must wait for an acknowledgment and retry.
        """

    def route(self, tags: Mapping[str, Any] | None = None) -> Target | None:
        """Pick the destination for the next buffer, given its tags.

        Engines call this (not :meth:`select`) on every send, passing the
        outgoing buffer's tag dictionary.  The default implementation
        ignores the tags and defers to :meth:`select`; content-routed
        policies (:class:`TileRouted`) override it to read the routing key
        from the tags.  ``None`` means "cannot send right now", exactly as
        for :meth:`select`.
        """
        return self.select()

    def on_sent(self, target: Target) -> None:
        """Engine notification: a buffer was sent to ``target``."""
        target.sent += 1

    def on_ack(self, target: Target) -> None:
        """Engine notification: consumer acknowledged one buffer."""


class RoundRobin(WriterPolicy):
    """Cyclic distribution: one buffer per copy set per turn."""

    def __init__(self) -> None:
        super().__init__()
        self._next = 0

    def select(self) -> Target | None:
        """Pick the destination copy set for the next buffer."""
        target = self.targets[self._next % len(self.targets)]
        self._next += 1
        return target


class WeightedRoundRobin(WriterPolicy):
    """Cyclic distribution weighted by copies per host.

    The cycle interleaves hosts (``A B A`` for A:2 copies, B:1) rather than
    bursting (``A A B``), which keeps short-term load smooth while preserving
    the linear proportionality the paper specifies.
    """

    def __init__(self) -> None:
        super().__init__()
        self._cycle: list[Target] = []
        self._next = 0

    def bind(self, targets: list[Target]) -> None:
        """Attach the consumer copy sets and precompute the cycle.

        Rebinding restarts the cycle: the cursor always points into the
        *current* cycle, never at a stale offset from a previous target set.
        """
        super().bind(targets)
        max_copies = max(t.copies for t in self.targets)
        self._cycle = [
            t for round_ in range(max_copies) for t in self.targets if t.copies > round_
        ]
        self._next = 0

    def select(self) -> Target | None:
        """Pick the destination copy set for the next buffer."""
        target = self._cycle[self._next % len(self._cycle)]
        self._next += 1
        return target


class DemandDriven(WriterPolicy):
    """Least-unacknowledged-buffers routing with a sliding window.

    Parameters
    ----------
    window:
        Maximum unacknowledged buffers per copy set.  Buffers are admitted to
        a copy set only while its window has room; with every window full the
        writer blocks.  The paper describes "a sliding window mechanism based
        on buffer consumption rate"; the default of 4 keeps enough buffers in
        flight to cover ack latency on a fast LAN without flooding slow
        consumers.
    prefer_local:
        Break ties in favour of a co-located copy set (paper: "In the event
        of a tie, any local colocated copies will be chosen").
    """

    needs_ack = True

    def __init__(self, window: int = 4, prefer_local: bool = True) -> None:
        super().__init__()
        if window < 1:
            raise ConfigurationError(f"DD window must be >= 1, got {window}")
        self.window = window
        self.prefer_local = prefer_local

    def select(self) -> Target | None:
        """Pick the destination copy set for the next buffer."""
        best: Target | None = None
        for target in self.targets:
            if target.unacked >= self.window:
                continue
            if best is None or target.unacked < best.unacked:
                best = target
            elif (
                self.prefer_local
                and target.unacked == best.unacked
                and target.local
                and not best.local
            ):
                best = target
        return best

    def on_sent(self, target: Target) -> None:
        """Account one buffer sent to ``target``."""
        super().on_sent(target)
        target.unacked += 1

    def on_ack(self, target: Target) -> None:
        """Account one acknowledgment from ``target``."""
        if target.unacked <= 0:
            raise ConfigurationError(
                f"ack for target {target.host!r} with no outstanding buffers"
            )
        target.unacked -= 1


class RateBased(WriterPolicy):
    """Service-rate-estimating routing (an extension beyond the paper).

    The paper's conclusions call for "other dynamic strategies for buffer
    distribution".  Demand Driven reacts to *outstanding counts*; this
    policy also learns each copy set's *service time* — the EWMA of the
    interval between sending a buffer and receiving its acknowledgment —
    and routes the next buffer to the copy set with the least expected
    completion time, ``(unacked + 1) * ewma_service_time``.  Unmeasured
    targets get one probe buffer each before estimates kick in.

    Parameters
    ----------
    window:
        Maximum unacknowledged buffers per copy set (as in DD).
    alpha:
        EWMA smoothing factor in (0, 1]; higher = more reactive.
    prefer_local:
        Break score ties in favour of a co-located copy set.
    """

    needs_ack = True

    def __init__(self, window: int = 8, alpha: float = 0.3, prefer_local: bool = True) -> None:
        super().__init__()
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.window = window
        self.alpha = alpha
        self.prefer_local = prefer_local
        self._sent_at: dict[int, list[float]] = {}
        self._ewma: dict[int, float] = {}

    def bind(self, targets: list[Target]) -> None:
        """Attach the consumer copy sets and precompute the cycle."""
        super().bind(targets)
        self._sent_at = {t.index: [] for t in targets}
        self._ewma = {}

    def select(self) -> Target | None:
        # Probe pass: any idle, never-measured target gets one buffer so an
        # estimate forms (without flooding a potentially slow target).  A
        # co-located candidate is probed first when preferred.
        """Pick the destination copy set for the next buffer."""
        probe: Target | None = None
        for target in self.targets:
            if target.index not in self._ewma and target.unacked == 0:
                if probe is None or (
                    self.prefer_local and target.local and not probe.local
                ):
                    probe = target
        if probe is not None:
            return probe
        best: Target | None = None
        best_score = float("inf")
        for target in self.targets:
            if target.unacked >= self.window:
                continue
            est = self._ewma.get(target.index)
            if est is None:
                # Unmeasured and busy: fall back to DD-style counting so it
                # is not starved while its probe is in flight.
                score = float(target.unacked)
            else:
                score = (target.unacked + 1) * est
            if score < best_score:
                best, best_score = target, score
            elif (
                self.prefer_local
                and score == best_score
                and target.local
                and best is not None
                and not best.local
            ):
                best = target
        return best

    def on_sent(self, target: Target) -> None:
        """Account one buffer sent to ``target``."""
        super().on_sent(target)
        target.unacked += 1
        self._sent_at[target.index].append(self.clock())

    def on_ack(self, target: Target) -> None:
        """Account one acknowledgment from ``target``."""
        if target.unacked <= 0:
            raise ConfigurationError(
                f"ack for target {target.host!r} with no outstanding buffers"
            )
        target.unacked -= 1
        sent = self._sent_at[target.index].pop(0)
        latency = max(self.clock() - sent, 1e-12)
        prev = self._ewma.get(target.index)
        if prev is None:
            self._ewma[target.index] = latency
        else:
            self._ewma[target.index] = self.alpha * latency + (1 - self.alpha) * prev


class TileRouted(WriterPolicy):
    """Content routing for a distributed tile framebuffer.

    Every outgoing buffer must carry an integer owner index under ``tag``
    (default ``"tile_owner"``); the buffer is delivered to the consumer
    copy set at that index, in placement order.  Producers split their
    output per tile before writing, so each buffer lands on exactly the
    merge copy owning its tile — the routing decision is a table lookup,
    never load-dependent, and needs no acknowledgments.

    The owner index keys the consumer's *copy sets*: a tile-routed
    consumer must run its copies as one single-copy set per owner
    (verifier rule ``Z403``), because copies within one set share a queue
    and any of them could dequeue a buffer meant for a sibling.
    """

    content_routed = True

    def __init__(self, tag: str = "tile_owner") -> None:
        super().__init__()
        if not tag:
            raise ConfigurationError("TileRouted tag must be non-empty")
        self.tag = tag

    def describe(self) -> dict[str, object]:
        """Static self-description (see WriterPolicy.describe)."""
        described = super().describe()
        described["tag"] = self.tag
        return described

    def select(self) -> Target | None:
        """Unavailable: tile routing needs the buffer's tags (use route)."""
        raise ConfigurationError(
            "TileRouted cannot pick a destination without buffer tags; "
            "engines must call route(tags)"
        )

    def route(self, tags: Mapping[str, Any] | None = None) -> Target | None:
        """Deliver to the copy set owning the buffer's tile."""
        owner = tags.get(self.tag) if tags else None
        if not isinstance(owner, int) or isinstance(owner, bool):
            raise ConfigurationError(
                f"TileRouted buffer lacks an integer {self.tag!r} tag "
                f"(got {owner!r}); split producer output per tile and tag "
                f"each buffer with its owner index"
            )
        if not 0 <= owner < len(self.targets):
            raise ConfigurationError(
                f"tile owner {owner} out of range: the consumer has "
                f"{len(self.targets)} copy sets"
            )
        return self.targets[owner]


#: A callable producing a fresh policy per writer.
PolicyFactory = Callable[[], WriterPolicy]

_REGISTRY: dict[str, Callable[..., WriterPolicy]] = {
    "RR": RoundRobin,
    "WRR": WeightedRoundRobin,
    "DD": DemandDriven,
    "RATE": RateBased,
    "TILE": TileRouted,
}


def make_policy_factory(name: str, **kwargs: object) -> PolicyFactory:
    """Build a policy factory from a short name (``"RR"``/``"WRR"``/``"DD"``).

    Keyword arguments are forwarded to the policy constructor (e.g.
    ``make_policy_factory("DD", window=8)``).
    """
    try:
        cls = _REGISTRY[name.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
    return lambda: cls(**kwargs)
