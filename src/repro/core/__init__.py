"""DataCutter-style component framework.

Filters communicate over unidirectional streams carrying fixed-size buffers;
a logical filter may execute as transparent copies across hosts, with writer
policies (RR / WRR / DD) routing buffers among copy sets.
"""

from repro.core.buffer import DataBuffer, chunk_bytes
from repro.core.filter import (
    Filter,
    FilterContext,
    SimFilter,
    SimSource,
    SourceItem,
)
from repro.core.graph import FilterGraph, FilterSpec, StreamSpec
from repro.core.instrument import CopyStats, RunMetrics, StreamStats
from repro.core.negotiate import BufferBounds, declare_bounds, negotiate
from repro.core.placement import CopySetSpec, Placement
from repro.core.policies import (
    DemandDriven,
    PolicyFactory,
    RateBased,
    RoundRobin,
    Target,
    TileRouted,
    WeightedRoundRobin,
    WriterPolicy,
    make_policy_factory,
)
from repro.core.tiles import Tile, TileMap
from repro.core.tracing import EVENT_KINDS, QueueSample, TraceEvent, Tracer

__all__ = [
    "BufferBounds",
    "CopySetSpec",
    "CopyStats",
    "DataBuffer",
    "DemandDriven",
    "EVENT_KINDS",
    "Filter",
    "FilterContext",
    "FilterGraph",
    "FilterSpec",
    "Placement",
    "PolicyFactory",
    "QueueSample",
    "RateBased",
    "RoundRobin",
    "RunMetrics",
    "SimFilter",
    "SimSource",
    "SourceItem",
    "StreamSpec",
    "StreamStats",
    "Target",
    "Tile",
    "TileMap",
    "TileRouted",
    "TraceEvent",
    "Tracer",
    "WeightedRoundRobin",
    "WriterPolicy",
    "chunk_bytes",
    "declare_bounds",
    "make_policy_factory",
    "negotiate",
]
