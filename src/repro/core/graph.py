"""Filter graphs: the logical processing structure of an application.

A :class:`FilterGraph` is a DAG of named filters joined by logical streams.
It carries *factories*, not instances: each execution engine instantiates
one object per transparent copy from the registered factory.  Two factory
slots exist per filter:

- ``factory`` builds a real :class:`repro.core.filter.Filter` (threaded
  engine, trace-driven runs);
- ``sim_factory`` builds a :class:`repro.core.filter.SimFilter` cost/behaviour
  model (simulated engine).

An application can register either or both.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import networkx as nx

from repro.errors import GraphError

__all__ = ["FilterSpec", "StreamSpec", "FilterGraph"]


@dataclass
class FilterSpec:
    """One logical filter in the graph.

    Beyond the factories, a spec may carry *static metadata* the analysis
    layer (:mod:`repro.analysis`) verifies before any engine runs:

    ``phase_synchronised``
        The filter accumulates and emits only at the end-of-work phase
        boundary (z-buffer raster/merge style); the verifier flags such
        filters behind unsynchronised fan-in (rule ``Z401``).
    ``input_dtype`` / ``output_dtype``
        NumPy dtype names of the payload arrays the filter expects /
        emits; mismatched producer/consumer declarations on one stream
        are rule ``B501``.
    ``output_nbytes``
        Nominal wire size of emitted buffers, checked against the
        :class:`~repro.core.buffer.BufferCodec` configuration (``B502``).
    ``tile_map``
        For a distributed-framebuffer merge: the
        :class:`~repro.core.tiles.TileMap` partitioning this consumer's
        viewport.  The verifier checks the map's geometry (``Z402``), the
        tile-owner -> copy-set correspondence (``Z403``) and the pairing
        with a content-routed writer policy (``Z404``/``Z405``).
    ``effects``
        Declared effects class of the filter code: one of ``"pure"``,
        ``"stateful"``, ``"io"`` or ``"nondeterministic"``.  The effect
        inference pass (:mod:`repro.analysis.effects`) checks the
        declaration against the filter class's code (``E701``) and the
        memoisation certifier trusts it.
    ``output_buffers``
        Nominal number of buffers the filter emits per unit of work;
        together with ``output_nbytes`` it gives the dataflow pass a
        bytes-per-UOW figure for each outgoing stream.
    """

    name: str
    factory: Callable[[], Any] | None = None
    sim_factory: Callable[[], Any] | None = None
    is_source: bool = False
    inputs: list["StreamSpec"] = field(default_factory=list)
    outputs: list["StreamSpec"] = field(default_factory=list)
    phase_synchronised: bool = False
    input_dtype: str | None = None
    output_dtype: str | None = None
    output_nbytes: int | None = None
    tile_map: Any | None = None
    effects: str | None = None
    output_buffers: int | None = None

    def __repr__(self) -> str:
        return f"<FilterSpec {self.name}>"


@dataclass
class StreamSpec:
    """One logical stream: a unidirectional producer->consumer pipe."""

    name: str
    src: str
    dst: str

    def __repr__(self) -> str:
        return f"<StreamSpec {self.name}: {self.src}->{self.dst}>"


class FilterGraph:
    """A DAG of filters and streams.

    Example::

        g = FilterGraph()
        g.add_filter("read", sim_factory=make_read, is_source=True)
        g.add_filter("extract", sim_factory=make_extract)
        g.connect("read", "extract")
    """

    def __init__(self) -> None:
        self.filters: dict[str, FilterSpec] = {}
        self.streams: dict[str, StreamSpec] = {}

    # -- construction --------------------------------------------------------
    def add_filter(
        self,
        name: str,
        factory: Callable[[], Any] | None = None,
        sim_factory: Callable[[], Any] | None = None,
        is_source: bool = False,
        phase_synchronised: bool = False,
        input_dtype: str | None = None,
        output_dtype: str | None = None,
        output_nbytes: int | None = None,
        tile_map: Any | None = None,
        effects: str | None = None,
        output_buffers: int | None = None,
    ) -> FilterSpec:
        """Register a logical filter.  Names must be unique.

        The trailing keyword arguments are optional static metadata for
        the analysis layer (see :class:`FilterSpec`).
        """
        if not name:
            raise GraphError("filter name must be non-empty")
        if name in self.filters:
            raise GraphError(f"duplicate filter {name!r}")
        if effects is not None:
            from repro.analysis.effects import EFFECT_NAMES

            if effects not in EFFECT_NAMES:
                raise GraphError(
                    f"filter {name!r} declares unknown effects class "
                    f"{effects!r}; expected one of {sorted(EFFECT_NAMES)}"
                )
        spec = FilterSpec(
            name=name,
            factory=factory,
            sim_factory=sim_factory,
            is_source=is_source,
            phase_synchronised=phase_synchronised,
            input_dtype=input_dtype,
            output_dtype=output_dtype,
            output_nbytes=output_nbytes,
            tile_map=tile_map,
            effects=effects,
            output_buffers=output_buffers,
        )
        self.filters[name] = spec
        return spec

    def connect(self, src: str, dst: str, name: str | None = None) -> StreamSpec:
        """Add a logical stream from filter ``src`` to filter ``dst``."""
        for endpoint in (src, dst):
            if endpoint not in self.filters:
                raise GraphError(f"unknown filter {endpoint!r}")
        if src == dst:
            raise GraphError(f"self-loop on filter {src!r}")
        name = name or f"{src}->{dst}"
        if name in self.streams:
            raise GraphError(f"duplicate stream {name!r}")
        spec = StreamSpec(name=name, src=src, dst=dst)
        self.streams[name] = spec
        self.filters[src].outputs.append(spec)
        self.filters[dst].inputs.append(spec)
        return spec

    # -- queries ---------------------------------------------------------------
    def sources(self) -> list[FilterSpec]:
        """Filters with no input streams (data producers)."""
        return [f for f in self.filters.values() if not f.inputs]

    def sinks(self) -> list[FilterSpec]:
        """Filters with no output streams (result consumers)."""
        return [f for f in self.filters.values() if not f.outputs]

    def topological_order(self) -> list[str]:
        """Filter names in a producer-before-consumer order.

        Raises :class:`GraphError` on a cyclic graph; unlike earlier
        versions it does *not* re-run full validation on every call —
        use :meth:`validate` or :func:`repro.analysis.verify_graph` for
        the structural rule set.
        """
        try:
            return list(nx.topological_sort(self._as_nx()))
        except nx.NetworkXUnfeasible:
            cycle = nx.find_cycle(self._as_nx())
            raise GraphError(f"graph has a cycle: {cycle}") from None

    def upstream_of(self, name: str) -> set[str]:
        """All filters that (transitively) feed ``name``."""
        if name not in self.filters:
            raise GraphError(f"unknown filter {name!r}")
        return nx.ancestors(self._as_nx(), name)

    # -- validation ---------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`GraphError` if broken.

        Thin compatibility wrapper over the analysis layer's graph rules
        (:func:`repro.analysis.verify_graph`): it raises on the first
        ERROR-level diagnostic with the historical message wording.  Use
        the analysis API directly to see *all* findings with rule ids,
        severities and fix hints.
        """
        from repro.analysis.diagnostics import DiagnosticReport
        from repro.analysis.pipeline import verify_graph

        DiagnosticReport(verify_graph(self)).raise_errors()

    def _as_nx(self) -> nx.DiGraph:
        dag = nx.DiGraph()
        dag.add_nodes_from(self.filters)
        for stream in self.streams.values():
            dag.add_edge(stream.src, stream.dst)
        return dag

    def __repr__(self) -> str:
        return (
            f"<FilterGraph {len(self.filters)} filters, "
            f"{len(self.streams)} streams>"
        )
