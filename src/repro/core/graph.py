"""Filter graphs: the logical processing structure of an application.

A :class:`FilterGraph` is a DAG of named filters joined by logical streams.
It carries *factories*, not instances: each execution engine instantiates
one object per transparent copy from the registered factory.  Two factory
slots exist per filter:

- ``factory`` builds a real :class:`repro.core.filter.Filter` (threaded
  engine, trace-driven runs);
- ``sim_factory`` builds a :class:`repro.core.filter.SimFilter` cost/behaviour
  model (simulated engine).

An application can register either or both.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import networkx as nx

from repro.errors import GraphError

__all__ = ["FilterSpec", "StreamSpec", "FilterGraph"]


@dataclass
class FilterSpec:
    """One logical filter in the graph."""

    name: str
    factory: Callable[[], Any] | None = None
    sim_factory: Callable[[], Any] | None = None
    is_source: bool = False
    inputs: list["StreamSpec"] = field(default_factory=list)
    outputs: list["StreamSpec"] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"<FilterSpec {self.name}>"


@dataclass
class StreamSpec:
    """One logical stream: a unidirectional producer->consumer pipe."""

    name: str
    src: str
    dst: str

    def __repr__(self) -> str:
        return f"<StreamSpec {self.name}: {self.src}->{self.dst}>"


class FilterGraph:
    """A DAG of filters and streams.

    Example::

        g = FilterGraph()
        g.add_filter("read", sim_factory=make_read, is_source=True)
        g.add_filter("extract", sim_factory=make_extract)
        g.connect("read", "extract")
    """

    def __init__(self) -> None:
        self.filters: dict[str, FilterSpec] = {}
        self.streams: dict[str, StreamSpec] = {}

    # -- construction --------------------------------------------------------
    def add_filter(
        self,
        name: str,
        factory: Callable[[], Any] | None = None,
        sim_factory: Callable[[], Any] | None = None,
        is_source: bool = False,
    ) -> FilterSpec:
        """Register a logical filter.  Names must be unique."""
        if not name:
            raise GraphError("filter name must be non-empty")
        if name in self.filters:
            raise GraphError(f"duplicate filter {name!r}")
        spec = FilterSpec(
            name=name, factory=factory, sim_factory=sim_factory, is_source=is_source
        )
        self.filters[name] = spec
        return spec

    def connect(self, src: str, dst: str, name: str | None = None) -> StreamSpec:
        """Add a logical stream from filter ``src`` to filter ``dst``."""
        for endpoint in (src, dst):
            if endpoint not in self.filters:
                raise GraphError(f"unknown filter {endpoint!r}")
        if src == dst:
            raise GraphError(f"self-loop on filter {src!r}")
        name = name or f"{src}->{dst}"
        if name in self.streams:
            raise GraphError(f"duplicate stream {name!r}")
        spec = StreamSpec(name=name, src=src, dst=dst)
        self.streams[name] = spec
        self.filters[src].outputs.append(spec)
        self.filters[dst].inputs.append(spec)
        return spec

    # -- queries ---------------------------------------------------------------
    def sources(self) -> list[FilterSpec]:
        """Filters with no input streams (data producers)."""
        return [f for f in self.filters.values() if not f.inputs]

    def sinks(self) -> list[FilterSpec]:
        """Filters with no output streams (result consumers)."""
        return [f for f in self.filters.values() if not f.outputs]

    def topological_order(self) -> list[str]:
        """Filter names in a producer-before-consumer order."""
        self.validate()
        dag = self._as_nx()
        return list(nx.topological_sort(dag))

    def upstream_of(self, name: str) -> set[str]:
        """All filters that (transitively) feed ``name``."""
        if name not in self.filters:
            raise GraphError(f"unknown filter {name!r}")
        return nx.ancestors(self._as_nx(), name)

    # -- validation ---------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`GraphError` if broken."""
        if not self.filters:
            raise GraphError("graph has no filters")
        dag = self._as_nx()
        if not nx.is_directed_acyclic_graph(dag):
            cycle = nx.find_cycle(dag)
            raise GraphError(f"graph has a cycle: {cycle}")
        for spec in self.filters.values():
            if not spec.inputs and not spec.is_source:
                raise GraphError(
                    f"filter {spec.name!r} has no inputs but is not marked "
                    f"is_source"
                )
            if spec.is_source and spec.inputs:
                raise GraphError(
                    f"source filter {spec.name!r} must not have inputs"
                )

    def _as_nx(self) -> nx.DiGraph:
        dag = nx.DiGraph()
        dag.add_nodes_from(self.filters)
        for stream in self.streams.values():
            dag.add_edge(stream.src, stream.dst)
        return dag

    def __repr__(self) -> str:
        return (
            f"<FilterGraph {len(self.filters)} filters, "
            f"{len(self.streams)} streams>"
        )
