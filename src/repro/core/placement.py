"""Placement: mapping logical filters to hosts and copy counts.

The application developer decides (paper Section 2) the decomposition into
filters, where each filter runs, and how many transparent copies to execute.
A :class:`Placement` records, per filter, an ordered list of
:class:`CopySetSpec` — one per host running copies of that filter.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.graph import FilterGraph
from repro.errors import PlacementError

__all__ = ["CopySetSpec", "Placement"]


@dataclass(frozen=True)
class CopySetSpec:
    """All transparent copies of one filter on one host."""

    host: str
    copies: int = 1

    def __post_init__(self) -> None:
        if self.copies < 1:
            raise PlacementError(
                f"copy set on {self.host!r} must have >= 1 copies, "
                f"got {self.copies}"
            )


class Placement:
    """Filter-to-host mapping with transparent-copy counts.

    Example::

        p = Placement()
        p.place("raster", [("blue0", 2), ("blue1", 2)])
        p.place("merge", [("blue0", 1)])
    """

    def __init__(self) -> None:
        self._map: dict[str, list[CopySetSpec]] = {}

    def place(
        self,
        filter_name: str,
        copysets: Iterable[tuple[str, int] | CopySetSpec | str],
    ) -> "Placement":
        """Assign copy sets to ``filter_name``.

        Each entry may be a host name (one copy), a ``(host, copies)`` tuple,
        or a :class:`CopySetSpec`.  A host may appear at most once per filter.
        Returns ``self`` for chaining.
        """
        specs: list[CopySetSpec] = []
        for entry in copysets:
            if isinstance(entry, CopySetSpec):
                specs.append(entry)
            elif isinstance(entry, str):
                specs.append(CopySetSpec(entry, 1))
            else:
                host, copies = entry
                specs.append(CopySetSpec(host, copies))
        hosts = [s.host for s in specs]
        if len(set(hosts)) != len(hosts):
            raise PlacementError(
                f"filter {filter_name!r}: a host appears in multiple copy sets"
            )
        if not specs:
            raise PlacementError(f"filter {filter_name!r}: empty placement")
        self._map[filter_name] = specs
        return self

    def spread(
        self, filter_name: str, hosts: Sequence[str], copies_per_host: int = 1
    ) -> "Placement":
        """Place ``copies_per_host`` copies of the filter on every host."""
        return self.place(filter_name, [(h, copies_per_host) for h in hosts])

    # -- queries ---------------------------------------------------------------
    def copysets(self, filter_name: str) -> list[CopySetSpec]:
        """The copy sets of one filter (raises if unplaced)."""
        try:
            return self._map[filter_name]
        except KeyError:
            raise PlacementError(f"filter {filter_name!r} is not placed") from None

    def hosts_of(self, filter_name: str) -> list[str]:
        """Hosts running copies of ``filter_name``, in placement order."""
        return [cs.host for cs in self.copysets(filter_name)]

    def total_copies(self, filter_name: str) -> int:
        """Total number of transparent copies of ``filter_name``."""
        return sum(cs.copies for cs in self.copysets(filter_name))

    def placed_filters(self) -> list[str]:
        """Names of all placed filters."""
        return list(self._map)

    # -- validation ---------------------------------------------------------
    def validate(self, graph: FilterGraph, known_hosts: Iterable[str]) -> None:
        """Check the placement covers the graph and references real hosts.

        Thin compatibility wrapper over the analysis layer's placement
        rules (:func:`repro.analysis.verify_placement`): it raises
        :class:`PlacementError` on the first ERROR-level diagnostic with
        the historical message wording.  Use the analysis API directly to
        see *all* findings with rule ids, severities and fix hints.
        """
        from repro.analysis.diagnostics import DiagnosticReport
        from repro.analysis.pipeline import verify_placement

        DiagnosticReport(
            verify_placement(graph, self, known_hosts)
        ).raise_errors()

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}:{'+'.join(f'{cs.host}x{cs.copies}' for cs in specs)}"
            for name, specs in self._map.items()
        )
        return f"<Placement {parts}>"
