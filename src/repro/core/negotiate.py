"""Stream buffer-size negotiation (paper Section 2).

"All transfers to and from streams are through fixed size buffers ...  The
size of a buffer is determined in the init call, where a filter discloses a
minimum and an optional maximum buffer size for each of its streams, and
the runtime system chooses the actual size."

Filters declare :class:`BufferBounds` per stream on the graph
(:func:`declare_bounds`); :func:`negotiate` picks each stream's actual size:
the largest disclosed minimum, clamped by the smallest disclosed maximum,
falling back to ``default`` when nobody constrains a stream.  Incompatible
disclosures (a required minimum above another party's maximum) raise
:class:`~repro.errors.GraphError` at negotiation time — before anything
runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.graph import FilterGraph
from repro.errors import GraphError

__all__ = ["BufferBounds", "declare_bounds", "negotiate"]

#: Default stream buffer size when no endpoint constrains it.
DEFAULT_BUFFER_SIZE = 64 * 1024


@dataclass(frozen=True)
class BufferBounds:
    """One endpoint's disclosure for one stream."""

    minimum: int
    maximum: int | None = None

    def __post_init__(self) -> None:
        if self.minimum < 1:
            raise GraphError(f"minimum buffer size must be >= 1, got {self.minimum}")
        if self.maximum is not None and self.maximum < self.minimum:
            raise GraphError(
                f"maximum buffer size {self.maximum} below minimum {self.minimum}"
            )


_ATTR = "_buffer_bounds"


def declare_bounds(
    graph: FilterGraph,
    filter_name: str,
    stream: str,
    minimum: int,
    maximum: int | None = None,
) -> None:
    """Record ``filter_name``'s disclosure for ``stream``.

    The filter must be an endpoint (producer or consumer) of the stream.
    """
    if filter_name not in graph.filters:
        raise GraphError(f"unknown filter {filter_name!r}")
    spec = graph.streams.get(stream)
    if spec is None:
        raise GraphError(f"unknown stream {stream!r}")
    if filter_name not in (spec.src, spec.dst):
        raise GraphError(
            f"filter {filter_name!r} is not an endpoint of stream {stream!r}"
        )
    bounds = BufferBounds(minimum, maximum)
    registry = getattr(graph, _ATTR, None)
    if registry is None:
        registry = {}
        setattr(graph, _ATTR, registry)
    registry[(filter_name, stream)] = bounds


def negotiate(
    graph: FilterGraph, default: int = DEFAULT_BUFFER_SIZE
) -> dict[str, int]:
    """Choose the actual buffer size of every stream in the graph.

    Per stream: ``size = max(disclosed minimums)`` clamped to
    ``min(disclosed maximums)``; ``default`` when nothing is disclosed
    (clamped into any disclosed bounds).  Raises :class:`GraphError` when
    the disclosures are mutually unsatisfiable.
    """
    if default < 1:
        raise GraphError(f"default buffer size must be >= 1, got {default}")
    registry: dict[tuple[str, str], BufferBounds] = getattr(graph, _ATTR, {})
    sizes: dict[str, int] = {}
    for stream in graph.streams:
        disclosures = [
            bounds
            for (fname, sname), bounds in registry.items()
            if sname == stream
        ]
        floor = max((b.minimum for b in disclosures), default=1)
        ceilings = [b.maximum for b in disclosures if b.maximum is not None]
        ceiling = min(ceilings) if ceilings else None
        if ceiling is not None and floor > ceiling:
            raise GraphError(
                f"stream {stream!r}: required minimum {floor} exceeds "
                f"another endpoint's maximum {ceiling}"
            )
        size = max(floor, default if ceiling is None else min(default, ceiling))
        if ceiling is not None:
            size = min(size, ceiling)
        sizes[stream] = size
    return sizes
