"""Engine-agnostic execution tracing: one observability layer for both engines.

A :class:`Tracer` records one :class:`TraceEvent` per interesting transition
of every filter copy — buffer received, CPU charged, disk read, buffer sent,
acknowledgment returned, flush, end-of-work, writer blocked — against the
*owning engine's clock*: simulated seconds for
:class:`~repro.engines.simulated.SimulatedEngine`, wall-clock seconds since
run start for :class:`~repro.engines.threaded.ThreadedEngine`.  Both engines
emit the same event schema, so the timeline view, the per-copy utilisation
summary and the JSONL export work identically on either backend.

Event kinds (the unified schema):

==========  ================================================================
``recv``    a copy dequeued one buffer (detail: stream name)
``compute`` CPU charge span (detail: ``start`` / ``end``)
``io``      disk read span (detail: ``start`` / ``end``)
``send``    a copy routed one buffer (detail: ``stream->dst_host``)
``ack``     a DD/RATE acknowledgment returned to the producer
            (detail: round-trip latency in seconds, as text)
``flush``   end-of-stream flush span (detail: ``start`` / ``end``)
``done``    a copy finished its unit of work
``blocked`` writer stalled on full windows/queues (detail: ``start``/``end``)
``analysis`` a WARNING from the static pipeline verifier, recorded at run
            start (detail: ``rule-id: message``)
==========  ================================================================

Beyond raw events the tracer carries *queue-depth samples* (one per
enqueue/dequeue, keyed by copy-set label) so consumer backlogs are visible,
and derives blocked/idle-time accounting and DD ack-latency histograms from
the event stream.  Traces round-trip through JSONL (:meth:`Tracer.to_jsonl`
/ :meth:`Tracer.from_jsonl`) and render with the ``repro trace`` CLI.

Dropped events are never silent: past ``limit`` the tracer counts what it
discarded, and every summary/timeline/report states the truncation.
"""

from __future__ import annotations

import json
import threading
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import IO, Any

__all__ = ["EVENT_KINDS", "TraceEvent", "QueueSample", "Tracer"]

#: The unified event schema both engines emit.  ``analysis`` events carry
#: WARNING-level findings of the static pipeline verifier
#: (:mod:`repro.analysis`), recorded at run start with the diagnostic's
#: subject as the copy label and ``"<rule>: <message>"`` as the detail.
#: ``cache_hit``/``cache_miss`` events are recorded by the serve layer
#: (copy label ``"cache"``) with the tier and stored size as the detail.
EVENT_KINDS = frozenset(
    {"recv", "compute", "io", "send", "ack", "flush", "done", "blocked",
     "analysis", "cache_hit", "cache_miss"}
)

#: Event kinds recorded as start/end pairs (spans).
SPAN_KINDS = frozenset({"compute", "io", "flush", "blocked"})

_JSONL_VERSION = 1


@dataclass(frozen=True)
class TraceEvent:
    """One recorded transition of one filter copy."""

    time: float
    copy: str  # "filter@host#index"
    kind: str  # one of EVENT_KINDS
    detail: str = ""


@dataclass(frozen=True)
class QueueSample:
    """Instantaneous depth of one copy-set queue."""

    time: float
    queue: str  # "filter@host"
    depth: int


class Tracer:
    """Collects :class:`TraceEvent` records during an engine run.

    Parameters
    ----------
    limit:
        Maximum retained records (events plus queue samples).  Past the
        limit new records are counted in :attr:`dropped` instead of stored,
        and every rendering surfaces the truncation.
    clock:
        Label of the time base the recording engine uses (``"sim"`` /
        ``"wall"``); engines set it on run start, exports preserve it.

    Recording is thread-safe: the threaded engine's copies append from many
    threads at once.
    """

    def __init__(self, limit: int = 1_000_000, clock: str = "") -> None:
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.limit = limit
        self.clock = clock
        self.events: list[TraceEvent] = []
        self.queue_samples: list[QueueSample] = []
        self.dropped = 0
        self._lock = threading.Lock()
        self._analysis_seen: set[tuple[str, str]] = set()

    # -- recording -------------------------------------------------------------
    def record(self, time: float, copy: str, kind: str, detail: str = "") -> None:
        """Append one event; past ``limit`` it is counted in ``dropped``."""
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown trace event kind {kind!r}; expected one of "
                f"{sorted(EVENT_KINDS)}"
            )
        with self._lock:
            if len(self.events) + len(self.queue_samples) >= self.limit:
                self.dropped += 1
                return
            self.events.append(TraceEvent(time, copy, kind, detail))

    def note_analysis(self, rule: str, subject: str) -> bool:
        """Claim one ``(rule, subject)`` analysis finding for this tracer.

        Returns True the first time a pair is seen and False afterwards.
        Engines re-verify graphs that the application already verified at
        construction; keying the ``analysis`` events on (rule, subject)
        keeps each finding from appearing twice in one trace.
        """
        key = (rule, subject)
        with self._lock:
            if key in self._analysis_seen:
                return False
            self._analysis_seen.add(key)
            return True

    def sample_queue(self, time: float, queue: str, depth: int) -> None:
        """Record the instantaneous depth of one copy-set queue."""
        with self._lock:
            if len(self.events) + len(self.queue_samples) >= self.limit:
                self.dropped += 1
                return
            self.queue_samples.append(QueueSample(time, queue, depth))

    # -- queries ---------------------------------------------------------------
    def for_copy(self, copy: str) -> list[TraceEvent]:
        """Events of one copy, in time order."""
        return sorted(
            (e for e in self.events if e.copy == copy), key=lambda e: e.time
        )

    def copies(self) -> list[str]:
        """All copy labels seen, sorted."""
        return sorted({e.copy for e in self.events})

    def counts(self) -> dict[str, int]:
        """Event-kind histogram."""
        return dict(Counter(e.kind for e in self.events))

    def spans(self, copy: str, kind: str) -> list[tuple[float, float]]:
        """(start, end) spans of one paired kind for one copy."""
        if kind not in SPAN_KINDS:
            raise ValueError(f"{kind!r} events are not recorded as spans")
        out = []
        start = None
        for event in self.for_copy(copy):
            if event.kind != kind:
                continue
            if event.detail == "start":
                start = event.time
            elif event.detail == "end" and start is not None:
                out.append((start, event.time))
                start = None
        return out

    def busy_spans(self, copy: str) -> list[tuple[float, float]]:
        """(start, end) spans of CPU work for one copy."""
        return self.spans(copy, "compute")

    def blocked_spans(self, copy: str) -> list[tuple[float, float]]:
        """(start, end) spans in which one copy's writer was stalled."""
        return self.spans(copy, "blocked")

    def blocked_time(self, copy: str) -> float:
        """Total time one copy spent stalled on full windows/queues."""
        return sum(end - start for start, end in self.blocked_spans(copy))

    def ack_latencies(self, copy: str | None = None) -> list[float]:
        """Send-to-acknowledgment round-trip latencies (seconds).

        ``ack`` events carry the latency the engine measured in their
        detail field; events with a non-numeric detail are skipped.
        """
        out = []
        for event in self.events:
            if event.kind != "ack":
                continue
            if copy is not None and event.copy != copy:
                continue
            try:
                out.append(float(event.detail))
            except ValueError:
                continue
        return out

    def ack_latency_histogram(
        self, bins: int = 8
    ) -> list[tuple[float, float, int]]:
        """(lo, hi, count) buckets over all measured ack latencies."""
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        latencies = self.ack_latencies()
        if not latencies:
            return []
        lo, hi = min(latencies), max(latencies)
        width = max((hi - lo) / bins, 1e-12)
        counts = [0] * bins
        for value in latencies:
            counts[min(int((value - lo) / width), bins - 1)] += 1
        return [
            (lo + i * width, lo + (i + 1) * width, counts[i]) for i in range(bins)
        ]

    def queue_depth_stats(self) -> dict[str, dict[str, float]]:
        """Per-queue ``{"samples", "min", "mean", "max"}`` over all samples."""
        depths: dict[str, list[int]] = defaultdict(list)
        for sample in self.queue_samples:
            depths[sample.queue].append(sample.depth)
        return {
            queue: {
                "samples": len(values),
                "min": float(min(values)),
                "mean": sum(values) / len(values),
                "max": float(max(values)),
            }
            for queue, values in sorted(depths.items())
        }

    def utilisation(self) -> dict[str, dict[str, float]]:
        """Per-copy time accounting derived from the event stream.

        For every copy: ``span`` (first to last event), ``busy`` (compute +
        flush), ``io``, ``blocked``, and ``idle`` (span minus the rest,
        clamped at zero — time waiting on input queues).
        """
        out: dict[str, dict[str, float]] = {}
        for copy in self.copies():
            events = self.for_copy(copy)
            span = events[-1].time - events[0].time
            busy = sum(e - s for s, e in self.spans(copy, "compute"))
            busy += sum(e - s for s, e in self.spans(copy, "flush"))
            io = sum(e - s for s, e in self.spans(copy, "io"))
            blocked = self.blocked_time(copy)
            out[copy] = {
                "span": span,
                "busy": busy,
                "io": io,
                "blocked": blocked,
                "idle": max(span - busy - io - blocked, 0.0),
            }
        return out

    def stage_busy(self) -> dict[str, float]:
        """Total busy seconds (compute + flush) per *stage*.

        A stage is the filter name — the copy label before the ``@``
        (``"Ra@h0#1"`` belongs to stage ``"Ra"``); all copies of one
        filter sum into one entry.  This is the per-stage breakdown the
        benchmark reporter records, and on a single-core testbed the
        denominator for busy-time throughput (wall time measures scheduler
        interleaving, not stage cost).
        """
        out: dict[str, float] = defaultdict(float)
        for copy in self.copies():
            stage = copy.split("@", 1)[0]
            out[stage] += sum(e - s for s, e in self.spans(copy, "compute"))
            out[stage] += sum(e - s for s, e in self.spans(copy, "flush"))
        return dict(sorted(out.items()))

    def summary(self) -> dict[str, Any]:
        """A compact dictionary view (used by reports and tests).

        Always includes ``dropped`` so truncated traces are never mistaken
        for complete ones.
        """
        return {
            "clock": self.clock,
            "events": len(self.events),
            "queue_samples": len(self.queue_samples),
            "dropped": self.dropped,
            "kinds": self.counts(),
            "copies": self.copies(),
        }

    # -- rendering -------------------------------------------------------------
    def timeline(self, width: int = 64) -> str:
        """A coarse per-copy activity strip.

        ``#`` = computing/flushing, ``~`` = disk I/O, ``.`` = blocked on a
        full window/queue, space = idle/waiting.  A truncated trace says so
        in the header.
        """
        if width < 1:
            raise ValueError(f"timeline width must be >= 1, got {width}")
        if not self.events:
            if self.dropped:
                return f"(no events; {self.dropped} dropped past limit)"
            return "(no events)"
        t0 = min(e.time for e in self.events)
        t1 = max(e.time for e in self.events)
        span = max(t1 - t0, 1e-12)
        copies = self.copies()
        name_w = max(len(c) for c in copies)
        header = f"trace {t0:.3f}s .. {t1:.3f}s ({len(self.events)} events)"
        if self.dropped:
            header += f" [TRUNCATED: {self.dropped} records dropped]"
        lines = [header]

        def paint(strip: list[str], start: float, end: float, mark: str) -> None:
            a = int((start - t0) / span * (width - 1))
            b = int((end - t0) / span * (width - 1))
            for i in range(a, b + 1):
                strip[i] = mark

        for copy in copies:
            strip = [" "] * width
            for start, end in self.blocked_spans(copy):
                paint(strip, start, end, ".")
            for start, end in self.spans(copy, "io"):
                paint(strip, start, end, "~")
            for start, end in self.spans(copy, "compute"):
                paint(strip, start, end, "#")
            for start, end in self.spans(copy, "flush"):
                paint(strip, start, end, "#")
            lines.append(f"{copy:<{name_w}} |{''.join(strip)}|")
        return "\n".join(lines)

    def utilisation_report(self) -> str:
        """Per-copy busy/io/blocked/idle text table."""
        util = self.utilisation()
        if not util:
            return "(no events)"
        name_w = max(max(len(c) for c in util), len("copy"))
        lines = [
            f"{'copy':<{name_w}}  {'busy':>9}  {'io':>9}  "
            f"{'blocked':>9}  {'idle':>9}  {'span':>9}"
        ]
        for copy, row in util.items():
            lines.append(
                f"{copy:<{name_w}}  {row['busy']:>9.3f}  {row['io']:>9.3f}  "
                f"{row['blocked']:>9.3f}  {row['idle']:>9.3f}  {row['span']:>9.3f}"
            )
        return "\n".join(lines)

    def report(self, width: int = 64) -> str:
        """Timeline + utilisation + ack-latency + queue-depth text report."""
        sections = [self.timeline(width=width)]
        if self.events:
            sections.append("")
            sections.append("per-copy utilisation (seconds):")
            sections.append(self.utilisation_report())
        histogram = self.ack_latency_histogram()
        if histogram:
            total = sum(count for _lo, _hi, count in histogram)
            sections.append("")
            sections.append(f"ack latency ({total} acks):")
            peak = max(count for _lo, _hi, count in histogram)
            for lo, hi, count in histogram:
                bar = "#" * int(count / peak * 32) if count else ""
                sections.append(f"  {lo * 1e3:9.3f}..{hi * 1e3:9.3f} ms {count:6d} {bar}")
        depths = self.queue_depth_stats()
        if depths:
            sections.append("")
            sections.append("queue depth (samples / min / mean / max):")
            for queue, row in depths.items():
                sections.append(
                    f"  {queue}: {int(row['samples'])} / {row['min']:.0f} / "
                    f"{row['mean']:.2f} / {row['max']:.0f}"
                )
        if self.dropped:
            sections.append("")
            sections.append(
                f"WARNING: trace truncated — {self.dropped} records dropped "
                f"past limit={self.limit}; totals above are lower bounds"
            )
        return "\n".join(sections)

    # -- persistence -----------------------------------------------------------
    def dump(self, fh: IO[str]) -> None:
        """Write the trace as JSONL (one meta line, then one record per line)."""
        meta = {
            "type": "meta",
            "version": _JSONL_VERSION,
            "clock": self.clock,
            "limit": self.limit,
            "dropped": self.dropped,
        }
        fh.write(json.dumps(meta) + "\n")
        for e in self.events:
            fh.write(
                json.dumps(
                    {
                        "type": "event",
                        "t": e.time,
                        "copy": e.copy,
                        "kind": e.kind,
                        "detail": e.detail,
                    }
                )
                + "\n"
            )
        for s in self.queue_samples:
            fh.write(
                json.dumps(
                    {"type": "queue", "t": s.time, "queue": s.queue, "depth": s.depth}
                )
                + "\n"
            )

    def to_jsonl(self, path: str) -> None:
        """Write the trace to a JSONL file."""
        with open(path, "w", encoding="utf-8") as fh:
            self.dump(fh)

    @classmethod
    def load(cls, fh: IO[str]) -> "Tracer":
        """Read a trace previously written by :meth:`dump`."""
        tracer = cls()
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"trace line {lineno}: invalid JSON") from exc
            kind = record.get("type")
            if kind == "meta":
                tracer.clock = record.get("clock", "")
                tracer.limit = int(record.get("limit", tracer.limit))
                tracer.dropped = int(record.get("dropped", 0))
            elif kind == "event":
                tracer.events.append(
                    TraceEvent(
                        float(record["t"]),
                        str(record["copy"]),
                        str(record["kind"]),
                        str(record.get("detail", "")),
                    )
                )
            elif kind == "queue":
                tracer.queue_samples.append(
                    QueueSample(
                        float(record["t"]),
                        str(record["queue"]),
                        int(record["depth"]),
                    )
                )
            # Unknown record types are skipped: newer writers stay readable.
        return tracer

    @classmethod
    def from_jsonl(cls, path: str) -> "Tracer":
        """Read a trace from a JSONL file."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.load(fh)
