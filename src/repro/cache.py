"""Memoisation-certified result/fragment cache for the serve path.

Million-user isosurface traffic is highly repetitive — the same dataset,
a handful of popular isovalues, nearby views — yet every warm-pool query
still pays Read+Extract+Raster in full.  This module supplies the
content-addressed, capacity-bounded cache that ROADMAP item 2 calls for,
in three tiers:

``triangles``
    Extracted triangle sets keyed by ``(subgraph signature, dataset
    digest, chunk-partition digest, timestep, isovalue)``.  A hit lets
    the serve layer inject the triangles into the pipeline's unit of
    work, so the Read and Extract stages skip storage and marching
    cubes entirely.
``tiles``
    Rendered frame tiles keyed by ``(triangle-set digest, view
    transform, tile id)``, shaped like the PR 5 distributed-framebuffer
    tiles (:class:`CachedTile` mirrors ``repro.viz.tiled.TileImage``).
    A full tile-set hit reconstructs the frame without running the
    pipeline at all.
``negative``
    Metadata lookups that *failed* (unknown dataset, out-of-range
    timestep), so repeated bad queries are answered without touching
    the scene registry.

The certify-before-memoise contract
-----------------------------------
A cache may only attach to a subgraph that
:func:`repro.analysis.effects.certify_memoisable` passes: every member
provably PURE and the member set convex.  :func:`bind_cache` enforces
this — a rejected subgraph raises :class:`~repro.errors.AnalysisError`
carrying the certifier's E703–E705 findings plus the new E706
(*cache-over-uncertified-subgraph*) diagnostic.  Cache keys start from
:func:`subgraph_signature`, a digest of the members' **static**
``FilterSpec`` metadata (dtype, nbytes, phase discipline, effects
declaration, topology), so a key can never match across pipelines whose
declared semantics differ.

The cache itself (:class:`ResultCache`) is a thread-safe, byte-budgeted
LRU shared by all tiers; hits account the bytes they saved, which the
serve layer surfaces as ``cache_hit``/``cache_miss`` trace events and
``RunMetrics`` fields.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.analysis.effects import MemoCertificate, certify_memoisable
from repro.analysis.rules import RULES
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.graph import FilterGraph

__all__ = [
    "TIERS",
    "CacheBinding",
    "CachedTile",
    "ResultCache",
    "TriangleSet",
    "bind_cache",
    "content_key",
    "make_triangle_set",
    "subgraph_signature",
    "verify_cache_attachment",
]

#: The three cache tiers, in lookup order on the serve path.
TIERS = ("triangles", "tiles", "negative")


# -- content addressing ------------------------------------------------------
def _feed(h: "hashlib._Hash", part: Any) -> None:
    """Canonicalise one key part into the digest.

    Every branch writes a type marker first so e.g. ``1`` and ``"1"``
    and ``1.0`` can never collide; floats hash their exact ``repr`` (the
    shortest round-tripping decimal), arrays hash dtype + shape + raw
    bytes.
    """
    if part is None:
        h.update(b"N;")
    elif isinstance(part, bool):
        h.update(b"b" + (b"1" if part else b"0") + b";")
    elif isinstance(part, int):
        h.update(b"i" + str(part).encode() + b";")
    elif isinstance(part, float):
        h.update(b"f" + repr(part).encode() + b";")
    elif isinstance(part, str):
        h.update(b"s" + part.encode("utf-8") + b";")
    elif isinstance(part, bytes):
        h.update(b"y" + part + b";")
    elif isinstance(part, np.ndarray):
        h.update(
            b"a" + str(part.dtype).encode() + str(part.shape).encode() + b":"
        )
        h.update(np.ascontiguousarray(part).tobytes())
        h.update(b";")
    elif isinstance(part, (tuple, list)):
        h.update(b"(")
        for item in part:
            _feed(h, item)
        h.update(b")")
    elif isinstance(part, Mapping):
        h.update(b"{")
        for key in sorted(part):
            _feed(h, key)
            _feed(h, part[key])
        h.update(b"}")
    else:
        raise ConfigurationError(
            f"cache keys must be built from scalars, arrays and containers; "
            f"got {type(part).__name__}"
        )


def content_key(*parts: Any) -> str:
    """A stable sha256 digest over canonicalised key parts."""
    h = hashlib.sha256()
    for part in parts:
        _feed(h, part)
    return h.hexdigest()[:24]


def subgraph_signature(graph: "FilterGraph", members: Iterable[str]) -> str:
    """Digest the *static* FilterSpec metadata of a subgraph.

    Covers, per member: source-ness, phase discipline, declared input /
    output dtypes, declared output bytes-per-UOW, declared effects class
    and the member-incident stream topology — everything the PR 3 static
    metadata says about the subgraph's semantics, and nothing about the
    live instances.  Two pipelines share cache entries only when these
    digests match.
    """
    names = tuple(dict.fromkeys(members))
    specs = []
    for name in names:
        spec = graph.filters.get(name)
        if spec is None:
            raise ConfigurationError(f"unknown filter {name!r} in subgraph")
        specs.append(
            (
                spec.name,
                bool(spec.is_source),
                bool(spec.phase_synchronised),
                spec.input_dtype,
                spec.output_dtype,
                spec.output_nbytes,
                spec.effects,
            )
        )
    edges = sorted(
        (stream.src, stream.dst, stream.name)
        for stream in graph.streams.values()
        if stream.src in names or stream.dst in names
    )
    return content_key("subgraph", tuple(specs), tuple(edges))


# -- cached values -----------------------------------------------------------
@dataclass(frozen=True)
class TriangleSet:
    """Tier-(a) value: per-chunk world-space triangle arrays.

    ``digest`` content-addresses the triangle data itself and keys the
    tile tier; ``triangles`` maps chunk id -> ``(N, 3, 3)`` float32
    (empty chunks included, so a replay knows the coverage is total).
    """

    triangles: "Mapping[int, np.ndarray]"
    digest: str
    nbytes: int


def make_triangle_set(triangles: "Mapping[int, np.ndarray]") -> TriangleSet:
    """Freeze per-chunk triangles into a digested :class:`TriangleSet`."""
    items = sorted(triangles.items())
    digest = content_key("triangles", tuple(items))
    nbytes = sum(arr.nbytes for _, arr in items) + 16 * len(items)
    return TriangleSet(dict(items), digest, nbytes)


@dataclass(frozen=True)
class CachedTile:
    """Tier-(b) value: one composited tile of a rendered frame.

    Same shape as the PR 5 tile framebuffer's ``TileImage`` — tile id,
    viewport offset and the tile's pixels — plus the frame-level merge
    facts (``active_pixels``, ``buffers_merged``) replicated on every
    tile so a full-set hit can rebuild the whole query response.
    """

    tile: int
    x0: int
    y0: int
    image: np.ndarray  # (tile_h, tile_w, 3) uint8
    active_pixels: int
    buffers_merged: int

    @property
    def nbytes(self) -> int:
        return int(self.image.nbytes) + 32


# -- the byte-budgeted LRU ---------------------------------------------------
class ResultCache:
    """A thread-safe, capacity-bounded (LRU, byte-budgeted) cache.

    Entries live in one LRU ring keyed by ``(tier, key)``; inserting
    past ``capacity_bytes`` evicts least-recently-used entries (of any
    tier) until the newcomer fits.  Values larger than the whole budget
    are rejected rather than flushing the cache.  ``get`` counts hits
    and misses per tier and accounts ``bytes_saved`` — the stored size
    of every hit, i.e. the bytes the pipeline did not have to
    recompute.
    """

    def __init__(self, capacity_bytes: int, name: str = "cache"):
        if capacity_bytes < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1 byte, got {capacity_bytes}"
            )
        self.name = name
        self.capacity_bytes = int(capacity_bytes)
        self._entries: "OrderedDict[tuple[str, str], tuple[Any, int]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.size_bytes = 0
        self.insertions = 0
        self.evictions = 0
        self.rejected = 0
        self.bytes_saved = 0
        self._hits: dict[str, int] = dict.fromkeys(TIERS, 0)
        self._misses: dict[str, int] = dict.fromkeys(TIERS, 0)

    @staticmethod
    def _check_tier(tier: str) -> None:
        if tier not in TIERS:
            raise ConfigurationError(
                f"unknown cache tier {tier!r}; expected one of {TIERS}"
            )

    def get(self, tier: str, key: str) -> Any:
        """The cached value, or ``None`` (counts a hit or a miss)."""
        self._check_tier(tier)
        with self._lock:
            entry = self._entries.get((tier, key))
            if entry is None:
                self._misses[tier] += 1
                return None
            self._entries.move_to_end((tier, key))
            self._hits[tier] += 1
            self.bytes_saved += entry[1]
            return entry[0]

    def peek(self, tier: str, key: str) -> bool:
        """True when an entry exists; no counters touched, no LRU bump."""
        self._check_tier(tier)
        with self._lock:
            return (tier, key) in self._entries

    def put(self, tier: str, key: str, value: Any, nbytes: int) -> bool:
        """Insert a value; evict LRU entries until it fits.

        Returns False (and counts a rejection) when ``nbytes`` exceeds
        the whole budget — one oversized value must not wipe the cache.
        """
        self._check_tier(tier)
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        with self._lock:
            old = self._entries.pop((tier, key), None)
            if old is not None:
                self.size_bytes -= old[1]
            if nbytes > self.capacity_bytes:
                self.rejected += 1
                return False
            while self.size_bytes + nbytes > self.capacity_bytes:
                _evicted_key, (_value, evicted_nbytes) = self._entries.popitem(
                    last=False
                )
                self.size_bytes -= evicted_nbytes
                self.evictions += 1
            self._entries[(tier, key)] = (value, nbytes)
            self.size_bytes += nbytes
            self.insertions += 1
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.size_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> "dict[str, Any]":
        """A snapshot for dashboards and the serve ``stats`` command."""
        with self._lock:
            hits = sum(self._hits.values())
            misses = sum(self._misses.values())
            return {
                "name": self.name,
                "capacity_bytes": self.capacity_bytes,
                "size_bytes": self.size_bytes,
                "entries": len(self._entries),
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / (hits + misses), 4)
                if hits + misses
                else 0.0,
                "by_tier": {
                    tier: {
                        "hits": self._hits[tier],
                        "misses": self._misses[tier],
                    }
                    for tier in TIERS
                },
                "insertions": self.insertions,
                "evictions": self.evictions,
                "rejected": self.rejected,
                "bytes_saved": self.bytes_saved,
            }


# -- certification gate ------------------------------------------------------
@dataclass(frozen=True)
class CacheBinding:
    """A cache attached to a certified subgraph of one pipeline.

    Constructed only through :func:`bind_cache`, so holding a binding
    *is* the proof that ``certify_memoisable`` passed; ``signature`` is
    the static-metadata digest every key of this binding starts from.
    """

    cache: ResultCache
    members: tuple[str, ...]
    signature: str
    certificate: MemoCertificate


def verify_cache_attachment(
    graph: "FilterGraph", members: Iterable[str]
) -> MemoCertificate:
    """Certify ``members`` for caching; flag E706 on a rejection.

    Runs :func:`certify_memoisable` and, when the certificate is
    refused, appends the E706 *cache-over-uncertified-subgraph* ERROR to
    the certificate's report (alongside the E703/E704/E705 findings that
    justify it).  The caller decides whether to raise — engines refuse,
    linters report.
    """
    certificate = certify_memoisable(graph, members)
    if not certificate.ok:
        causes = sorted({d.rule for d in certificate.report.diagnostics})
        certificate.report.append(
            RULES["E706"].diagnostic(
                ",".join(certificate.subgraph),
                f"a result cache is configured over subgraph "
                f"{list(certificate.subgraph)} but certify_memoisable() "
                f"rejects it ({', '.join(causes)}); memoised replies could "
                f"differ from live ones",
            )
        )
    return certificate


def bind_cache(
    graph: "FilterGraph", members: Iterable[str], cache: ResultCache
) -> CacheBinding:
    """Attach ``cache`` to a subgraph, or refuse with E703–E706.

    Raises :class:`~repro.errors.AnalysisError` (report attached) when
    the subgraph is not certifiably memoisable.
    """
    certificate = verify_cache_attachment(graph, members)
    if not certificate.ok:
        certificate.report.raise_errors()
    return CacheBinding(
        cache=cache,
        members=certificate.subgraph,
        signature=subgraph_signature(graph, certificate.subgraph),
        certificate=certificate,
    )
