"""The distributed tile framebuffer: tile-routed merge + gather filters.

The single Merge filter is the paper's one phase-synchronised sink — the
stage that cannot be transparently copied, so it caps every decomposition
no matter how many Extract/Raster copies run.  This module distributes it
(the Distributed FrameBuffer scheme): a :class:`~repro.core.tiles.TileMap`
partitions the viewport into tiles owned by N merge copies, raster filters
split their output per tile and tag each buffer with the owning copy, the
``TileRouted`` writer policy delivers every buffer to its owner, each
:class:`TileMergeFilter` copy composites only the tiles it owns, and a
final lightweight :class:`TileGatherFilter` pastes the composited tiles
into one :class:`~repro.viz.filters.RenderResult`.

Routing invariant: a buffer tagged ``{"tile": t, "tile_owner": o}`` holds
fragments of tile ``t`` only, and owner ``o`` is ``tile_map.tiles[t].owner``
— so copy ``o`` (the ``o``-th single-copy set of the merge filter, in
placement order) sees every fragment of its tiles and no others.  Tiles are
disjoint, so per-tile composition followed by a paste is bit-exact against
the single-merge baseline.

Payloads: z-buffer rasters ship :class:`TileSlab` (a contiguous dense range
in *tile-local* row-major order); active-pixel rasters ship per-tile
:class:`~repro.viz.active_pixel.WPABuffer` subsets whose pixel indices stay
*global* (the merge converts to tile-local coordinates).  The merge emits
one :class:`TileImage` per owned tile at end-of-work; a tile whose owner
received no fragments (active-pixel mode) simply never emits — the gather
starts from a black image and zero active pixels, matching the
single-merge background.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.buffer import DataBuffer
from repro.core.filter import Filter, FilterContext
from repro.core.tiles import Tile, TileMap
from repro.errors import DataError, EngineError
from repro.viz.active_pixel import WPABuffer
from repro.viz.filters import RenderResult
from repro.viz.raster import ZBUFFER_ENTRY_BYTES, ZBuffer

__all__ = [
    "TileSlab",
    "TileImage",
    "TileMergeFilter",
    "TileGatherFilter",
    "split_wpa",
    "zbuffer_tile_slabs",
]


@dataclass
class TileSlab:
    """A contiguous dense z-buffer range of one tile (tile-local indices).

    Duck-types :class:`~repro.viz.raster.ZBufferSlab` (``start`` / ``depth``
    / ``color``) so a tile-sized :class:`~repro.viz.raster.ZBuffer` can
    ``merge_slab`` it directly: ``start`` is the flat row-major offset
    *within the tile*, not the viewport.
    """

    tile: int
    start: int
    depth: np.ndarray  # (n,) float32
    color: np.ndarray  # (n, 3) uint8

    @property
    def nbytes(self) -> int:
        """Wire size: one entry per pixel regardless of activity."""
        return len(self.depth) * ZBUFFER_ENTRY_BYTES


@dataclass
class TileImage:
    """One composited tile: the TileMerge -> TileGather stream payload."""

    tile: int
    x0: int
    y0: int
    image: np.ndarray  # (tile height, tile width, 3) uint8
    active_pixels: int
    buffers_merged: int

    @property
    def nbytes(self) -> int:
        """Wire size: the tile's pixels plus the accounting fields."""
        return self.image.size + 16


def zbuffer_tile_slabs(
    zbuf: ZBuffer, tile_map: TileMap, entries_per_buffer: int
) -> Iterator[tuple[Tile, TileSlab]]:
    """Split a full-viewport z-buffer into per-tile dense slabs.

    Yields ``(tile, slab)`` pairs covering every pixel of every tile, each
    slab at most ``entries_per_buffer`` entries, in tile order — the
    tile-routed counterpart of :meth:`~repro.viz.raster.ZBuffer.slabs`.
    """
    depth = zbuf.depth.reshape(zbuf.height, zbuf.width)
    color = zbuf.color.reshape(zbuf.height, zbuf.width, 3)
    for tile in tile_map.tiles:
        tile_depth = depth[tile.y0 : tile.y1, tile.x0 : tile.x1].reshape(-1)
        tile_color = color[tile.y0 : tile.y1, tile.x0 : tile.x1].reshape(-1, 3)
        for start in range(0, tile.pixels, entries_per_buffer):
            stop = min(start + entries_per_buffer, tile.pixels)
            yield tile, TileSlab(
                tile.index,
                start,
                tile_depth[start:stop].copy(),
                tile_color[start:stop].copy(),
            )


def split_wpa(
    wpa: WPABuffer, tile_map: TileMap
) -> list[tuple[Tile, WPABuffer]]:
    """Split one WPA buffer into per-tile subsets (global pixel indices).

    Entry order within each subset is preserved; entries landing on no tile
    (only possible with an invalid map, which rule ``Z402`` rejects before a
    run) are dropped.
    """
    owners = tile_map.tile_of(wpa.pixels)
    out: list[tuple[Tile, WPABuffer]] = []
    for tile_index in np.unique(owners):
        if tile_index < 0:
            continue
        mask = owners == tile_index
        tile = tile_map.tiles[int(tile_index)]
        out.append(
            (
                tile,
                WPABuffer(
                    wpa.pixels[mask], wpa.depth[mask], wpa.color[mask]
                ),
            )
        )
    return out


class TileMergeFilter(Filter):
    """TM: composite the tiles this copy owns (one transparent copy each).

    Runs as N single-copy copy sets behind a ``TileRouted`` writer: each
    copy receives exactly the buffers tagged with its owner index, merges
    them into per-tile z-buffers, and emits one :class:`TileImage` per
    tile seen at end-of-work.  ``algorithm`` selects the payload type:
    ``"zbuffer"`` consumes :class:`TileSlab`, ``"active"`` consumes
    per-tile :class:`~repro.viz.active_pixel.WPABuffer` subsets.
    """

    def __init__(self, tile_map: TileMap, algorithm: str = "active"):
        if algorithm not in ("zbuffer", "active"):
            raise DataError(
                f"algorithm must be 'zbuffer' or 'active', got {algorithm!r}"
            )
        self.tile_map = tile_map
        self.algorithm = algorithm

    def init(self, ctx: FilterContext) -> None:
        """Per-unit-of-work set-up (see Filter.init)."""
        self._tiles: dict[int, ZBuffer] = {}
        self._buffers: dict[int, int] = {}

    def _tile_zbuf(self, tile_index: int) -> ZBuffer:
        zbuf = self._tiles.get(tile_index)
        if zbuf is None:
            tile = self.tile_map.tiles[tile_index]
            zbuf = self._tiles[tile_index] = ZBuffer(tile.width, tile.height)
            self._buffers[tile_index] = 0
        return zbuf

    def handle(self, ctx: FilterContext, buffer: DataBuffer) -> None:
        """Process one input buffer (see Filter.handle)."""
        tile_index = buffer.tags.get("tile")
        if not isinstance(tile_index, int):
            raise EngineError(
                "TileMergeFilter needs a 'tile' tag on every buffer; "
                "was the producer given the tile map?"
            )
        zbuf = self._tile_zbuf(tile_index)
        if self.algorithm == "zbuffer":
            zbuf.merge_slab(buffer.payload)
        else:
            tile = self.tile_map.tiles[tile_index]
            wpa: WPABuffer = buffer.payload
            y, x = np.divmod(wpa.pixels, self.tile_map.width)
            local = (y - tile.y0) * tile.width + (x - tile.x0)
            zbuf.merge_entries(local, wpa.depth, wpa.color)
        self._buffers[tile_index] += 1

    def flush(self, ctx: FilterContext) -> None:
        """End-of-work processing (see Filter.flush)."""
        for tile_index in sorted(self._tiles):
            tile = self.tile_map.tiles[tile_index]
            zbuf = self._tiles[tile_index]
            payload = TileImage(
                tile.index,
                tile.x0,
                tile.y0,
                zbuf.image().copy(),
                zbuf.active_pixels(),
                self._buffers[tile_index],
            )
            ctx.write(
                DataBuffer(payload.nbytes, payload, tags={"tile": tile.index})
            )

    def finalize(self, ctx: FilterContext) -> None:
        """Release per-unit-of-work resources (see Filter.finalize)."""
        del self._tiles
        del self._buffers


class TileGatherFilter(Filter):
    """G: paste composited tiles into the final :class:`RenderResult`.

    A single-copy linear gather — each incoming :class:`TileImage` is one
    O(tile pixels) paste, so the stage's work is the viewport size once,
    independent of fragment counts; the heavy depth-testing already
    happened in the distributed merge copies.
    """

    def __init__(self, width: int, height: int):
        self.width = width
        self.height = height

    def init(self, ctx: FilterContext) -> None:
        """Per-unit-of-work set-up (see Filter.init)."""
        self._image = np.zeros((self.height, self.width, 3), dtype=np.uint8)
        self._active = 0
        self._buffers = 0
        self._done = False

    def handle(self, ctx: FilterContext, buffer: DataBuffer) -> None:
        """Process one input buffer (see Filter.handle)."""
        tile_image: TileImage = buffer.payload
        th, tw = tile_image.image.shape[:2]
        y0, x0 = tile_image.y0, tile_image.x0
        self._image[y0 : y0 + th, x0 : x0 + tw] = tile_image.image
        self._active += tile_image.active_pixels
        self._buffers += tile_image.buffers_merged

    def flush(self, ctx: FilterContext) -> None:
        """End-of-work processing (see Filter.flush)."""
        self._done = True

    def result(self) -> RenderResult:
        """The assembled image (available after the run completes)."""
        if not getattr(self, "_done", False):
            raise EngineError(
                "TileGatherFilter has no result yet: run the pipeline first"
            )
        return RenderResult(self._image, self._active, self._buffers)
