"""Image-space partitioning: the paper's proposed Merge-free alternative.

The conclusions (Section 6) observe that with many raster copies the single
Merge filter becomes a bottleneck and propose an alternative: "partition
the image space into subregions among the raster filters, thus eliminating
the merge filter.  However, this will cause load imbalance among raster
filters if the amount of data for each subregion is not the same."  This
module implements that design so the trade-off can be measured
(``benchmarks/test_ablation_image_partition.py``):

- the screen is divided into vertical strips, one per raster filter;
- extraction routes each triangle to every strip its projection overlaps
  (a triangle spanning a boundary is drawn by both owners; each crops to
  its own strip, so the assembled image is exact);
- each strip owner rasterises into its own buffer; there is no Merge.

Real filters (threaded engine) and cost models (simulated engine) are both
provided; ``assemble_strips`` rebuilds the full image for correctness
checks against the merge-based pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.core.buffer import DataBuffer
from repro.core.filter import Filter, FilterContext, SimFilter, SimSource, SourceItem
from repro.core.graph import FilterGraph
from repro.data.parssim import ParSSimDataset
from repro.data.storage import StorageMap
from repro.errors import ConfigurationError
from repro.viz.camera import Camera
from repro.viz.filters import (
    TRIANGLE_BYTES,
    TrianglePayload,
    _chunk_world_origin,
    _copy_files,
)
from repro.viz.marching_cubes import extract_triangles
from repro.viz.models import BufferSizes, CostParams, _emit_stream_buffers, _RasterCost
from repro.viz.profile import DatasetProfile
from repro.viz.raster import ZBuffer
from repro.viz.shading import shade_triangles

__all__ = [
    "x_strips",
    "region_stream",
    "PartitionedReadExtractFilter",
    "StripRasterFilter",
    "assemble_strips",
    "PartitionedReadExtractSourceModel",
    "StripRasterSinkModel",
    "build_partitioned_graph",
]


def x_strips(width: int, regions: int) -> list[tuple[int, int]]:
    """Split ``width`` pixels into ``regions`` contiguous [x0, x1) strips."""
    if regions < 1:
        raise ConfigurationError(f"regions must be >= 1, got {regions}")
    if width < regions:
        raise ConfigurationError(f"{regions} strips need >= {regions} pixels")
    bounds = [round(i * width / regions) for i in range(regions + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(regions)]


def region_stream(region: int) -> str:
    """Name of the stream feeding strip ``region``'s raster filter."""
    return f"to_Ra{region}"


# --------------------------------------------------------------------------
# Real filters (threaded engine)
# --------------------------------------------------------------------------
class PartitionedReadExtractFilter(Filter):
    """RE that routes triangles to strip owners by projected x-extent."""

    def __init__(
        self,
        dataset: ParSSimDataset,
        storage: StorageMap,
        timestep: int,
        isovalue: float,
        camera: Camera,
        strips: list[tuple[int, int]],
        species: int = 0,
    ):
        self.dataset = dataset
        self.storage = storage
        self.timestep = timestep
        self.species = species
        self.isovalue = isovalue
        self.camera = camera
        self.strips = strips

    def flush(self, ctx: FilterContext) -> None:
        """End-of-work processing (see Filter.flush)."""
        for data_file, _disk in _copy_files(self.storage, ctx):
            for chunk in data_file.chunks:
                scalars = self.dataset.chunk_field(
                    chunk, self.timestep, self.species
                )
                tris = extract_triangles(
                    scalars, self.isovalue, origin=_chunk_world_origin(chunk)
                )
                if len(tris) == 0:
                    continue
                screen, kept = self.camera.project_and_cull(tris)
                world = tris[kept]
                if len(world) == 0:
                    continue
                xmin = screen[:, :, 0].min(axis=1)
                xmax = screen[:, :, 0].max(axis=1)
                for region, (x0, x1) in enumerate(self.strips):
                    overlap = (xmax >= x0) & (xmin < x1)
                    if not overlap.any():
                        continue
                    subset = world[overlap]
                    ctx.write(
                        DataBuffer(
                            len(subset) * TRIANGLE_BYTES,
                            TrianglePayload(subset),
                            tags={"chunk": chunk.chunk_id},
                        ),
                        stream=region_stream(region),
                    )


class StripRasterFilter(Filter):
    """A raster filter owning one vertical strip of the image.

    A sink: there is no Merge filter.  ``result`` returns the strip bounds
    and the cropped image region.
    """

    def __init__(self, camera: Camera, strip: tuple[int, int]):
        self.camera = camera
        self.strip = strip

    def init(self, ctx: FilterContext) -> None:
        """Per-unit-of-work set-up (see Filter.init)."""
        self._zbuf = ZBuffer(self.camera.width, self.camera.height)

    def handle(self, ctx: FilterContext, buffer: DataBuffer) -> None:
        """Process one input buffer (see Filter.handle)."""
        payload: TrianglePayload = buffer.payload
        colors = shade_triangles(payload.triangles)
        screen, kept = self.camera.project_and_cull(payload.triangles)
        self._zbuf.rasterize(screen, colors[kept])

    def result(self) -> tuple[tuple[int, int], np.ndarray]:
        """Final value exposed by this sink."""
        x0, x1 = self.strip
        return (self.strip, self._zbuf.image()[:, x0:x1].copy())


def assemble_strips(
    results: list[tuple[tuple[int, int], np.ndarray]], width: int, height: int
) -> np.ndarray:
    """Stitch strip images back into the full frame."""
    image = np.zeros((height, width, 3), dtype=np.uint8)
    covered = 0
    for (x0, x1), strip in results:
        image[:, x0:x1] = strip
        covered += x1 - x0
    if covered != width:
        raise ConfigurationError(
            f"strips cover {covered} of {width} image columns"
        )
    return image


# --------------------------------------------------------------------------
# Cost models (simulated engine)
# --------------------------------------------------------------------------
class PartitionedReadExtractSourceModel(SimSource):
    """RE source whose triangle output is split across region streams.

    ``region_weights`` sets the share of triangles landing in each strip
    (the paper's predicted load-imbalance risk); defaults to an even split.
    """

    def __init__(
        self,
        profile: DatasetProfile,
        storage: StorageMap,
        timestep: int,
        costs: CostParams,
        buffers: BufferSizes,
        regions: int,
        region_weights: list[float] | None = None,
    ):
        if regions < 1:
            raise ConfigurationError(f"regions must be >= 1, got {regions}")
        weights = region_weights or [1.0] * regions
        if len(weights) != regions or any(w < 0 for w in weights):
            raise ConfigurationError("need one non-negative weight per region")
        total = sum(weights)
        if total <= 0:
            raise ConfigurationError("region weights sum to zero")
        self.profile = profile
        self.storage = storage
        self.timestep = timestep
        self.costs = costs
        self.buffers = buffers
        self.fractions = [w / total for w in weights]

    def items(self, ctx: FilterContext):
        """Yield this copy's source work items (see SimSource)."""
        files = self.storage.files_on(ctx.host)
        for data_file, disk in files[ctx.copy_index :: ctx.copies_on_host]:
            for i, chunk in enumerate(data_file.chunks):
                tris = self.profile.triangles(self.timestep, chunk.chunk_id)
                cpu = (
                    chunk.nbytes * self.costs.read_per_byte
                    + chunk.points * self.costs.extract_per_voxel
                    + tris * self.costs.extract_per_triangle
                )
                outs: list[DataBuffer] = []
                for region, fraction in enumerate(self.fractions):
                    share = int(round(tris * fraction))
                    if share == 0:
                        continue
                    for buf in _emit_stream_buffers(
                        share * TRIANGLE_BYTES,
                        self.buffers.triangles,
                        triangles=share,
                    ):
                        buf.tags["stream"] = region_stream(region)
                        outs.append(buf)
                yield SourceItem(
                    read_bytes=chunk.nbytes, disk_index=disk, cpu=cpu,
                    sequential=i > 0, outputs=outs,
                )


class StripRasterSinkModel(SimFilter):
    """Cost model of a strip-owning raster filter (active pixel, no Merge)."""

    def __init__(self, costs: CostParams, width: int, height: int, regions: int):
        # A strip owner rasterises into its own region; fragments per
        # triangle are unchanged (the triangle's area is what it is).
        self._r = _RasterCost(costs, width, height)
        self.costs = costs
        self.regions = regions
        self.triangles = 0
        self.entries = 0

    def cost(self, buffer: DataBuffer) -> float:
        """CPU cost of processing ``buffer`` (reference core-seconds)."""
        tris = buffer.tags.get("triangles", 0)
        entries = self._r.ap_entries(tris)
        self.triangles += tris
        self.entries += entries
        return self._r.triangle_cost(tris) + entries * self.costs.ap_per_entry

    def result(self):
        """Final value exposed by this sink."""
        return {"triangles": self.triangles, "entries": self.entries}


def build_partitioned_graph(
    profile: DatasetProfile,
    storage: StorageMap,
    timestep: int,
    width: int,
    height: int,
    regions: int,
    costs: CostParams | None = None,
    buffers: BufferSizes | None = None,
    region_weights: list[float] | None = None,
) -> FilterGraph:
    """Simulated graph: RE source -> one strip raster per region, no Merge."""
    if regions < 1:
        raise ConfigurationError(f"regions must be >= 1, got {regions}")
    if region_weights is not None:
        if len(region_weights) != regions or any(w < 0 for w in region_weights):
            raise ConfigurationError("need one non-negative weight per region")
        if sum(region_weights) <= 0:
            raise ConfigurationError("region weights sum to zero")
    costs = costs or CostParams()
    buffers = buffers or BufferSizes()
    graph = FilterGraph()
    graph.add_filter(
        "RE",
        sim_factory=lambda: PartitionedReadExtractSourceModel(
            profile, storage, timestep, costs, buffers, regions, region_weights
        ),
        is_source=True,
    )
    for region in range(regions):
        name = f"Ra{region}"
        graph.add_filter(
            name,
            sim_factory=lambda: StripRasterSinkModel(costs, width, height, regions),
        )
        graph.connect("RE", name, name=region_stream(region))
    return graph
