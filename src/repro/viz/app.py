"""Isosurface application builder: filter graphs for every configuration.

:class:`IsosurfaceApp` assembles the paper's four decompositions
(Figure 2b / Figure 3) as :class:`~repro.core.graph.FilterGraph` objects:

- ``R-E-Ra-M``  — all four filters separate (baseline, Tables 1-2);
- ``RE-Ra-M``   — read+extract combined (the usual best performer);
- ``R-ERa-M``   — extract+raster combined (decouples retrieval);
- ``RERa-M``    — everything but merge combined (SPMD-like).

Each graph carries *simulated* factories (cost models over a
:class:`~repro.viz.profile.DatasetProfile`) and, when a real
:class:`~repro.data.parssim.ParSSimDataset` is supplied, *real* factories
too — so the same graph runs on either engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.graph import FilterGraph
from repro.core.negotiate import declare_bounds, negotiate
from repro.core.placement import Placement
from repro.core.policies import PolicyFactory, make_policy_factory
from repro.core.tiles import TileMap
from repro.data.storage import StorageMap
from repro.errors import ConfigurationError
from repro.viz import filters as real
from repro.viz import models as sim
from repro.viz import tiled
from repro.viz.camera import Camera
from repro.viz.models import BufferSizes, CostParams
from repro.viz.profile import DatasetProfile

__all__ = ["IsosurfaceApp", "CONFIGURATIONS"]

CONFIGURATIONS = ("R-E-Ra-M", "RE-Ra-M", "R-ERa-M", "RERa-M")


@dataclass
class IsosurfaceApp:
    """One rendering scenario: dataset + storage + view + algorithm.

    Parameters
    ----------
    profile:
        Dataset description for the simulated engine.
    storage:
        File -> (host, disk) placement; source filters read from it.
    width / height:
        Output image size (the paper uses 512^2 and 2048^2).
    algorithm:
        ``"zbuffer"`` or ``"active"``.
    timestep:
        Which stored timestep to render.
    costs / buffers:
        Cost-model calibration and stream buffer sizes.
    dataset / isovalue:
        Optional real dataset enabling threaded execution: any object with
        ``chunk_field(chunk, timestep, species)`` — the synthetic
        generators or an on-disk :class:`~repro.data.diskstore.
        DeclusteredStore`.  ``isovalue`` is the rendered surface level.
    merge_copies / merge_tiles:
        ``merge_copies > 1`` replaces the single Merge sink with the
        distributed tile framebuffer: ``merge_tiles`` row-band tiles
        (default: one per copy) owned round-robin by ``merge_copies``
        tile-merge copies behind a ``TileRouted`` writer, gathered by a
        lightweight single-copy sink.  ``merge_copies=1`` is exactly the
        classic single-merge pipeline.
    """

    profile: DatasetProfile
    storage: StorageMap
    width: int = 2048
    height: int = 2048
    algorithm: str = "active"
    timestep: int = 0
    costs: CostParams = field(default_factory=CostParams)
    buffers: BufferSizes = field(default_factory=BufferSizes)
    #: any chunk_field(chunk, t, s) provider; typed loosely on purpose
    dataset: object | None = None
    isovalue: float = 0.5
    #: Optional explicit camera (e.g. an animation frame's viewpoint);
    #: ``None`` means a default camera framing the whole grid.
    view: Camera | None = None
    #: Distributed-framebuffer fan-out: number of tile-merge copies.
    merge_copies: int = 1
    #: Tiles in the tile map (>= merge_copies); ``None`` = one per copy.
    merge_tiles: int | None = None

    def __post_init__(self) -> None:
        if self.algorithm not in ("zbuffer", "active"):
            raise ConfigurationError(
                f"algorithm must be 'zbuffer' or 'active', got {self.algorithm!r}"
            )
        if not 0 <= self.timestep < self.profile.timesteps:
            raise ConfigurationError(
                f"timestep {self.timestep} outside [0, {self.profile.timesteps})"
            )
        if self.merge_copies < 1:
            raise ConfigurationError(
                f"merge_copies must be >= 1, got {self.merge_copies}"
            )
        if self.merge_tiles is not None and self.merge_tiles < self.merge_copies:
            raise ConfigurationError(
                f"merge_tiles ({self.merge_tiles}) must be >= merge_copies "
                f"({self.merge_copies})"
            )

    # -- real-mode helpers -------------------------------------------------
    def camera(self) -> Camera:
        """The rendering camera: ``view`` if given, else a fitted default."""
        if self.view is not None:
            return self.view
        return Camera.fit_grid(
            self.profile.grid_shape, width=self.width, height=self.height
        )

    def _require_dataset(self):
        if self.dataset is None:
            raise ConfigurationError(
                "real factories need a dataset (a chunk_field provider); "
                "this app is simulation-only"
            )
        return self.dataset

    # -- distributed tile framebuffer ----------------------------------------
    def tile_map(self) -> TileMap | None:
        """The viewport partition, or ``None`` for the single-merge sink."""
        if self.merge_copies == 1:
            return None
        return TileMap.rows(
            self.width,
            self.height,
            self.merge_tiles or self.merge_copies,
            self.merge_copies,
        )

    def merge_stream(self, configuration: str) -> str:
        """The stream carrying raster output into the merge stage."""
        upstream = {
            "R-E-Ra-M": "Ra",
            "RE-Ra-M": "Ra",
            "R-ERa-M": "ERa",
            "RERa-M": "RERa",
        }[configuration]
        dst = "TM" if self.merge_copies > 1 else "M"
        return f"{upstream}->{dst}"

    def policy_overrides(
        self, configuration: str
    ) -> dict[str, PolicyFactory]:
        """Per-stream writer-policy overrides the engines need.

        A tiled pipeline routes the raster -> merge stream by buffer
        content (``TileRouted``) regardless of the session-wide policy;
        every other stream keeps the engine default.
        """
        if self.merge_copies == 1:
            return {}
        return {self.merge_stream(configuration): make_policy_factory("TILE")}

    # -- graph builders ------------------------------------------------------
    def graph(self, configuration: str) -> FilterGraph:
        """Build the filter graph for one of :data:`CONFIGURATIONS`."""
        if configuration not in CONFIGURATIONS:
            raise ConfigurationError(
                f"unknown configuration {configuration!r}; "
                f"choose from {CONFIGURATIONS}"
            )
        builder = {
            "R-E-Ra-M": self._graph_r_e_ra_m,
            "RE-Ra-M": self._graph_re_ra_m,
            "R-ERa-M": self._graph_r_era_m,
            "RERa-M": self._graph_rera_m,
        }[configuration]
        return builder()

    def _merge_factories(self):
        sim_factory = lambda: sim.MergeModel(  # noqa: E731
            self.costs, self.algorithm, self.width, self.height
        )
        if self.algorithm == "zbuffer":
            real_factory = lambda: real.MergeZFilter(self.width, self.height)  # noqa: E731
        else:
            real_factory = lambda: real.MergeAPFilter(self.width, self.height)  # noqa: E731
        return real_factory, sim_factory

    def _attach_merge(self, g: FilterGraph, upstream: str) -> None:
        """Append the merge stage after ``upstream``: single sink or TM->M.

        With ``merge_copies == 1`` this is today's phase behaviour exactly;
        otherwise the tile-merge copies and the gather are both
        phase-synchronised (they emit/complete only at end-of-work).
        """
        tmap = self.tile_map()
        if tmap is None:
            g.add_filter(
                # The z-buffer merge is a phase-synchronised accumulator: it
                # only emits at the end-of-work phase boundary (verifier
                # Z401).
                "M",
                phase_synchronised=self.algorithm == "zbuffer",
                effects="stateful",
            )
            g.connect(upstream, "M")
            return
        g.add_filter(
            "TM", phase_synchronised=True, tile_map=tmap, effects="stateful"
        )
        g.add_filter("M", phase_synchronised=True, effects="stateful")
        g.connect(upstream, "TM")
        g.connect("TM", "M")

    def _bind_merge(self, g: FilterGraph) -> None:
        """Install the merge-stage factories (single or tiled)."""
        tmap = self.tile_map()
        if tmap is None:
            real_m, sim_m = self._merge_factories()
            g.filters["M"].factory = self._real_or_none(real_m)
            g.filters["M"].sim_factory = sim_m
            return
        g.filters["TM"].factory = self._real_or_none(
            lambda: tiled.TileMergeFilter(tmap, self.algorithm)
        )
        g.filters["TM"].sim_factory = lambda: sim.TileMergeModel(
            self.costs, self.algorithm, tmap
        )
        g.filters["M"].factory = self._real_or_none(
            lambda: tiled.TileGatherFilter(self.width, self.height)
        )
        g.filters["M"].sim_factory = lambda: sim.TileGatherModel(
            self.costs, self.algorithm, self.width, self.height
        )

    def _raster_factories(self, buffers: BufferSizes):
        tmap = self.tile_map()
        if self.algorithm == "zbuffer":
            sim_factory = lambda: sim.RasterZBModel(  # noqa: E731
                self.costs, buffers, self.width, self.height, tile_map=tmap
            )
            real_factory = lambda: real.RasterZFilter(  # noqa: E731
                self.camera(), tile_map=tmap
            )
        else:
            sim_factory = lambda: sim.RasterAPModel(  # noqa: E731
                self.costs, buffers, self.width, self.height, tile_map=tmap
            )
            real_factory = lambda: real.RasterAPFilter(  # noqa: E731
                self.camera(), tile_map=tmap
            )
        return real_factory, sim_factory

    def _real_or_none(self, factory):
        return factory if self.dataset is not None else None

    #: protocol floor every producer discloses as its minimum buffer size
    _MIN_BUFFER = 16 * 1024

    def _negotiate(self, graph: FilterGraph, roles: dict[str, str]) -> BufferSizes:
        """Run the paper's buffer-size negotiation over ``graph``.

        ``roles`` maps each stream to the buffer knob it carries (``read``/
        ``triangles``/``merge``).  Producers disclose a protocol-floor
        minimum; consumers disclose this app's requested size as their
        minimum; the z-buffer raster pins its merge stream to fixed slabs
        (min == max).  The negotiated sizes feed the simulated models.
        """
        merge_size = (
            self.buffers.zbuffer_slab
            if self.algorithm == "zbuffer"
            else self.buffers.wpa
        )
        requested = {
            "read": self.buffers.read,
            "triangles": self.buffers.triangles,
            "merge": merge_size,
        }
        for stream, role in roles.items():
            spec = graph.streams[stream]
            want = requested[role]
            if role == "merge" and self.algorithm == "zbuffer":
                # Fixed-size slabs: the raster serialises the whole buffer.
                declare_bounds(graph, spec.src, stream, want, want)
            else:
                declare_bounds(graph, spec.src, stream, self._MIN_BUFFER)
            declare_bounds(graph, spec.dst, stream, want)
        sizes = negotiate(graph, default=self._MIN_BUFFER)
        # Streams without a role (e.g. the TM->M gather stream) keep the
        # negotiated default and don't feed back into the knobs.
        by_role = {
            roles[stream]: size
            for stream, size in sizes.items()
            if stream in roles
        }
        return BufferSizes(
            read=by_role.get("read", self.buffers.read),
            triangles=by_role.get("triangles", self.buffers.triangles),
            zbuffer_slab=(
                by_role["merge"]
                if self.algorithm == "zbuffer" and "merge" in by_role
                else self.buffers.zbuffer_slab
            ),
            wpa=(
                by_role["merge"]
                if self.algorithm == "active" and "merge" in by_role
                else self.buffers.wpa
            ),
        )

    def _graph_r_e_ra_m(self) -> FilterGraph:
        g = FilterGraph()
        g.add_filter(
            "R",
            factory=self._real_or_none(
                lambda: real.ReadFilter(
                    self._require_dataset(), self.storage, self.timestep
                )
            ),
            is_source=True,
            effects="io",
        )
        g.add_filter(
            "E",
            factory=self._real_or_none(lambda: real.ExtractFilter(self.isovalue)),
            effects="pure",
        )
        g.add_filter("Ra", effects="stateful")
        g.connect("R", "E")
        g.connect("E", "Ra")
        self._attach_merge(g, "Ra")
        eff = self._negotiate(
            g,
            {
                "R->E": "read",
                "E->Ra": "triangles",
                self.merge_stream("R-E-Ra-M"): "merge",
            },
        )
        g.filters["R"].sim_factory = lambda: sim.ReadSourceModel(
            self.profile, self.storage, self.timestep, self.costs, eff
        )
        g.filters["E"].sim_factory = lambda: sim.ExtractModel(self.costs, eff)
        real_ra, sim_ra = self._raster_factories(eff)
        g.filters["Ra"].factory = self._real_or_none(real_ra)
        g.filters["Ra"].sim_factory = sim_ra
        self._bind_merge(g)
        return g

    def _graph_re_ra_m(self) -> FilterGraph:
        g = FilterGraph()
        g.add_filter(
            "RE",
            factory=self._real_or_none(
                lambda: real.ReadExtractFilter(
                    self._require_dataset(),
                    self.storage,
                    self.timestep,
                    self.isovalue,
                )
            ),
            is_source=True,
            effects="io",
        )
        g.add_filter("Ra", effects="stateful")
        g.connect("RE", "Ra")
        self._attach_merge(g, "Ra")
        eff = self._negotiate(
            g,
            {"RE->Ra": "triangles", self.merge_stream("RE-Ra-M"): "merge"},
        )
        g.filters["RE"].sim_factory = lambda: sim.ReadExtractSourceModel(
            self.profile, self.storage, self.timestep, self.costs, eff
        )
        real_ra, sim_ra = self._raster_factories(eff)
        g.filters["Ra"].factory = self._real_or_none(real_ra)
        g.filters["Ra"].sim_factory = sim_ra
        self._bind_merge(g)
        return g

    def _graph_r_era_m(self) -> FilterGraph:
        g = FilterGraph()
        g.add_filter(
            "R",
            factory=self._real_or_none(
                lambda: real.ReadFilter(
                    self._require_dataset(), self.storage, self.timestep
                )
            ),
            is_source=True,
            effects="io",
        )
        g.add_filter(
            "ERa",
            factory=self._real_or_none(
                lambda: real.ExtractRasterFilter(
                    self.isovalue,
                    self.camera(),
                    self.algorithm,
                    tile_map=self.tile_map(),
                )
            ),
            effects="stateful",
        )
        g.connect("R", "ERa")
        self._attach_merge(g, "ERa")
        eff = self._negotiate(
            g, {"R->ERa": "read", self.merge_stream("R-ERa-M"): "merge"}
        )
        g.filters["R"].sim_factory = lambda: sim.ReadSourceModel(
            self.profile, self.storage, self.timestep, self.costs, eff
        )
        g.filters["ERa"].sim_factory = lambda: sim.ExtractRasterModel(
            self.costs,
            eff,
            self.width,
            self.height,
            self.algorithm,
            tile_map=self.tile_map(),
        )
        self._bind_merge(g)
        return g

    def _graph_rera_m(self) -> FilterGraph:
        g = FilterGraph()
        g.add_filter(
            "RERa",
            factory=self._real_or_none(
                lambda: real.ReadExtractRasterFilter(
                    self._require_dataset(),
                    self.storage,
                    self.timestep,
                    self.isovalue,
                    self.camera(),
                    self.algorithm,
                    tile_map=self.tile_map(),
                )
            ),
            is_source=True,
            effects="io",
        )
        self._attach_merge(g, "RERa")
        eff = self._negotiate(g, {self.merge_stream("RERa-M"): "merge"})
        g.filters["RERa"].sim_factory = lambda: sim.ReadExtractRasterSourceModel(
            self.profile,
            self.storage,
            self.timestep,
            self.costs,
            eff,
            self.width,
            self.height,
            self.algorithm,
            tile_map=self.tile_map(),
        )
        self._bind_merge(g)
        return g

    # -- placement helpers -------------------------------------------------------
    def placement(
        self,
        configuration: str,
        compute_hosts: list[str] | None = None,
        merge_host: str | None = None,
        copies_per_host: int | dict[str, int] = 1,
        merge_hosts: list[str] | None = None,
    ) -> Placement:
        """A standard placement for ``configuration``.

        Source filters go on every host holding data (one copy per host by
        default); non-source worker filters spread over ``compute_hosts``
        (default: the data hosts); Merge runs once on ``merge_host``
        (default: the first compute host).  ``copies_per_host`` may be an
        int or a per-host dict and applies to the worker filters.

        With ``merge_copies > 1`` the tile-merge filter runs as
        ``merge_copies`` single-copy sets, one per owner index *in order*
        (the ``TileRouted`` routing invariant), on ``merge_hosts`` when
        given, else on the first compute hosts (padded with synthesized
        ``host:mN`` labels on a single-host testbed); the gather keeps the
        classic single-copy placement on ``merge_host``.
        """
        graph = self.graph(configuration)
        data_hosts = self.storage.hosts()
        if not data_hosts:
            raise ConfigurationError("storage map is empty")
        compute_hosts = list(compute_hosts or data_hosts)
        merge_host = merge_host or compute_hosts[0]
        placement = Placement()
        for spec in graph.filters.values():
            if spec.is_source:
                placement.spread(spec.name, data_hosts)
            elif spec.name == "TM":
                placement.place("TM", self._merge_copy_hosts(
                    compute_hosts, merge_host, merge_hosts
                ))
            elif spec.name == "M":
                placement.place("M", [merge_host])
            else:
                if isinstance(copies_per_host, dict):
                    placement.place(
                        spec.name,
                        [(h, copies_per_host.get(h, 1)) for h in compute_hosts],
                    )
                else:
                    placement.spread(
                        spec.name, compute_hosts, copies_per_host=copies_per_host
                    )
        return placement

    def _merge_copy_hosts(
        self,
        compute_hosts: list[str],
        merge_host: str,
        merge_hosts: list[str] | None,
    ) -> list[str]:
        """One distinct host label per tile-merge copy, in owner order."""
        if merge_hosts is not None:
            if len(merge_hosts) != self.merge_copies:
                raise ConfigurationError(
                    f"merge_hosts must list exactly merge_copies="
                    f"{self.merge_copies} hosts, got {len(merge_hosts)}"
                )
            return list(merge_hosts)
        hosts = list(compute_hosts[: self.merge_copies])
        # Each copy must be its own copy set (copies sharing a host share
        # one queue, breaking owner routing) — pad with virtual labels
        # when the testbed has fewer hosts than merge copies.
        index = 0
        while len(hosts) < self.merge_copies:
            label = f"{merge_host}:m{index}"
            if label not in hosts:
                hosts.append(label)
            index += 1
        return hosts
