"""Isosurface application builder: filter graphs for every configuration.

:class:`IsosurfaceApp` assembles the paper's four decompositions
(Figure 2b / Figure 3) as :class:`~repro.core.graph.FilterGraph` objects:

- ``R-E-Ra-M``  — all four filters separate (baseline, Tables 1-2);
- ``RE-Ra-M``   — read+extract combined (the usual best performer);
- ``R-ERa-M``   — extract+raster combined (decouples retrieval);
- ``RERa-M``    — everything but merge combined (SPMD-like).

Each graph carries *simulated* factories (cost models over a
:class:`~repro.viz.profile.DatasetProfile`) and, when a real
:class:`~repro.data.parssim.ParSSimDataset` is supplied, *real* factories
too — so the same graph runs on either engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.graph import FilterGraph
from repro.core.negotiate import declare_bounds, negotiate
from repro.core.placement import Placement
from repro.data.storage import StorageMap
from repro.errors import ConfigurationError
from repro.viz import filters as real
from repro.viz import models as sim
from repro.viz.camera import Camera
from repro.viz.models import BufferSizes, CostParams
from repro.viz.profile import DatasetProfile

__all__ = ["IsosurfaceApp", "CONFIGURATIONS"]

CONFIGURATIONS = ("R-E-Ra-M", "RE-Ra-M", "R-ERa-M", "RERa-M")


@dataclass
class IsosurfaceApp:
    """One rendering scenario: dataset + storage + view + algorithm.

    Parameters
    ----------
    profile:
        Dataset description for the simulated engine.
    storage:
        File -> (host, disk) placement; source filters read from it.
    width / height:
        Output image size (the paper uses 512^2 and 2048^2).
    algorithm:
        ``"zbuffer"`` or ``"active"``.
    timestep:
        Which stored timestep to render.
    costs / buffers:
        Cost-model calibration and stream buffer sizes.
    dataset / isovalue:
        Optional real dataset enabling threaded execution: any object with
        ``chunk_field(chunk, timestep, species)`` — the synthetic
        generators or an on-disk :class:`~repro.data.diskstore.
        DeclusteredStore`.  ``isovalue`` is the rendered surface level.
    """

    profile: DatasetProfile
    storage: StorageMap
    width: int = 2048
    height: int = 2048
    algorithm: str = "active"
    timestep: int = 0
    costs: CostParams = field(default_factory=CostParams)
    buffers: BufferSizes = field(default_factory=BufferSizes)
    #: any chunk_field(chunk, t, s) provider; typed loosely on purpose
    dataset: object | None = None
    isovalue: float = 0.5
    #: Optional explicit camera (e.g. an animation frame's viewpoint);
    #: ``None`` means a default camera framing the whole grid.
    view: Camera | None = None

    def __post_init__(self) -> None:
        if self.algorithm not in ("zbuffer", "active"):
            raise ConfigurationError(
                f"algorithm must be 'zbuffer' or 'active', got {self.algorithm!r}"
            )
        if not 0 <= self.timestep < self.profile.timesteps:
            raise ConfigurationError(
                f"timestep {self.timestep} outside [0, {self.profile.timesteps})"
            )

    # -- real-mode helpers -------------------------------------------------
    def camera(self) -> Camera:
        """The rendering camera: ``view`` if given, else a fitted default."""
        if self.view is not None:
            return self.view
        return Camera.fit_grid(
            self.profile.grid_shape, width=self.width, height=self.height
        )

    def _require_dataset(self):
        if self.dataset is None:
            raise ConfigurationError(
                "real factories need a dataset (a chunk_field provider); "
                "this app is simulation-only"
            )
        return self.dataset

    # -- graph builders ------------------------------------------------------
    def graph(self, configuration: str) -> FilterGraph:
        """Build the filter graph for one of :data:`CONFIGURATIONS`."""
        if configuration not in CONFIGURATIONS:
            raise ConfigurationError(
                f"unknown configuration {configuration!r}; "
                f"choose from {CONFIGURATIONS}"
            )
        builder = {
            "R-E-Ra-M": self._graph_r_e_ra_m,
            "RE-Ra-M": self._graph_re_ra_m,
            "R-ERa-M": self._graph_r_era_m,
            "RERa-M": self._graph_rera_m,
        }[configuration]
        return builder()

    def _merge_factories(self):
        sim_factory = lambda: sim.MergeModel(  # noqa: E731
            self.costs, self.algorithm, self.width, self.height
        )
        if self.algorithm == "zbuffer":
            real_factory = lambda: real.MergeZFilter(self.width, self.height)  # noqa: E731
        else:
            real_factory = lambda: real.MergeAPFilter(self.width, self.height)  # noqa: E731
        return real_factory, sim_factory

    def _raster_factories(self, buffers: BufferSizes):
        if self.algorithm == "zbuffer":
            sim_factory = lambda: sim.RasterZBModel(  # noqa: E731
                self.costs, buffers, self.width, self.height
            )
            real_factory = lambda: real.RasterZFilter(self.camera())  # noqa: E731
        else:
            sim_factory = lambda: sim.RasterAPModel(  # noqa: E731
                self.costs, buffers, self.width, self.height
            )
            real_factory = lambda: real.RasterAPFilter(self.camera())  # noqa: E731
        return real_factory, sim_factory

    def _real_or_none(self, factory):
        return factory if self.dataset is not None else None

    #: protocol floor every producer discloses as its minimum buffer size
    _MIN_BUFFER = 16 * 1024

    def _negotiate(self, graph: FilterGraph, roles: dict[str, str]) -> BufferSizes:
        """Run the paper's buffer-size negotiation over ``graph``.

        ``roles`` maps each stream to the buffer knob it carries (``read``/
        ``triangles``/``merge``).  Producers disclose a protocol-floor
        minimum; consumers disclose this app's requested size as their
        minimum; the z-buffer raster pins its merge stream to fixed slabs
        (min == max).  The negotiated sizes feed the simulated models.
        """
        merge_size = (
            self.buffers.zbuffer_slab
            if self.algorithm == "zbuffer"
            else self.buffers.wpa
        )
        requested = {
            "read": self.buffers.read,
            "triangles": self.buffers.triangles,
            "merge": merge_size,
        }
        for stream, role in roles.items():
            spec = graph.streams[stream]
            want = requested[role]
            if role == "merge" and self.algorithm == "zbuffer":
                # Fixed-size slabs: the raster serialises the whole buffer.
                declare_bounds(graph, spec.src, stream, want, want)
            else:
                declare_bounds(graph, spec.src, stream, self._MIN_BUFFER)
            declare_bounds(graph, spec.dst, stream, want)
        sizes = negotiate(graph, default=self._MIN_BUFFER)
        by_role = {roles[stream]: size for stream, size in sizes.items()}
        return BufferSizes(
            read=by_role.get("read", self.buffers.read),
            triangles=by_role.get("triangles", self.buffers.triangles),
            zbuffer_slab=(
                by_role["merge"]
                if self.algorithm == "zbuffer" and "merge" in by_role
                else self.buffers.zbuffer_slab
            ),
            wpa=(
                by_role["merge"]
                if self.algorithm == "active" and "merge" in by_role
                else self.buffers.wpa
            ),
        )

    def _graph_r_e_ra_m(self) -> FilterGraph:
        g = FilterGraph()
        g.add_filter(
            "R",
            factory=self._real_or_none(
                lambda: real.ReadFilter(
                    self._require_dataset(), self.storage, self.timestep
                )
            ),
            is_source=True,
        )
        g.add_filter(
            "E",
            factory=self._real_or_none(lambda: real.ExtractFilter(self.isovalue)),
        )
        g.add_filter("Ra")
        g.add_filter(
            # The z-buffer merge is a phase-synchronised accumulator: it
            # only emits at the end-of-work phase boundary (verifier Z401).
            "M",
            phase_synchronised=self.algorithm == "zbuffer",
        )
        g.connect("R", "E")
        g.connect("E", "Ra")
        g.connect("Ra", "M")
        eff = self._negotiate(
            g, {"R->E": "read", "E->Ra": "triangles", "Ra->M": "merge"}
        )
        g.filters["R"].sim_factory = lambda: sim.ReadSourceModel(
            self.profile, self.storage, self.timestep, self.costs, eff
        )
        g.filters["E"].sim_factory = lambda: sim.ExtractModel(self.costs, eff)
        real_ra, sim_ra = self._raster_factories(eff)
        g.filters["Ra"].factory = self._real_or_none(real_ra)
        g.filters["Ra"].sim_factory = sim_ra
        real_m, sim_m = self._merge_factories()
        g.filters["M"].factory = self._real_or_none(real_m)
        g.filters["M"].sim_factory = sim_m
        return g

    def _graph_re_ra_m(self) -> FilterGraph:
        g = FilterGraph()
        g.add_filter(
            "RE",
            factory=self._real_or_none(
                lambda: real.ReadExtractFilter(
                    self._require_dataset(),
                    self.storage,
                    self.timestep,
                    self.isovalue,
                )
            ),
            is_source=True,
        )
        g.add_filter("Ra")
        g.add_filter(
            # The z-buffer merge is a phase-synchronised accumulator: it
            # only emits at the end-of-work phase boundary (verifier Z401).
            "M",
            phase_synchronised=self.algorithm == "zbuffer",
        )
        g.connect("RE", "Ra")
        g.connect("Ra", "M")
        eff = self._negotiate(g, {"RE->Ra": "triangles", "Ra->M": "merge"})
        g.filters["RE"].sim_factory = lambda: sim.ReadExtractSourceModel(
            self.profile, self.storage, self.timestep, self.costs, eff
        )
        real_ra, sim_ra = self._raster_factories(eff)
        g.filters["Ra"].factory = self._real_or_none(real_ra)
        g.filters["Ra"].sim_factory = sim_ra
        real_m, sim_m = self._merge_factories()
        g.filters["M"].factory = self._real_or_none(real_m)
        g.filters["M"].sim_factory = sim_m
        return g

    def _graph_r_era_m(self) -> FilterGraph:
        g = FilterGraph()
        g.add_filter(
            "R",
            factory=self._real_or_none(
                lambda: real.ReadFilter(
                    self._require_dataset(), self.storage, self.timestep
                )
            ),
            is_source=True,
        )
        g.add_filter(
            "ERa",
            factory=self._real_or_none(
                lambda: real.ExtractRasterFilter(
                    self.isovalue, self.camera(), self.algorithm
                )
            ),
        )
        g.add_filter(
            # The z-buffer merge is a phase-synchronised accumulator: it
            # only emits at the end-of-work phase boundary (verifier Z401).
            "M",
            phase_synchronised=self.algorithm == "zbuffer",
        )
        g.connect("R", "ERa")
        g.connect("ERa", "M")
        eff = self._negotiate(g, {"R->ERa": "read", "ERa->M": "merge"})
        g.filters["R"].sim_factory = lambda: sim.ReadSourceModel(
            self.profile, self.storage, self.timestep, self.costs, eff
        )
        g.filters["ERa"].sim_factory = lambda: sim.ExtractRasterModel(
            self.costs, eff, self.width, self.height, self.algorithm
        )
        real_m, sim_m = self._merge_factories()
        g.filters["M"].factory = self._real_or_none(real_m)
        g.filters["M"].sim_factory = sim_m
        return g

    def _graph_rera_m(self) -> FilterGraph:
        g = FilterGraph()
        g.add_filter(
            "RERa",
            factory=self._real_or_none(
                lambda: real.ReadExtractRasterFilter(
                    self._require_dataset(),
                    self.storage,
                    self.timestep,
                    self.isovalue,
                    self.camera(),
                    self.algorithm,
                )
            ),
            is_source=True,
        )
        g.add_filter(
            # The z-buffer merge is a phase-synchronised accumulator: it
            # only emits at the end-of-work phase boundary (verifier Z401).
            "M",
            phase_synchronised=self.algorithm == "zbuffer",
        )
        g.connect("RERa", "M")
        eff = self._negotiate(g, {"RERa->M": "merge"})
        g.filters["RERa"].sim_factory = lambda: sim.ReadExtractRasterSourceModel(
            self.profile,
            self.storage,
            self.timestep,
            self.costs,
            eff,
            self.width,
            self.height,
            self.algorithm,
        )
        real_m, sim_m = self._merge_factories()
        g.filters["M"].factory = self._real_or_none(real_m)
        g.filters["M"].sim_factory = sim_m
        return g

    # -- placement helpers -------------------------------------------------------
    def placement(
        self,
        configuration: str,
        compute_hosts: list[str] | None = None,
        merge_host: str | None = None,
        copies_per_host: int | dict[str, int] = 1,
    ) -> Placement:
        """A standard placement for ``configuration``.

        Source filters go on every host holding data (one copy per host by
        default); non-source worker filters spread over ``compute_hosts``
        (default: the data hosts); Merge runs once on ``merge_host``
        (default: the first compute host).  ``copies_per_host`` may be an
        int or a per-host dict and applies to the worker filters.
        """
        graph = self.graph(configuration)
        data_hosts = self.storage.hosts()
        if not data_hosts:
            raise ConfigurationError("storage map is empty")
        compute_hosts = list(compute_hosts or data_hosts)
        merge_host = merge_host or compute_hosts[0]
        placement = Placement()
        for spec in graph.filters.values():
            if spec.is_source:
                placement.spread(spec.name, data_hosts)
            elif spec.name == "M":
                placement.place("M", [merge_host])
            else:
                if isinstance(copies_per_host, dict):
                    placement.place(
                        spec.name,
                        [(h, copies_per_host.get(h, 1)) for h in compute_hosts],
                    )
                else:
                    placement.spread(
                        spec.name, compute_hosts, copies_per_host=copies_per_host
                    )
        return placement
