"""Isosurface-rendering application: real filters, simulated cost models,
and the configuration builders used by every experiment."""

from repro.viz.active_pixel import (
    WPA_ENTRY_BYTES,
    ActivePixelMerger,
    ActivePixelRaster,
    WPABuffer,
)
from repro.viz.app import CONFIGURATIONS, IsosurfaceApp
from repro.viz.camera import Camera
from repro.viz.marching_cubes import extract_triangles, triangle_count
from repro.viz.models import BufferSizes, CostParams
from repro.viz.profile import DatasetProfile, dataset_1p5gb, dataset_25gb
from repro.viz.raster import ZBUFFER_ENTRY_BYTES, ZBuffer, ZBufferSlab, triangle_fragments
from repro.viz.shading import shade_triangles, triangle_normals
from repro.viz.tiled import TileGatherFilter, TileImage, TileMergeFilter, TileSlab

__all__ = [
    "ActivePixelMerger",
    "ActivePixelRaster",
    "BufferSizes",
    "CONFIGURATIONS",
    "Camera",
    "CostParams",
    "DatasetProfile",
    "IsosurfaceApp",
    "TileGatherFilter",
    "TileImage",
    "TileMergeFilter",
    "TileSlab",
    "WPABuffer",
    "WPA_ENTRY_BYTES",
    "ZBUFFER_ENTRY_BYTES",
    "ZBuffer",
    "ZBufferSlab",
    "dataset_1p5gb",
    "dataset_25gb",
    "extract_triangles",
    "shade_triangles",
    "triangle_count",
    "triangle_fragments",
    "triangle_normals",
]
