"""Rasterisation: fragment generation and the classic z-buffer.

``triangle_fragments`` turns one screen-space triangle into covered pixels
with interpolated depth (barycentric, pixel-centre sampling, clipped to the
viewport); it is the *reference* kernel.  ``rasterize_triangles`` is the
batched production kernel: it processes whole triangle soups per call by
bucketing triangles with equal clipped-bounding-box shapes into stacked
grids, and emits exactly the fragments the reference emits, in the same
order.  :class:`ZBuffer` is the paper's first hidden-surface-removal
method: a dense per-pixel (depth, colour) array, filled during the local
rendering phase and shipped wholesale to the Merge filter at end-of-work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["triangle_fragments", "rasterize_triangles", "ZBuffer", "ZBufferSlab"]

#: Bytes per z-buffer pixel on the wire: float32 depth + RGBX.
ZBUFFER_ENTRY_BYTES = 8


def triangle_fragments(
    tri: np.ndarray, width: int, height: int
) -> tuple[np.ndarray, np.ndarray]:
    """Rasterise one screen-space triangle.

    Parameters
    ----------
    tri:
        (3, 3) array; per vertex (pixel x, pixel y, depth).
    width, height:
        Viewport bounds; fragments outside are clipped.

    Returns
    -------
    (pixels, depth): flat pixel indices (``y * width + x``) and their
    interpolated depths.  Fragments with non-positive depth (behind the
    camera) are dropped.
    """
    xs, ys, zs = tri[:, 0], tri[:, 1], tri[:, 2]
    x0 = max(0, int(np.floor(xs.min())))
    x1 = min(width - 1, int(np.ceil(xs.max())))
    y0 = max(0, int(np.floor(ys.min())))
    y1 = min(height - 1, int(np.ceil(ys.max())))
    if x0 > x1 or y0 > y1:
        return _EMPTY_FRAGS
    denom = (ys[1] - ys[2]) * (xs[0] - xs[2]) + (xs[2] - xs[1]) * (ys[0] - ys[2])
    if abs(denom) < 1e-12:
        return _EMPTY_FRAGS  # degenerate (zero-area) triangle
    px = np.arange(x0, x1 + 1, dtype=np.float64) + 0.5
    py = np.arange(y0, y1 + 1, dtype=np.float64) + 0.5
    gx, gy = np.meshgrid(px, py)
    w0 = ((ys[1] - ys[2]) * (gx - xs[2]) + (xs[2] - xs[1]) * (gy - ys[2])) / denom
    w1 = ((ys[2] - ys[0]) * (gx - xs[2]) + (xs[0] - xs[2]) * (gy - ys[2])) / denom
    w2 = 1.0 - w0 - w1
    inside = (w0 >= 0) & (w1 >= 0) & (w2 >= 0)
    if not inside.any():
        return _EMPTY_FRAGS
    depth = w0 * zs[0] + w1 * zs[1] + w2 * zs[2]
    inside &= depth > 0
    iy, ix = np.nonzero(inside)
    pixels = (iy + y0) * width + (ix + x0)
    return pixels.astype(np.int64), depth[inside]


_EMPTY_FRAGS = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))


def rasterize_triangles(
    tris: np.ndarray, width: int, height: int, *, max_cells: int = 1 << 20
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rasterise a batch of screen-space triangles in bucketed grid stacks.

    Produces bit-identical fragments to calling :func:`triangle_fragments`
    per triangle: the coefficient arithmetic runs in the input dtype and the
    grid arithmetic in float64, exactly as the reference does, and fragments
    keep the reference's order (triangle by triangle, row-major within each
    triangle's bounding box).  Triangles whose clipped bounding boxes have
    equal shape are stacked into one (G, bh, bw) barycentric evaluation, so
    a soup of thousands of small triangles costs a handful of NumPy passes
    instead of thousands of per-triangle calls.

    Parameters
    ----------
    tris:
        (N, 3, 3) array; per triangle, per vertex (pixel x, pixel y, depth).
    width, height:
        Viewport bounds; fragments outside are clipped.
    max_cells:
        Cap on grid cells evaluated per stacked pass (memory bound; groups
        larger than this are chunked).

    Returns
    -------
    (pixels, depth, counts): flat pixel indices (``y * width + x``) and
    interpolated depths of every fragment, concatenated in triangle order,
    plus the per-triangle fragment count (``counts.sum() == len(pixels)``).
    Degenerate, fully clipped, and behind-camera cases contribute zero
    fragments, matching the reference.
    """
    tris = np.asarray(tris)
    if tris.ndim != 3 or tris.shape[1:] != (3, 3):
        raise ConfigurationError(
            f"expected (N, 3, 3) triangle array, got shape {tris.shape}"
        )
    n = len(tris)
    counts = np.zeros(n, dtype=np.int64)
    if n == 0:
        return _EMPTY_FRAGS[0], _EMPTY_FRAGS[1], counts
    xs, ys, zs = tris[:, :, 0], tris[:, :, 1], tris[:, :, 2]
    # Clamp in float space before the integer cast so far-off-viewport
    # coordinates cannot overflow int64; the clip bounds leave every
    # empty-box comparison (x0 > x1 / y0 > y1) with its reference outcome.
    x0 = np.clip(np.floor(xs.min(axis=1)), 0, width).astype(np.int64)
    x1 = np.clip(np.ceil(xs.max(axis=1)), -1, width - 1).astype(np.int64)
    y0 = np.clip(np.floor(ys.min(axis=1)), 0, height).astype(np.int64)
    y1 = np.clip(np.ceil(ys.max(axis=1)), -1, height - 1).astype(np.int64)
    # Coefficients in the *input* dtype, like the reference's scalar maths;
    # they promote to float64 only when they meet the pixel-centre grids.
    a0 = ys[:, 1] - ys[:, 2]
    b0 = xs[:, 2] - xs[:, 1]
    a1 = ys[:, 2] - ys[:, 0]
    b1 = xs[:, 0] - xs[:, 2]
    denom = a0 * (xs[:, 0] - xs[:, 2]) + b0 * (ys[:, 0] - ys[:, 2])
    alive = (x0 <= x1) & (y0 <= y1) & ~(np.abs(denom) < 1e-12)
    if not alive.any():
        return _EMPTY_FRAGS[0], _EMPTY_FRAGS[1], counts
    a0_64, b0_64 = a0.astype(np.float64), b0.astype(np.float64)
    a1_64, b1_64 = a1.astype(np.float64), b1.astype(np.float64)
    den64 = denom.astype(np.float64)
    x2_64, y2_64 = xs[:, 2].astype(np.float64), ys[:, 2].astype(np.float64)
    z64 = zs.astype(np.float64)
    x0f, y0f = x0.astype(np.float64), y0.astype(np.float64)

    groups: dict[tuple[int, int], list[int]] = {}
    for i in np.nonzero(alive)[0]:
        groups.setdefault((int(y1[i] - y0[i] + 1), int(x1[i] - x0[i] + 1)), []).append(
            int(i)
        )

    frag_tri: list[np.ndarray] = []
    frag_pix: list[np.ndarray] = []
    frag_dep: list[np.ndarray] = []
    for (bh, bw), members in groups.items():
        cells = bh * bw
        step = max(1, max_cells // cells)
        offx = (np.arange(bw, dtype=np.float64) + 0.5)[None, None, :]
        offy = (np.arange(bh, dtype=np.float64) + 0.5)[None, :, None]
        for lo in range(0, len(members), step):
            m = np.array(members[lo : lo + step], dtype=np.int64)
            # Pixel-centre grids: integer x0 plus exact half-integers —
            # bit-equal to the reference's arange(x0, x1 + 1) + 0.5.
            dx = (x0f[m][:, None, None] + offx) - x2_64[m][:, None, None]
            dy = (y0f[m][:, None, None] + offy) - y2_64[m][:, None, None]
            dn = den64[m][:, None, None]
            w0 = (a0_64[m][:, None, None] * dx + b0_64[m][:, None, None] * dy) / dn
            w1 = (a1_64[m][:, None, None] * dx + b1_64[m][:, None, None] * dy) / dn
            w2 = 1.0 - w0 - w1
            inside = (w0 >= 0) & (w1 >= 0) & (w2 >= 0)
            depth = (
                w0 * z64[m, 0][:, None, None]
                + w1 * z64[m, 1][:, None, None]
                + w2 * z64[m, 2][:, None, None]
            )
            inside &= depth > 0
            g, iy, ix = np.nonzero(inside)
            if not g.size:
                continue
            frag_tri.append(m[g])
            frag_pix.append((iy + y0[m][g]) * width + (ix + x0[m][g]))
            frag_dep.append(depth[inside])
    if not frag_tri:
        return _EMPTY_FRAGS[0], _EMPTY_FRAGS[1], counts
    tri = np.concatenate(frag_tri)
    pixels = np.concatenate(frag_pix)
    depth = np.concatenate(frag_dep)
    # Bucket processing visits triangles out of order; a stable sort on the
    # triangle index restores reference order end to end (within a triangle
    # each bucket already emitted row-major).
    order = np.argsort(tri, kind="stable")
    counts = np.bincount(tri, minlength=n).astype(np.int64)
    return pixels[order], depth[order], counts


@dataclass
class ZBufferSlab:
    """A contiguous z-buffer range on the wire (one merge-stream buffer)."""

    start: int  # first flat pixel index
    depth: np.ndarray  # (n,) float32
    color: np.ndarray  # (n, 3) uint8

    @property
    def nbytes(self) -> int:
        """Wire size: one entry per pixel regardless of activity."""
        return len(self.depth) * ZBUFFER_ENTRY_BYTES


class ZBuffer:
    """Dense per-pixel hidden-surface removal (paper Section 3.1.2).

    The (depth, colour) pair at each pixel holds the foremost fragment seen
    so far; ``merge`` combines buffers from transparent raster copies.
    """

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ConfigurationError("z-buffer dimensions must be >= 1")
        self.width = width
        self.height = height
        self.depth = np.full(width * height, np.inf, dtype=np.float32)
        self.color = np.zeros((width * height, 3), dtype=np.uint8)
        self.fragments_tested = 0
        self.fragments_won = 0

    @property
    def total_bytes(self) -> int:
        """Wire size of the full buffer."""
        return self.width * self.height * ZBUFFER_ENTRY_BYTES

    def rasterize(self, triangles: np.ndarray, colors: np.ndarray) -> None:
        """Rasterise screen-space triangles (N, 3, 3) with (N, 3) colours.

        Fragments come from the batched :func:`rasterize_triangles` kernel
        and are reduced per pixel in one pass: the foremost fragment of the
        call (float64 depth, lowest triangle index on exact ties — the
        sequential loop's first-writer-wins) is depth-tested against the
        buffer.  This matches processing the triangles one by one except
        when two fragments' depths differ by less than one float32 ulp,
        where the old loop's intermediate float32 stores could keep either;
        ``fragments_won`` counts pixels improved per call rather than every
        intermediate overwrite.
        """
        triangles = np.asarray(triangles)
        if triangles.size == 0:
            return
        if len(colors) != len(triangles):
            raise ConfigurationError("one colour per triangle required")
        pixels, depth, counts = rasterize_triangles(
            triangles, self.width, self.height
        )
        if pixels.size == 0:
            return
        self.fragments_tested += pixels.size
        tri_idx = np.repeat(np.arange(len(counts)), counts)
        order = np.lexsort((tri_idx, depth, pixels))
        sorted_pix = pixels[order]
        first = np.empty(len(sorted_pix), dtype=bool)
        first[0] = True
        np.not_equal(sorted_pix[1:], sorted_pix[:-1], out=first[1:])
        cand = order[first]
        cand_pix = pixels[cand]
        cand_depth = depth[cand]
        wins = cand_depth < self.depth[cand_pix]
        if wins.any():
            won = cand_pix[wins]
            self.depth[won] = cand_depth[wins]
            self.color[won] = np.asarray(colors)[tri_idx[cand[wins]]]
            self.fragments_won += int(wins.sum())

    def merge_entries(
        self, pixels: np.ndarray, depth: np.ndarray, color: np.ndarray
    ) -> None:
        """Depth-test sparse entries (unique pixel indices) into the buffer."""
        wins = depth < self.depth[pixels]
        if wins.any():
            won = pixels[wins]
            self.depth[won] = depth[wins]
            self.color[won] = color[wins]

    def merge_slab(self, slab: ZBufferSlab) -> None:
        """Depth-merge a contiguous slab (z-buffer pixel-merging phase)."""
        sl = slice(slab.start, slab.start + len(slab.depth))
        wins = slab.depth < self.depth[sl]
        if wins.any():
            self.depth[sl][wins] = slab.depth[wins]
            self.color[sl][wins] = slab.color[wins]

    def merge(self, other: "ZBuffer") -> None:
        """Depth-merge another full z-buffer of the same size."""
        if (other.width, other.height) != (self.width, self.height):
            raise ConfigurationError("z-buffer size mismatch")
        wins = other.depth < self.depth
        self.depth[wins] = other.depth[wins]
        self.color[wins] = other.color[wins]

    def slabs(self, entries_per_buffer: int) -> list[ZBufferSlab]:
        """Serialise the whole buffer into fixed-size contiguous slabs.

        This is what a z-buffer raster copy sends at end-of-work: *every*
        pixel, active or not (the paper notes the resulting communication
        overhead).
        """
        if entries_per_buffer < 1:
            raise ConfigurationError("entries_per_buffer must be >= 1")
        out = []
        total = self.width * self.height
        for start in range(0, total, entries_per_buffer):
            stop = min(start + entries_per_buffer, total)
            out.append(
                ZBufferSlab(
                    start,
                    self.depth[start:stop].copy(),
                    self.color[start:stop].copy(),
                )
            )
        return out

    def active_pixels(self) -> int:
        """Pixels with at least one fragment written."""
        return int(np.isfinite(self.depth).sum())

    def image(self) -> np.ndarray:
        """The colour image, (height, width, 3) uint8."""
        return self.color.reshape(self.height, self.width, 3)
