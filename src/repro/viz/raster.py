"""Rasterisation: fragment generation and the classic z-buffer.

``triangle_fragments`` turns one screen-space triangle into covered pixels
with interpolated depth (barycentric, pixel-centre sampling, clipped to the
viewport).  :class:`ZBuffer` is the paper's first hidden-surface-removal
method: a dense per-pixel (depth, colour) array, filled during the local
rendering phase and shipped wholesale to the Merge filter at end-of-work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["triangle_fragments", "ZBuffer", "ZBufferSlab"]

#: Bytes per z-buffer pixel on the wire: float32 depth + RGBX.
ZBUFFER_ENTRY_BYTES = 8


def triangle_fragments(
    tri: np.ndarray, width: int, height: int
) -> tuple[np.ndarray, np.ndarray]:
    """Rasterise one screen-space triangle.

    Parameters
    ----------
    tri:
        (3, 3) array; per vertex (pixel x, pixel y, depth).
    width, height:
        Viewport bounds; fragments outside are clipped.

    Returns
    -------
    (pixels, depth): flat pixel indices (``y * width + x``) and their
    interpolated depths.  Fragments with non-positive depth (behind the
    camera) are dropped.
    """
    xs, ys, zs = tri[:, 0], tri[:, 1], tri[:, 2]
    x0 = max(0, int(np.floor(xs.min())))
    x1 = min(width - 1, int(np.ceil(xs.max())))
    y0 = max(0, int(np.floor(ys.min())))
    y1 = min(height - 1, int(np.ceil(ys.max())))
    if x0 > x1 or y0 > y1:
        return _EMPTY_FRAGS
    denom = (ys[1] - ys[2]) * (xs[0] - xs[2]) + (xs[2] - xs[1]) * (ys[0] - ys[2])
    if abs(denom) < 1e-12:
        return _EMPTY_FRAGS  # degenerate (zero-area) triangle
    px = np.arange(x0, x1 + 1, dtype=np.float64) + 0.5
    py = np.arange(y0, y1 + 1, dtype=np.float64) + 0.5
    gx, gy = np.meshgrid(px, py)
    w0 = ((ys[1] - ys[2]) * (gx - xs[2]) + (xs[2] - xs[1]) * (gy - ys[2])) / denom
    w1 = ((ys[2] - ys[0]) * (gx - xs[2]) + (xs[0] - xs[2]) * (gy - ys[2])) / denom
    w2 = 1.0 - w0 - w1
    inside = (w0 >= 0) & (w1 >= 0) & (w2 >= 0)
    if not inside.any():
        return _EMPTY_FRAGS
    depth = w0 * zs[0] + w1 * zs[1] + w2 * zs[2]
    inside &= depth > 0
    iy, ix = np.nonzero(inside)
    pixels = (iy + y0) * width + (ix + x0)
    return pixels.astype(np.int64), depth[inside]


_EMPTY_FRAGS = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))


@dataclass
class ZBufferSlab:
    """A contiguous z-buffer range on the wire (one merge-stream buffer)."""

    start: int  # first flat pixel index
    depth: np.ndarray  # (n,) float32
    color: np.ndarray  # (n, 3) uint8

    @property
    def nbytes(self) -> int:
        """Wire size: one entry per pixel regardless of activity."""
        return len(self.depth) * ZBUFFER_ENTRY_BYTES


class ZBuffer:
    """Dense per-pixel hidden-surface removal (paper Section 3.1.2).

    The (depth, colour) pair at each pixel holds the foremost fragment seen
    so far; ``merge`` combines buffers from transparent raster copies.
    """

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ConfigurationError("z-buffer dimensions must be >= 1")
        self.width = width
        self.height = height
        self.depth = np.full(width * height, np.inf, dtype=np.float32)
        self.color = np.zeros((width * height, 3), dtype=np.uint8)
        self.fragments_tested = 0
        self.fragments_won = 0

    @property
    def total_bytes(self) -> int:
        """Wire size of the full buffer."""
        return self.width * self.height * ZBUFFER_ENTRY_BYTES

    def rasterize(self, triangles: np.ndarray, colors: np.ndarray) -> None:
        """Rasterise screen-space triangles (N, 3, 3) with (N, 3) colours."""
        triangles = np.asarray(triangles)
        if triangles.size == 0:
            return
        if len(colors) != len(triangles):
            raise ConfigurationError("one colour per triangle required")
        for tri, rgb in zip(triangles, colors):
            pixels, depth = triangle_fragments(tri, self.width, self.height)
            if pixels.size == 0:
                continue
            self.fragments_tested += pixels.size
            wins = depth < self.depth[pixels]
            if wins.any():
                won = pixels[wins]
                self.depth[won] = depth[wins]
                self.color[won] = rgb
                self.fragments_won += int(wins.sum())

    def merge_entries(
        self, pixels: np.ndarray, depth: np.ndarray, color: np.ndarray
    ) -> None:
        """Depth-test sparse entries (unique pixel indices) into the buffer."""
        wins = depth < self.depth[pixels]
        if wins.any():
            won = pixels[wins]
            self.depth[won] = depth[wins]
            self.color[won] = color[wins]

    def merge_slab(self, slab: ZBufferSlab) -> None:
        """Depth-merge a contiguous slab (z-buffer pixel-merging phase)."""
        sl = slice(slab.start, slab.start + len(slab.depth))
        wins = slab.depth < self.depth[sl]
        if wins.any():
            self.depth[sl][wins] = slab.depth[wins]
            self.color[sl][wins] = slab.color[wins]

    def merge(self, other: "ZBuffer") -> None:
        """Depth-merge another full z-buffer of the same size."""
        if (other.width, other.height) != (self.width, self.height):
            raise ConfigurationError("z-buffer size mismatch")
        wins = other.depth < self.depth
        self.depth[wins] = other.depth[wins]
        self.color[wins] = other.color[wins]

    def slabs(self, entries_per_buffer: int) -> list[ZBufferSlab]:
        """Serialise the whole buffer into fixed-size contiguous slabs.

        This is what a z-buffer raster copy sends at end-of-work: *every*
        pixel, active or not (the paper notes the resulting communication
        overhead).
        """
        if entries_per_buffer < 1:
            raise ConfigurationError("entries_per_buffer must be >= 1")
        out = []
        total = self.width * self.height
        for start in range(0, total, entries_per_buffer):
            stop = min(start + entries_per_buffer, total)
            out.append(
                ZBufferSlab(
                    start,
                    self.depth[start:stop].copy(),
                    self.color[start:stop].copy(),
                )
            )
        return out

    def active_pixels(self) -> int:
        """Pixels with at least one fragment written."""
        return int(np.isfinite(self.depth).sum())

    def image(self) -> np.ndarray:
        """The colour image, (height, width, 3) uint8."""
        return self.color.reshape(self.height, self.width, 3)
