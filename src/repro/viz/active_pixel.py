"""Active pixel rendering: the sparse z-buffer scheme (paper Section 3.1.2).

Two structures implement hidden-surface removal:

- the **Winning Pixel Array (WPA)** stores the foremost pixels seen so far —
  screen position, depth, and colour per entry; WPA contents are shipped to
  the Merge filter in fixed-size buffers;
- the **Modified Scanline Array (MSA)** indexes the WPA by screen position
  so a new fragment can find (and depth-test against) the current winning
  entry for its pixel.

As in the paper, the WPA is emitted *when full or when all triangles of the
current input buffer have been processed*, so rasterisation and merging
pipeline freely — no end-of-work synchronisation.  Because the WPA restarts
after each emission, a pixel can appear in several emitted buffers; the
Merge filter's depth test resolves those duplicates.

Our MSA generalises the per-scanline array to the whole screen (one index
slot per pixel) with generation stamps, so clearing between emissions is
O(1).  The data structure semantics — sparse winning-pixel storage with an
index — are the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.viz.raster import ZBuffer, rasterize_triangles

__all__ = ["WPABuffer", "ActivePixelRaster", "ActivePixelMerger", "WPA_ENTRY_BYTES"]

#: Wire size of one winning-pixel entry: int32 position + float32 depth +
#: RGBX colour.
WPA_ENTRY_BYTES = 12


@dataclass
class WPABuffer:
    """One emitted Winning Pixel Array buffer."""

    pixels: np.ndarray  # (n,) int64 flat screen positions (unique)
    depth: np.ndarray  # (n,) float32
    color: np.ndarray  # (n, 3) uint8

    @property
    def entries(self) -> int:
        """Number of winning-pixel entries."""
        return len(self.pixels)

    @property
    def nbytes(self) -> int:
        """Wire size of this buffer."""
        return self.entries * WPA_ENTRY_BYTES


class ActivePixelRaster:
    """Rasterise triangles into WPA buffers.

    Parameters
    ----------
    width / height:
        Screen size.
    capacity_entries:
        WPA capacity: emission size of a full buffer.
    """

    def __init__(self, width: int, height: int, capacity_entries: int = 5461):
        if width < 1 or height < 1:
            raise ConfigurationError("screen dimensions must be >= 1")
        if capacity_entries < 1:
            raise ConfigurationError("capacity_entries must be >= 1")
        self.width = width
        self.height = height
        self.capacity = capacity_entries
        npix = width * height
        self._msa = np.zeros(npix, dtype=np.int64)  # WPA index per pixel
        self._msa_gen = np.full(npix, -1, dtype=np.int64)
        self._gen = 0
        # Open WPA storage (grows geometrically).
        self._cap = max(1024, capacity_entries)
        self._pix = np.empty(self._cap, dtype=np.int64)
        self._depth = np.empty(self._cap, dtype=np.float32)
        self._color = np.empty((self._cap, 3), dtype=np.uint8)
        self._count = 0
        self.fragments_tested = 0

    def process(self, triangles: np.ndarray, colors: np.ndarray) -> list[WPABuffer]:
        """Rasterise one input buffer's triangles; returns emitted WPA buffers.

        Emits every ``capacity_entries`` full buffer produced while
        processing, plus the final partial buffer — the WPA is always empty
        when this method returns.
        """
        triangles = np.asarray(triangles)
        if triangles.size and len(colors) != len(triangles):
            raise ConfigurationError("one colour per triangle required")
        if triangles.size:
            # Fragments come from the batched kernel (identical values and
            # order to the per-triangle reference); WPA insertion stays per
            # triangle because entry order and colour assignment depend on
            # the triangle sequence.
            pixels, depth, counts = rasterize_triangles(
                triangles, self.width, self.height
            )
            self.fragments_tested += pixels.size
            bounds = np.cumsum(counts)[:-1]
            for pix, dep, rgb in zip(
                np.split(pixels, bounds), np.split(depth, bounds), colors
            ):
                if pix.size:
                    self._add(pix, dep, rgb)
        return self._emit()

    # -- internals -----------------------------------------------------------
    def _add(self, pixels: np.ndarray, depth: np.ndarray, rgb: np.ndarray) -> None:
        """Depth-test fragments of one triangle against the open WPA."""
        valid = self._msa_gen[pixels] == self._gen
        if valid.any():
            vpix = pixels[valid]
            vdep = depth[valid]
            idx = self._msa[vpix]
            wins = vdep < self._depth[idx]
            if wins.any():
                widx = idx[wins]
                self._depth[widx] = vdep[wins]
                self._color[widx] = rgb
        new = ~valid
        if new.any():
            npx = pixels[new]
            ndp = depth[new]
            n = npx.size
            self._ensure(self._count + n)
            sl = slice(self._count, self._count + n)
            self._pix[sl] = npx
            self._depth[sl] = ndp.astype(np.float32)
            self._color[sl] = rgb
            self._msa[npx] = np.arange(self._count, self._count + n)
            self._msa_gen[npx] = self._gen
            self._count += n

    def _ensure(self, needed: int) -> None:
        if needed <= self._cap:
            return
        while self._cap < needed:
            self._cap *= 2
        self._pix = np.resize(self._pix, self._cap)
        self._depth = np.resize(self._depth, self._cap)
        color = np.empty((self._cap, 3), dtype=np.uint8)
        color[: len(self._color)] = self._color
        self._color = color

    def _emit(self) -> list[WPABuffer]:
        """Slice the open WPA into capacity-sized buffers and restart it."""
        out: list[WPABuffer] = []
        for start in range(0, self._count, self.capacity):
            stop = min(start + self.capacity, self._count)
            out.append(
                WPABuffer(
                    self._pix[start:stop].copy(),
                    self._depth[start:stop].copy(),
                    self._color[start:stop].copy(),
                )
            )
        self._count = 0
        self._gen += 1
        return out


class ActivePixelMerger:
    """Merge-side depth compositing of WPA buffers into the final image."""

    def __init__(self, width: int, height: int):
        self._zbuf = ZBuffer(width, height)
        self.buffers_merged = 0
        self.entries_merged = 0

    def merge(self, buffer: WPABuffer) -> None:
        """Depth-test one WPA buffer's entries into the image."""
        self._zbuf.merge_entries(buffer.pixels, buffer.depth, buffer.color)
        self.buffers_merged += 1
        self.entries_merged += buffer.entries

    def image(self) -> np.ndarray:
        """The composited colour image, (height, width, 3) uint8."""
        return self._zbuf.image()

    def active_pixels(self) -> int:
        """Pixels covered by at least one merged entry."""
        return self._zbuf.active_pixels()
