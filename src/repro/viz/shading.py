"""Triangle shading: flat Lambertian lighting for the Raster filter.

The paper's raster filter performs "shading of triangles to produce a
realistic image".  We shade per triangle (flat shading): two-sided
Lambertian illumination from a directional light plus an ambient floor,
modulating a base material colour.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["triangle_normals", "shade_triangles"]


def triangle_normals(triangles: np.ndarray) -> np.ndarray:
    """Unit face normals of world-space triangles (N, 3, 3) -> (N, 3).

    Degenerate triangles get a zero normal (they shade as ambient-only and
    rasterise to nothing).
    """
    tris = np.asarray(triangles, dtype=np.float64)
    if tris.size == 0:
        return np.empty((0, 3), dtype=np.float64)
    e1 = tris[:, 1] - tris[:, 0]
    e2 = tris[:, 2] - tris[:, 0]
    n = np.cross(e1, e2)
    length = np.linalg.norm(n, axis=1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        unit = np.where(length > 1e-20, n / length, 0.0)
    return unit


def shade_triangles(
    triangles: np.ndarray,
    light_direction: tuple[float, float, float] = (0.4, -0.5, 0.8),
    base_color: tuple[int, int, int] = (90, 160, 230),
    ambient: float = 0.25,
) -> np.ndarray:
    """Flat-shade triangles; returns (N, 3) uint8 RGB per triangle.

    Lighting is two-sided (``|n . l|``) so surface orientation does not
    matter — transparent filter copies process triangles in arbitrary
    order and subsets, so shading must not depend on winding conventions.
    """
    if not 0.0 <= ambient <= 1.0:
        raise ConfigurationError(f"ambient must be in [0, 1], got {ambient}")
    light = np.asarray(light_direction, dtype=np.float64)
    norm = np.linalg.norm(light)
    if norm == 0:
        raise ConfigurationError("light direction must be non-zero")
    light /= norm
    normals = triangle_normals(triangles)
    lambert = np.abs(normals @ light)
    intensity = ambient + (1.0 - ambient) * lambert
    base = np.asarray(base_color, dtype=np.float64)
    rgb = np.clip(intensity[:, None] * base[None, :], 0, 255)
    return rgb.astype(np.uint8)
