"""Simulated cost/behaviour models of the isosurface filters.

Each model mirrors one real filter in :mod:`repro.viz.filters`: it prices
per-buffer work in reference core-seconds and emits buffers with the same
counts/sizes the real filter would.  The constants in :class:`CostParams`
are calibrated so that, on a reference (Rogue) node with the 1.5 GB dataset
and a 2048x2048 image, the per-filter totals land near the paper's Table 2
(R 0.7 s, E 1.7 s, Ra ~9-12 s, M ~0.7-0.9 s).

Buffer-flow fidelity (Table 1 semantics):

- Read emits each chunk's voxels in fixed-size buffers;
- Extract emits its output buffer *when full or when the current input
  buffer is fully processed* — so triangle buffers are mostly partial;
- z-buffer Raster emits nothing until end-of-work, then the whole
  ``W*H*8``-byte buffer in fixed slabs;
- active-pixel Raster emits WPA buffers continuously (12 bytes/entry);
- Merge consumes either stream and exposes summary statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.buffer import DataBuffer, chunk_bytes
from repro.core.filter import FilterContext, SimFilter, SimSource, SourceItem
from repro.data.storage import StorageMap
from repro.errors import ConfigurationError
from repro.viz.active_pixel import WPA_ENTRY_BYTES
from repro.viz.filters import TRIANGLE_BYTES
from repro.viz.profile import DatasetProfile
from repro.viz.raster import ZBUFFER_ENTRY_BYTES

__all__ = [
    "CostParams",
    "BufferSizes",
    "ReadSourceModel",
    "ExtractModel",
    "RasterZBModel",
    "RasterAPModel",
    "MergeModel",
    "TileMergeModel",
    "TileGatherModel",
    "ReadExtractSourceModel",
    "ExtractRasterModel",
    "ReadExtractRasterSourceModel",
]


@dataclass(frozen=True)
class CostParams:
    """Calibrated per-unit CPU costs (reference core-seconds)."""

    read_per_byte: float = 2.0e-9
    extract_per_voxel: float = 1.6e-7
    extract_per_triangle: float = 1.0e-6
    raster_per_triangle: float = 2.0e-5
    raster_per_fragment: float = 1.6e-6
    ap_per_entry: float = 9.0e-7
    zb_send_per_byte: float = 5.0e-9
    merge_zb_per_entry: float = 2.1e-7
    merge_ap_per_entry: float = 3.0e-7
    #: average fragments per triangle when rendered at 2048 x 2048
    fragments_per_triangle_2048: float = 10.0
    #: winning-pixel entries per fragment in the active-pixel scheme
    ap_entry_ratio: float = 0.9
    #: per-pixel cost of pasting a composited tile at the gather stage
    gather_per_pixel: float = 3.0e-8

    def fragments_per_triangle(self, width: int, height: int) -> float:
        """Projected fragments per triangle at the given image size."""
        return self.fragments_per_triangle_2048 * (width * height) / float(2048 * 2048)


@dataclass(frozen=True)
class BufferSizes:
    """Fixed stream-buffer sizes (bytes), per the paper's runtime choices."""

    read: int = 88 * 1024
    triangles: int = 64 * 1024
    zbuffer_slab: int = 2 * 1024 * 1024
    wpa: int = 64 * 1024

    def __post_init__(self) -> None:
        for field_name in ("read", "triangles", "zbuffer_slab", "wpa"):
            if getattr(self, field_name) < 1:
                raise ConfigurationError(f"buffer size {field_name} must be >= 1")


def _split_counts(total: int, weights: list[int]) -> list[int]:
    """Split ``total`` items proportionally to ``weights`` (exact sum)."""
    wsum = sum(weights)
    if wsum == 0:
        out = [0] * len(weights)
        if out:
            out[-1] = total
        return out
    out, acc = [], 0
    for w in weights[:-1]:
        share = int(round(total * w / wsum))
        out.append(share)
        acc += share
    out.append(total - acc)
    return out


def _emit_stream_buffers(total_bytes: int, cap: int, **unit_tags) -> list[DataBuffer]:
    """Fixed-size buffers for ``total_bytes`` with proportional unit tags.

    ``unit_tags`` maps tag name -> total units (e.g. triangles); each output
    buffer carries its proportional share.
    """
    sizes = chunk_bytes(total_bytes, cap)
    if not sizes:
        return []
    shares = {
        key: _split_counts(total, [s for s in sizes])
        for key, total in unit_tags.items()
    }
    return [
        DataBuffer(size, tags={key: shares[key][i] for key in shares})
        for i, size in enumerate(sizes)
    ]


def _tag_tiles(buffers: list[DataBuffer], tile) -> list[DataBuffer]:
    """Stamp tile-routing tags onto emitted buffers (in place)."""
    for buffer in buffers:
        buffer.tags["tile"] = tile.index
        buffer.tags["tile_owner"] = tile.owner
    return buffers


def _emit_zb_tiled(cap: int, tile_map) -> list[DataBuffer]:
    """Per-tile dense z-buffer slabs, mirroring the real tile split."""
    out: list[DataBuffer] = []
    for tile in tile_map.tiles:
        out.extend(
            _tag_tiles(
                _emit_stream_buffers(
                    tile.pixels * ZBUFFER_ENTRY_BYTES, cap, entries=tile.pixels
                ),
                tile,
            )
        )
    return out


def _emit_ap_tiled(entries: int, cap: int, tile_map) -> list[DataBuffer]:
    """WPA entries split per tile proportionally to tile area.

    Tiles whose share rounds to zero emit nothing — modelling the real
    behaviour where a tile with no fragments never reaches its owner.
    """
    out: list[DataBuffer] = []
    shares = _split_counts(entries, [t.pixels for t in tile_map.tiles])
    for tile, share in zip(tile_map.tiles, shares):
        if share <= 0:
            continue
        out.extend(
            _tag_tiles(
                _emit_stream_buffers(
                    share * WPA_ENTRY_BYTES, cap, entries=share
                ),
                tile,
            )
        )
    return out


class ReadSourceModel(SimSource):
    """R: read this copy's declustered files, emit voxel buffers.

    Buffers are *packed across chunk boundaries* within a file ("a buffer
    contains a subset of voxels in the dataset"): voxel data accumulates
    until the fixed buffer size is reached, with a partial buffer flushed
    at each file boundary.  This reproduces Table 1's buffer count — at
    full scale, ~39 MB of voxels in 88 KiB buffers is the paper's ~443
    R->E buffers — rather than one buffer per (small) chunk.
    """

    def __init__(
        self,
        profile: DatasetProfile,
        storage: StorageMap,
        timestep: int,
        costs: CostParams,
        buffers: BufferSizes,
    ):
        self.profile = profile
        self.storage = storage
        self.timestep = timestep
        self.costs = costs
        self.buffers = buffers

    def items(self, ctx: FilterContext):
        """Yield this copy's source work items (see SimSource)."""
        cap = self.buffers.read
        files = self.storage.files_on(ctx.host)
        for data_file, disk in files[ctx.copy_index :: ctx.copies_on_host]:
            pend_bytes = pend_voxels = pend_tris = 0
            last = len(data_file.chunks) - 1
            for i, chunk in enumerate(data_file.chunks):
                pend_bytes += chunk.nbytes
                pend_voxels += chunk.points
                pend_tris += self.profile.triangles(self.timestep, chunk.chunk_id)
                outs: list[DataBuffer] = []
                while pend_bytes >= cap:
                    vox = int(round(pend_voxels * cap / pend_bytes))
                    tri = int(round(pend_tris * cap / pend_bytes))
                    outs.append(
                        DataBuffer(cap, tags={"voxels": vox, "triangles": tri})
                    )
                    pend_bytes -= cap
                    pend_voxels -= vox
                    pend_tris -= tri
                if i == last and pend_bytes > 0:
                    # Partial buffer at the file boundary.
                    outs.append(
                        DataBuffer(
                            pend_bytes,
                            tags={"voxels": pend_voxels, "triangles": pend_tris},
                        )
                    )
                    pend_bytes = pend_voxels = pend_tris = 0
                yield SourceItem(
                    read_bytes=chunk.nbytes,
                    disk_index=disk,
                    cpu=chunk.nbytes * self.costs.read_per_byte,
                    sequential=i > 0,
                    outputs=outs,
                )


class ExtractModel(SimFilter):
    """E: marching cubes cost; emits triangle buffers per input buffer."""

    def __init__(self, costs: CostParams, buffers: BufferSizes):
        self.costs = costs
        self.buffers = buffers

    def cost(self, buffer: DataBuffer) -> float:
        """CPU cost of processing ``buffer`` (reference core-seconds)."""
        voxels = buffer.tags.get("voxels", 0)
        tris = buffer.tags.get("triangles", 0)
        return (
            voxels * self.costs.extract_per_voxel
            + tris * self.costs.extract_per_triangle
        )

    def react(self, buffer: DataBuffer):
        """Buffers emitted in response to ``buffer``."""
        tris = buffer.tags.get("triangles", 0)
        return _emit_stream_buffers(
            tris * TRIANGLE_BYTES, self.buffers.triangles, triangles=tris
        )

    def memory_bytes(self) -> int:
        # One input voxel buffer plus one output triangle buffer.
        """Estimated resident memory of one copy."""
        return self.buffers.read + self.buffers.triangles


class _RasterCost:
    """Shared raster arithmetic."""

    def __init__(self, costs: CostParams, width: int, height: int):
        self.costs = costs
        self.width = width
        self.height = height
        self.frag_per_tri = costs.fragments_per_triangle(width, height)

    def triangle_cost(self, tris: int) -> float:
        """Transform + fill cost of ``tris`` triangles."""
        frags = tris * self.frag_per_tri
        return tris * self.costs.raster_per_triangle + frags * self.costs.raster_per_fragment

    def ap_entries(self, tris: int) -> int:
        """Winning-pixel entries generated by ``tris`` triangles."""
        return int(math.ceil(tris * self.frag_per_tri * self.costs.ap_entry_ratio))


class RasterZBModel(SimFilter):
    """Ra (z-buffer): accumulate; flush the whole buffer in fixed slabs."""

    def __init__(
        self,
        costs: CostParams,
        buffers: BufferSizes,
        width: int,
        height: int,
        tile_map=None,
    ):
        self._r = _RasterCost(costs, width, height)
        self.buffers = buffers
        self.costs = costs
        self.tile_map = tile_map

    def cost(self, buffer: DataBuffer) -> float:
        """CPU cost of processing ``buffer`` (reference core-seconds)."""
        return self._r.triangle_cost(buffer.tags.get("triangles", 0))

    def flush_cost(self) -> float:
        """CPU cost of end-of-work processing."""
        return self._zb_bytes() * self.costs.zb_send_per_byte

    def flush_outputs(self):
        """Buffers emitted at end-of-work."""
        if self.tile_map is not None:
            return _emit_zb_tiled(self.buffers.zbuffer_slab, self.tile_map)
        entries = self._r.width * self._r.height
        return _emit_stream_buffers(
            self._zb_bytes(), self.buffers.zbuffer_slab, entries=entries
        )

    def memory_bytes(self) -> int:
        # The full z-buffer accumulator dominates (paper Section 3.1.2).
        """Estimated resident memory of one copy."""
        return self._zb_bytes() + self.buffers.triangles

    def _zb_bytes(self) -> int:
        return self._r.width * self._r.height * ZBUFFER_ENTRY_BYTES


class RasterAPModel(SimFilter):
    """Ra (active pixel): stream WPA buffers as inputs are processed."""

    def __init__(
        self,
        costs: CostParams,
        buffers: BufferSizes,
        width: int,
        height: int,
        tile_map=None,
    ):
        self._r = _RasterCost(costs, width, height)
        self.buffers = buffers
        self.costs = costs
        self.tile_map = tile_map

    def cost(self, buffer: DataBuffer) -> float:
        """CPU cost of processing ``buffer`` (reference core-seconds)."""
        tris = buffer.tags.get("triangles", 0)
        return self._r.triangle_cost(tris) + self._r.ap_entries(tris) * self.costs.ap_per_entry

    def react(self, buffer: DataBuffer):
        """Buffers emitted in response to ``buffer``."""
        entries = self._r.ap_entries(buffer.tags.get("triangles", 0))
        if self.tile_map is not None:
            return _emit_ap_tiled(entries, self.buffers.wpa, self.tile_map)
        return _emit_stream_buffers(
            entries * WPA_ENTRY_BYTES, self.buffers.wpa, entries=entries
        )

    def memory_bytes(self) -> int:
        # One open WPA buffer plus a scanline index (paper: MSA of the
        # screen's x-resolution) — the "better use of system memory".
        """Estimated resident memory of one copy."""
        return self.buffers.wpa + self._r.width * 4 + self.buffers.triangles


class MergeModel(SimFilter):
    """M: depth-composite incoming pixel buffers; exposes run statistics.

    ``width``/``height`` size the merge-side accumulator for memory
    accounting (both algorithms keep a full-screen buffer at the merge).
    """

    def __init__(self, costs: CostParams, algorithm: str, width: int = 0, height: int = 0):
        if algorithm not in ("zbuffer", "active"):
            raise ConfigurationError(
                f"algorithm must be 'zbuffer' or 'active', got {algorithm!r}"
            )
        self.costs = costs
        self.algorithm = algorithm
        self.width = width
        self.height = height
        self.buffers_in = 0
        self.entries_in = 0
        self.bytes_in = 0

    def cost(self, buffer: DataBuffer) -> float:
        """CPU cost of processing ``buffer`` (reference core-seconds)."""
        if self.algorithm == "zbuffer":
            entries = buffer.nbytes / ZBUFFER_ENTRY_BYTES
            unit = self.costs.merge_zb_per_entry
        else:
            entries = buffer.nbytes / WPA_ENTRY_BYTES
            unit = self.costs.merge_ap_per_entry
        self.buffers_in += 1
        self.entries_in += int(entries)
        self.bytes_in += buffer.nbytes
        return entries * unit

    def result(self):
        """Final value exposed by this sink."""
        return {
            "algorithm": self.algorithm,
            "buffers": self.buffers_in,
            "entries": self.entries_in,
            "bytes": self.bytes_in,
        }

    def memory_bytes(self) -> int:
        """Estimated resident memory of one copy."""
        return self.width * self.height * ZBUFFER_ENTRY_BYTES


class TileMergeModel(SimFilter):
    """TM: one distributed-merge copy compositing its owned tiles.

    Prices incoming buffers like :class:`MergeModel` but keyed per tile;
    at end-of-work it emits one composited-tile buffer per tile it saw
    (the TileMerge -> gather stream).  Each transparent copy instance only
    ever sees the buffers the ``TileRouted`` writer sent to its owner
    index, so the per-copy tile set needs no owner identity.
    """

    def __init__(self, costs: CostParams, algorithm: str, tile_map):
        if algorithm not in ("zbuffer", "active"):
            raise ConfigurationError(
                f"algorithm must be 'zbuffer' or 'active', got {algorithm!r}"
            )
        self.costs = costs
        self.algorithm = algorithm
        self.tile_map = tile_map
        self.buffers_in = 0
        self.entries_in = 0
        self._seen: dict[int, int] = {}  # tile index -> buffers merged

    def cost(self, buffer: DataBuffer) -> float:
        """CPU cost of processing ``buffer`` (reference core-seconds)."""
        if self.algorithm == "zbuffer":
            entries = buffer.nbytes / ZBUFFER_ENTRY_BYTES
            unit = self.costs.merge_zb_per_entry
        else:
            entries = buffer.nbytes / WPA_ENTRY_BYTES
            unit = self.costs.merge_ap_per_entry
        self.buffers_in += 1
        self.entries_in += int(entries)
        tile = buffer.tags.get("tile")
        if isinstance(tile, int):
            self._seen[tile] = self._seen.get(tile, 0) + 1
        return entries * unit

    def flush_cost(self) -> float:
        """CPU cost of end-of-work processing (tile-image serialisation)."""
        pixels = sum(self.tile_map.tiles[t].pixels for t in self._seen)
        return pixels * 3 * self.costs.zb_send_per_byte

    def flush_outputs(self):
        """One composited-tile buffer per tile this copy received."""
        out = []
        for tile_index in sorted(self._seen):
            tile = self.tile_map.tiles[tile_index]
            out.append(
                DataBuffer(
                    tile.pixels * 3 + 16,
                    tags={"tile": tile.index, "pixels": tile.pixels},
                )
            )
        return out

    def memory_bytes(self) -> int:
        """Estimated resident memory of one copy (worst owner's tiles)."""
        per_owner: dict[int, int] = {}
        for tile in self.tile_map.tiles:
            per_owner[tile.owner] = per_owner.get(tile.owner, 0) + tile.pixels
        return max(per_owner.values()) * ZBUFFER_ENTRY_BYTES


class TileGatherModel(SimFilter):
    """G: paste composited tiles into the final image; exposes statistics.

    The sink of a tiled pipeline — its :meth:`result` mirrors
    :class:`MergeModel.result` so downstream reporting is shape-compatible.
    """

    def __init__(self, costs: CostParams, algorithm: str, width: int, height: int):
        self.costs = costs
        self.algorithm = algorithm
        self.width = width
        self.height = height
        self.buffers_in = 0
        self.entries_in = 0
        self.bytes_in = 0

    def cost(self, buffer: DataBuffer) -> float:
        """CPU cost of pasting one composited tile."""
        pixels = buffer.tags.get("pixels", 0)
        self.buffers_in += 1
        self.entries_in += int(pixels)
        self.bytes_in += buffer.nbytes
        return pixels * self.costs.gather_per_pixel

    def result(self):
        """Final value exposed by this sink."""
        return {
            "algorithm": self.algorithm,
            "buffers": self.buffers_in,
            "entries": self.entries_in,
            "bytes": self.bytes_in,
        }

    def memory_bytes(self) -> int:
        """Estimated resident memory: the assembled RGB image."""
        return self.width * self.height * 3


class ReadExtractSourceModel(SimSource):
    """RE: read + extract combined; emits triangle buffers."""

    def __init__(
        self,
        profile: DatasetProfile,
        storage: StorageMap,
        timestep: int,
        costs: CostParams,
        buffers: BufferSizes,
    ):
        self.profile = profile
        self.storage = storage
        self.timestep = timestep
        self.costs = costs
        self.buffers = buffers

    def items(self, ctx: FilterContext):
        """Yield this copy's source work items (see SimSource)."""
        files = self.storage.files_on(ctx.host)
        for data_file, disk in files[ctx.copy_index :: ctx.copies_on_host]:
            for i, chunk in enumerate(data_file.chunks):
                tris = self.profile.triangles(self.timestep, chunk.chunk_id)
                cpu = (
                    chunk.nbytes * self.costs.read_per_byte
                    + chunk.points * self.costs.extract_per_voxel
                    + tris * self.costs.extract_per_triangle
                )
                outs = _emit_stream_buffers(
                    tris * TRIANGLE_BYTES, self.buffers.triangles, triangles=tris
                )
                yield SourceItem(
                    read_bytes=chunk.nbytes, disk_index=disk, cpu=cpu,
                    sequential=i > 0, outputs=outs,
                )


class ExtractRasterModel(SimFilter):
    """ERa: extract + raster combined, consuming voxel buffers."""

    def __init__(
        self,
        costs: CostParams,
        buffers: BufferSizes,
        width: int,
        height: int,
        algorithm: str,
        tile_map=None,
    ):
        if algorithm not in ("zbuffer", "active"):
            raise ConfigurationError(
                f"algorithm must be 'zbuffer' or 'active', got {algorithm!r}"
            )
        self.algorithm = algorithm
        self.costs = costs
        self.buffers = buffers
        self.tile_map = tile_map
        self._r = _RasterCost(costs, width, height)

    def cost(self, buffer: DataBuffer) -> float:
        """CPU cost of processing ``buffer`` (reference core-seconds)."""
        voxels = buffer.tags.get("voxels", 0)
        tris = buffer.tags.get("triangles", 0)
        total = (
            voxels * self.costs.extract_per_voxel
            + tris * self.costs.extract_per_triangle
            + self._r.triangle_cost(tris)
        )
        if self.algorithm == "active":
            total += self._r.ap_entries(tris) * self.costs.ap_per_entry
        return total

    def react(self, buffer: DataBuffer):
        """Buffers emitted in response to ``buffer``."""
        if self.algorithm == "zbuffer":
            return ()
        entries = self._r.ap_entries(buffer.tags.get("triangles", 0))
        if self.tile_map is not None:
            return _emit_ap_tiled(entries, self.buffers.wpa, self.tile_map)
        return _emit_stream_buffers(
            entries * WPA_ENTRY_BYTES, self.buffers.wpa, entries=entries
        )

    def flush_cost(self) -> float:
        """CPU cost of end-of-work processing."""
        if self.algorithm == "zbuffer":
            return self._zb_bytes() * self.costs.zb_send_per_byte
        return 0.0

    def flush_outputs(self):
        """Buffers emitted at end-of-work."""
        if self.algorithm != "zbuffer":
            return ()
        if self.tile_map is not None:
            return _emit_zb_tiled(self.buffers.zbuffer_slab, self.tile_map)
        return _emit_stream_buffers(
            self._zb_bytes(),
            self.buffers.zbuffer_slab,
            entries=self._r.width * self._r.height,
        )

    def memory_bytes(self) -> int:
        """Estimated resident memory of one copy."""
        if self.algorithm == "zbuffer":
            return self._zb_bytes() + self.buffers.read
        return self.buffers.wpa + self._r.width * 4 + self.buffers.read

    def _zb_bytes(self) -> int:
        return self._r.width * self._r.height * ZBUFFER_ENTRY_BYTES


class ReadExtractRasterSourceModel(SimSource):
    """RERa: the whole per-node pipeline in one source filter."""

    def __init__(
        self,
        profile: DatasetProfile,
        storage: StorageMap,
        timestep: int,
        costs: CostParams,
        buffers: BufferSizes,
        width: int,
        height: int,
        algorithm: str,
        tile_map=None,
    ):
        if algorithm not in ("zbuffer", "active"):
            raise ConfigurationError(
                f"algorithm must be 'zbuffer' or 'active', got {algorithm!r}"
            )
        self.profile = profile
        self.storage = storage
        self.timestep = timestep
        self.costs = costs
        self.buffers = buffers
        self.algorithm = algorithm
        self.tile_map = tile_map
        self._r = _RasterCost(costs, width, height)

    def items(self, ctx: FilterContext):
        """Yield this copy's source work items (see SimSource)."""
        files = self.storage.files_on(ctx.host)
        for data_file, disk in files[ctx.copy_index :: ctx.copies_on_host]:
            for i, chunk in enumerate(data_file.chunks):
                tris = self.profile.triangles(self.timestep, chunk.chunk_id)
                cpu = (
                    chunk.nbytes * self.costs.read_per_byte
                    + chunk.points * self.costs.extract_per_voxel
                    + tris * self.costs.extract_per_triangle
                    + self._r.triangle_cost(tris)
                )
                outs: list[DataBuffer] = []
                if self.algorithm == "active":
                    entries = self._r.ap_entries(tris)
                    cpu += entries * self.costs.ap_per_entry
                    if self.tile_map is not None:
                        outs = _emit_ap_tiled(
                            entries, self.buffers.wpa, self.tile_map
                        )
                    else:
                        outs = _emit_stream_buffers(
                            entries * WPA_ENTRY_BYTES,
                            self.buffers.wpa,
                            entries=entries,
                        )
                yield SourceItem(
                    read_bytes=chunk.nbytes, disk_index=disk, cpu=cpu,
                    sequential=i > 0, outputs=outs,
                )

    def flush_cost(self) -> float:
        """CPU cost of end-of-work processing."""
        if self.algorithm == "zbuffer":
            return self._zb_bytes() * self.costs.zb_send_per_byte
        return 0.0

    def flush_outputs(self):
        """Buffers emitted at end-of-work."""
        if self.algorithm != "zbuffer":
            return ()
        if self.tile_map is not None:
            return _emit_zb_tiled(self.buffers.zbuffer_slab, self.tile_map)
        return _emit_stream_buffers(
            self._zb_bytes(),
            self.buffers.zbuffer_slab,
            entries=self._r.width * self._r.height,
        )

    def _zb_bytes(self) -> int:
        return self._r.width * self._r.height * ZBUFFER_ENTRY_BYTES

    def memory_bytes(self) -> int:
        """Estimated resident memory of one copy."""
        if self.algorithm == "zbuffer":
            return self._zb_bytes()
        return self.buffers.wpa + self._r.width * 4
