"""Real isosurface-rendering filters (threaded engine).

The application decomposes into Read (R), Extract (E), Raster (Ra) and
Merge (M) filters (paper Figure 2b), plus the combined RE, ERa and RERa
filters used by the three experimental configurations (Figure 3).  These
filters do real work on NumPy arrays and are exercised by the examples and
the correctness tests; their simulated counterparts live in
:mod:`repro.viz.models`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.buffer import DataBuffer
from repro.core.filter import Filter, FilterContext
from repro.data.chunks import ChunkSpec
from repro.data.parssim import ParSSimDataset
from repro.data.storage import StorageMap
from repro.errors import DataError, EngineError
from repro.viz.active_pixel import ActivePixelMerger, ActivePixelRaster, WPABuffer
from repro.viz.camera import Camera
from repro.viz.marching_cubes import extract_triangles
from repro.viz.raster import ZBuffer, ZBufferSlab
from repro.viz.shading import shade_triangles

__all__ = [
    "ChunkPayload",
    "TrianglePayload",
    "RenderResult",
    "ReadFilter",
    "ExtractFilter",
    "RasterZFilter",
    "RasterAPFilter",
    "MergeZFilter",
    "MergeAPFilter",
    "ReadExtractFilter",
    "ExtractRasterFilter",
    "ReadExtractRasterFilter",
    "TRIANGLE_BYTES",
]

#: Wire size of one triangle: 3 vertices x (x, y, z) float32.
TRIANGLE_BYTES = 36

#: Default z-buffer merge-stream buffer: entries per slab (2 MiB buffers at
#: 8 bytes/entry, the paper's Table 1 granularity).
ZB_SLAB_ENTRIES = 262144


@dataclass
class ChunkPayload:
    """Voxel data of one sub-volume: the R -> E stream payload."""

    chunk: ChunkSpec
    scalars: np.ndarray  # (dz, dy, dx) float32


@dataclass
class TrianglePayload:
    """World-space triangles: the E -> Ra stream payload."""

    triangles: np.ndarray  # (N, 3, 3) float32


@dataclass
class RenderResult:
    """Final output of the Merge filter."""

    image: np.ndarray  # (height, width, 3) uint8
    active_pixels: int
    buffers_merged: int


def _chunk_world_origin(chunk: ChunkSpec) -> tuple[float, float, float]:
    """World (x, y, z) position of a chunk's first grid point."""
    return (float(chunk.start[2]), float(chunk.start[1]), float(chunk.start[0]))


def _copy_files(storage: StorageMap, ctx: FilterContext):
    """The declustered files this source copy is responsible for."""
    files = storage.files_on(ctx.host)
    return files[ctx.copy_index :: ctx.copies_on_host]


def _uow_get(ctx: FilterContext, key: str, default):
    """A per-unit-of-work override (``ctx.uow`` dict), or ``default``.

    Work cycles (``ThreadedEngine.run_cycles``) pass descriptors like
    ``{"timestep": 3}`` or ``{"camera": Camera(...)}`` so persistent filter
    instances can render a different timestep or viewpoint per cycle.
    """
    uow = getattr(ctx, "uow", None)
    if isinstance(uow, dict) and key in uow:
        return uow[key]
    return default


class ReadFilter(Filter):
    """R: read declustered chunk data from this copy's host.

    Emits one buffer per chunk, tagged with the chunk id.  Copies on the
    same host split the host's files round-robin.

    A result-cache hit may inject pre-extracted triangles for this unit
    of work via ``ctx.uow["triangles"]`` (chunk id -> ``(N, 3, 3)``
    float32, the ``repro.cache`` triangle tier).  For every owned chunk
    present in that mapping the copy emits the cached
    :class:`TrianglePayload` instead of reading the chunk — storage and
    marching cubes are both skipped; chunks missing from the mapping
    fall back to the normal read path.
    """

    def __init__(
        self,
        dataset: ParSSimDataset,
        storage: StorageMap,
        timestep: int,
        species: int = 0,
    ):
        self.dataset = dataset
        self.storage = storage
        self.timestep = timestep
        self.species = species

    def flush(self, ctx: FilterContext) -> None:
        """End-of-work processing (see Filter.flush)."""
        timestep = _uow_get(ctx, "timestep", self.timestep)
        species = _uow_get(ctx, "species", self.species)
        triangles = _uow_get(ctx, "triangles", None)
        for data_file, _disk in _copy_files(self.storage, ctx):
            for chunk in data_file.chunks:
                if triangles is not None and chunk.chunk_id in triangles:
                    tris = triangles[chunk.chunk_id]
                    if len(tris):
                        ctx.write(
                            DataBuffer(
                                len(tris) * TRIANGLE_BYTES,
                                TrianglePayload(tris),
                                tags={"chunk": chunk.chunk_id},
                            )
                        )
                    continue
                scalars = self.dataset.chunk_field(chunk, timestep, species)
                ctx.write(
                    DataBuffer(
                        chunk.nbytes,
                        ChunkPayload(chunk, scalars),
                        tags={"chunk": chunk.chunk_id},
                    )
                )


class ExtractFilter(Filter):
    """E: marching cubes over each incoming chunk.

    The isovalue may be overridden per unit of work via
    ``ctx.uow["isovalue"]`` — this is how ``repro serve`` binds a query's
    isovalue onto a warm pipeline.
    """

    def __init__(self, isovalue: float):
        self.isovalue = isovalue

    def handle(self, ctx: FilterContext, buffer: DataBuffer) -> None:
        """Process one input buffer (see Filter.handle)."""
        if isinstance(buffer.payload, TrianglePayload):
            # Cache-injected triangles (see ReadFilter): already
            # extracted, forward unchanged.
            ctx.write(
                DataBuffer(buffer.nbytes, buffer.payload, tags=dict(buffer.tags))
            )
            return
        payload: ChunkPayload = buffer.payload
        tris = extract_triangles(
            payload.scalars,
            _uow_get(ctx, "isovalue", self.isovalue),
            origin=_chunk_world_origin(payload.chunk),
        )
        if len(tris) == 0:
            return
        ctx.write(
            DataBuffer(
                len(tris) * TRIANGLE_BYTES,
                TrianglePayload(tris),
                tags=dict(buffer.tags),
            )
        )


class _RasterBase(Filter):
    """Shared projection and shading for the raster filters.

    The active camera may be overridden per unit of work via
    ``ctx.uow["camera"]`` (latched at ``init``, when the cycle starts).
    With a ``tile_map`` the filter splits its output per tile and tags
    each buffer with ``{"tile", "tile_owner"}`` so a ``TileRouted``
    writer can deliver it to the owning merge copy.
    """

    def __init__(
        self,
        camera: Camera,
        light_direction: tuple[float, float, float] = (0.4, -0.5, 0.8),
        tile_map=None,
    ):
        self.camera = camera
        self._active_camera = camera
        self.light_direction = light_direction
        self.tile_map = tile_map

    def _latch_camera(self, ctx: FilterContext) -> None:
        self._active_camera = _uow_get(ctx, "camera", self.camera)

    def _screen_and_colors(self, tris: np.ndarray):
        colors = shade_triangles(tris, light_direction=self.light_direction)
        screen, kept = self._active_camera.project_and_cull(tris)
        return screen, colors[kept]


class RasterZFilter(_RasterBase):
    """Ra (z-buffer): accumulate locally, ship the whole buffer at EOW."""

    def init(self, ctx: FilterContext) -> None:
        """Per-unit-of-work set-up (see Filter.init)."""
        self._latch_camera(ctx)
        self._zbuf = ZBuffer(self.camera.width, self.camera.height)

    def handle(self, ctx: FilterContext, buffer: DataBuffer) -> None:
        """Process one input buffer (see Filter.handle)."""
        payload: TrianglePayload = buffer.payload
        screen, colors = self._screen_and_colors(payload.triangles)
        self._zbuf.rasterize(screen, colors)

    def flush(self, ctx: FilterContext) -> None:
        """End-of-work processing (see Filter.flush)."""
        if self.tile_map is None:
            for slab in self._zbuf.slabs(ZB_SLAB_ENTRIES):
                ctx.write(DataBuffer(slab.nbytes, slab))
            return
        from repro.viz.tiled import zbuffer_tile_slabs

        for tile, slab in zbuffer_tile_slabs(
            self._zbuf, self.tile_map, ZB_SLAB_ENTRIES
        ):
            ctx.write(
                DataBuffer(
                    slab.nbytes,
                    slab,
                    tags={"tile": tile.index, "tile_owner": tile.owner},
                )
            )

    def finalize(self, ctx: FilterContext) -> None:
        """Release per-unit-of-work resources (see Filter.finalize)."""
        del self._zbuf


class RasterAPFilter(_RasterBase):
    """Ra (active pixel): emit WPA buffers as input buffers are processed."""

    def __init__(
        self,
        camera,
        light_direction=(0.4, -0.5, 0.8),
        capacity_entries=5461,
        tile_map=None,
    ):
        super().__init__(camera, light_direction, tile_map)
        self.capacity_entries = capacity_entries

    def init(self, ctx: FilterContext) -> None:
        """Per-unit-of-work set-up (see Filter.init)."""
        self._latch_camera(ctx)
        self._raster = ActivePixelRaster(
            self.camera.width, self.camera.height, self.capacity_entries
        )

    def handle(self, ctx: FilterContext, buffer: DataBuffer) -> None:
        """Process one input buffer (see Filter.handle)."""
        payload: TrianglePayload = buffer.payload
        screen, colors = self._screen_and_colors(payload.triangles)
        if self.tile_map is None:
            for wpa in self._raster.process(screen, colors):
                ctx.write(DataBuffer(wpa.nbytes, wpa))
            return
        from repro.viz.tiled import split_wpa

        for wpa in self._raster.process(screen, colors):
            for tile, sub in split_wpa(wpa, self.tile_map):
                ctx.write(
                    DataBuffer(
                        sub.nbytes,
                        sub,
                        tags={"tile": tile.index, "tile_owner": tile.owner},
                    )
                )

    def finalize(self, ctx: FilterContext) -> None:
        """Release per-unit-of-work resources (see Filter.finalize)."""
        del self._raster


class MergeZFilter(Filter):
    """M (z-buffer): depth-merge slabs, extract the final image."""

    def __init__(self, width: int, height: int):
        self.width = width
        self.height = height

    def init(self, ctx: FilterContext) -> None:
        """Per-unit-of-work set-up (see Filter.init)."""
        self._zbuf = ZBuffer(self.width, self.height)
        self._buffers = 0

    def handle(self, ctx: FilterContext, buffer: DataBuffer) -> None:
        """Process one input buffer (see Filter.handle)."""
        slab: ZBufferSlab = buffer.payload
        self._zbuf.merge_slab(slab)
        self._buffers += 1

    def result(self) -> RenderResult:
        """The composited image (available after the run completes)."""
        if not hasattr(self, "_zbuf"):
            raise EngineError(
                "MergeZFilter has no result yet: run the pipeline first"
            )
        return RenderResult(
            self._zbuf.image(), self._zbuf.active_pixels(), self._buffers
        )


class MergeAPFilter(Filter):
    """M (active pixel): depth-merge WPA buffers as they arrive."""

    def __init__(self, width: int, height: int):
        self.width = width
        self.height = height

    def init(self, ctx: FilterContext) -> None:
        """Per-unit-of-work set-up (see Filter.init)."""
        self._merger = ActivePixelMerger(self.width, self.height)

    def handle(self, ctx: FilterContext, buffer: DataBuffer) -> None:
        """Process one input buffer (see Filter.handle)."""
        wpa: WPABuffer = buffer.payload
        self._merger.merge(wpa)

    def result(self) -> RenderResult:
        """The composited image (available after the run completes)."""
        if not hasattr(self, "_merger"):
            raise EngineError(
                "MergeAPFilter has no result yet: run the pipeline first"
            )
        return RenderResult(
            self._merger.image(),
            self._merger.active_pixels(),
            self._merger.buffers_merged,
        )


class ReadExtractFilter(Filter):
    """RE: read local chunks and extract triangles in one filter."""

    def __init__(
        self,
        dataset: ParSSimDataset,
        storage: StorageMap,
        timestep: int,
        isovalue: float,
        species: int = 0,
    ):
        self.read = ReadFilter(dataset, storage, timestep, species)
        self.isovalue = isovalue

    def flush(self, ctx: FilterContext) -> None:
        """End-of-work processing (see Filter.flush)."""
        timestep = _uow_get(ctx, "timestep", self.read.timestep)
        species = _uow_get(ctx, "species", self.read.species)
        isovalue = _uow_get(ctx, "isovalue", self.isovalue)
        for data_file, _disk in _copy_files(self.read.storage, ctx):
            for chunk in data_file.chunks:
                scalars = self.read.dataset.chunk_field(
                    chunk, timestep, species
                )
                tris = extract_triangles(
                    scalars, isovalue, origin=_chunk_world_origin(chunk)
                )
                if len(tris) == 0:
                    continue
                ctx.write(
                    DataBuffer(
                        len(tris) * TRIANGLE_BYTES,
                        TrianglePayload(tris),
                        tags={"chunk": chunk.chunk_id},
                    )
                )


class ExtractRasterFilter(Filter):
    """ERa: extract and rasterise in one filter.

    ``algorithm`` selects z-buffer (accumulate + flush) or active pixel
    (streaming emission).
    """

    def __init__(
        self,
        isovalue: float,
        camera: Camera,
        algorithm: str = "active",
        tile_map=None,
    ):
        if algorithm not in ("zbuffer", "active"):
            raise DataError(f"algorithm must be 'zbuffer' or 'active', got {algorithm!r}")
        self.isovalue = isovalue
        self.camera = camera
        self.algorithm = algorithm
        self.tile_map = tile_map

    def init(self, ctx: FilterContext) -> None:
        """Per-unit-of-work set-up (see Filter.init)."""
        if self.algorithm == "zbuffer":
            self._raster = RasterZFilter(self.camera, tile_map=self.tile_map)
        else:
            self._raster = RasterAPFilter(self.camera, tile_map=self.tile_map)
        self._raster.init(ctx)
        # Latched per cycle, like the raster camera: one isovalue per
        # unit of work, stable across all of the cycle's chunks.
        self._active_iso = _uow_get(ctx, "isovalue", self.isovalue)

    def handle(self, ctx: FilterContext, buffer: DataBuffer) -> None:
        """Process one input buffer (see Filter.handle)."""
        payload: ChunkPayload = buffer.payload
        tris = extract_triangles(
            payload.scalars,
            self._active_iso,
            origin=_chunk_world_origin(payload.chunk),
        )
        if len(tris) == 0:
            return
        inner = DataBuffer(
            len(tris) * TRIANGLE_BYTES, TrianglePayload(tris), tags=dict(buffer.tags)
        )
        self._raster.handle(ctx, inner)

    def flush(self, ctx: FilterContext) -> None:
        """End-of-work processing (see Filter.flush)."""
        self._raster.flush(ctx)

    def finalize(self, ctx: FilterContext) -> None:
        """Release per-unit-of-work resources (see Filter.finalize)."""
        self._raster.finalize(ctx)


class ReadExtractRasterFilter(Filter):
    """RERa: the fully combined single-filter configuration."""

    def __init__(
        self,
        dataset: ParSSimDataset,
        storage: StorageMap,
        timestep: int,
        isovalue: float,
        camera: Camera,
        algorithm: str = "active",
        species: int = 0,
        tile_map=None,
    ):
        if algorithm not in ("zbuffer", "active"):
            raise DataError(f"algorithm must be 'zbuffer' or 'active', got {algorithm!r}")
        self.dataset = dataset
        self.storage = storage
        self.timestep = timestep
        self.species = species
        self.isovalue = isovalue
        self.camera = camera
        self.algorithm = algorithm
        self.tile_map = tile_map

    def init(self, ctx: FilterContext) -> None:
        """Per-unit-of-work set-up (see Filter.init)."""
        if self.algorithm == "zbuffer":
            self._raster = RasterZFilter(self.camera, tile_map=self.tile_map)
        else:
            self._raster = RasterAPFilter(self.camera, tile_map=self.tile_map)
        self._raster.init(ctx)

    def flush(self, ctx: FilterContext) -> None:
        """End-of-work processing (see Filter.flush)."""
        timestep = _uow_get(ctx, "timestep", self.timestep)
        species = _uow_get(ctx, "species", self.species)
        isovalue = _uow_get(ctx, "isovalue", self.isovalue)
        for data_file, _disk in _copy_files(self.storage, ctx):
            for chunk in data_file.chunks:
                scalars = self.dataset.chunk_field(chunk, timestep, species)
                tris = extract_triangles(
                    scalars, isovalue, origin=_chunk_world_origin(chunk)
                )
                if len(tris) == 0:
                    continue
                inner = DataBuffer(
                    len(tris) * TRIANGLE_BYTES,
                    TrianglePayload(tris),
                    tags={"chunk": chunk.chunk_id},
                )
                self._raster.handle(ctx, inner)
        self._raster.flush(ctx)

    def finalize(self, ctx: FilterContext) -> None:
        """Release per-unit-of-work resources (see Filter.finalize)."""
        self._raster.finalize(ctx)
