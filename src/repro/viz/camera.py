"""Viewing transforms: world -> screen projection for the Raster filter.

The Raster filter "transforms triangles from world coordinates to viewing
coordinates (with respect to the viewing parameters)", projects them onto
the image plane and clips to screen boundaries (paper Section 3.1.2).
Orthographic projection is the default (depth comparisons stay linear);
perspective is available for the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Camera"]


@dataclass
class Camera:
    """A look-at camera with orthographic or perspective projection.

    Parameters
    ----------
    eye / target / up:
        Standard look-at parameters, world (x, y, z).
    width / height:
        Output image resolution in pixels.
    view_width:
        Orthographic: world units spanned by the image's horizontal axis.
        Perspective: ignored.
    projection:
        ``"ortho"`` or ``"persp"``.
    fov_degrees:
        Perspective field of view (horizontal).
    """

    eye: tuple[float, float, float]
    target: tuple[float, float, float]
    up: tuple[float, float, float] = (0.0, 0.0, 1.0)
    width: int = 512
    height: int = 512
    view_width: float = 2.0
    projection: str = "ortho"
    fov_degrees: float = 60.0

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ConfigurationError("image dimensions must be >= 1")
        if self.projection not in ("ortho", "persp"):
            raise ConfigurationError(
                f"projection must be 'ortho' or 'persp', got {self.projection!r}"
            )
        eye = np.asarray(self.eye, dtype=np.float64)
        target = np.asarray(self.target, dtype=np.float64)
        forward = target - eye
        norm = np.linalg.norm(forward)
        if norm == 0:
            raise ConfigurationError("eye and target coincide")
        forward /= norm
        up = np.asarray(self.up, dtype=np.float64)
        right = np.cross(forward, up)
        rnorm = np.linalg.norm(right)
        if rnorm < 1e-12:
            raise ConfigurationError("up vector parallel to view direction")
        right /= rnorm
        true_up = np.cross(right, forward)
        # View matrix rows transform world offsets into camera coordinates
        # (x right, y up, z towards the viewer; depth = distance along
        # -forward increases away from the camera).
        self._rotation = np.stack([right, true_up, -forward])
        self._eye = eye

    # -- transforms --------------------------------------------------------
    def to_view(self, points: np.ndarray) -> np.ndarray:
        """World (N, 3) -> camera coordinates (N, 3)."""
        pts = np.asarray(points, dtype=np.float64)
        return (pts - self._eye) @ self._rotation.T

    def project_points(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """World (N, 3) -> ((N, 2) pixel coordinates, (N,) depth).

        Depth grows away from the camera; smaller wins the z-test.  Pixel
        (0, 0) is the top-left corner.
        """
        view = self.to_view(points)
        depth = -view[:, 2]
        aspect = self.height / self.width
        if self.projection == "ortho":
            half_w = self.view_width / 2.0
            half_h = half_w * aspect
            ndc_x = view[:, 0] / half_w
            ndc_y = view[:, 1] / half_h
        else:
            half_w = np.tan(np.radians(self.fov_degrees) / 2.0)
            half_h = half_w * aspect
            safe = np.where(depth > 1e-9, depth, np.nan)
            ndc_x = view[:, 0] / (half_w * safe)
            ndc_y = view[:, 1] / (half_h * safe)
        px = (ndc_x + 1.0) * 0.5 * self.width
        py = (1.0 - ndc_y) * 0.5 * self.height
        return np.stack([px, py], axis=1), depth

    def project_triangles(self, triangles: np.ndarray) -> np.ndarray:
        """World triangles (N, 3, 3) -> screen triangles (M, 3, 3).

        Output columns per vertex: (pixel x, pixel y, depth).  Triangles
        entirely behind the camera or entirely outside the viewport are
        culled (M <= N); partially visible triangles are kept — the
        rasterisers clip per pixel.
        """
        tris = np.asarray(triangles, dtype=np.float64)
        if tris.size == 0:
            return np.empty((0, 3, 3), dtype=np.float64)
        flat = tris.reshape(-1, 3)
        xy, depth = self.project_points(flat)
        screen = np.concatenate([xy, depth[:, None]], axis=1).reshape(-1, 3, 3)
        # Cull: all three vertices behind camera, or bbox outside viewport.
        front = (screen[:, :, 2] > 0).any(axis=1)
        finite = np.isfinite(screen).all(axis=(1, 2))
        xs, ys = screen[:, :, 0], screen[:, :, 1]
        onscreen = (
            (xs.max(axis=1) >= 0)
            & (xs.min(axis=1) < self.width)
            & (ys.max(axis=1) >= 0)
            & (ys.min(axis=1) < self.height)
        )
        return screen[front & finite & onscreen]

    def project_and_cull(
        self, triangles: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Like :meth:`project_triangles`, also returning kept indices.

        The indices select the surviving rows of the input, letting callers
        subset per-triangle attributes (colours) consistently.
        """
        tris = np.asarray(triangles, dtype=np.float64)
        if tris.size == 0:
            return (
                np.empty((0, 3, 3), dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )
        flat = tris.reshape(-1, 3)
        xy, depth = self.project_points(flat)
        screen = np.concatenate([xy, depth[:, None]], axis=1).reshape(-1, 3, 3)
        front = (screen[:, :, 2] > 0).any(axis=1)
        finite = np.isfinite(screen).all(axis=(1, 2))
        xs, ys = screen[:, :, 0], screen[:, :, 1]
        onscreen = (
            (xs.max(axis=1) >= 0)
            & (xs.min(axis=1) < self.width)
            & (ys.max(axis=1) >= 0)
            & (ys.min(axis=1) < self.height)
        )
        keep = np.nonzero(front & finite & onscreen)[0]
        return screen[keep], keep

    @classmethod
    def orbit(
        cls,
        shape: tuple[int, int, int],
        azimuth_deg: float = 30.0,
        elevation_deg: float = 25.0,
        width: int = 512,
        height: int = 512,
        margin: float = 1.1,
    ) -> "Camera":
        """A camera orbiting a (nz, ny, nx) grid's centre.

        Spherical angles instead of a raw direction vector — the view
        parametrisation ``repro serve`` exposes to queries: azimuth rotates
        about the world z axis (degrees, 0 = +x), elevation tilts up from
        the xy plane.  Framing matches :meth:`fit_grid`.
        """
        az = np.radians(azimuth_deg)
        el = np.radians(float(np.clip(elevation_deg, -89.0, 89.0)))
        direction = (
            float(np.cos(el) * np.cos(az)),
            float(np.cos(el) * np.sin(az)),
            float(np.sin(el)),
        )
        return cls.fit_grid(
            shape, width, height, direction=direction, margin=margin
        )

    @classmethod
    def fit_grid(
        cls,
        shape: tuple[int, int, int],
        width: int = 512,
        height: int = 512,
        direction: tuple[float, float, float] = (1.0, -0.6, 0.8),
        margin: float = 1.1,
    ) -> "Camera":
        """A camera framing a whole (nz, ny, nx) grid from ``direction``."""
        nz, ny, nx = shape
        center = ((nx - 1) / 2.0, (ny - 1) / 2.0, (nz - 1) / 2.0)
        diag = float(np.linalg.norm([nx - 1, ny - 1, nz - 1]))
        d = np.asarray(direction, dtype=np.float64)
        d /= np.linalg.norm(d)
        eye = tuple(np.asarray(center) + d * diag * 1.5)
        return cls(
            eye=eye,
            target=center,
            width=width,
            height=height,
            view_width=diag * margin,
        )
