"""Dataset profiles: what the simulated engine knows about a dataset.

A :class:`DatasetProfile` describes a (possibly paper-scale) dataset without
materialising it: the chunk layout, the declustered files, and per-chunk
isosurface triangle counts per timestep.  Two constructors:

- :meth:`DatasetProfile.synthetic` — seeds a drifting spherical-shell
  activity model (an advected plume front) and distributes a target triangle
  total over chunks accordingly; used for paper-scale runs where the 1.5 GB
  and 25 GB ParSSim outputs cannot be materialised;
- :meth:`DatasetProfile.measured` — runs the real marching-cubes counter
  over a (small) :class:`~repro.data.parssim.ParSSimDataset`, making
  simulation and real execution agree exactly.

``dataset_1p5gb`` / ``dataset_25gb`` reproduce the paper's two datasets
(Section 4), with a ``scale`` knob to shrink them proportionally so benches
finish quickly; scaling preserves the compute/IO/network balance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.chunks import ChunkSpec, partition_counts, partition_grid
from repro.data.decluster import DataFile, decluster
from repro.data.parssim import ParSSimDataset
from repro.errors import DataError
from repro.viz.marching_cubes import triangle_count

__all__ = ["DatasetProfile", "dataset_1p5gb", "dataset_25gb"]


@dataclass
class DatasetProfile:
    """Chunked, declustered dataset description for the simulated engine."""

    name: str
    grid_shape: tuple[int, int, int]
    chunks: list[ChunkSpec]
    files: list[DataFile]
    timesteps: int
    #: timestep -> (nchunks,) int64 triangles per chunk
    tri_counts: dict[int, np.ndarray]

    def __post_init__(self) -> None:
        for t, counts in self.tri_counts.items():
            if len(counts) != len(self.chunks):
                raise DataError(
                    f"timestep {t}: {len(counts)} triangle counts for "
                    f"{len(self.chunks)} chunks"
                )

    # -- queries ---------------------------------------------------------------
    def triangles(self, timestep: int, chunk_id: int) -> int:
        """Triangles chunk ``chunk_id`` contributes at ``timestep``."""
        return int(self.tri_counts[timestep][chunk_id])

    def total_triangles(self, timestep: int) -> int:
        """Total isosurface triangles at ``timestep``."""
        return int(self.tri_counts[timestep].sum())

    @property
    def bytes_per_timestep(self) -> int:
        """Stored bytes of one timestep (including chunk ghost layers)."""
        return sum(c.nbytes for c in self.chunks)

    # -- constructors ----------------------------------------------------------
    @classmethod
    def synthetic(
        cls,
        name: str,
        grid_shape: tuple[int, int, int],
        nchunks: int,
        nfiles: int,
        timesteps: int,
        total_triangles: int,
        seed: int = 0,
        shell_thickness: float = 0.12,
    ) -> "DatasetProfile":
        """Build a profile with a drifting-shell triangle distribution.

        The isosurface of an advected plume is (roughly) a closed front; we
        model the per-chunk triangle density as a Gaussian shell around a
        centre that drifts and a radius that grows with time, then scale the
        densities to hit ``total_triangles`` per timestep.
        """
        if total_triangles < 0:
            raise DataError("total_triangles must be >= 0")
        counts3 = partition_counts(grid_shape, nchunks, exact=False)
        chunks = partition_grid(grid_shape, counts3)
        files = decluster(chunks, nfiles)
        rng = np.random.default_rng(seed)
        centre0 = rng.uniform(0.3, 0.5, size=3)
        drift = rng.uniform(0.01, 0.03, size=3)
        r0 = rng.uniform(0.15, 0.25)
        r_growth = rng.uniform(0.01, 0.02)

        # Chunk centres in fractional grid coordinates.
        centres = np.array(
            [
                [
                    (c.start[d] + c.stop[d]) / 2.0 / grid_shape[d]
                    for d in range(3)
                ]
                for c in chunks
            ]
        )
        tri_counts: dict[int, np.ndarray] = {}
        for t in range(timesteps):
            centre = centre0 + drift * t
            radius = r0 + r_growth * t
            dist = np.linalg.norm(centres - centre, axis=1)
            weight = np.exp(-((dist - radius) ** 2) / (2 * shell_thickness**2))
            total_w = weight.sum()
            if total_w <= 0:  # pragma: no cover - degenerate seed
                weight = np.ones(len(chunks))
                total_w = weight.sum()
            counts = np.floor(weight / total_w * total_triangles).astype(np.int64)
            # Distribute the rounding remainder to the heaviest chunks.
            deficit = total_triangles - int(counts.sum())
            if deficit > 0:
                order = np.argsort(weight)[::-1][:deficit]
                counts[order] += 1
            tri_counts[t] = counts
        return cls(name, tuple(grid_shape), chunks, files, timesteps, tri_counts)

    @classmethod
    def measured(
        cls,
        name: str,
        dataset: ParSSimDataset,
        nchunks: int,
        nfiles: int,
        isovalue: float,
        species: int = 0,
    ) -> "DatasetProfile":
        """Profile a real (small) dataset by counting actual triangles."""
        counts3 = partition_counts(dataset.shape, nchunks, exact=False)
        chunks = partition_grid(dataset.shape, counts3)
        files = decluster(chunks, nfiles)
        tri_counts: dict[int, np.ndarray] = {}
        for t in range(dataset.timesteps):
            counts = np.zeros(len(chunks), dtype=np.int64)
            for c in chunks:
                scalars = dataset.chunk_field(c, t, species)
                counts[c.chunk_id] = triangle_count(scalars, isovalue)
            tri_counts[t] = counts
        return cls(
            name, dataset.shape, chunks, files, dataset.timesteps, tri_counts
        )


def _scaled(extent: int, scale: float) -> int:
    return max(9, int(round(extent * scale ** (1 / 3))))


def dataset_1p5gb(scale: float = 1.0, seed: int = 1) -> DatasetProfile:
    """The paper's first dataset: 1.5 GB, 208^3-point grid per
    (timestep, species) field, 1536 sub-volumes, 64 files, 10 timesteps.

    ``scale`` shrinks total bytes (and triangles) linearly; chunk and file
    counts shrink with it so per-chunk sizes stay realistic.
    """
    if not 0 < scale <= 1.0:
        raise DataError(f"scale must be in (0, 1], got {scale}")
    shape = tuple(_scaled(208, scale) for _ in range(3))
    nchunks = max(64, int(1536 * scale))
    nfiles = min(64, nchunks)  # the paper always declusters into 64 files
    total_tris = max(1000, int(250_000 * scale ** (2 / 3)))
    return DatasetProfile.synthetic(
        f"parssim-1.5GB(x{scale:g})",
        shape,
        nchunks=nchunks,
        nfiles=nfiles,
        timesteps=10,
        total_triangles=total_tris,
        seed=seed,
    )


def dataset_25gb(scale: float = 1.0, seed: int = 2) -> DatasetProfile:
    """The paper's second dataset: 25 GB, ~2.5 GB per timestep
    (1024x1024x640 points), 24 576 sub-volumes, 64 files, 10 timesteps."""
    if not 0 < scale <= 1.0:
        raise DataError(f"scale must be in (0, 1], got {scale}")
    shape = (
        _scaled(640, scale),
        _scaled(1024, scale),
        _scaled(1024, scale),
    )
    nchunks = max(64, int(24_576 * scale))
    nfiles = min(64, nchunks)  # the paper always declusters into 64 files
    total_tris = max(2000, int(1_600_000 * scale ** (2 / 3)))
    return DatasetProfile.synthetic(
        f"parssim-25GB(x{scale:g})",
        shape,
        nchunks=nchunks,
        nfiles=nfiles,
        timesteps=10,
        total_triangles=total_tris,
        seed=seed,
    )
