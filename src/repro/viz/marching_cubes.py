"""Isosurface extraction on rectilinear grids.

The paper uses the marching cubes algorithm [23] in the Extract filter.  We
implement cube-wise table-driven extraction where the 256-case triangle
table is *derived at import time* from the Kuhn six-tetrahedra decomposition
of the cube (marching tetrahedra within each cube).  This produces a
watertight, case-table-complete isosurface with the same per-voxel access
pattern and pipeline behaviour as classic marching cubes; it emits somewhat
more triangles per surface cell (tetrahedral cases split quads), which the
cost models absorb in their per-triangle constants.  Deriving the table
programmatically keeps it provably consistent (no hand-typed 256x16 array)
and is validated by property tests.

Corner numbering: bit0 = +x, bit1 = +y, bit2 = +z, so corner ``c`` sits at
``(x, y, z) = (c & 1, (c >> 1) & 1, (c >> 2) & 1)``.  A corner is *inside*
when its scalar exceeds the isovalue.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError

__all__ = ["extract_triangles", "triangle_count", "TRI_TABLE", "CORNER_OFFSETS"]

#: (8, 3) integer offsets of cube corners, columns (x, y, z).
CORNER_OFFSETS = np.array(
    [[(c >> 0) & 1, (c >> 1) & 1, (c >> 2) & 1] for c in range(8)], dtype=np.int64
)

# Kuhn decomposition: six tetrahedra around the 0-7 diagonal, one per
# permutation of the coordinate axes.  Compatible across adjacent cubes.
_TETS = (
    (0, 1, 3, 7),  # x, y, z
    (0, 1, 5, 7),  # x, z, y
    (0, 2, 3, 7),  # y, x, z
    (0, 2, 6, 7),  # y, z, x
    (0, 4, 5, 7),  # z, x, y
    (0, 4, 6, 7),  # z, y, x
)


def _tet_triangles(inside: tuple[bool, ...], tet: tuple[int, int, int, int]):
    """Triangles for one tetrahedron as (inside_corner, outside_corner) edges."""
    ins = [v for v in tet if inside[v]]
    outs = [v for v in tet if not inside[v]]
    if not ins or not outs:
        return []
    if len(ins) == 1:
        v = ins[0]
        return [((v, outs[0]), (v, outs[1]), (v, outs[2]))]
    if len(ins) == 3:
        o = outs[0]
        return [((ins[0], o), (ins[1], o), (ins[2], o))]
    # Two inside, two outside: a quad split into two triangles.
    i1, i2 = ins
    o1, o2 = outs
    return [
        ((i1, o1), (i1, o2), (i2, o2)),
        ((i1, o1), (i2, o2), (i2, o1)),
    ]


def _build_table() -> list[np.ndarray]:
    """TRI_TABLE[config] -> (ntri, 3, 2) int8 array of (in, out) corner pairs."""
    table: list[np.ndarray] = []
    for config in range(256):
        inside = tuple(bool(config >> c & 1) for c in range(8))
        tris = []
        for tet in _TETS:
            tris.extend(_tet_triangles(inside, tet))
        if tris:
            table.append(np.array(tris, dtype=np.int8))
        else:
            table.append(np.empty((0, 3, 2), dtype=np.int8))
    return table


TRI_TABLE = _build_table()

#: triangles emitted per configuration (diagnostics / cost estimation)
_TRIS_PER_CONFIG = np.array([t.shape[0] for t in TRI_TABLE], dtype=np.int64)


def _cube_configs(scalars: np.ndarray, isovalue: float) -> np.ndarray:
    """Config bitmask per cube for a (nz, ny, nx) scalar grid."""
    if scalars.ndim != 3:
        raise DataError(f"scalars must be 3-D, got shape {scalars.shape}")
    nz, ny, nx = scalars.shape
    if nz < 2 or ny < 2 or nx < 2:
        raise DataError(f"grid too small for cubes: {scalars.shape}")
    inside = scalars > isovalue
    cfg = np.zeros((nz - 1, ny - 1, nx - 1), dtype=np.uint16)
    for c in range(8):
        dx, dy, dz = CORNER_OFFSETS[c]
        view = inside[dz : dz + nz - 1, dy : dy + ny - 1, dx : dx + nx - 1]
        cfg |= view.astype(np.uint16) << c
    return cfg


def triangle_count(scalars: np.ndarray, isovalue: float) -> int:
    """Number of triangles :func:`extract_triangles` would emit.

    Much cheaper than extraction; used for dataset profiling.
    """
    cfg = _cube_configs(scalars, isovalue)
    return int(_TRIS_PER_CONFIG[cfg.ravel()].sum())


def extract_triangles(
    scalars: np.ndarray,
    isovalue: float,
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
    spacing: tuple[float, float, float] = (1.0, 1.0, 1.0),
) -> np.ndarray:
    """Extract the isosurface of a scalar grid.

    Parameters
    ----------
    scalars:
        (nz, ny, nx) scalar field (grid points).
    isovalue:
        Surface level; a corner is inside when ``scalar > isovalue``.
    origin / spacing:
        World-space placement: grid point (z, y, x) maps to world
        ``origin + (x, y, z) * spacing`` — both given in (x, y, z) order.

    Returns
    -------
    (N, 3, 3) float32 array: N triangles, 3 vertices, (x, y, z) world
    coordinates.  Every vertex lies on a cube/tetrahedron edge where linear
    interpolation of the endpoint scalars equals ``isovalue``.
    """
    scalars = np.asarray(scalars, dtype=np.float32)
    cfg = _cube_configs(scalars, isovalue)
    active_mask = (cfg != 0) & (cfg != 255)
    az, ay, ax = np.nonzero(active_mask)
    if az.size == 0:
        return np.empty((0, 3, 3), dtype=np.float32)
    cfg_active = cfg[az, ay, ax]

    origin = np.asarray(origin, dtype=np.float64)
    spacing = np.asarray(spacing, dtype=np.float64)

    pieces: list[np.ndarray] = []
    for config in np.unique(cfg_active):
        edges = TRI_TABLE[config]  # (T, 3, 2)
        if edges.size == 0:
            continue
        sel = cfg_active == config
        cz, cy, cx = az[sel], ay[sel], ax[sel]  # (M,)
        a = edges[:, :, 0].astype(np.int64)  # inside corners  (T, 3)
        b = edges[:, :, 1].astype(np.int64)  # outside corners (T, 3)
        # Scalar values at both corners of each edge: (M, T, 3).
        s_a = scalars[
            cz[:, None, None] + CORNER_OFFSETS[a, 2],
            cy[:, None, None] + CORNER_OFFSETS[a, 1],
            cx[:, None, None] + CORNER_OFFSETS[a, 0],
        ]
        s_b = scalars[
            cz[:, None, None] + CORNER_OFFSETS[b, 2],
            cy[:, None, None] + CORNER_OFFSETS[b, 1],
            cx[:, None, None] + CORNER_OFFSETS[b, 0],
        ]
        t = (isovalue - s_a) / (s_b - s_a)  # in (0, 1]; s_a > iso >= s_b
        # Corner positions in (x, y, z) grid units: (M, T, 3, 3).
        base = np.stack([cx, cy, cz], axis=-1)[:, None, None, :].astype(np.float64)
        pa = base + CORNER_OFFSETS[a][None, :, :, :]
        pb = base + CORNER_OFFSETS[b][None, :, :, :]
        verts = pa + t[..., None] * (pb - pa)
        verts = origin + verts * spacing
        pieces.append(verts.reshape(-1, 3, 3))
    if not pieces:
        return np.empty((0, 3, 3), dtype=np.float32)
    return np.concatenate(pieces, axis=0).astype(np.float32)
