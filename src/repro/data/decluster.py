"""Hilbert curve-based declustering of chunks into data files.

Following Faloutsos & Bhagwat (paper reference [14]): order the sub-volumes
by the Hilbert index of their chunk-grid position, then deal them
round-robin into ``nfiles`` files.  Consecutive chunks on the curve are
spatial neighbours, so dealing them to different files spreads any range
query's chunks near-uniformly across files — the property the paper's Read
filters rely on for parallel retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.chunks import ChunkSpec
from repro.data.hilbert import hilbert_index
from repro.errors import DataError

__all__ = ["DataFile", "decluster"]


@dataclass
class DataFile:
    """One declustered file: an ordered list of chunks."""

    file_id: int
    chunks: list[ChunkSpec] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        """Total bytes of all chunks in the file."""
        return sum(c.nbytes for c in self.chunks)


def decluster(chunks: list[ChunkSpec], nfiles: int) -> list[DataFile]:
    """Distribute ``chunks`` into ``nfiles`` files in Hilbert order.

    Returns the files in id order.  Every chunk lands in exactly one file;
    file sizes differ by at most one chunk.
    """
    if nfiles < 1:
        raise DataError(f"nfiles must be >= 1, got {nfiles}")
    if not chunks:
        raise DataError("no chunks to decluster")
    max_coord = max(max(c.index) for c in chunks)
    order = max(1, (max_coord + 1 - 1).bit_length())
    if (1 << order) <= max_coord:
        order += 1  # pragma: no cover - defensive
    ordered = sorted(chunks, key=lambda c: hilbert_index(c.index, order))
    files = [DataFile(i) for i in range(nfiles)]
    for pos, chunk in enumerate(ordered):
        files[pos % nfiles].chunks.append(chunk)
    return files
