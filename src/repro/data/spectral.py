"""Spectral (turbulence-like) synthetic datasets.

A second workload family beside :class:`~repro.data.parssim.ParSSimDataset`:
Gaussian random fields synthesised in Fourier space with a power-law
spectrum ``E(k) ~ k**(-slope)``, evolving over timesteps by phase rotation
(frozen-turbulence advection).  Where the ParSSim-like plumes give compact,
shell-concentrated isosurfaces, spectral fields give space-filling, wrinkled
isosurfaces — the other extreme of isosurface workload character — which
stresses marching cubes throughput, buffer distribution uniformity, and the
active-pixel scheme's sparsity assumptions.

Fields are deterministic in ``(seed, timestep, species)``; chunked access
(:meth:`SpectralDataset.chunk_field`) is bit-identical to slicing the full
field, like the ParSSim generator.
"""

from __future__ import annotations

import numpy as np

from repro.data.chunks import BYTES_PER_POINT, ChunkSpec
from repro.errors import DataError

__all__ = ["SpectralDataset"]


class SpectralDataset:
    """A multi-timestep Gaussian random field with a power-law spectrum.

    Parameters
    ----------
    shape:
        Grid points per axis, (nz, ny, nx).
    timesteps / species:
        Stored timesteps and independent field channels.
    slope:
        Spectral slope; larger = smoother fields (5/3 + 2 ~ Kolmogorov
        velocity-like smoothness for a scalar).
    advection:
        Fraction of the domain the frozen field drifts per timestep.
    seed:
        Reproducibility seed.

    Unlike the plume generator, whole fields are synthesised by FFT; chunked
    access slices a cached field, so grids should stay moderate (tests use
    <= 64^3).
    """

    def __init__(
        self,
        shape: tuple[int, int, int],
        timesteps: int = 4,
        species: int = 1,
        slope: float = 11.0 / 3.0,
        advection: float = 0.07,
        seed: int = 0,
    ):
        if len(shape) != 3 or any(s < 4 for s in shape):
            raise DataError(f"shape must be 3 axes of >= 4 points, got {shape}")
        if timesteps < 1 or species < 1:
            raise DataError("timesteps and species must be >= 1")
        if slope <= 0:
            raise DataError(f"slope must be > 0, got {slope}")
        self.shape = tuple(int(s) for s in shape)
        self.timesteps = timesteps
        self.species = species
        self.slope = slope
        self.advection = advection
        self.seed = seed
        self._spectra: list[np.ndarray] = []
        rng = np.random.default_rng(seed)
        nz, ny, nx = self.shape
        kz = np.fft.fftfreq(nz)[:, None, None]
        ky = np.fft.fftfreq(ny)[None, :, None]
        kx = np.fft.rfftfreq(nx)[None, None, :]
        k2 = kz**2 + ky**2 + kx**2
        k2[0, 0, 0] = np.inf  # zero the mean mode
        amplitude = k2 ** (-slope / 4.0)  # |F|^2 ~ k^-slope/... per mode
        self._k = (kz, ky, kx)
        for _s in range(species):
            phase = rng.uniform(0, 2 * np.pi, size=amplitude.shape)
            noise = rng.normal(size=amplitude.shape)
            self._spectra.append(amplitude * (1 + 0.1 * noise) * np.exp(1j * phase))
        self._cache: dict[tuple[int, int], np.ndarray] = {}

    # -- sizes -------------------------------------------------------------
    @property
    def points_per_field(self) -> int:
        """Grid points in one (timestep, species) field."""
        nz, ny, nx = self.shape
        return nz * ny * nx

    @property
    def bytes_per_field(self) -> int:
        """Bytes of one scalar field (float32)."""
        return self.points_per_field * BYTES_PER_POINT

    # -- generation ----------------------------------------------------------
    def field(self, timestep: int, species: int = 0) -> np.ndarray:
        """The full scalar field, normalised to zero mean / unit std."""
        self._check(timestep, species)
        key = (timestep, species)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        kz, ky, kx = self._k
        # Frozen-field advection: a phase ramp shifts the whole pattern.
        shift = self.advection * timestep * np.asarray(self.shape)
        ramp = np.exp(
            -2j * np.pi * (kz * shift[0] + ky * shift[1] + kx * shift[2])
        )
        spec = self._spectra[species] * ramp
        field = np.fft.irfftn(spec, s=self.shape, axes=(0, 1, 2))
        std = field.std()
        if std > 0:
            field = field / std
        out = field.astype(np.float32)
        self._cache[key] = out
        return out

    def chunk_field(
        self, chunk: ChunkSpec, timestep: int, species: int = 0
    ) -> np.ndarray:
        """The field restricted to one chunk (slices the cached field)."""
        return self.field(timestep, species)[chunk.slices()]

    def _check(self, timestep: int, species: int) -> None:
        if not 0 <= timestep < self.timesteps:
            raise DataError(f"timestep {timestep} outside [0, {self.timesteps})")
        if not 0 <= species < self.species:
            raise DataError(f"species {species} outside [0, {self.species})")

    def __repr__(self) -> str:
        return (
            f"<SpectralDataset {self.shape} x{self.timesteps} steps "
            f"slope={self.slope:.2f}>"
        )
