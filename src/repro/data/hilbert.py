"""N-dimensional Hilbert curve encoding/decoding (Skilling's algorithm).

The paper declusters each dataset "across 64 data files using a Hilbert
curve-based declustering algorithm [14]" (Faloutsos & Bhagwat).  This module
provides the curve itself: a bijection between non-negative integers and
lattice points that preserves locality, implemented with John Skilling's
transpose-based method (AIP Conf. Proc. 707, 2004) — compact, exact, and
valid for any dimension count and order.

Coordinates are ``ndim`` integers in ``[0, 2**order)``; indices are integers
in ``[0, 2**(order*ndim))``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import DataError

__all__ = ["hilbert_index", "hilbert_point", "hilbert_sort_key"]


def _validate(order: int, ndim: int) -> None:
    if order < 1:
        raise DataError(f"order must be >= 1, got {order}")
    if ndim < 1:
        raise DataError(f"ndim must be >= 1, got {ndim}")


def hilbert_index(coords: Sequence[int], order: int) -> int:
    """Map a lattice point to its position along the Hilbert curve.

    Parameters
    ----------
    coords:
        ``ndim`` integers, each in ``[0, 2**order)``.
    order:
        Bits per dimension.
    """
    ndim = len(coords)
    _validate(order, ndim)
    x = list(coords)
    for i, c in enumerate(x):
        if not 0 <= c < (1 << order):
            raise DataError(
                f"coordinate {i} = {c} outside [0, {1 << order}) for "
                f"order {order}"
            )
    # Inverse undo excess work (Skilling's transpose-to-axes inverse).
    m = 1 << (order - 1)
    q = m
    while q > 1:
        p = q - 1
        for i in range(ndim):
            if x[i] & q:
                x[0] ^= p  # invert
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode.
    for i in range(1, ndim):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[ndim - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(ndim):
        x[i] ^= t
    # Interleave bits: dimension 0 holds the most significant bit.
    index = 0
    for bit in range(order - 1, -1, -1):
        for i in range(ndim):
            index = (index << 1) | ((x[i] >> bit) & 1)
    return index


def hilbert_point(index: int, order: int, ndim: int) -> tuple[int, ...]:
    """Map a curve position back to its lattice point (inverse of
    :func:`hilbert_index`)."""
    _validate(order, ndim)
    total_bits = order * ndim
    if not 0 <= index < (1 << total_bits):
        raise DataError(
            f"index {index} outside [0, 2**{total_bits}) for "
            f"order {order}, ndim {ndim}"
        )
    # De-interleave bits into the transposed form.
    x = [0] * ndim
    for bitpos in range(total_bits):
        bit = (index >> (total_bits - 1 - bitpos)) & 1
        dim = bitpos % ndim
        x[dim] = (x[dim] << 1) | bit
    # Gray decode (Skilling's transpose-to-axes).
    n = 2 << (order - 1)
    t = x[ndim - 1] >> 1
    for i in range(ndim - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t
    # Undo excess work.
    q = 2
    while q != n:
        p = q - 1
        for i in range(ndim - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return tuple(x)


def hilbert_sort_key(order: int):
    """Return a key function sorting integer points into Hilbert order."""

    def key(coords: Sequence[int]) -> int:
        return hilbert_index(coords, order)

    return key
