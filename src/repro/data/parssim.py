"""Synthetic ParSSim-like reactive-transport datasets.

The paper's datasets are outputs of ParSSim, the parallel subsurface
simulator from TICAM: scalar concentration fields of several chemical
species on a rectilinear grid, evolving over timesteps.  We cannot ship
those outputs, so this module generates fields with the same character:
smooth plumes of each species advected through the domain by a steady flow,
spreading and decaying over time (think tracer transport in groundwater).

Fields are deterministic functions of ``(seed, timestep, species)`` so any
chunk can be materialised independently — exactly what declustered storage
needs — and small enough grids run in milliseconds for tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.chunks import BYTES_PER_POINT, ChunkSpec
from repro.errors import DataError

__all__ = ["PlumeSpec", "ParSSimDataset"]


@dataclass(frozen=True)
class PlumeSpec:
    """One Gaussian plume: an injected solute packet advected by the flow."""

    center: tuple[float, float, float]  # fractional domain coordinates
    velocity: tuple[float, float, float]  # fractional units per timestep
    sigma: float  # plume radius, fractional
    amplitude: float
    growth: float  # sigma multiplier per timestep (dispersion)


class ParSSimDataset:
    """A synthetic multi-species, multi-timestep scalar dataset.

    Parameters
    ----------
    shape:
        Grid points per axis, (nz, ny, nx).
    timesteps:
        Number of stored timesteps.
    species:
        Number of chemical species (the paper's datasets have four).
    plumes_per_species:
        Gaussian packets per species.
    seed:
        Reproducibility seed; identical seeds give identical datasets.
    """

    def __init__(
        self,
        shape: tuple[int, int, int],
        timesteps: int = 10,
        species: int = 4,
        plumes_per_species: int = 3,
        seed: int = 0,
    ):
        if len(shape) != 3 or any(s < 2 for s in shape):
            raise DataError(f"shape must be 3 axes of >= 2 points, got {shape}")
        if timesteps < 1 or species < 1 or plumes_per_species < 1:
            raise DataError("timesteps, species, plumes_per_species must be >= 1")
        self.shape = tuple(int(s) for s in shape)
        self.timesteps = timesteps
        self.species = species
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._plumes: list[list[PlumeSpec]] = []
        for _s in range(species):
            plumes = []
            for _p in range(plumes_per_species):
                plumes.append(
                    PlumeSpec(
                        center=tuple(rng.uniform(0.15, 0.5, size=3)),
                        velocity=tuple(rng.uniform(0.01, 0.05, size=3)),
                        sigma=float(rng.uniform(0.06, 0.14)),
                        amplitude=float(rng.uniform(0.6, 1.0)),
                        growth=float(rng.uniform(1.01, 1.06)),
                    )
                )
            self._plumes.append(plumes)

    # -- sizes -------------------------------------------------------------
    @property
    def points_per_field(self) -> int:
        """Grid points in one (timestep, species) field."""
        nz, ny, nx = self.shape
        return nz * ny * nx

    @property
    def bytes_per_field(self) -> int:
        """Bytes of one scalar field (float32)."""
        return self.points_per_field * BYTES_PER_POINT

    @property
    def total_bytes(self) -> int:
        """Whole-dataset size across all timesteps and species."""
        return self.bytes_per_field * self.timesteps * self.species

    # -- field generation ----------------------------------------------------
    def field(self, timestep: int, species: int = 0) -> np.ndarray:
        """The full scalar field at ``timestep`` for ``species`` (float32).

        Values are normalised concentrations in ``[0, ~1]``.
        """
        self._check(timestep, species)
        nz, ny, nx = self.shape
        z = np.linspace(0.0, 1.0, nz, dtype=np.float64)[:, None, None]
        y = np.linspace(0.0, 1.0, ny, dtype=np.float64)[None, :, None]
        x = np.linspace(0.0, 1.0, nx, dtype=np.float64)[None, None, :]
        return self._evaluate(timestep, species, z, y, x)

    def chunk_field(
        self, chunk: ChunkSpec, timestep: int, species: int = 0
    ) -> np.ndarray:
        """The scalar field restricted to one chunk (float32).

        Bit-identical to slicing :meth:`field` with ``chunk.slices()``.
        """
        self._check(timestep, species)
        nz, ny, nx = self.shape
        axes = []
        for extent, (a, b) in zip((nz, ny, nx), zip(chunk.start, chunk.stop)):
            full = np.linspace(0.0, 1.0, extent, dtype=np.float64)
            axes.append(full[a:b])
        z = axes[0][:, None, None]
        y = axes[1][None, :, None]
        x = axes[2][None, None, :]
        return self._evaluate(timestep, species, z, y, x)

    def _evaluate(self, timestep, species, z, y, x) -> np.ndarray:
        total = np.zeros(np.broadcast_shapes(z.shape, y.shape, x.shape))
        for plume in self._plumes[species]:
            cz, cy, cx = (
                plume.center[i] + plume.velocity[i] * timestep for i in range(3)
            )
            sigma = plume.sigma * plume.growth**timestep
            # Mass conservation: amplitude shrinks as the plume disperses.
            amp = plume.amplitude * (plume.sigma / sigma) ** 3
            r2 = (z - cz) ** 2 + (y - cy) ** 2 + (x - cx) ** 2
            total += amp * np.exp(-r2 / (2.0 * sigma**2))
        return total.astype(np.float32)

    def _check(self, timestep: int, species: int) -> None:
        if not 0 <= timestep < self.timesteps:
            raise DataError(
                f"timestep {timestep} outside [0, {self.timesteps})"
            )
        if not 0 <= species < self.species:
            raise DataError(f"species {species} outside [0, {self.species})")

    def __repr__(self) -> str:
        return (
            f"<ParSSimDataset {self.shape} x{self.timesteps} steps "
            f"x{self.species} species, {self.total_bytes / 1e6:.1f} MB>"
        )
