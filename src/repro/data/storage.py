"""Storage maps: which host/disk holds which declustered file.

The experiments vary this mapping: uniform partitioning over the nodes in
use (Figures 4-5), data confined to a subset of "data nodes" (Table 5), and
skewed distributions where P% of the Blue-node files move to the Rogue
nodes (Figure 7).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.data.decluster import DataFile
from repro.errors import DataError

__all__ = ["HostDisks", "StorageMap"]


@dataclass(frozen=True)
class HostDisks:
    """A storage target: a host and how many local disks it exposes."""

    host: str
    disks: int = 1

    def __post_init__(self) -> None:
        if self.disks < 1:
            raise DataError(f"host {self.host!r} needs >= 1 disks")


class StorageMap:
    """Assignment of data files to (host, disk) locations."""

    def __init__(self) -> None:
        # file_id -> (DataFile, host, disk_index)
        self._by_file: dict[int, tuple[DataFile, str, int]] = {}

    # -- constructors -----------------------------------------------------
    @classmethod
    def balanced(cls, files: list[DataFile], targets: list[HostDisks]) -> "StorageMap":
        """Deal files round-robin over every (host, disk) slot."""
        if not targets:
            raise DataError("no storage targets")
        slots = [(t.host, d) for t in targets for d in range(t.disks)]
        mapping = cls()
        for i, f in enumerate(files):
            host, disk = slots[i % len(slots)]
            mapping.assign(f, host, disk)
        return mapping

    def skew(
        self,
        from_hosts: list[str],
        to_targets: list[HostDisks],
        fraction: float,
    ) -> "StorageMap":
        """Move ``fraction`` of the files on ``from_hosts`` to ``to_targets``.

        Models the paper's skewed experiment: "we moved P% percent of the
        files from Blue nodes to the Rogue nodes and distributed them evenly
        across the Rogue nodes."  Returns a new map; self is unchanged.
        """
        if not 0.0 <= fraction <= 1.0:
            raise DataError(f"fraction must be in [0, 1], got {fraction}")
        new = StorageMap()
        new._by_file = dict(self._by_file)
        victims = [
            (f, host, disk)
            for f, host, disk in self._by_file.values()
            if host in set(from_hosts)
        ]
        victims.sort(key=lambda rec: rec[0].file_id)
        nmove = round(fraction * len(victims))
        slots = [(t.host, d) for t in to_targets for d in range(t.disks)]
        if nmove and not slots:
            raise DataError("no destination targets for skew")
        for i, (f, _h, _d) in enumerate(victims[:nmove]):
            host, disk = slots[i % len(slots)]
            new.assign(f, host, disk)
        return new

    # -- mutation ------------------------------------------------------------
    def assign(self, data_file: DataFile, host: str, disk: int = 0) -> None:
        """Place (or re-place) one file."""
        if disk < 0:
            raise DataError(f"disk index must be >= 0, got {disk}")
        self._by_file[data_file.file_id] = (data_file, host, disk)

    # -- queries ---------------------------------------------------------------
    def files_on(self, host: str) -> list[tuple[DataFile, int]]:
        """(file, disk) pairs stored on ``host``, in file-id order."""
        found = [
            (f, disk)
            for f, h, disk in self._by_file.values()
            if h == host
        ]
        found.sort(key=lambda rec: rec[0].file_id)
        return found

    def bytes_on(self, host: str) -> int:
        """Total bytes stored on ``host``."""
        return sum(f.nbytes for f, _d in self.files_on(host))

    def hosts(self) -> list[str]:
        """Hosts holding at least one file, sorted."""
        return sorted({h for _f, h, _d in self._by_file.values()})

    def location(self, file_id: int) -> tuple[str, int]:
        """(host, disk) of one file."""
        try:
            _f, host, disk = self._by_file[file_id]
        except KeyError:
            raise DataError(f"unknown file id {file_id}") from None
        return (host, disk)

    def total_files(self) -> int:
        """Number of placed files."""
        return len(self._by_file)

    def distribution(self) -> dict[str, int]:
        """host -> file count (diagnostics)."""
        counts: dict[str, int] = defaultdict(int)
        for _f, host, _d in self._by_file.values():
            counts[host] += 1
        return dict(counts)
