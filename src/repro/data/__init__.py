"""Dataset substrate: synthetic ParSSim-like fields, grid chunking,
Hilbert-curve declustering, and storage placement."""

from repro.data.chunks import BYTES_PER_POINT, ChunkSpec, partition_counts, partition_grid
from repro.data.decluster import DataFile, decluster
from repro.data.diskstore import DeclusteredStore
from repro.data.hilbert import hilbert_index, hilbert_point, hilbert_sort_key
from repro.data.parssim import ParSSimDataset, PlumeSpec
from repro.data.spectral import SpectralDataset
from repro.data.storage import HostDisks, StorageMap

__all__ = [
    "BYTES_PER_POINT",
    "ChunkSpec",
    "DataFile",
    "DeclusteredStore",
    "HostDisks",
    "ParSSimDataset",
    "PlumeSpec",
    "SpectralDataset",
    "StorageMap",
    "decluster",
    "hilbert_index",
    "hilbert_point",
    "hilbert_sort_key",
    "partition_counts",
    "partition_grid",
]
