"""On-disk declustered storage: real files for the Read filter.

The paper's datasets were "declustered across 64 data files ... and these
files were distributed across the disks".  This module materialises that
layout: :meth:`DeclusteredStore.write` serialises a synthetic dataset's
chunks into one binary file per declustered :class:`~repro.data.decluster.
DataFile` (per timestep and species), with a JSON manifest describing the
layout; :meth:`DeclusteredStore.open` reads it back lazily via memory maps.

A store quacks like a dataset (``shape`` / ``timesteps`` / ``species`` /
``chunk_field``), so it drops straight into
:class:`~repro.viz.app.IsosurfaceApp` as the ``dataset`` — the threaded
Read filter then performs real file I/O for every chunk it streams.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.data.chunks import ChunkSpec
from repro.errors import DataError

__all__ = ["DeclusteredStore"]

_MANIFEST = "manifest.json"
_FORMAT_VERSION = 1


def _bin_name(file_id: int, timestep: int, species: int) -> str:
    return f"t{timestep:03d}_s{species:02d}_f{file_id:03d}.bin"


class DeclusteredStore:
    """A directory of declustered chunk files plus a manifest.

    Use :meth:`write` to create one from any dataset/profile pair, and
    :meth:`open` to attach to an existing directory.
    """

    def __init__(self, directory: Path, manifest: dict):
        self.directory = Path(directory)
        self._manifest = manifest
        self.shape: tuple[int, int, int] = tuple(manifest["shape"])
        self.timesteps: int = manifest["timesteps"]
        self.species: int = manifest["species"]
        # chunk_id -> (file_id, offset bytes, shape)
        self._chunks: dict[int, tuple[int, int, tuple[int, int, int]]] = {
            entry["id"]: (entry["file"], entry["offset"], tuple(entry["shape"]))
            for entry in manifest["chunks"]
        }
        self._maps: dict[str, np.memmap] = {}

    # -- creation ------------------------------------------------------------
    @classmethod
    def write(
        cls,
        dataset,
        profile,
        directory: str | Path,
        timesteps: list[int] | None = None,
        species: list[int] | None = None,
    ) -> "DeclusteredStore":
        """Materialise ``profile``'s declustered layout of ``dataset``.

        ``dataset`` is any object with ``chunk_field(chunk, t, s)`` (the
        synthetic generators or another store); ``profile`` supplies the
        chunk grid and file assignment.  ``timesteps``/``species`` default
        to everything the dataset stores.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        steps = list(timesteps if timesteps is not None else range(dataset.timesteps))
        specs = list(species if species is not None else range(dataset.species))
        if not steps or not specs:
            raise DataError("need at least one timestep and species")

        chunk_entries = []
        offsets_known = False
        for local_t, t in enumerate(steps):
            for local_sp, sp in enumerate(specs):
                for data_file in profile.files:
                    offset = 0
                    # Files are named by *store-local* indices so a store
                    # written from a timestep subset reads back as 0..n-1.
                    path = directory / _bin_name(
                        data_file.file_id, local_t, local_sp
                    )
                    with open(path, "wb") as fh:
                        for chunk in data_file.chunks:
                            scalars = np.ascontiguousarray(
                                dataset.chunk_field(chunk, t, sp),
                                dtype=np.float32,
                            )
                            if scalars.shape != chunk.shape:
                                raise DataError(
                                    f"chunk {chunk.chunk_id}: dataset produced "
                                    f"{scalars.shape}, expected {chunk.shape}"
                                )
                            fh.write(scalars.tobytes())
                            if not offsets_known:
                                chunk_entries.append(
                                    {
                                        "id": chunk.chunk_id,
                                        "index": list(chunk.index),
                                        "start": list(chunk.start),
                                        "stop": list(chunk.stop),
                                        "file": data_file.file_id,
                                        "offset": offset,
                                        "shape": list(chunk.shape),
                                    }
                                )
                            offset += scalars.nbytes
                # The layout is identical for every (timestep, species);
                # chunk offsets are recorded once, on the first pass.
                offsets_known = True

        manifest = {
            "version": _FORMAT_VERSION,
            "shape": list(profile.grid_shape),
            "timesteps": len(steps),
            "species": len(specs),
            "chunks": chunk_entries,
        }
        with open(directory / _MANIFEST, "w") as fh:
            json.dump(manifest, fh)
        return cls(directory, manifest)

    @classmethod
    def open(cls, directory: str | Path) -> "DeclusteredStore":
        """Attach to an existing store directory."""
        directory = Path(directory)
        manifest_path = directory / _MANIFEST
        if not manifest_path.exists():
            raise DataError(f"no manifest in {directory}")
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        if manifest.get("version") != _FORMAT_VERSION:
            raise DataError(
                f"unsupported store version {manifest.get('version')!r}"
            )
        return cls(directory, manifest)

    # -- dataset interface -------------------------------------------------
    def chunk_field(
        self, chunk: ChunkSpec, timestep: int, species: int = 0
    ) -> np.ndarray:
        """Read one chunk's scalars from its declustered file."""
        if not 0 <= timestep < self.timesteps:
            raise DataError(f"timestep {timestep} outside [0, {self.timesteps})")
        if not 0 <= species < self.species:
            raise DataError(f"species {species} outside [0, {self.species})")
        try:
            file_id, offset, shape = self._chunks[chunk.chunk_id]
        except KeyError:
            raise DataError(f"unknown chunk id {chunk.chunk_id}") from None
        path = self.directory / _bin_name(file_id, timestep, species)
        key = path.name
        mm = self._maps.get(key)
        if mm is None:
            if not path.exists():
                raise DataError(f"missing store file {path}")
            mm = np.memmap(path, dtype=np.float32, mode="r")
            self._maps[key] = mm
        count = shape[0] * shape[1] * shape[2]
        start = offset // 4
        data = np.asarray(mm[start : start + count])
        if data.size != count:
            raise DataError(
                f"store file {path} truncated (chunk {chunk.chunk_id})"
            )
        return data.reshape(shape)

    def field(self, timestep: int, species: int = 0) -> np.ndarray:
        """Reassemble the full grid from its chunks (tests/diagnostics)."""
        full = np.zeros(self.shape, dtype=np.float32)
        for entry in self._manifest["chunks"]:
            chunk = ChunkSpec(
                entry["id"],
                tuple(entry["index"]),
                tuple(entry["start"]),
                tuple(entry["stop"]),
            )
            full[chunk.slices()] = self.chunk_field(chunk, timestep, species)
        return full

    def total_bytes(self) -> int:
        """Bytes on disk across all store files."""
        return sum(
            p.stat().st_size for p in self.directory.glob("*.bin")
        )

    def __repr__(self) -> str:
        return (
            f"<DeclusteredStore {self.directory} shape={self.shape} "
            f"x{self.timesteps} steps x{self.species} species>"
        )
