"""Partitioning rectilinear grids into equal sub-volumes (chunks).

The paper partitions each timestep's grid into equal sub-volumes (1536 for
the 1.5 GB dataset, 24 576 for the 25 GB dataset).  A :class:`ChunkSpec`
identifies one sub-volume: its integer lattice position in the chunk grid,
its grid-point slice ranges, and its size in bytes.

Chunks overlap by one grid point along each axis (configurable) so marching
cubes can emit the triangles of boundary cells without inter-chunk
communication — the standard ghost-layer arrangement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DataError

__all__ = ["ChunkSpec", "partition_grid", "partition_counts"]

BYTES_PER_POINT = 4  # float32 scalar field


@dataclass(frozen=True)
class ChunkSpec:
    """One sub-volume of a timestep's grid.

    ``index`` is the chunk's (iz, iy, ix) position in the chunk grid;
    ``start``/``stop`` are grid-point slice bounds per axis (stop exclusive),
    including the ghost overlap.
    """

    chunk_id: int
    index: tuple[int, int, int]
    start: tuple[int, int, int]
    stop: tuple[int, int, int]

    @property
    def shape(self) -> tuple[int, int, int]:
        """Grid points per axis, including ghost layers."""
        return tuple(b - a for a, b in zip(self.start, self.stop))

    @property
    def points(self) -> int:
        """Total grid points in the chunk."""
        n = 1
        for extent in self.shape:
            n *= extent
        return n

    @property
    def nbytes(self) -> int:
        """Chunk size in bytes (float32 scalars)."""
        return self.points * BYTES_PER_POINT

    def slices(self) -> tuple[slice, slice, slice]:
        """NumPy slices extracting this chunk from a (z, y, x) field."""
        return tuple(slice(a, b) for a, b in zip(self.start, self.stop))


def partition_counts(
    shape: tuple[int, int, int], nchunks: int, exact: bool = True
) -> tuple[int, int, int]:
    """Factor ``nchunks`` into per-axis counts as cubically as possible.

    With ``exact=True``, chooses the factorization ``(cz, cy, cx)`` with
    ``cz*cy*cx == nchunks`` minimising the spread of per-chunk extents,
    preferring more chunks along longer axes; raises :class:`DataError` if
    no factorization fits the grid (each axis needs at least 2 grid points
    per chunk).  With ``exact=False``, falls back to the nearest achievable
    per-axis counts (product approximately ``nchunks``) when no exact
    factorization fits — useful for scaled-down dataset profiles where the
    requested count may be prime.
    """
    if nchunks < 1:
        raise DataError(f"nchunks must be >= 1, got {nchunks}")
    best: tuple[float, tuple[int, int, int]] | None = None
    for cz in _divisors(nchunks):
        rest = nchunks // cz
        for cy in _divisors(rest):
            cx = rest // cy
            counts = (cz, cy, cx)
            if any(c > max(1, s - 1) for c, s in zip(counts, shape)):
                continue
            extents = [s / c for s, c in zip(shape, counts)]
            score = max(extents) / min(extents)
            if best is None or score < best[0]:
                best = (score, counts)
    if best is not None:
        return best[1]
    if not exact:
        volume = shape[0] * shape[1] * shape[2]
        density = (nchunks / volume) ** (1 / 3)
        approx = tuple(
            max(1, min(s - 1, round(s * density))) for s in shape
        )
        if all(1 <= c <= s - 1 for c, s in zip(approx, shape)):
            return approx
    raise DataError(f"cannot partition grid {shape} into {nchunks} chunks")


def _divisors(n: int) -> list[int]:
    return [d for d in range(1, n + 1) if n % d == 0]


def partition_grid(
    shape: tuple[int, int, int],
    counts: tuple[int, int, int],
    overlap: int = 1,
) -> list[ChunkSpec]:
    """Split a grid of ``shape`` points into ``counts`` chunks per axis.

    Chunk boundaries are computed by even division of the cell range; each
    chunk is then extended by ``overlap`` grid points at its high side (ghost
    layer), clamped to the grid, so adjacent chunks share boundary cells.
    Chunk ids follow Hilbert-friendly (iz, iy, ix) raster order.
    """
    if len(shape) != 3 or len(counts) != 3:
        raise DataError("shape and counts must be 3-tuples")
    if overlap < 0:
        raise DataError(f"overlap must be >= 0, got {overlap}")
    for s, c in zip(shape, counts):
        if c < 1:
            raise DataError(f"chunk counts must be >= 1, got {counts}")
        if s < 2:
            raise DataError(f"grid extent must be >= 2 points, got {shape}")
        if c > s - 1:
            raise DataError(
                f"{c} chunks along an axis of {s} points leaves empty chunks"
            )
    # Split the *cells* (shape-1 per axis) evenly; chunk points = cells + 1.
    bounds = []
    for s, c in zip(shape, counts):
        cells = s - 1
        cuts = [round(i * cells / c) for i in range(c + 1)]
        bounds.append(cuts)
    chunks: list[ChunkSpec] = []
    cid = 0
    for iz in range(counts[0]):
        for iy in range(counts[1]):
            for ix in range(counts[2]):
                idx = (iz, iy, ix)
                start = tuple(bounds[d][idx[d]] for d in range(3))
                stop = tuple(
                    min(bounds[d][idx[d] + 1] + overlap, shape[d]) for d in range(3)
                )
                chunks.append(ChunkSpec(cid, idx, start, stop))
                cid += 1
    return chunks
