"""Automatic placement: the paper's "automate some of these steps".

Section 2's footnote: "We are in the process of examining various
mechanisms to automate some of these steps" — the steps being (1) the
decomposition into filters, (2) placement on hosts, and (3) how many
transparent copies to run.  This module automates (2) and (3) for a given
decomposition:

1. estimate each filter's total CPU work for one unit of work from the
   dataset profile and the calibrated cost constants (the same arithmetic
   the simulated models charge);
2. pin source filters to the hosts holding their data, one copy per local
   disk (keeps every spindle busy);
3. give the *bottleneck* worker filter one copy per core on every compute
   host (the paper's manual choice for Raster), lighter workers one copy
   per host;
4. run the single Merge copy on the fastest compute host;
5. verify the result against host RAM with the engine's memory audit and
   shed copies from oversubscribed hosts until the estimate fits.

`auto_place` returns the placement plus the evidence behind it
(:class:`PlacementAdvice`), so callers can inspect or override.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.graph import FilterGraph
from repro.core.placement import Placement
from repro.errors import PlacementError
from repro.sim.cluster import Cluster
from repro.viz.app import IsosurfaceApp
from repro.viz.raster import ZBUFFER_ENTRY_BYTES

__all__ = ["PlacementAdvice", "estimate_filter_seconds", "auto_place"]


@dataclass
class PlacementAdvice:
    """An automatic placement and the reasoning that produced it."""

    placement: Placement
    estimates: dict[str, float]  # filter -> reference core-seconds
    bottleneck: str
    merge_host: str
    notes: list[str] = field(default_factory=list)


def estimate_filter_seconds(
    app: IsosurfaceApp, configuration: str
) -> dict[str, float]:
    """Per-filter CPU work (reference core-seconds) for one unit of work.

    Uses the same constants the simulated models charge, summed over the
    whole timestep, so the estimate matches what the engine will replay.
    """
    profile = app.profile
    costs = app.costs
    t = app.timestep
    total_bytes = profile.bytes_per_timestep
    total_voxels = sum(c.points for c in profile.chunks)
    tris = profile.total_triangles(t)
    frags = tris * costs.fragments_per_triangle(app.width, app.height)
    entries = frags * costs.ap_entry_ratio
    pixels = app.width * app.height

    read = total_bytes * costs.read_per_byte
    extract = total_voxels * costs.extract_per_voxel + tris * costs.extract_per_triangle
    raster = tris * costs.raster_per_triangle + frags * costs.raster_per_fragment
    if app.algorithm == "active":
        raster += entries * costs.ap_per_entry
        merge = entries * costs.merge_ap_per_entry
    else:
        raster += pixels * ZBUFFER_ENTRY_BYTES * costs.zb_send_per_byte
        merge = pixels * costs.merge_zb_per_entry

    by_stage = {"R": read, "E": extract, "Ra": raster, "M": merge}
    composed = {
        "RE": read + extract,
        "ERa": extract + raster,
        "RERa": read + extract + raster,
    }
    graph = app.graph(configuration)
    estimates = {}
    for name in graph.filters:
        if name in by_stage:
            estimates[name] = by_stage[name]
        elif name in composed:
            estimates[name] = composed[name]
        else:  # pragma: no cover - unknown custom filter
            estimates[name] = 0.0
    return estimates


def auto_place(
    app: IsosurfaceApp,
    configuration: str,
    cluster: Cluster,
    compute_hosts: list[str] | None = None,
    respect_memory: bool = True,
) -> PlacementAdvice:
    """Derive a placement for ``configuration`` on ``cluster``.

    ``compute_hosts`` limits where worker filters (and Merge) may run;
    default is every host holding data.  Raises
    :class:`~repro.errors.PlacementError` when the storage map references
    hosts the cluster does not have.
    """
    graph: FilterGraph = app.graph(configuration)
    data_hosts = app.storage.hosts()
    if not data_hosts:
        raise PlacementError("storage map is empty")
    for host in data_hosts:
        if host not in cluster.hosts:
            raise PlacementError(f"data on unknown host {host!r}")
    compute_hosts = list(compute_hosts or data_hosts)
    estimates = estimate_filter_seconds(app, configuration)

    workers = [
        spec.name
        for spec in graph.filters.values()
        if not spec.is_source and spec.outputs  # neither source nor sink
    ]
    sinks = [spec.name for spec in graph.filters.values() if not spec.outputs]
    bottleneck = max(
        workers or sinks, key=lambda name: estimates.get(name, 0.0)
    )
    # Fastest compute host gets the Merge copy (it also receives every
    # pixel buffer, so give it the best CPU).
    merge_host = max(
        compute_hosts, key=lambda h: cluster.host(h).cores * cluster.host(h).speed
    )

    advice = PlacementAdvice(
        Placement(), estimates, bottleneck, merge_host,
    )
    placement = advice.placement
    for spec in graph.filters.values():
        if spec.is_source:
            # One copy per local disk keeps every spindle streaming.
            placement.place(
                spec.name,
                [
                    (h, max(1, len(cluster.host(h).disks)))
                    for h in data_hosts
                ],
            )
        elif spec.name in sinks:
            placement.place(spec.name, [merge_host])
        elif spec.name == bottleneck:
            placement.place(
                spec.name,
                [(h, cluster.host(h).cores) for h in compute_hosts],
            )
            advice.notes.append(
                f"{spec.name} is the bottleneck "
                f"({estimates[spec.name]:.2f}s): one copy per core"
            )
        else:
            placement.spread(spec.name, compute_hosts)

    if respect_memory:
        _shed_for_memory(app, graph, cluster, advice)
    return advice


def _shed_for_memory(
    app: IsosurfaceApp,
    graph: FilterGraph,
    cluster: Cluster,
    advice: PlacementAdvice,
) -> None:
    """Reduce bottleneck copies on hosts the memory audit flags."""
    from repro.engines.simulated import SimulatedEngine

    bottleneck = advice.bottleneck
    for _round in range(16):
        engine = SimulatedEngine(cluster, graph, advice.placement)
        over = engine.oversubscribed_hosts()
        if not over:
            return
        shrunk = False
        current = {
            cs.host: cs.copies
            for cs in advice.placement.copysets(bottleneck)
        }
        for host in over:
            if current.get(host, 1) > 1:
                current[host] -= 1
                shrunk = True
                advice.notes.append(
                    f"reduced {bottleneck} copies on {host} to "
                    f"{current[host]} (memory audit)"
                )
        if not shrunk:
            advice.notes.append(
                f"hosts {over} remain over their RAM estimate with minimal "
                f"copies; placement kept"
            )
            return
        advice.placement.place(bottleneck, list(current.items()))
