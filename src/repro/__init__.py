"""repro — reproduction of Beynon et al., *Efficient Manipulation of Large
Datasets on Heterogeneous Storage Systems* (IPPS 2002).

The package provides:

- :mod:`repro.sim` — a deterministic discrete-event cluster substrate
  (processor-sharing CPUs, disks, max-min-fair networks, UMD testbed model);
- :mod:`repro.core` — the DataCutter-style filter/stream framework with
  transparent copies and the RR / WRR / DD writer policies;
- :mod:`repro.engines` — execution engines: a simulated engine for
  scheduling studies and a threaded engine for real local runs;
- :mod:`repro.viz` — the isosurface-rendering application (marching cubes,
  z-buffer and active-pixel rasterisation, merge);
- :mod:`repro.data` — synthetic ParSSim-like datasets, Hilbert-curve
  declustering, and storage placement;
- :mod:`repro.adr` — the Active Data Repository baseline;
- :mod:`repro.experiments` — generators for every table and figure in the
  paper's evaluation section, plus extension experiments;
- :mod:`repro.planner` — automatic placement (the paper's "automate some of
  these steps" future work);
- :mod:`repro.cli` — the ``repro`` command-line interface.
"""

from repro._version import __version__

__all__ = ["__version__"]
