"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation kernel."""


class Interrupt(SimulationError):
    """Raised inside a simulated process that has been interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.kernel.Process.interrupt`.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class GraphError(ReproError):
    """Errors in filter-graph construction or validation."""


class PlacementError(ReproError):
    """Errors in mapping filters (or their copies) to hosts."""


class StreamClosedError(ReproError):
    """Raised when writing to a stream whose consumers have all finished."""


class EngineError(ReproError):
    """Errors raised by an execution engine while running a filter graph.

    When a multi-UOW run fails part-way, engines attach the partial
    per-cycle metrics and every collected error so callers (``repro
    serve``, the warm pool) can fail one query without losing the batch:

    ``metrics``
        One ``RunMetrics`` per submitted unit of work, fully merged for
        healthy cycles (empty when the failure predates any merge).
    ``errors``
        Human-readable strings, one per failed copy/cycle, in collection
        order; the exception message quotes the first.
    """

    def __init__(
        self,
        message: str = "",
        *,
        metrics: list[object] | None = None,
        errors: list[str] | None = None,
    ):
        super().__init__(message)
        self.metrics: list[object] = metrics if metrics is not None else []
        self.errors: list[str] = errors if errors is not None else []


class DataError(ReproError):
    """Errors in dataset generation, chunking, or declustering."""


class ConfigurationError(ReproError):
    """Invalid user-supplied configuration (cluster, policy, experiment)."""


class MetricsError(ReproError):
    """Run-metrics consistency violation (see ``RunMetrics.validate``)."""


class AnalysisError(ReproError):
    """A static-analysis pass found ERROR-level diagnostics.

    Raised by :meth:`repro.analysis.DiagnosticReport.raise_errors` for
    diagnostics that do not map onto a more specific error type
    (:class:`GraphError` for graph-scope rules, :class:`PlacementError` for
    placement-scope rules).  The ``report`` attribute carries the full
    :class:`repro.analysis.DiagnosticReport`.
    """

    def __init__(self, message: str, report: object = None):
        super().__init__(message)
        self.report = report
