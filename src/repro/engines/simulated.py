"""Simulated execution engine.

Runs a placed :class:`repro.core.graph.FilterGraph` over a
:class:`repro.sim.cluster.Cluster`: every transparent copy becomes a DES
process that pulls buffers from its copy set's shared queue, charges CPU via
its host's processor-sharing CPU, and routes output buffers through a writer
policy (RR / WRR / DD) to downstream copy sets over the simulated network.

Fidelity notes (mapped to the paper):

- *Copy sets share one queue per host* — demand-based balance within a host
  (Section 2): all copies of a filter on one host pull from one Store.
- *End-of-work markers* — each producer copy, once done, sends a zero-byte
  message to every consumer copy set; a copy set closes after one marker per
  producer copy per input stream.
- *Demand-driven acks* — a consumer sends a small acknowledgment message to
  the producing copy when it dequeues a buffer (i.e. when processing starts),
  paying network latency and per-message overhead; the producer's DD window
  blocks it when all copy sets have a full window.
- *Backpressure* — queues are bounded; a producer's send blocks until the
  destination queue accepts the buffer, so a slow consumer throttles the
  whole pipeline exactly as a TCP stream would.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass
from typing import Any

from repro.core.buffer import DataBuffer
from repro.core.filter import FilterContext, SimFilter, SimSource
from repro.core.graph import FilterGraph
from repro.core.instrument import DEFAULT_ACK_BYTES, CopyStats, RunMetrics
from repro.core.placement import Placement
from repro.core.policies import PolicyFactory, Target, make_policy_factory
from repro.core.tracing import Tracer
from repro.engines.base import Engine, emit_analysis_events, validate_run_setup
from repro.errors import EngineError, StreamClosedError
from repro.sim.cluster import Cluster
from repro.sim.kernel import Environment, Event
from repro.sim.store import Store

__all__ = ["SimulatedEngine", "PendingRun", "run_concurrent"]

#: Default per-copy-set queue capacity (buffers).
DEFAULT_QUEUE_CAPACITY = 8

#: Conservative per-queued-buffer memory estimate for the audit (the
#: largest default stream buffer is the 2 MiB z-buffer slab).
_QUEUE_BUFFER_ESTIMATE = 2 * 1024 * 1024


@dataclass
class _Envelope:
    """A buffer in flight, with the routing info the consumer needs."""

    buffer: DataBuffer
    stream: str
    writer: "_Writer | None"  # ack destination (None unless policy needs acks)
    target: Target | None
    sent_at: float = 0.0  # producer clock at send, for ack-latency tracing


class _Writer:
    """Producer-side router for one (copy, output stream) pair."""

    __slots__ = ("env", "policy", "targets", "copysets", "ack_event", "host", "label")

    def __init__(self, env: Environment, host: str, policy, copysets, label: str = ""):
        self.env = env
        self.host = host
        self.label = label or host
        self.policy = policy
        policy.clock = lambda: env.now  # time-aware policies see sim time
        self.copysets = copysets  # parallel to policy targets
        targets = [
            Target(i, cs.host, cs.copies, local=(cs.host == host))
            for i, cs in enumerate(copysets)
        ]
        policy.bind(targets)
        self.targets = targets
        self.ack_event = Event(env)

    def copyset_for(self, target: Target):
        """The copy-set runtime behind a policy target."""
        return self.copysets[target.index]

    def deliver_ack(self, target: Target) -> None:
        """Called when an ack message arrives back at the producer host."""
        self.policy.on_ack(target)
        pending = self.ack_event
        self.ack_event = Event(self.env)
        pending.succeed(None)


class _CopySetRuntime:
    """Per-(filter, host) state: the shared queue and EOW accounting."""

    def __init__(
        self,
        env: Environment,
        filter_name: str,
        host: str,
        copies: int,
        capacity: int,
        expected_eow: int,
    ):
        self.filter_name = filter_name
        self.host = host
        self.copies = copies
        self.store = Store(env, capacity=capacity, name=f"{filter_name}@{host}")
        self.expected_eow = expected_eow
        self.eow_seen = 0

    def producer_finished(self) -> None:
        """Count one upstream end-of-work marker; close when all arrived."""
        self.eow_seen += 1
        if self.eow_seen > self.expected_eow:  # pragma: no cover - protocol bug
            raise EngineError(
                f"{self.filter_name}@{self.host}: more EOW markers than producers"
            )
        if self.eow_seen == self.expected_eow:
            self.store.close()


class SimulatedEngine(Engine):
    """Execute a filter graph on the simulated cluster.

    Parameters
    ----------
    cluster:
        A finalized :class:`Cluster`; its environment provides the clock.
    graph:
        The logical filter graph.  Every non-source filter needs a
        ``sim_factory`` building a :class:`SimFilter`; every source needs one
        building a :class:`SimSource`.
    placement:
        Filter-to-host mapping with copy counts.
    policy:
        Writer policy for all streams: a name (``"RR"``/``"WRR"``/``"DD"``)
        or a :data:`PolicyFactory`.
    policy_overrides:
        Optional per-stream policy (stream name -> name or factory).
    queue_capacity:
        Bounded copy-set queue size in buffers (backpressure depth).
    ack_nbytes:
        Wire size of a DD acknowledgment message.
    tracer:
        Optional :class:`repro.core.tracing.Tracer` recording per-copy
        events in the unified schema (recv / compute / io / send / ack /
        flush / done / blocked) plus queue-depth samples, timestamped in
        simulated seconds.
    """

    def __init__(
        self,
        cluster: Cluster,
        graph: FilterGraph,
        placement: Placement,
        policy: str | PolicyFactory = "DD",
        policy_overrides: dict[str, str | PolicyFactory] | None = None,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        ack_nbytes: int = DEFAULT_ACK_BYTES,
        tracer: "Tracer | None" = None,
        deep_analysis: bool = True,
    ):
        self._default_factory = self._resolve(policy)
        self._stream_factories = {
            name: self._resolve(p) for name, p in (policy_overrides or {}).items()
        }
        self._analysis_report = validate_run_setup(
            graph, placement, queue_capacity, "simulated",
            policy_for=self._policy_for, known_hosts=cluster.hosts,
            factory_slot="sim_factory", deep=deep_analysis,
        )
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.graph = graph
        self.placement = placement
        self.queue_capacity = queue_capacity
        self.ack_nbytes = ack_nbytes
        self.tracer = tracer

    @staticmethod
    def _resolve(policy: str | PolicyFactory) -> PolicyFactory:
        if callable(policy):
            return policy
        return make_policy_factory(policy)

    def _policy_for(self, stream: str) -> PolicyFactory:
        return self._stream_factories.get(stream, self._default_factory)

    # -- planning ----------------------------------------------------------
    def memory_audit(self) -> dict[str, int]:
        """Estimate per-host resident memory of this placement.

        Sums each copy's model-declared footprint
        (:meth:`repro.core.filter.SimFilter.memory_bytes` — accumulators
        such as z-buffers dominate) plus the bounded copy-set queues.
        Compare against ``cluster.host(h).memory``: the paper's Rogue nodes
        have 128 MB, so a few 2048^2 z-buffer copies already oversubscribe
        them, while active-pixel copies stay small.
        """
        audit: dict[str, int] = {name: 0 for name in self.cluster.hosts}
        for name, spec in self.graph.filters.items():
            probe = spec.sim_factory()
            per_copy = int(getattr(probe, "memory_bytes", lambda: 0)())
            for cs in self.placement.copysets(name):
                audit[cs.host] += per_copy * cs.copies
                if spec.inputs:
                    # Shared bounded queue; buffers up to the largest
                    # stream buffer the app uses.
                    audit[cs.host] += self.queue_capacity * _QUEUE_BUFFER_ESTIMATE
        return audit

    def oversubscribed_hosts(self) -> list[str]:
        """Hosts whose estimated footprint exceeds their RAM."""
        audit = self.memory_audit()
        return [
            host
            for host, used in audit.items()
            if used > self.cluster.host(host).memory
        ]

    # -- execution ---------------------------------------------------------
    def launch(self) -> "PendingRun":
        """Spawn this unit of work's processes without driving the clock.

        Use for concurrent workloads: launch several engines on the same
        cluster, then drive them together with :func:`run_concurrent` (or
        ``env.run(until=pending.done)`` manually) and call
        :meth:`PendingRun.finalize` on each.  :meth:`run` is the
        launch-and-drive convenience for a single unit of work.
        """
        env = self.env
        start = env.now
        metrics = RunMetrics()
        metrics.ack_nbytes = self.ack_nbytes
        if self.tracer is not None and not self.tracer.clock:
            self.tracer.clock = "sim"
        emit_analysis_events(self.tracer, self._analysis_report, start)

        # Copy-set runtimes, keyed by (filter, host).
        copysets: dict[str, list[_CopySetRuntime]] = {}
        for name, spec in self.graph.filters.items():
            expected = sum(
                self.placement.total_copies(stream.src) for stream in spec.inputs
            )
            copysets[name] = [
                _CopySetRuntime(
                    env,
                    name,
                    cs.host,
                    cs.copies,
                    capacity=self.queue_capacity,
                    expected_eow=expected,
                )
                for cs in self.placement.copysets(name)
            ]

        results: list[Any] = []
        done_events: list[Event] = []
        for name, spec in self.graph.filters.items():
            sets = copysets[name]
            total_copies = self.placement.total_copies(name)
            for cs_runtime in sets:
                for copy_index in range(cs_runtime.copies):
                    ctx = FilterContext(
                        filter_name=name,
                        host=cs_runtime.host,
                        copy_index=copy_index,
                        copies_on_host=cs_runtime.copies,
                        total_copies=total_copies,
                        output_streams=[s.name for s in spec.outputs],
                        write_fn=_reject_ctx_write,
                    )
                    stats = metrics.new_copy(name, cs_runtime.host, copy_index)
                    label = f"{name}@{cs_runtime.host}#{copy_index}"
                    writers = {
                        s.name: _Writer(
                            env,
                            cs_runtime.host,
                            self._policy_for(s.name)(),
                            copysets[s.dst],
                            label=label,
                        )
                        for s in spec.outputs
                    }
                    if spec.inputs:
                        gen = self._copy_proc(
                            spec, cs_runtime, ctx, stats, writers, metrics, results
                        )
                    else:
                        gen = self._source_proc(
                            spec, cs_runtime, ctx, stats, writers, metrics
                        )
                    done_events.append(
                        env.process(gen, name=f"{name}@{cs_runtime.host}#{copy_index}")
                    )

        finished = env.all_of(done_events)
        return PendingRun(env, finished, metrics, results, start)

    def run(self) -> RunMetrics:
        """Execute one unit of work; returns the run's metrics.

        The engine may be run repeatedly on the same cluster (consecutive
        timesteps); simulated time accumulates, makespan is per-run.
        """
        pending = self.launch()
        self.env.run(until=pending.done)
        return pending.finalize()

    def run_many(self, count: int) -> list[RunMetrics]:
        """Run ``count`` consecutive units of work (e.g. timesteps)."""
        return [self.run() for _ in range(count)]

    # -- copy processes ------------------------------------------------------
    def _source_proc(
        self,
        spec,
        cs_runtime: _CopySetRuntime,
        ctx: FilterContext,
        stats: CopyStats,
        writers: dict[str, _Writer],
        metrics: RunMetrics,
    ) -> Generator[Event, Any, None]:
        state: SimSource = self.graph.filters[spec.name].sim_factory()
        host = self.cluster.host(cs_runtime.host)
        env = self.env
        label = f"{spec.name}@{ctx.host}#{ctx.copy_index}"
        tracer = self.tracer
        for item in state.items(ctx):
            if item.read_bytes:
                t0 = env.now
                if tracer:
                    tracer.record(t0, label, "io", "start")
                yield host.read_disk(
                    item.read_bytes, item.disk_index, sequential=item.sequential
                )
                stats.io_time += env.now - t0
                if tracer:
                    tracer.record(env.now, label, "io", "end")
            if item.cpu:
                t0 = env.now
                if tracer:
                    tracer.record(t0, label, "compute", "start")
                yield host.compute(item.cpu)
                stats.busy_time += env.now - t0
                if tracer:
                    tracer.record(env.now, label, "compute", "end")
            for out in item.outputs:
                yield from self._send(
                    spec.name, ctx.host, stats, writers, out, metrics, label=label
                )
        fcost = state.flush_cost()
        t0 = env.now
        if tracer:
            # Always mark the flush transition (zero-length without cost)
            # so both engines trace the same copy lifecycle.
            tracer.record(t0, label, "flush", "start")
        if fcost:
            yield host.compute(fcost)
            stats.busy_time += env.now - t0
        if tracer:
            tracer.record(env.now, label, "flush", "end")
        for out in state.flush_outputs():
            yield from self._send(
                spec.name, ctx.host, stats, writers, out, metrics, label=label
            )
        yield from self._announce_done(ctx.host, writers)
        stats.finished_at = env.now
        if tracer:
            tracer.record(env.now, label, "done")

    def _copy_proc(
        self,
        spec,
        cs_runtime: _CopySetRuntime,
        ctx: FilterContext,
        stats: CopyStats,
        writers: dict[str, _Writer],
        metrics: RunMetrics,
        results: list[Any],
    ) -> Generator[Event, Any, None]:
        state: SimFilter = self.graph.filters[spec.name].sim_factory()
        state.start(ctx)
        host = self.cluster.host(cs_runtime.host)
        env = self.env
        label = f"{spec.name}@{ctx.host}#{ctx.copy_index}"
        tracer = self.tracer
        while True:
            try:
                envelope: _Envelope = yield cs_runtime.store.get()
            except StreamClosedError:
                break
            stats.buffers_in += 1
            if tracer:
                tracer.record(env.now, label, "recv", envelope.stream)
                tracer.sample_queue(
                    env.now,
                    f"{cs_runtime.filter_name}@{cs_runtime.host}",
                    len(cs_runtime.store),
                )
            if envelope.writer is not None:
                self._send_ack(ctx.host, envelope, metrics)
            cost = state.cost(envelope.buffer)
            if cost:
                t0 = env.now
                if tracer:
                    tracer.record(t0, label, "compute", "start")
                yield host.compute(cost)
                stats.busy_time += env.now - t0
                if tracer:
                    tracer.record(env.now, label, "compute", "end")
            for out in state.react(envelope.buffer):
                yield from self._send(
                    spec.name, ctx.host, stats, writers, out, metrics, label=label
                )
        fcost = state.flush_cost()
        t0 = env.now
        if tracer:
            # Always mark the flush transition (zero-length without cost)
            # so both engines trace the same copy lifecycle.
            tracer.record(t0, label, "flush", "start")
        if fcost:
            yield host.compute(fcost)
            stats.busy_time += env.now - t0
        if tracer:
            tracer.record(env.now, label, "flush", "end")
        for out in state.flush_outputs():
            yield from self._send(
                spec.name, ctx.host, stats, writers, out, metrics, label=label
            )
        yield from self._announce_done(ctx.host, writers)
        if not spec.outputs:
            value = state.result()
            if value is not None:
                results.append(value)
        stats.finished_at = env.now
        if tracer:
            tracer.record(env.now, label, "done")

    # -- buffer movement ------------------------------------------------------
    def _send(
        self,
        filter_name: str,
        src_host: str,
        stats: CopyStats,
        writers: dict[str, _Writer],
        buffer: DataBuffer,
        metrics: RunMetrics,
        stream: str | None = None,
        label: str | None = None,
    ) -> Generator[Event, Any, None]:
        """Route one buffer: pick a copy set, transfer, enqueue."""
        if stream is None:
            stream = buffer.tags.get("stream")
            if stream is None:
                if len(writers) != 1:
                    raise EngineError(
                        f"filter {filter_name!r} has {len(writers)} output "
                        f"streams; model outputs must carry a 'stream' tag"
                    )
                stream = next(iter(writers))
            elif stream not in writers:
                raise EngineError(
                    f"filter {filter_name!r} has no output stream {stream!r}"
                )
        writer = writers[stream]
        tracer = self.tracer
        if label is None:
            label = writer.label
        target = writer.policy.route(buffer.tags)
        if target is None:
            # All windows full: the writer stalls until an ack returns.
            if tracer:
                tracer.record(self.env.now, label, "blocked", "start")
            while target is None:
                pending = writer.ack_event
                yield pending
                target = writer.policy.route(buffer.tags)
            if tracer:
                tracer.record(self.env.now, label, "blocked", "end")
        writer.policy.on_sent(target)
        sent_at = self.env.now
        dst = writer.copyset_for(target)
        yield self.cluster.transfer(src_host, dst.host, buffer.nbytes)
        envelope = _Envelope(
            buffer,
            stream,
            writer if writer.policy.needs_ack else None,
            target if writer.policy.needs_ack else None,
            sent_at=sent_at,
        )
        yield dst.store.put(envelope)
        stats.buffers_out += 1
        # Account traffic at delivery.
        metrics.streams[stream].record(src_host, dst.host, buffer.nbytes)
        if tracer:
            tracer.record(
                self.env.now, label, "send", f"{stream}->{dst.host}"
            )
            tracer.sample_queue(
                self.env.now, f"{dst.filter_name}@{dst.host}", len(dst.store)
            )

    def _send_ack(
        self, consumer_host: str, envelope: _Envelope, metrics: RunMetrics
    ) -> None:
        """Fire-and-forget acknowledgment back to the producing copy."""
        metrics.ack_messages += 1
        metrics.ack_bytes += self.ack_nbytes
        writer, target = envelope.writer, envelope.target
        sent_at = envelope.sent_at
        transfer = self.cluster.transfer(consumer_host, writer.host, self.ack_nbytes)

        def _deliver(_ev: Event) -> None:
            writer.deliver_ack(target)
            if self.tracer:
                # Round-trip latency: producer send to ack delivery.
                self.tracer.record(
                    self.env.now,
                    writer.label,
                    "ack",
                    f"{self.env.now - sent_at:.9f}",
                )

        transfer.callbacks.append(_deliver)

    def _announce_done(
        self, src_host: str, writers: dict[str, _Writer]
    ) -> Generator[Event, Any, None]:
        """Send an end-of-work marker to every downstream copy set."""
        for writer in writers.values():
            for dst in writer.copysets:
                yield self.cluster.transfer(src_host, dst.host, 0)
                dst.producer_finished()


def _reject_ctx_write(stream: str, buffer: DataBuffer) -> None:
    raise EngineError(
        "simulated filter models return outputs from react()/flush_outputs() "
        "instead of calling ctx.write()"
    )


class PendingRun:
    """A launched-but-not-yet-driven unit of work (see ``launch``)."""

    def __init__(self, env, done: Event, metrics: RunMetrics, results, start: float):
        self.env = env
        self.done = done
        self._metrics = metrics
        self._results = results
        self._start = start
        self._finalized = False

    def finalize(self) -> RunMetrics:
        """Seal and return the metrics; call once ``done`` has triggered."""
        if not self.done.triggered:
            raise EngineError("finalize() before the run completed")
        metrics = self._metrics
        if not self._finalized:
            self._finalized = True
            # Makespan ends when this run's last copy finished, not when
            # the whole batch of concurrent runs did.
            finished = max(
                (c.finished_at for c in metrics.copies), default=self.env.now
            )
            metrics.makespan = finished - self._start
            results = self._results
            metrics.result = results[0] if len(results) == 1 else results or None
        return metrics


def run_concurrent(engines: "list[SimulatedEngine]") -> list[RunMetrics]:
    """Run several units of work concurrently on one shared cluster.

    All engines must share the same environment (cluster).  The queries
    contend for CPUs, disks and links exactly as co-scheduled queries
    would; each returned :class:`RunMetrics` has its own makespan
    (launch-to-last-copy-finished).
    """
    if not engines:
        raise EngineError("run_concurrent() needs at least one engine")
    env = engines[0].env
    for engine in engines:
        if engine.env is not env:
            raise EngineError("concurrent engines must share one cluster")
    pending = [engine.launch() for engine in engines]
    env.run(until=env.all_of([p.done for p in pending]))
    return [p.finalize() for p in pending]
