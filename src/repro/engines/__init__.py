"""Execution engines for placed filter graphs.

- :class:`~repro.engines.simulated.SimulatedEngine` runs cost models over
  the DES cluster substrate (all scheduling experiments);
- :class:`~repro.engines.threaded.ThreadedEngine` runs real filters with
  threads in this process (correctness runs, examples);
- :class:`~repro.engines.process.ProcessEngine` runs real filters with one
  process per copy (actual parallelism on multicore hosts);
- :class:`~repro.engines.pool.WarmPool` keeps process-engine copies alive
  between runs, serving units of work as they arrive (``repro serve``).
"""

from repro.engines.base import Engine
from repro.engines.pool import PendingQuery, PoolManager, WarmPool
from repro.engines.process import ProcessEngine
from repro.engines.simulated import PendingRun, SimulatedEngine, run_concurrent
from repro.engines.threaded import ThreadedEngine

__all__ = [
    "Engine",
    "PendingQuery",
    "PendingRun",
    "PoolManager",
    "ProcessEngine",
    "SimulatedEngine",
    "ThreadedEngine",
    "WarmPool",
    "run_concurrent",
]
