"""Warm filter-host pools: persistent worker processes serving queries.

``ProcessEngine.run()`` cold-spawns one OS process per transparent copy,
rebuilds every filter instance and allocates fresh copy-set queues for
every run — fatal for serving traffic, where the pipeline is fixed and
only the unit of work changes per query.  :class:`WarmPool` keeps the
copies alive: it forks the workers once, then feeds successive units of
work over per-worker control queues, generalising the ``run_cycles``
protocol from "N cycles known up front" to "cycles arrive over time".

Mechanics
---------
The pool allocates ``max_inflight`` *slots*; each slot owns one
:class:`~repro.engines.process._SharedCopySetQueue` per (filter, host),
exactly as a batch ``run_cycles(uows)`` call owns one queue per (filter,
host, cycle).  Cycle ``k`` runs in slot ``k % max_inflight``: up to
``max_inflight`` queries pipeline through the filters concurrently, and a
slot is recycled (end-of-work counters rearmed) only after every copy has
reported cycle ``k`` — so its queues are provably drained.  Workers
execute the exact same per-cycle protocol as the batch engine
(:func:`~repro.engines.process._execute_cycle` is shared), ship one report
per cycle, and block in ``control.get()`` between queries.

The parent-side supervisor blocks in ``multiprocessing.connection.wait``
on the worker sentinels; an unexpected worker death marks the pool
*broken*, fails every pending query, terminates the siblings and drains
abandoned traffic through the engine's ack-and-release helper so no
shared-memory segment outlives the pool.  An ``idle_timeout`` reaps the
pool (full ``close()``) after that long with no work in flight.

Payload lifetime contract: unchanged from the process engine — an input
buffer's arrays are shared-memory views valid only during ``handle``; the
segments themselves are per-payload and are released by the consuming
copy, so nothing about pooling extends a lease across queries.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import queue as queue_mod
import threading
import time
from collections import OrderedDict
from typing import Any

from repro.core.graph import FilterGraph
from repro.core.instrument import DEFAULT_ACK_BYTES, RunMetrics
from repro.core.placement import Placement
from repro.core.policies import PolicyFactory
from repro.core.tracing import Tracer
from repro.engines.base import emit_analysis_events
from repro.engines.process import (
    _EOW,
    _STOP,
    ProcessEngine,
    _ack_and_release,
    _execute_cycle,
    _fold_cycle,
    _SharedCopySetQueue,
    _start_ack_drain,
)
from repro.errors import EngineError

__all__ = ["PendingQuery", "PoolManager", "WarmPool"]


class PendingQuery:
    """Future-like handle for one unit of work submitted to a warm pool."""

    def __init__(self, cycle: int, tracer: "Tracer | None", t0: float):
        self.cycle = cycle
        self.tracer = tracer
        self.t0 = t0  # pool-clock timestamp of the submit (trace origin)
        self.reports: list = []  # (cid, _CycleReport, events, samples, dropped)
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._metrics: "RunMetrics | None" = None
        self._error: "EngineError | None" = None

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: "float | None" = None) -> bool:
        return self._done.wait(timeout)

    def result(self, timeout: "float | None" = None) -> RunMetrics:
        """Block until the query finishes; its metrics, or raise its error."""
        if not self._done.wait(timeout):
            raise EngineError(
                f"query (cycle {self.cycle}) still running after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._metrics is not None
        return self._metrics

    # First outcome wins: the collector resolves, a pool break fails — a
    # query racing both must not flip after callers have seen it done.
    def _resolve(self, metrics: RunMetrics) -> None:
        with self._lock:
            if self._done.is_set():
                return
            self._metrics = metrics
            self._done.set()

    def _fail(self, error: EngineError) -> None:
        with self._lock:
            if self._done.is_set():
                return
            self._error = error
            self._done.set()


class WarmPool(ProcessEngine):
    """A :class:`ProcessEngine` whose copies outlive any single run.

    Construction validates and forks immediately (the pool is warm once
    ``__init__`` returns); ``submit`` enqueues one unit of work and
    ``run``/``run_cycles`` provide the blocking batch API on top.  Use as a
    context manager or call :meth:`close` — the workers are daemonic, but
    an explicit close delivers queued DD acks and joins the ack threads
    before the processes exit.

    Additional parameters over the process engine:

    ``max_inflight``
        Slots in the cycle ring — how many queries may pipeline through
        the filters concurrently (submits beyond that block).
    ``idle_timeout``
        Seconds of no in-flight work after which the pool closes itself
        (``None`` = never).
    ``cache`` / ``cache_members``
        Attach a :class:`~repro.cache.ResultCache` to the named subgraph.
        The attachment is certified *before* any worker forks: an
        uncertified subgraph raises
        :class:`~repro.errors.AnalysisError` with the E703–E706
        diagnostics and no processes are spawned.  The resulting
        :attr:`cache_binding` carries the subgraph signature callers
        (``repro.serve``) derive cache keys from.
    """

    def __init__(
        self,
        graph: FilterGraph,
        placement: Placement,
        policy: "str | PolicyFactory" = "DD",
        policy_overrides: "dict[str, str | PolicyFactory] | None" = None,
        queue_capacity: int = 8,
        ack_nbytes: int = DEFAULT_ACK_BYTES,
        codec=None,
        start_method: "str | None" = None,
        max_inflight: int = 2,
        idle_timeout: "float | None" = None,
        deep_analysis: bool = True,
        cache=None,
        cache_members: "tuple[str, ...] | None" = None,
    ):
        super().__init__(
            graph,
            placement,
            policy=policy,
            policy_overrides=policy_overrides,
            queue_capacity=queue_capacity,
            ack_nbytes=ack_nbytes,
            tracer=None,
            codec=codec,
            start_method=start_method,
            deep_analysis=deep_analysis,
        )
        if max_inflight < 1:
            raise EngineError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = max_inflight
        self.idle_timeout = idle_timeout
        self.reaped = False
        self.cycles_completed = 0
        self.cache_binding = None
        if cache is not None:
            if not cache_members:
                raise EngineError(
                    "cache attachment needs cache_members naming the "
                    "memoised subgraph"
                )
            from repro.cache import bind_cache

            # Certify before forking: a refused binding must not leak
            # worker processes.
            self.cache_binding = bind_cache(graph, cache_members, cache)
        self._spawn()

    # -- lifecycle -----------------------------------------------------------
    def _spawn(self) -> None:
        mp_ctx = multiprocessing.get_context(self.start_method)
        nslots = self.max_inflight
        if self.codec.use_shared_memory:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()

        # One copy-set queue per (filter, host, slot); slots play the role
        # cycles play in the batch engine's layout.
        copysets: dict[str, list[list[_SharedCopySetQueue]]] = {}
        copyset_hosts: dict[str, list[str]] = {}
        for name, spec in self.graph.filters.items():
            expected = sum(
                self.placement.total_copies(s.src) for s in spec.inputs
            )
            sets, hosts = [], []
            for cs in self.placement.copysets(name):
                sets.append(
                    [
                        _SharedCopySetQueue(
                            mp_ctx, cs.copies, expected, self.queue_capacity
                        )
                        for _ in range(nslots)
                    ]
                )
                hosts.append(cs.host)
            copysets[name] = sets
            copyset_hosts[name] = hosts

        plan = []  # (cid, spec, host, copy_index, copies_on_host, total, set_idx)
        cid = 0
        for name, spec in self.graph.filters.items():
            total = self.placement.total_copies(name)
            for set_idx, cs in enumerate(self.placement.copysets(name)):
                for copy_index in range(cs.copies):
                    plan.append(
                        (cid, spec, cs.host, copy_index, cs.copies, total, set_idx)
                    )
                    cid += 1

        needs_ack = {
            name: any(
                self._policy_for(st.name)().needs_ack for st in spec.outputs
            )
            for name, spec in self.graph.filters.items()
        }
        ack_queues = [
            mp_ctx.SimpleQueue() if needs_ack[item[1].name] else None
            for item in plan
        ]
        controls = [mp_ctx.SimpleQueue() for _ in plan]
        results = mp_ctx.SimpleQueue()
        self._t_start = time.perf_counter()
        shared = {
            "copysets": copysets,
            "copyset_hosts": copyset_hosts,
            "ack_queues": ack_queues,
            "controls": controls,
            "results": results,
            "t_start": self._t_start,
            "nslots": nslots,
        }

        self._copysets = copysets
        self._ack_queues = ack_queues
        self._controls = controls
        self._results = results
        self._by_cid = {item[0]: item for item in plan}
        self._ncopies = len(plan)

        self._lock = threading.Lock()
        self._submit_lock = threading.Lock()
        self._pending: dict[int, PendingQuery] = {}
        self._next_cycle = 0
        self._slot_free = [threading.Event() for _ in range(nslots)]
        for ev in self._slot_free:
            ev.set()
        self._closed = False
        self._broken = False
        self._break_reason: "str | None" = None
        self._closing = threading.Event()
        self._shutdown_done = threading.Event()
        self._last_activity = time.monotonic()
        self.created_at = time.monotonic()
        self._wake_recv, self._wake_send = mp_ctx.Pipe(duplex=False)

        procs: dict[int, Any] = {}
        for item in plan:
            proc = mp_ctx.Process(
                target=self._pool_worker,
                args=(shared, item),
                name=f"pool:{item[1].name}@{item[2]}#{item[3]}",
                daemon=True,
            )
            procs[item[0]] = proc
        for proc in procs.values():
            proc.start()
        self._procs = procs

        self._collector = threading.Thread(
            target=self._collect_loop, daemon=True, name="warmpool-collector"
        )
        self._collector.start()
        self._supervisor = threading.Thread(
            target=self._supervise_loop, daemon=True, name="warmpool-supervisor"
        )
        self._supervisor.start()

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def usable(self) -> bool:
        """True while the pool accepts new work."""
        with self._lock:
            return not self._closed

    @property
    def busy(self) -> bool:
        """True while at least one query is in flight.

        Eviction decisions (:class:`PoolManager`) must not close a busy
        pool — ``close()`` blocks on the in-flight queries, so closing a
        busy pool under a manager lock stalls every other caller.
        """
        with self._lock:
            return bool(self._pending)

    def idle_seconds(self) -> float:
        """Seconds since the pool last had work in flight (0.0 while busy)."""
        with self._lock:
            if self._pending:
                return 0.0
            return time.monotonic() - self._last_activity

    def stats(self) -> dict:
        """A snapshot for service dashboards (``repro serve`` ``stats``)."""
        with self._lock:
            out = {
                "workers": len(self._procs),
                "max_inflight": self.max_inflight,
                "inflight": len(self._pending),
                "cycles_completed": self.cycles_completed,
                "closed": self._closed,
                "broken": self._broken,
                "reaped": self.reaped,
                "age_s": time.monotonic() - self.created_at,
            }
        if self.cache_binding is not None:
            out["cache"] = {
                "members": list(self.cache_binding.members),
                "signature": self.cache_binding.signature,
                **self.cache_binding.cache.stats(),
            }
        return out

    # -- submission ----------------------------------------------------------
    def submit(
        self, uow: Any = None, tracer: "Tracer | None" = None
    ) -> PendingQuery:
        """Enqueue one unit of work on the warm copies.

        Blocks while all ``max_inflight`` slots are busy (bounded admission
        is the caller's concern — ``repro serve`` rejects upstream).  The
        optional per-query ``tracer`` receives the query's events with
        timestamps rebased to the submit, so its timeline and the returned
        metrics' makespan read as end-to-end query latency.
        """
        with self._submit_lock:
            self._check_open()
            k = self._next_cycle
            slot_free = self._slot_free[k % self.max_inflight]
            while not slot_free.wait(timeout=0.5):
                self._check_open()
            self._check_open()
            slot_free.clear()
            self._next_cycle += 1
            if tracer is not None and not tracer.clock:
                tracer.clock = "wall"
            emit_analysis_events(tracer, self._analysis_report, 0.0)
            pending = PendingQuery(k, tracer, t0=self._clock())
            with self._lock:
                self._pending[k] = pending
                self._last_activity = time.monotonic()
            trace_limit = tracer.limit if tracer is not None else 0
            for control in self._controls:
                control.put(("cycle", k, uow, tracer is not None, trace_limit))
            return pending

    def run(self) -> RunMetrics:
        """Submit one unit of work and block for it (``Engine`` API)."""
        return self.submit(None).result()

    def run_cycles(self, uows: "list[Any]") -> list[RunMetrics]:
        """Batch counterpart of ``ProcessEngine.run_cycles`` on warm copies.

        Failed cycles contribute their partial metrics and errors to one
        ``EngineError`` (same contract as the batch engines); the metrics
        list then holds ``None`` at positions whose merge never happened.
        """
        if not uows:
            raise EngineError("run_cycles() needs at least one unit of work")
        pendings = [self.submit(uow) for uow in uows]
        metrics_list: list = []
        errors: list[str] = []
        for pending in pendings:
            try:
                metrics_list.append(pending.result())
            except EngineError as exc:
                metrics_list.append(exc.metrics[0] if exc.metrics else None)
                errors.extend(exc.errors or [str(exc)])
        if errors:
            raise EngineError(
                f"filter copy failed: {errors[0]}",
                metrics=metrics_list,
                errors=errors,
            )
        return metrics_list

    def _clock(self) -> float:
        return time.perf_counter() - self._t_start

    def _check_open(self) -> None:
        with self._lock:
            if self._broken:
                raise EngineError(f"warm pool is broken: {self._break_reason}")
            if self._closed:
                raise EngineError("warm pool is closed")

    # -- parent-side threads -------------------------------------------------
    def _collect_loop(self) -> None:
        """Merge per-cycle worker reports; recycle slots as queries finish."""
        while True:
            msg = self._results.get()
            if msg == _STOP:
                return
            if msg[0] != "cycle":
                continue  # "bye" from an exiting worker
            _kind, cid, k, cycle, events, samples, dropped = msg
            with self._lock:
                pending = self._pending.get(k)
                if pending is None:
                    continue  # failed by a pool break while in flight
                pending.reports.append((cid, cycle, events, samples, dropped))
                complete = len(pending.reports) == self._ncopies
            if complete:
                self._finish_cycle(k, pending)

    def _finish_cycle(self, k: int, pending: PendingQuery) -> None:
        metrics = RunMetrics()
        metrics.ack_nbytes = self.ack_nbytes
        errors: list[str] = []
        offset = pending.t0
        for cid, cycle, _e, _s, _d in sorted(pending.reports, key=lambda r: r[0]):
            item = self._by_cid[cid]
            error = _fold_cycle(
                metrics, cycle, item[1].name, item[2], item[3],
                self.ack_nbytes, time_offset=offset,
            )
            if error:
                errors.append(error)
        metrics.makespan = max(
            (c.finished_at for c in metrics.copies), default=0.0
        )
        if pending.tracer is not None:
            events = sorted(
                (e for r in pending.reports for e in r[2]),
                key=lambda e: e.time,
            )
            samples = sorted(
                (s for r in pending.reports for s in r[3]),
                key=lambda s: s.time,
            )
            for event in events:
                pending.tracer.record(
                    event.time - offset, event.copy, event.kind, event.detail
                )
            for sample in samples:
                pending.tracer.sample_queue(
                    sample.time - offset, sample.queue, sample.depth
                )
            pending.tracer.dropped += sum(r[4] for r in pending.reports)

        # Recycle the slot: every copy has reported cycle k, so the slot's
        # queues are drained; rearm the end-of-work counters before the
        # next submit can route a cycle into them.
        slot = k % self.max_inflight
        for sets in self._copysets.values():
            for per_set in sets:
                per_set[slot].reset()
        with self._lock:
            self._pending.pop(k, None)
            self._last_activity = time.monotonic()
            self.cycles_completed += 1
        self._slot_free[slot].set()
        if errors:
            pending._fail(
                EngineError(
                    f"filter copy failed: {errors[0]}",
                    metrics=[metrics],
                    errors=errors,
                )
            )
        else:
            pending._resolve(metrics)

    def _supervise_loop(self) -> None:
        """Block on worker sentinels; break the pool on unexpected death.

        Same no-polling contract as ``ProcessEngine._supervise``: while the
        workers are healthy this thread sleeps in the kernel (the wake pipe
        exists so ``close()`` can retire it).  With an ``idle_timeout`` the
        wait is bounded by the time left until the pool would be reaped.
        """
        sentinels = {p.sentinel: c for c, p in self._procs.items()}
        waitables = list(sentinels) + [self._wake_recv]
        while True:
            timeout = None
            if self.idle_timeout is not None:
                with self._lock:
                    busy = bool(self._pending)
                    idle_for = time.monotonic() - self._last_activity
                if not busy:
                    timeout = max(0.0, self.idle_timeout - idle_for)
            ready = multiprocessing.connection.wait(waitables, timeout)
            if self._closing.is_set():
                return
            if not ready:
                with self._lock:
                    reap = (
                        not self._pending
                        and not self._closed
                        and time.monotonic() - self._last_activity
                        >= self.idle_timeout
                    )
                if reap:
                    self.reaped = True
                    self.close()
                    return
                continue
            if self._wake_recv in ready:
                while self._wake_recv.poll():
                    self._wake_recv.recv()
                continue
            dead_cid = sentinels[
                next(s for s in ready if s is not self._wake_recv)
            ]
            proc = self._procs[dead_cid]
            proc.join()
            item = self._by_cid[dead_cid]
            self._break_pool(
                f"pool worker {item[1].name}@{item[2]}#{item[3]} died "
                f"with exit code {proc.exitcode}"
            )
            return

    def _break_pool(self, reason: str) -> None:
        """Unexpected worker death: fail everything, reap, free segments."""
        with self._lock:
            self._broken = True
            self._closed = True
            self._break_reason = reason
            pending = list(self._pending.values())
            self._pending.clear()
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs.values():
            proc.join()
        self._results.put(_STOP)
        self._collector.join()
        self._drain_all_slots()
        error = EngineError(f"warm pool is broken: {reason}", errors=[reason])
        for query in pending:
            query._fail(error)
        for slot_free in self._slot_free:
            slot_free.set()  # wake blocked submitters into _check_open
        self._shutdown_done.set()

    def _drain_all_slots(self) -> None:
        """Discard abandoned traffic so no shared-memory segment leaks."""
        for sets in self._copysets.values():
            for per_set in sets:
                for csq in per_set:
                    while True:
                        try:
                            item = csq.queue.get_nowait()
                        except queue_mod.Empty:
                            break
                        except BaseException:
                            break  # torn pipe from a terminated worker
                        if item == _STOP or item == _EOW:
                            continue
                        _ack_and_release(item, self._ack_queues)

    def close(self) -> None:
        """Drain in-flight queries, then retire the workers.

        Close-while-busy is graceful: new submits are rejected first, every
        pending query runs to completion, and each worker delivers its
        queued DD acks (FIFO ``_STOP`` through the ack queue) and joins its
        ack thread before exiting.  Idempotent; concurrent callers block
        until shutdown finishes.
        """
        with self._submit_lock:
            with self._lock:
                already = self._closed
                self._closed = True
        if already:
            if threading.current_thread() is not self._supervisor:
                self._shutdown_done.wait()
            return
        with self._lock:
            pending = list(self._pending.values())
        for query in pending:
            query.wait()
        self._closing.set()
        try:
            self._wake_send.send(b"x")
        except (OSError, ValueError):  # pragma: no cover - already torn down
            pass
        if threading.current_thread() is not self._supervisor:
            self._supervisor.join()
        if not self._broken:
            for control in self._controls:
                control.put(("close",))
            for proc in self._procs.values():
                proc.join(timeout=10.0)
            for proc in self._procs.values():
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join()
            self._results.put(_STOP)
            self._collector.join()
            self._drain_all_slots()
        self._shutdown_done.set()

    # -- the worker (child process) -----------------------------------------
    def _pool_worker(self, shared, item) -> None:
        """One copy's process: execute cycles as they arrive, until close."""
        cid, spec, host, copy_index, copies_on_host, total, set_idx = item
        copysets = shared["copysets"]
        copyset_hosts = shared["copyset_hosts"]
        ack_queues = shared["ack_queues"]
        control = shared["controls"][cid]
        results = shared["results"]
        nslots = shared["nslots"]
        t_start = shared["t_start"]
        clock = lambda: time.perf_counter() - t_start  # noqa: E731
        label = f"{spec.name}@{host}#{copy_index}"
        codec = self.codec

        writers_by_cycle: dict = {}
        ack_queue = ack_queues[cid]
        ack_thread = None
        if ack_queue is not None:
            ack_thread = _start_ack_drain(ack_queue, writers_by_cycle)

        try:
            instance = spec.factory()
            build_error = None
        except BaseException as exc:  # noqa: BLE001 - reported per cycle
            instance = None
            build_error = f"filter {spec.name!r} failed to build: {exc!r}"

        while True:
            msg = control.get()
            if msg[0] == "close":
                break
            _kind, k, uow, trace, trace_limit = msg
            slot = k % nslots
            tracer = Tracer(limit=trace_limit, clock="wall") if trace else None
            cycle = _execute_cycle(
                spec=spec,
                host=host,
                copy_index=copy_index,
                copies_on_host=copies_on_host,
                total=total,
                cid=cid,
                k=k,
                uow=uow,
                instance=instance,
                build_error=build_error,
                my_queue=copysets[spec.name][set_idx][slot],
                out_queues={
                    st.name: [sets[slot] for sets in copysets[st.dst]]
                    for st in spec.outputs
                },
                out_hosts={
                    st.name: copyset_hosts[st.dst] for st in spec.outputs
                },
                policy_for=self._policy_for,
                codec=codec,
                ack_queues=ack_queues,
                tracer=tracer,
                clock=clock,
                label=label,
                writers_by_cycle=writers_by_cycle,
            )
            # Writers older than the slot ring can no longer receive acks
            # that matter; prune so a long-lived worker stays bounded.
            for old in [c for c in writers_by_cycle if c <= k - nslots]:
                del writers_by_cycle[old]
            results.put(
                (
                    "cycle", cid, k, cycle,
                    tracer.events if tracer else [],
                    tracer.queue_samples if tracer else [],
                    tracer.dropped if tracer else 0,
                )
            )
        if ack_thread is not None:
            # FIFO sentinel: queued acks still get delivered first.
            ack_queue.put(_STOP)
            ack_thread.join()
        results.put(("bye", cid))


class _PoolBuild:
    """Per-key cold-build latch: one builder, any number of waiters."""

    __slots__ = ("done", "error", "pool")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.pool: "WarmPool | None" = None
        self.error: "BaseException | None" = None


class PoolManager:
    """Keyed cache of warm pools for a query service.

    Pools are keyed by pipeline identity — the caller supplies a hashable
    key covering (graph, placement, policy, codec), typically the tuple of
    scene/configuration parameters that built them.  ``get`` returns the
    warm pool on a hit and builds (cold) on a miss; at most ``max_pools``
    stay warm, evicting least-recently-used, and ``reap_idle`` closes pools
    idle past ``idle_timeout`` (also swept on every ``get``).

    Lifecycle contracts (each one a former bug):

    - ``pool.close()`` is **never** called under the manager lock — close
      blocks on in-flight queries, so a close under the lock would stall
      every concurrent ``get``.
    - Eviction skips **busy** pools: the LRU *idle* pool is closed; when
      every pool is busy, eviction defers and the manager temporarily
      exceeds ``max_pools`` (it shrinks back on later calls) rather than
      tearing a query out from under a caller.
    - Cold builds (fork + filter construction) run **outside** the lock
      behind a per-key latch: two misses on one key still build once,
      and a cold start no longer serialises unrelated warm hits.
    - Dead pools found during a sweep are closed defensively before
      being dropped, so a broken pool's shared-memory ledger is released
      even when nobody else ever touched it again.
    """

    def __init__(self, max_pools: int = 4, idle_timeout: "float | None" = None):
        if max_pools < 1:
            raise EngineError(f"max_pools must be >= 1, got {max_pools}")
        self.max_pools = max_pools
        self.idle_timeout = idle_timeout
        self._pools: "OrderedDict[Any, WarmPool]" = OrderedDict()
        self._building: "dict[Any, _PoolBuild]" = {}
        self._lock = threading.Lock()

    def get(self, key: Any, build) -> "tuple[WarmPool, bool]":
        """Return ``(pool, created)`` for ``key``, building on a miss.

        ``created`` is True when this call cold-built the pool (the first
        query pays fork + filter construction; subsequent ones are warm).
        A concurrent miss on the same key blocks on the first caller's
        build instead of building twice; a build failure is re-raised to
        every waiter.
        """
        while True:
            to_close: list[WarmPool] = []
            with self._lock:
                self._sweep_locked(to_close)
                pool = self._pools.get(key)
                if pool is not None and pool.usable:
                    self._pools.move_to_end(key)
                    self._shrink_locked(to_close, protect=key)
                    self._close_later(to_close)
                    return pool, False
                if pool is not None:
                    del self._pools[key]
                    to_close.append(pool)
                latch = self._building.get(key)
                if latch is None:
                    latch = _PoolBuild()
                    self._building[key] = latch
                    builder = True
                else:
                    builder = False
            self._close_now(to_close)
            if not builder:
                latch.done.wait()
                if latch.error is not None:
                    raise latch.error
                pool = latch.pool
                if pool is not None and pool.usable:
                    return pool, False
                continue  # builder's pool died immediately; start over
            return self._build_locked_out(key, latch, build), True

    def _build_locked_out(self, key: Any, latch: _PoolBuild, build) -> WarmPool:
        """Run one cold build outside the lock; publish through the latch."""
        try:
            pool = build()
        except BaseException as exc:
            with self._lock:
                self._building.pop(key, None)
            latch.error = exc
            latch.done.set()
            raise
        to_close: list[WarmPool] = []
        with self._lock:
            self._pools[key] = pool
            self._pools.move_to_end(key)
            self._building.pop(key, None)
            self._shrink_locked(to_close, protect=key)
        latch.pool = pool
        latch.done.set()
        self._close_now(to_close)
        return pool

    # -- sweeping and eviction (under the lock; closes deferred) ------------
    def _sweep_locked(self, to_close: "list[WarmPool]") -> None:
        """Drop dead and idle-expired pools; queue them for closing.

        Dead pools (``not usable``) are closed *defensively* — a broken
        pool normally cleaned up when it broke, but close is idempotent
        and this is the last line of defence for its shm ledger.
        """
        for key in list(self._pools):
            pool = self._pools[key]
            if not pool.usable:
                del self._pools[key]
                to_close.append(pool)
            elif (
                self.idle_timeout is not None
                and pool.idle_seconds() >= self.idle_timeout
            ):
                del self._pools[key]
                to_close.append(pool)

    def _shrink_locked(
        self, to_close: "list[WarmPool]", protect: Any
    ) -> None:
        """Evict LRU **idle** pools down to ``max_pools``; defer on busy.

        ``protect`` (the key just returned or inserted) is never a
        victim.  Busy pools are skipped — a pool with a query in flight
        stays out of the victim set, so capacity pressure can leave the
        manager temporarily over budget until the traffic drains.
        """
        if len(self._pools) <= self.max_pools:
            return
        for key in list(self._pools):  # OrderedDict: LRU first
            if len(self._pools) <= self.max_pools:
                return
            if key == protect:
                continue
            pool = self._pools[key]
            if pool.busy:
                continue  # deferred: never evict a pool mid-query
            del self._pools[key]
            to_close.append(pool)

    def _close_now(self, pools: "list[WarmPool]") -> None:
        for pool in pools:
            pool.close()

    def _close_later(self, pools: "list[WarmPool]") -> None:
        """Close evicted pools without blocking the warm-hit fast path."""
        if not pools:
            return
        threading.Thread(
            target=self._close_now, args=(pools,), daemon=True,
            name="poolmanager-close",
        ).start()

    def reap_idle(self) -> None:
        """Close and drop pools idle past ``idle_timeout`` (and dead ones)."""
        to_close: list[WarmPool] = []
        with self._lock:
            self._sweep_locked(to_close)
        self._close_now(to_close)

    def close_all(self) -> None:
        with self._lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.close()

    def stats(self) -> dict:
        with self._lock:
            pools = list(self._pools.items())
        return {str(key): pool.stats() for key, pool in pools}

    def __len__(self) -> int:
        with self._lock:
            return len(self._pools)
