"""Threaded execution engine: run real filters locally.

Each transparent copy becomes a Python thread; streams are bounded
``queue.Queue`` objects shared per copy set, exactly mirroring the simulated
engine's structure (shared per-host queue, writer policies, end-of-work
markers, DD acknowledgments).  Placement host names are treated as labels —
all threads run in this process — so the same graph/placement objects drive
both engines.

This engine exists for *correctness* and for the runnable examples (it
renders real images).  Scheduling/throughput conclusions come from the
simulated engine: the GIL serialises NumPy-light Python work and would
distort them (see DESIGN.md).
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Callable
from typing import Any

from repro.core.buffer import BufferCodec, DataBuffer
from repro.core.filter import Filter, FilterContext
from repro.core.graph import FilterGraph
from repro.core.instrument import DEFAULT_ACK_BYTES, RunMetrics
from repro.core.placement import Placement
from repro.core.policies import PolicyFactory, Target, make_policy_factory
from repro.core.tracing import Tracer
from repro.engines.base import Engine, emit_analysis_events, validate_run_setup
from repro.errors import EngineError

__all__ = ["ThreadedEngine"]

_STOP = object()


class _CopySetQueue:
    """Shared bounded queue for all copies of a filter on one 'host'."""

    def __init__(self, copies: int, expected_eow: int, capacity: int):
        self.queue: queue.Queue = queue.Queue(maxsize=capacity)
        self.copies = copies
        self.expected_eow = expected_eow
        self._eow_seen = 0
        self._lock = threading.Lock()

    def put(self, item: Any) -> None:
        """Enqueue one item (blocks when the queue is full)."""
        self.queue.put(item)

    def producer_finished(self) -> None:
        """Count one upstream end-of-work marker; close when all arrived."""
        with self._lock:
            self._eow_seen += 1
            if self._eow_seen > self.expected_eow:
                raise EngineError("more EOW markers than producers")
            if self._eow_seen == self.expected_eow:
                for _ in range(self.copies):
                    self.queue.put(_STOP)


class _Writer:
    """Thread-safe producer-side router for one (copy, stream) pair."""

    def __init__(
        self,
        host: str,
        policy,
        copysets: list[_CopySetQueue],
        hosts: list[str],
        label: str = "",
        clock: "Callable[[], float] | None" = None,
        tracer: "Tracer | None" = None,
    ):
        self.policy = policy
        self.copysets = copysets
        self.label = label or host
        self.clock = clock or time.monotonic
        self.tracer = tracer
        targets = [
            Target(i, h, cs.copies, local=(h == host))
            for i, (h, cs) in enumerate(zip(hosts, copysets))
        ]
        policy.bind(targets)
        self._cond = threading.Condition()

    def send(self, envelope: "_Envelope") -> Target:
        """Route one envelope via the policy; blocks while windows are full."""
        with self._cond:
            target = self.policy.route(envelope.tags)
            if target is None:
                # All windows full: the writer stalls until an ack returns.
                if self.tracer:
                    self.tracer.record(self.clock(), self.label, "blocked", "start")
                while target is None:
                    self._cond.wait()
                    target = self.policy.route(envelope.tags)
                if self.tracer:
                    self.tracer.record(self.clock(), self.label, "blocked", "end")
            self.policy.on_sent(target)
        envelope.writer = self if self.policy.needs_ack else None
        envelope.target = target if self.policy.needs_ack else None
        envelope.sent_at = self.clock()
        self.copysets[target.index].put(envelope)
        return target

    def deliver_ack(self, envelope: "_Envelope") -> None:
        """Apply a consumer acknowledgment and wake blocked senders."""
        with self._cond:
            self.policy.on_ack(envelope.target)
            self._cond.notify_all()
        if self.tracer:
            # Round-trip latency: producer send to ack delivery.
            now = self.clock()
            self.tracer.record(
                now, self.label, "ack", f"{now - envelope.sent_at:.9f}"
            )


class _Envelope:
    __slots__ = (
        "buffer", "encoded", "stream", "tags", "writer", "target", "sent_at",
    )

    def __init__(self, buffer: DataBuffer, stream: str):
        self.buffer = buffer
        self.encoded = None  # EncodedBuffer when the engine runs a codec
        self.stream = stream
        # Kept separately: write_fn may null .buffer after codec encode,
        # but content-routed policies still need the tags at send time.
        self.tags = buffer.tags
        self.writer: _Writer | None = None
        self.target: Target | None = None
        self.sent_at = 0.0


class ThreadedEngine(Engine):
    """Execute a filter graph with real filters and one thread per copy.

    Parameters mirror :class:`repro.engines.simulated.SimulatedEngine`;
    every filter needs a ``factory`` building a
    :class:`repro.core.filter.Filter`.  Source filters (no input streams)
    receive no ``handle`` calls; they generate all their output from
    ``flush`` via ``ctx.write``.

    ``ack_nbytes`` is the nominal wire size of one DD acknowledgment
    (``RunMetrics.ack_bytes`` accounting, matching the simulated engine);
    ``tracer`` is an optional :class:`repro.core.tracing.Tracer` that
    records the unified event schema (recv / compute / send / ack / flush /
    done / blocked) with wall-clock timestamps relative to run start.

    ``codec`` optionally routes every stream buffer through a
    :class:`repro.core.buffer.BufferCodec` encode/decode round trip — the
    same wire format the process engine uses.  Threads share an address
    space so this is pure overhead in production, but it proves a pipeline
    is codec-clean (all payloads serialisable) before moving it to
    :class:`repro.engines.process.ProcessEngine`.
    """

    def __init__(
        self,
        graph: FilterGraph,
        placement: Placement,
        policy: str | PolicyFactory = "DD",
        policy_overrides: dict[str, str | PolicyFactory] | None = None,
        queue_capacity: int = 8,
        ack_nbytes: int = DEFAULT_ACK_BYTES,
        tracer: "Tracer | None" = None,
        codec: "BufferCodec | None" = None,
        deep_analysis: bool = True,
    ):
        self._default_factory = self._resolve(policy)
        self._stream_factories = {
            name: self._resolve(p) for name, p in (policy_overrides or {}).items()
        }
        self._analysis_report = validate_run_setup(
            graph, placement, queue_capacity, "threaded",
            policy_for=self._policy_for, codec=codec, deep=deep_analysis,
        )
        self.graph = graph
        self.placement = placement
        self.queue_capacity = queue_capacity
        self.ack_nbytes = ack_nbytes
        self.tracer = tracer
        self.codec = codec

    @staticmethod
    def _resolve(policy: str | PolicyFactory) -> PolicyFactory:
        if callable(policy):
            return policy
        return make_policy_factory(policy)

    def _policy_for(self, stream: str) -> PolicyFactory:
        return self._stream_factories.get(stream, self._default_factory)

    def run(self) -> RunMetrics:
        """Execute one unit of work; blocks until all copies finish.

        Equivalent to ``run_cycles([None])[0]`` — a single work cycle with
        no unit-of-work descriptor.
        """
        return self.run_cycles([None])[0]

    def run_cycles(self, uows: "list[Any]") -> list[RunMetrics]:
        """Run consecutive units of work through *persistent* filter copies.

        This is the paper's work-cycle protocol (Section 2): each filter
        copy is instantiated once, then for every unit of work the service
        calls ``init`` -> ``handle``/``flush`` -> ``finalize`` on the same
        instance.  ``uows`` supplies one descriptor per cycle, visible to
        filters as ``ctx.uow`` (e.g. ``{"timestep": 3}`` or a camera).
        Cycles pipeline: a producer may start cycle k+1 while a downstream
        copy still drains cycle k.

        Returns one :class:`RunMetrics` per unit of work; each makespan is
        the wall time from launch until that cycle's last copy finished.
        """
        if not uows:
            raise EngineError("run_cycles() needs at least one unit of work")
        ncycles = len(uows)
        metrics_list = [RunMetrics() for _ in uows]
        for metrics in metrics_list:
            metrics.ack_nbytes = self.ack_nbytes
        t_start = time.perf_counter()
        # All timestamps (trace events, per-copy finished_at, makespan) are
        # wall-clock seconds relative to run start, so they are directly
        # comparable to the simulated engine's run-relative sim clock.
        clock = lambda: time.perf_counter() - t_start  # noqa: E731
        tracer = self.tracer
        if tracer is not None and not tracer.clock:
            tracer.clock = "wall"
        emit_analysis_events(tracer, self._analysis_report, 0.0)

        # Per-cycle queues, pre-created so cycles pipeline without barriers.
        copysets: dict[str, list[list[_CopySetQueue]]] = {}
        copyset_hosts: dict[str, list[str]] = {}
        for name, spec in self.graph.filters.items():
            expected = sum(
                self.placement.total_copies(s.src) for s in spec.inputs
            )
            sets, hosts = [], []
            for cs in self.placement.copysets(name):
                sets.append(
                    [
                        _CopySetQueue(cs.copies, expected, self.queue_capacity)
                        for _ in range(ncycles)
                    ]
                )
                hosts.append(cs.host)
            copysets[name] = sets
            copyset_hosts[name] = hosts

        # Per-cycle completion bookkeeping.
        total_copies_all = sum(
            self.placement.total_copies(name) for name in self.graph.filters
        )
        remaining = [total_copies_all] * ncycles
        finish_lock = threading.Lock()
        finished_at = [0.0] * ncycles

        threads: list[threading.Thread] = []
        errors: list[BaseException] = []
        results_lock = threading.Lock()

        def copy_cycles(spec, host, copy_index, copies_on_host, total, set_idx):
            # A failure in one cycle is recorded and the remaining cycles
            # still announce end-of-work, so downstream copies never block
            # on a producer that died (run_cycles re-raises afterwards).
            try:
                instance: Filter = spec.factory()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
                instance = None
            label = f"{spec.name}@{host}#{copy_index}"
            for k, uow in enumerate(uows):
                metrics = metrics_list[k]
                announced = False
                stats = None
                try:
                    if instance is None:
                        raise EngineError(f"filter {spec.name!r} failed to build")
                    writers = {
                        st.name: _Writer(
                            host,
                            self._policy_for(st.name)(),
                            [sets[k] for sets in copysets[st.dst]],
                            copyset_hosts[st.dst],
                            label=label,
                            clock=clock,
                            tracer=tracer,
                        )
                        for st in spec.outputs
                    }
                    with results_lock:
                        stats = metrics.new_copy(spec.name, host, copy_index)

                    def write_fn(stream, buffer, _w=None):
                        envelope = _Envelope(buffer, stream)
                        if self.codec is not None:
                            envelope.encoded = self.codec.encode(buffer)
                            envelope.buffer = None
                        target = writers[stream].send(envelope)
                        stats.buffers_out += 1
                        with results_lock:
                            metrics.streams[stream].record(
                                host, target.host, buffer.nbytes
                            )
                        if tracer:
                            tracer.record(
                                clock(), label, "send", f"{stream}->{target.host}"
                            )

                    ctx = FilterContext(
                        filter_name=spec.name,
                        host=host,
                        copy_index=copy_index,
                        copies_on_host=copies_on_host,
                        total_copies=total,
                        output_streams=[st.name for st in spec.outputs],
                        write_fn=write_fn,
                        uow=uow,
                    )
                    instance.init(ctx)
                    busy = 0.0
                    my_queue = copysets[spec.name][set_idx][k]
                    if spec.inputs:
                        while True:
                            item = my_queue.queue.get()
                            if item is _STOP:
                                break
                            envelope: _Envelope = item
                            stats.buffers_in += 1
                            if tracer:
                                tracer.record(clock(), label, "recv", envelope.stream)
                                tracer.sample_queue(
                                    clock(),
                                    f"{spec.name}@{host}",
                                    my_queue.queue.qsize(),
                                )
                            if envelope.writer is not None:
                                with results_lock:
                                    metrics.ack_messages += 1
                                    metrics.ack_bytes += self.ack_nbytes
                                envelope.writer.deliver_ack(envelope)
                            if envelope.encoded is not None:
                                payload, lease = self.codec.decode(envelope.encoded)
                            else:
                                payload, lease = envelope.buffer, None
                            t0 = time.perf_counter()
                            if tracer:
                                tracer.record(clock(), label, "compute", "start")
                            instance.handle(ctx, payload)
                            busy += time.perf_counter() - t0
                            if lease is not None:
                                lease.release()
                            if tracer:
                                tracer.record(clock(), label, "compute", "end")
                    t0 = time.perf_counter()
                    if tracer:
                        tracer.record(clock(), label, "flush", "start")
                    instance.flush(ctx)
                    busy += time.perf_counter() - t0
                    if tracer:
                        tracer.record(clock(), label, "flush", "end")
                    stats.busy_time = busy
                    instance.finalize(ctx)
                    for st in spec.outputs:
                        for sets in copysets[st.dst]:
                            sets[k].producer_finished()
                    announced = True
                    if not spec.outputs:
                        value = getattr(instance, "result", lambda: None)()
                        if value is not None:
                            with results_lock:
                                if metrics.result is None:
                                    metrics.result = value
                                elif isinstance(metrics.result, list):
                                    metrics.result.append(value)
                                else:
                                    metrics.result = [metrics.result, value]
                    if tracer:
                        tracer.record(clock(), label, "done", f"cycle={k}")
                except BaseException as exc:  # noqa: BLE001 - surfaced later
                    errors.append(exc)
                    # Drain this cycle's queue up to our stop marker so
                    # upstream puts never block on a dead consumer (every
                    # producer eventually announces end-of-work, even when
                    # it failed, so the marker is guaranteed to arrive).
                    if spec.inputs:
                        my_queue = copysets[spec.name][set_idx][k]
                        while True:
                            item = my_queue.queue.get()
                            if item is _STOP:
                                break
                            # Acknowledge discarded buffers so DD windows
                            # upstream keep moving.
                            if item.writer is not None:
                                item.writer.deliver_ack(item)
                            if item.encoded is not None:
                                BufferCodec.release_encoded(item.encoded)
                finally:
                    if not announced:
                        for st in spec.outputs:
                            for sets in copysets[st.dst]:
                                try:
                                    sets[k].producer_finished()
                                except BaseException:
                                    pass
                    if stats is not None:
                        # Cycle-relative finish time, on the same clock as
                        # makespan (wall seconds since run start).
                        stats.finished_at = clock()
                    with finish_lock:
                        remaining[k] -= 1
                        if remaining[k] == 0:
                            finished_at[k] = clock()

        for name, spec in self.graph.filters.items():
            total = self.placement.total_copies(name)
            for set_idx, cs in enumerate(self.placement.copysets(name)):
                for copy_index in range(cs.copies):
                    thread = threading.Thread(
                        target=copy_cycles,
                        args=(spec, cs.host, copy_index, cs.copies, total, set_idx),
                        name=f"{name}@{cs.host}#{copy_index}*",
                        daemon=True,
                    )
                    threads.append(thread)
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for k, metrics in enumerate(metrics_list):
            metrics.makespan = finished_at[k]
        if errors:
            # Healthy cycles finished and folded their stats; ship the
            # partial per-cycle metrics with every error (same contract as
            # the process engine) instead of discarding the batch.
            raise EngineError(
                f"filter copy failed: {errors[0]!r}",
                metrics=metrics_list,
                errors=[f"{type(e).__name__}: {e}" for e in errors],
            ) from errors[0]
        return metrics_list
