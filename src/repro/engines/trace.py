"""Execution tracing for the simulated engine.

A :class:`Tracer` passed to :class:`~repro.engines.simulated.SimulatedEngine`
records one event per interesting transition of every filter copy — buffer
received, CPU charged, disk read, buffer sent, end-of-work — with simulated
timestamps.  Useful for debugging pipelines ("why is the merge idle until
t=4?") and for the timeline view in :meth:`Tracer.timeline`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded transition."""

    time: float
    copy: str  # "filter@host#index"
    kind: str  # recv | compute | io | send | flush | done
    detail: str = ""


class Tracer:
    """Collects :class:`TraceEvent` records during a simulated run."""

    def __init__(self, limit: int = 1_000_000):
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.limit = limit
        self.events: list[TraceEvent] = []
        self.dropped = 0

    def record(self, time: float, copy: str, kind: str, detail: str = "") -> None:
        """Append one event (drops silently past ``limit``)."""
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, copy, kind, detail))

    # -- queries ---------------------------------------------------------------
    def for_copy(self, copy: str) -> list[TraceEvent]:
        """Events of one copy, in time order."""
        return [e for e in self.events if e.copy == copy]

    def counts(self) -> dict[str, int]:
        """Event-kind histogram."""
        return dict(Counter(e.kind for e in self.events))

    def busy_spans(self, copy: str) -> list[tuple[float, float]]:
        """(start, end) spans of CPU work for one copy."""
        spans = []
        start = None
        for event in self.for_copy(copy):
            if event.kind == "compute" and event.detail == "start":
                start = event.time
            elif event.kind == "compute" and event.detail == "end" and start is not None:
                spans.append((start, event.time))
                start = None
        return spans

    def timeline(self, width: int = 64) -> str:
        """A coarse per-copy activity strip (``#`` = computing)."""
        if not self.events:
            return "(no events)"
        t0 = min(e.time for e in self.events)
        t1 = max(e.time for e in self.events)
        span = max(t1 - t0, 1e-12)
        copies = sorted({e.copy for e in self.events})
        name_w = max(len(c) for c in copies)
        lines = [f"trace {t0:.3f}s .. {t1:.3f}s ({len(self.events)} events)"]
        for copy in copies:
            strip = [" "] * width
            for start, end in self.busy_spans(copy):
                a = int((start - t0) / span * (width - 1))
                b = int((end - t0) / span * (width - 1))
                for i in range(a, b + 1):
                    strip[i] = "#"
            lines.append(f"{copy:<{name_w}} |{''.join(strip)}|")
        return "\n".join(lines)
