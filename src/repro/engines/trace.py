"""Compatibility shim — tracing moved to :mod:`repro.core.tracing`.

The tracer used to be simulated-engine-only; it is now the engine-agnostic
observability layer shared by both engines.  Import :class:`Tracer` and
:class:`TraceEvent` from :mod:`repro.core.tracing`; this module re-exports
them for existing callers.
"""

from __future__ import annotations

from repro.core.tracing import EVENT_KINDS, QueueSample, TraceEvent, Tracer

__all__ = ["EVENT_KINDS", "QueueSample", "TraceEvent", "Tracer"]
