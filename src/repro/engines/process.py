"""Process-parallel execution engine: real filters, one process per copy.

Each transparent copy becomes a worker in a ``multiprocessing`` pool-of-one
(one ``Process`` per copy), so filter compute runs genuinely in parallel on
multicore hosts — the paper's transparent-copy speedups become measurable
instead of GIL-serialised (contrast :class:`repro.engines.threaded.
ThreadedEngine`, which keeps the same protocol but shares one interpreter).

Structure mirrors the threaded engine exactly:

- **copy-set queues** are bounded ``multiprocessing.Queue`` objects shared
  by all copies of a filter on one "host"; end-of-work markers are counted
  in a cross-process shared counter and fan out one ``STOP`` per copy;
- **writer policies** (RR / WRR / DD / RATE) run unchanged inside each
  producer process; DD/RATE acknowledgments travel *back* over a per-copy
  control queue (``multiprocessing.SimpleQueue``) and are applied by an
  ack-drain thread inside the producer, which also wakes writers blocked on
  full windows;
- **payloads** cross process boundaries through the shared
  :class:`repro.core.buffer.BufferCodec`: large NumPy arrays ride
  ``multiprocessing.shared_memory`` segments (zero-copy attach on the
  consumer side) under a small pickle header, so scalar blocks, triangle
  soups and z-buffer slabs never serialise through a pipe;
- **observability** feeds the same :class:`~repro.core.tracing.Tracer` /
  :class:`~repro.core.instrument.RunMetrics` layer: every worker records
  events and counters locally and ships them to the parent at end-of-work,
  where they merge into one run-relative wall-clock trace — ``repro trace``
  and ``RunMetrics.validate`` work unchanged.

The engine needs the ``fork`` start method (the default): filter factories
are typically closures over datasets and cameras, which fork inherits for
free.  On platforms without fork construct with ``start_method="spawn"``
and a fully picklable graph, or fall back to the threaded engine.

Payload lifetime contract: an input buffer's arrays are shared-memory views
valid only during ``handle`` (the engine releases the lease when the
callback returns, as DataCutter recycles stream buffers).  Filters that
retain payload data must copy it.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import queue as queue_mod
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any

from repro.core.buffer import BufferCodec, DataBuffer
from repro.core.filter import Filter, FilterContext
from repro.core.graph import FilterGraph
from repro.core.instrument import DEFAULT_ACK_BYTES, RunMetrics
from repro.core.placement import Placement
from repro.core.policies import PolicyFactory, Target, make_policy_factory
from repro.core.tracing import Tracer
from repro.engines.base import Engine, emit_analysis_events, validate_run_setup
from repro.errors import EngineError

__all__ = ["ProcessEngine"]

#: Queue sentinels; compared by equality because identity does not survive
#: pickling across a process boundary.
_STOP = "__repro_eow_stop__"
_EOW = "__repro_eow_marker__"


class _SharedCopySetQueue:
    """Bounded cross-process queue for all copies of a filter on one host.

    End-of-work travels *through the data path*: ``mp.Queue.put`` hands the
    item to a feeder thread asynchronously, so an out-of-band announcement
    (a bare shared counter, as the threaded engine uses) could overtake the
    announcing producer's still-in-flight data and lose buffers.  Instead
    each finishing producer enqueues one ``_EOW`` marker behind its own
    data (per-producer FIFO holds), consumers count markers in a shared
    counter, and the consumer that pulls the final marker — at which point
    every producer's data has necessarily been pulled — fans one ``_STOP``
    out to each sibling copy and stops itself.
    """

    def __init__(self, mp_ctx, copies: int, expected_eow: int, capacity: int):
        self.queue = mp_ctx.Queue(maxsize=capacity)
        self.copies = copies
        self.expected_eow = expected_eow
        self._eow_seen = mp_ctx.Value("i", 0, lock=False)
        self._lock = mp_ctx.Lock()

    def put(self, item: Any) -> None:
        """Enqueue one item (blocks when the queue is full)."""
        self.queue.put(item)

    def producer_finished(self) -> None:
        """Announce this producer's end-of-work, behind all its data."""
        self.queue.put(_EOW)

    def on_eow(self) -> bool:
        """Count one pulled marker; True when this was the final one.

        Surplus markers (the parent re-announcing on behalf of a crashed
        producer that had in fact announced) are ignored.
        """
        with self._lock:
            if self._eow_seen.value >= self.expected_eow:
                return False
            self._eow_seen.value += 1
            return self._eow_seen.value == self.expected_eow

    def finish(self) -> None:
        """Stop the sibling copies (the finisher breaks on its own)."""
        for _ in range(self.copies - 1):
            self.queue.put(_STOP)

    def reset(self) -> None:
        """Rearm the end-of-work counter for a new unit of work.

        Only valid once the previous cycle has fully drained (every copy
        pulled its ``STOP`` or the final marker) — the warm pool recycles
        each slot's queues this way instead of allocating per cycle.
        """
        with self._lock:
            self._eow_seen.value = 0

    def qsize(self) -> int:
        """Approximate depth, or -1 where the platform cannot tell."""
        try:
            return self.queue.qsize()
        except NotImplementedError:  # pragma: no cover - macOS
            return -1


def _ack_and_release(item: "_WireEnvelope", ack_queues) -> None:
    """Discard one in-flight envelope: acknowledge it, then free it.

    The single helper behind every abandon path — the parent's dead-copy-set
    drain and the worker's crash drain — so neither can skip the
    ``ack_queues[...] is not None`` guard (filters whose outputs need no
    acks have no control queue) or leak the envelope's shared-memory
    segments.  The ack reopens DD/RATE windows so producers blocked on the
    abandoned consumer wake up and finish.
    """
    if item.needs_ack and ack_queues[item.producer] is not None:
        ack_queues[item.producer].put(
            (item.cycle, item.stream, item.target_index, item.sent_at)
        )
    BufferCodec.release_encoded(item.encoded)


def _drain_input_discarding(my_queue: "_SharedCopySetQueue", ack_queues) -> None:
    """Crash-path consumer loop: keep the close protocol alive, discard data.

    Every data item is acked-and-released through :func:`_ack_and_release`;
    markers are still counted (and the final one fanned out) so sibling
    copies and upstream producers never block on the failed copy.
    """
    while True:
        item_in = my_queue.queue.get()
        if item_in == _STOP:
            return
        if item_in == _EOW:
            if my_queue.on_eow():
                my_queue.finish()
                return
            continue
        _ack_and_release(item_in, ack_queues)


class _WireEnvelope:
    """One stream buffer on the wire between two copies."""

    __slots__ = (
        "cycle", "stream", "producer", "target_index", "sent_at",
        "needs_ack", "encoded",
    )

    def __init__(self, cycle, stream, producer, target_index, sent_at,
                 needs_ack, encoded):
        self.cycle = cycle
        self.stream = stream
        self.producer = producer  # global copy id of the sender
        self.target_index = target_index
        self.sent_at = sent_at
        self.needs_ack = needs_ack
        self.encoded = encoded  # repro.core.buffer.EncodedBuffer

    def __getstate__(self):
        return tuple(getattr(self, s) for s in self.__slots__)

    def __setstate__(self, state):
        for slot, value in zip(self.__slots__, state):
            setattr(self, slot, value)


class _Writer:
    """Producer-side router for one (copy, cycle, stream) triple.

    Identical decision logic to the threaded engine's writer; the only
    difference is that acknowledgments arrive via :meth:`deliver_ack`
    called from the owning process's ack-drain thread instead of directly
    from the consumer.
    """

    def __init__(self, host, policy, copyset_queues, hosts, label, clock,
                 tracer, codec, producer_cid, cycle, stream):
        self.policy = policy
        self.copyset_queues = copyset_queues
        self.label = label
        self.clock = clock
        self.tracer = tracer
        self.codec = codec
        self.producer_cid = producer_cid
        self.cycle = cycle
        self.stream = stream
        self.targets = [
            Target(i, h, q.copies, local=(h == host))
            for i, (h, q) in enumerate(zip(hosts, copyset_queues))
        ]
        policy.bind(self.targets)
        self._cond = threading.Condition()

    def send(self, buffer: DataBuffer) -> Target:
        """Encode and route one buffer; blocks while DD windows are full."""
        encoded = self.codec.encode(buffer)
        try:
            with self._cond:
                target = self.policy.route(buffer.tags)
                if target is None:
                    if self.tracer:
                        self.tracer.record(
                            self.clock(), self.label, "blocked", "start"
                        )
                    while target is None:
                        self._cond.wait()
                        target = self.policy.route(buffer.tags)
                    if self.tracer:
                        self.tracer.record(
                            self.clock(), self.label, "blocked", "end"
                        )
                self.policy.on_sent(target)
            needs_ack = self.policy.needs_ack
            envelope = _WireEnvelope(
                self.cycle, self.stream, self.producer_cid,
                target.index if needs_ack else -1,
                self.clock(), needs_ack, encoded,
            )
            self.copyset_queues[target.index].put(envelope)
        except BaseException:
            # Abandoned mid-send — typically interrupted while blocked on a
            # full DD window.  The segments already exist (encode runs
            # first) and no consumer will ever see the envelope, so the
            # sender must release them or they leak past process exit.
            BufferCodec.release_encoded(encoded)
            raise
        return target

    def deliver_ack(self, target_index: int, sent_at: float) -> None:
        """Apply a consumer acknowledgment and wake blocked senders."""
        with self._cond:
            self.policy.on_ack(self.targets[target_index])
            self._cond.notify_all()
        if self.tracer:
            now = self.clock()
            self.tracer.record(now, self.label, "ack", f"{now - sent_at:.9f}")


@dataclass
class _CycleReport:
    """One copy's measurements for one unit of work."""

    buffers_in: int = 0
    buffers_out: int = 0
    busy_time: float = 0.0
    finished_at: float = 0.0
    #: (stream, src_host, dst_host) -> [buffers, bytes]
    stream_records: dict = field(default_factory=dict)
    ack_messages: int = 0
    result: Any = None
    has_result: bool = False
    error: str | None = None


@dataclass
class _CopyReport:
    """Everything one worker process ships back to the parent."""

    cid: int
    filter_name: str
    host: str
    copy_index: int
    cycles: list = field(default_factory=list)
    events: list = field(default_factory=list)  # TraceEvent
    queue_samples: list = field(default_factory=list)  # QueueSample
    dropped: int = 0


def _fold_cycle(
    metrics: RunMetrics,
    cycle: _CycleReport,
    filter_name: str,
    host: str,
    copy_index: int,
    ack_nbytes: int,
    time_offset: float = 0.0,
) -> "str | None":
    """Fold one copy's cycle report into a :class:`RunMetrics`.

    Shared by the batch engine's merge and the warm pool's per-cycle merge;
    ``time_offset`` rebases worker timestamps (engine-lifetime clock) onto a
    per-query origin so a pooled query's makespan reads as its latency.
    Returns the cycle's error string, if any.
    """
    stats = metrics.new_copy(filter_name, host, copy_index)
    stats.buffers_in = cycle.buffers_in
    stats.buffers_out = cycle.buffers_out
    stats.busy_time = cycle.busy_time
    stats.finished_at = cycle.finished_at - time_offset
    for (stream, src, dst), (count, nbytes) in sorted(
        cycle.stream_records.items()
    ):
        ss = metrics.streams[stream]
        ss.buffers += count
        ss.bytes += nbytes
        ss.by_route[(src, dst)] = ss.by_route.get((src, dst), 0) + count
        ss.by_dst_host[dst] = ss.by_dst_host.get(dst, 0) + count
    metrics.ack_messages += cycle.ack_messages
    metrics.ack_bytes += cycle.ack_messages * ack_nbytes
    if cycle.has_result:
        if metrics.result is None:
            metrics.result = cycle.result
        elif isinstance(metrics.result, list):
            metrics.result.append(cycle.result)
        else:
            metrics.result = [metrics.result, cycle.result]
    return cycle.error


def _start_ack_drain(ack_queue, writers_by_cycle) -> threading.Thread:
    """Start the producer-side ack-drain thread.

    Applies consumer acknowledgments to the right cycle's writer; acks for
    a cycle whose writers are gone (finished batch cycle, recycled pool
    slot) are dropped harmlessly.  Stops on the FIFO ``_STOP`` sentinel so
    acks already queued still get delivered (and traced) first.
    """

    def _ack_loop():
        while True:
            msg = ack_queue.get()
            if msg == _STOP:
                break
            k, stream, target_index, sent_at = msg
            writer = writers_by_cycle.get(k, {}).get(stream)
            if writer is not None:
                writer.deliver_ack(target_index, sent_at)

    thread = threading.Thread(target=_ack_loop, daemon=True)
    thread.start()
    return thread


def _execute_cycle(
    *,
    spec,
    host: str,
    copy_index: int,
    copies_on_host: int,
    total: int,
    cid: int,
    k: int,
    uow,
    instance: "Filter | None",
    build_error: "str | None",
    my_queue: _SharedCopySetQueue,
    out_queues: "dict[str, list[_SharedCopySetQueue]]",
    out_hosts: "dict[str, list[str]]",
    policy_for,
    codec: BufferCodec,
    ack_queues,
    tracer: "Tracer | None",
    clock,
    label: str,
    writers_by_cycle: "dict[int, dict[str, _Writer]]",
) -> _CycleReport:
    """Run one unit of work through one copy, inside its worker process.

    The whole cycle protocol lives here — writers, init/handle/flush/
    finalize, end-of-work announcement, crash drain — so the batch engine
    (cycles known up front) and the warm pool (cycles arriving over control
    queues) execute identically.  ``k`` is the global cycle number; for the
    pool, ``my_queue``/``out_queues`` are the slot ``k % nslots``.
    """
    cycle = _CycleReport()
    announced = False
    input_done = False
    try:
        if instance is None:
            raise EngineError(
                build_error or f"filter {spec.name!r} failed to build"
            )
        writers = {
            st.name: _Writer(
                host,
                policy_for(st.name)(),
                out_queues[st.name],
                out_hosts[st.name],
                label=label,
                clock=clock,
                tracer=tracer,
                codec=codec,
                producer_cid=cid,
                cycle=k,
                stream=st.name,
            )
            for st in spec.outputs
        }
        writers_by_cycle[k] = writers

        def write_fn(stream, buffer, _w=writers, _c=cycle):
            target = _w[stream].send(buffer)
            _c.buffers_out += 1
            key = (stream, host, target.host)
            entry = _c.stream_records.setdefault(key, [0, 0])
            entry[0] += 1
            entry[1] += buffer.nbytes
            if tracer:
                tracer.record(
                    clock(), label, "send", f"{stream}->{target.host}"
                )

        ctx = FilterContext(
            filter_name=spec.name,
            host=host,
            copy_index=copy_index,
            copies_on_host=copies_on_host,
            total_copies=total,
            output_streams=[st.name for st in spec.outputs],
            write_fn=write_fn,
            uow=uow,
        )
        instance.init(ctx)
        busy = 0.0
        if spec.inputs:
            while True:
                item_in = my_queue.queue.get()
                if item_in == _STOP:
                    input_done = True
                    break
                if item_in == _EOW:
                    if my_queue.on_eow():
                        my_queue.finish()
                        input_done = True
                        break
                    continue
                wire: _WireEnvelope = item_in
                cycle.buffers_in += 1
                if tracer:
                    tracer.record(clock(), label, "recv", wire.stream)
                    depth = my_queue.qsize()
                    if depth >= 0:
                        tracer.sample_queue(
                            clock(), f"{spec.name}@{host}", depth
                        )
                if wire.needs_ack:
                    cycle.ack_messages += 1
                    ack_queues[wire.producer].put(
                        (wire.cycle, wire.stream, wire.target_index,
                         wire.sent_at)
                    )
                buffer, lease = codec.decode(wire.encoded)
                t0 = time.perf_counter()
                if tracer:
                    tracer.record(clock(), label, "compute", "start")
                try:
                    instance.handle(ctx, buffer)
                finally:
                    # Always, even when handle() raises: the lease holds the
                    # decoded shared-memory segment, and an abandoned one
                    # survives process exit.
                    lease.release()
                busy += time.perf_counter() - t0
                if tracer:
                    tracer.record(clock(), label, "compute", "end")
        t0 = time.perf_counter()
        if tracer:
            tracer.record(clock(), label, "flush", "start")
        instance.flush(ctx)
        busy += time.perf_counter() - t0
        if tracer:
            tracer.record(clock(), label, "flush", "end")
        cycle.busy_time = busy
        instance.finalize(ctx)
        for st in spec.outputs:
            for q in out_queues[st.name]:
                q.producer_finished()
        announced = True
        if not spec.outputs:
            value = getattr(instance, "result", lambda: None)()
            if value is not None:
                cycle.result = value
                cycle.has_result = True
        if tracer:
            tracer.record(clock(), label, "done", f"cycle={k}")
    except BaseException:  # noqa: BLE001 - surfaced via the report
        cycle.error = f"{label} cycle {k}: {traceback.format_exc()}"
        # Keep participating in the close protocol so upstream puts never
        # block on a dead consumer.  Skipped if our part of the stream
        # already closed (error after the loop).
        if spec.inputs and not input_done:
            _drain_input_discarding(my_queue, ack_queues)
    finally:
        if not announced:
            for st in spec.outputs:
                for q in out_queues[st.name]:
                    try:
                        q.producer_finished()
                    except BaseException:
                        pass
        cycle.finished_at = clock()
    return cycle


class ProcessEngine(Engine):
    """Execute a filter graph with real filters and one process per copy.

    Parameters mirror :class:`repro.engines.threaded.ThreadedEngine`
    (graph, placement, writer policy, queue capacity, ack accounting,
    tracer); additionally:

    ``codec``
        The :class:`~repro.core.buffer.BufferCodec` moving payloads between
        processes (default: shared memory for arrays >= 64 KiB).
    ``start_method``
        ``multiprocessing`` start method; default ``"fork"`` (required for
        closure factories — see the module docstring).
    """

    def __init__(
        self,
        graph: FilterGraph,
        placement: Placement,
        policy: str | PolicyFactory = "DD",
        policy_overrides: dict[str, str | PolicyFactory] | None = None,
        queue_capacity: int = 8,
        ack_nbytes: int = DEFAULT_ACK_BYTES,
        tracer: "Tracer | None" = None,
        codec: "BufferCodec | None" = None,
        start_method: str | None = None,
        deep_analysis: bool = True,
    ):
        self._default_factory = self._resolve(policy)
        self._stream_factories = {
            name: self._resolve(p) for name, p in (policy_overrides or {}).items()
        }
        self.codec = codec or BufferCodec()
        self._analysis_report = validate_run_setup(
            graph, placement, queue_capacity, "process",
            policy_for=self._policy_for, codec=self.codec,
            deep=deep_analysis,
        )
        start_method = start_method or "fork"
        if start_method not in multiprocessing.get_all_start_methods():
            raise EngineError(
                f"start method {start_method!r} unavailable on this platform "
                f"(have {multiprocessing.get_all_start_methods()}); the "
                f"process engine needs fork for closure factories — use the "
                f"threaded engine instead"
            )
        self.graph = graph
        self.placement = placement
        self.queue_capacity = queue_capacity
        self.ack_nbytes = ack_nbytes
        self.tracer = tracer
        self.start_method = start_method

    @staticmethod
    def _resolve(policy: str | PolicyFactory) -> PolicyFactory:
        if callable(policy):
            return policy
        return make_policy_factory(policy)

    def _policy_for(self, stream: str) -> PolicyFactory:
        return self._stream_factories.get(stream, self._default_factory)

    def run(self) -> RunMetrics:
        """Execute one unit of work; blocks until all copies finish."""
        return self.run_cycles([None])[0]

    # -- orchestration (parent process) -------------------------------------
    def run_cycles(self, uows: "list[Any]") -> list[RunMetrics]:
        """Run consecutive units of work through persistent filter copies.

        The work-cycle protocol of ``ThreadedEngine.run_cycles``, with each
        copy a long-lived worker process: one filter instance per copy, one
        ``init``/``handle``/``flush``/``finalize`` pass per unit of work,
        cycles pipelining freely.  Returns one :class:`RunMetrics` per unit
        of work.
        """
        if not uows:
            raise EngineError("run_cycles() needs at least one unit of work")
        mp_ctx = multiprocessing.get_context(self.start_method)
        ncycles = len(uows)

        # Start the shared-memory resource tracker *before* forking so every
        # worker talks to the same tracker process: a segment registered at
        # creation in one worker is then balanced by the unlink in another,
        # instead of each side lazily spawning its own tracker and warning
        # about "leaked" objects at exit.
        if self.codec.use_shared_memory:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()

        # Copy-set queues, one per (filter, host, cycle) — same layout as
        # the threaded engine so the close protocol carries over verbatim.
        copysets: dict[str, list[list[_SharedCopySetQueue]]] = {}
        copyset_hosts: dict[str, list[str]] = {}
        for name, spec in self.graph.filters.items():
            expected = sum(
                self.placement.total_copies(s.src) for s in spec.inputs
            )
            sets, hosts = [], []
            for cs in self.placement.copysets(name):
                sets.append(
                    [
                        _SharedCopySetQueue(
                            mp_ctx, cs.copies, expected, self.queue_capacity
                        )
                        for _ in range(ncycles)
                    ]
                )
                hosts.append(cs.host)
            copysets[name] = sets
            copyset_hosts[name] = hosts

        # One worker per copy, globally numbered.
        plan = []  # (cid, spec, host, copy_index, copies_on_host, total, set_idx)
        cid = 0
        for name, spec in self.graph.filters.items():
            total = self.placement.total_copies(name)
            for set_idx, cs in enumerate(self.placement.copysets(name)):
                for copy_index in range(cs.copies):
                    plan.append(
                        (cid, spec, cs.host, copy_index, cs.copies, total, set_idx)
                    )
                    cid += 1

        # Ack control queues: one per producer copy whose writers need them.
        needs_ack = {
            name: any(
                self._policy_for(st.name)().needs_ack for st in spec.outputs
            )
            for name, spec in self.graph.filters.items()
        }
        ack_queues = [
            mp_ctx.SimpleQueue() if needs_ack[item[1].name] else None
            for item in plan
        ]
        results_queue = mp_ctx.SimpleQueue()

        tracer = self.tracer
        if tracer is not None and not tracer.clock:
            tracer.clock = "wall"
        emit_analysis_events(tracer, self._analysis_report, 0.0)
        t_start = time.perf_counter()
        shared = {
            "uows": uows,
            "copysets": copysets,
            "copyset_hosts": copyset_hosts,
            "ack_queues": ack_queues,
            "results_queue": results_queue,
            "t_start": t_start,
            "trace": tracer is not None,
            "trace_limit": tracer.limit if tracer is not None else 0,
        }

        procs: dict[int, Any] = {}
        for item in plan:
            proc = mp_ctx.Process(
                target=self._copy_worker,
                args=(shared, item),
                name=f"{item[1].name}@{item[2]}#{item[3]}",
                daemon=True,
            )
            procs[item[0]] = proc
        for proc in procs.values():
            proc.start()

        # Reports must drain concurrently: a worker's final put can exceed
        # the pipe buffer and would deadlock a join-first parent.
        reports: list[_CopyReport] = []

        def _collect():
            while True:
                item = results_queue.get()
                if item == _STOP:
                    break
                reports.append(item)

        collector = threading.Thread(target=_collect, daemon=True)
        collector.start()

        crashes = self._supervise(procs, plan, copysets, ack_queues, ncycles)
        results_queue.put(_STOP)
        collector.join()

        return self._merge(
            reports, plan, uows, crashes, tracer
        )

    def _supervise(self, procs, plan, copysets, ack_queues, ncycles):
        """Wait for all workers; recover from hard crashes.

        A worker that dies without running its cleanup (segfault, kill,
        fork-safety bug) would leave consumers waiting for end-of-work and
        producers blocked on a queue nobody drains.  The parent holds every
        queue handle, so it announces EOW on the dead copy's behalf and
        drains copy sets whose members are all gone.

        While every worker is healthy the supervisor blocks in
        ``multiprocessing.connection.wait`` on the process sentinels — one
        poll(2) that sleeps in the kernel until a worker actually exits,
        instead of a 10 ms ``is_alive`` loop burning a core per run.  Only
        after a crash, while fully-dead copy sets may still receive traffic
        from surviving producers, does the wait take a short timeout so the
        drain sweeps keep running.
        """
        by_cid = {item[0]: item for item in plan}
        live = dict(procs)
        sentinels = {p.sentinel: c for c, p in procs.items()}
        crashes = []
        dead_cids: set[int] = set()
        while live:
            ready = multiprocessing.connection.wait(
                [p.sentinel for p in live.values()],
                timeout=0.05 if dead_cids else None,
            )
            for sentinel in ready:
                c = sentinels[sentinel]
                proc = live.pop(c)
                proc.join()
                if proc.exitcode != 0:
                    crashes.append((by_cid[c], proc.exitcode))
                    dead_cids.add(c)
                    _cid, spec, _h, _ci, _coh, _tot, _si = by_cid[c]
                    for st in spec.outputs:
                        for sets in copysets[st.dst]:
                            for k in range(ncycles):
                                # Announce on the dead copy's behalf (a
                                # surplus marker is ignored consumer-side).
                                # The put blocks while the queue is full, so
                                # run it off-thread to keep supervising.
                                threading.Thread(
                                    target=sets[k].producer_finished,
                                    daemon=True,
                                ).start()
            if dead_cids:
                self._drain_dead_copysets(
                    plan, live, dead_cids, copysets, ack_queues, ncycles
                )
        return crashes

    def _drain_dead_copysets(self, plan, live, dead_cids, copysets,
                             ack_queues, ncycles):
        """Discard traffic aimed at copy sets with no surviving member."""
        members: dict[tuple[str, int], list[int]] = {}
        for cid, spec, _h, _ci, _coh, _tot, set_idx in plan:
            members.setdefault((spec.name, set_idx), []).append(cid)
        for (name, set_idx), cids in members.items():
            if not any(c in dead_cids for c in cids):
                continue
            if any(c in live for c in cids):
                continue  # a surviving sibling still drains the queue
            for k in range(ncycles):
                q = copysets[name][set_idx][k].queue
                while True:
                    try:
                        item = q.get_nowait()
                    except queue_mod.Empty:
                        break
                    if item == _STOP or item == _EOW:
                        continue
                    _ack_and_release(item, ack_queues)

    def _merge(self, reports, plan, uows, crashes, tracer):
        """Fold worker reports into per-cycle RunMetrics and the tracer."""
        ncycles = len(uows)
        metrics_list = [RunMetrics() for _ in uows]
        for metrics in metrics_list:
            metrics.ack_nbytes = self.ack_nbytes
        errors: list[str] = []
        for item, exitcode in crashes:
            errors.append(
                f"worker process {item[1].name}@{item[2]}#{item[3]} died "
                f"with exit code {exitcode}"
            )
        for report in sorted(reports, key=lambda r: r.cid):
            for k, cycle in enumerate(report.cycles[:ncycles]):
                error = _fold_cycle(
                    metrics_list[k], cycle, report.filter_name, report.host,
                    report.copy_index, self.ack_nbytes,
                )
                if error:
                    errors.append(error)
        for k, metrics in enumerate(metrics_list):
            metrics.makespan = max(
                (c.finished_at for c in metrics.copies), default=0.0
            )
        if tracer is not None:
            events = sorted(
                (e for r in reports for e in r.events), key=lambda e: e.time
            )
            samples = sorted(
                (s for r in reports for s in r.queue_samples),
                key=lambda s: s.time,
            )
            for event in events:
                tracer.record(event.time, event.copy, event.kind, event.detail)
            for sample in samples:
                tracer.sample_queue(sample.time, sample.queue, sample.depth)
            tracer.dropped += sum(r.dropped for r in reports)
        if errors:
            # Healthy cycles merged fine; hand their metrics to the caller
            # alongside every error instead of discarding the batch.
            raise EngineError(
                f"filter copy failed: {errors[0]}",
                metrics=metrics_list, errors=errors,
            )
        return metrics_list

    # -- the worker (child process) ------------------------------------------
    def _copy_worker(self, shared, item):
        """Entry point of one copy's process: run every cycle, then report."""
        cid, spec, host, copy_index, copies_on_host, total, set_idx = item
        uows = shared["uows"]
        copysets = shared["copysets"]
        copyset_hosts = shared["copyset_hosts"]
        ack_queues = shared["ack_queues"]
        t_start = shared["t_start"]
        clock = lambda: time.perf_counter() - t_start  # noqa: E731
        # Worker-local tracer: same schema, merged (time-sorted) by the
        # parent.  perf_counter is CLOCK_MONOTONIC on Linux, shared by all
        # forked workers, so timestamps are directly comparable.
        tracer = (
            Tracer(limit=shared["trace_limit"], clock="wall")
            if shared["trace"]
            else None
        )
        label = f"{spec.name}@{host}#{copy_index}"
        report = _CopyReport(cid, spec.name, host, copy_index)
        codec = self.codec

        # Ack-drain thread: applies consumer acknowledgments to the right
        # cycle's writer (late acks from a finished cycle stay harmless).
        writers_by_cycle: dict[int, dict[str, _Writer]] = {}
        ack_queue = ack_queues[cid]
        ack_thread = None
        if ack_queue is not None:
            ack_thread = _start_ack_drain(ack_queue, writers_by_cycle)

        try:
            instance: Filter | None = spec.factory()
            build_error = None
        except BaseException as exc:  # noqa: BLE001 - reported per cycle
            instance = None
            build_error = f"filter {spec.name!r} failed to build: {exc!r}"

        for k, uow in enumerate(uows):
            report.cycles.append(
                _execute_cycle(
                    spec=spec,
                    host=host,
                    copy_index=copy_index,
                    copies_on_host=copies_on_host,
                    total=total,
                    cid=cid,
                    k=k,
                    uow=uow,
                    instance=instance,
                    build_error=build_error,
                    my_queue=copysets[spec.name][set_idx][k],
                    out_queues={
                        st.name: [sets[k] for sets in copysets[st.dst]]
                        for st in spec.outputs
                    },
                    out_hosts={
                        st.name: copyset_hosts[st.dst] for st in spec.outputs
                    },
                    policy_for=self._policy_for,
                    codec=codec,
                    ack_queues=ack_queues,
                    tracer=tracer,
                    clock=clock,
                    label=label,
                    writers_by_cycle=writers_by_cycle,
                )
            )

        if ack_thread is not None:
            # FIFO sentinel: acks already queued still get delivered (and
            # traced) before the drain thread stops.
            ack_queue.put(_STOP)
            ack_thread.join()
        if tracer is not None:
            report.events = tracer.events
            report.queue_samples = tracer.queue_samples
            report.dropped = tracer.dropped
        shared["results_queue"].put(report)
