"""Shared engine-facing definitions."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.instrument import RunMetrics
from repro.errors import EngineError

__all__ = ["Engine", "validate_run_setup"]


class Engine(ABC):
    """An execution engine runs a placed filter graph for one unit of work.

    Implementations: :class:`repro.engines.simulated.SimulatedEngine` (runs
    cost models over the DES cluster substrate, used for every scheduling
    experiment), :class:`repro.engines.threaded.ThreadedEngine` (real
    filters, one thread per copy — correctness baseline) and
    :class:`repro.engines.process.ProcessEngine` (real filters, one process
    per copy — actual parallelism on multicore hosts).
    """

    @abstractmethod
    def run(self) -> RunMetrics:
        """Execute one unit of work and return its measurements."""


def validate_run_setup(graph, placement, queue_capacity, engine_name):
    """Shared constructor checks of the real (threaded/process) engines.

    Validates the graph, checks the placement against the hosts it names,
    requires a real-filter factory on every filter and a sane queue bound.
    Raises :class:`~repro.errors.EngineError` / the graph and placement
    error types on violation.
    """
    graph.validate()
    hosts = {
        cs.host for name in graph.filters for cs in placement.copysets(name)
    }
    placement.validate(graph, hosts)
    for spec in graph.filters.values():
        if spec.factory is None:
            raise EngineError(
                f"filter {spec.name!r} has no factory; the {engine_name} "
                f"engine needs one per filter"
            )
    if queue_capacity < 1:
        raise EngineError(f"queue_capacity must be >= 1, got {queue_capacity}")
