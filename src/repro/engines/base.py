"""Shared engine-facing definitions."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.instrument import RunMetrics

__all__ = ["Engine"]


class Engine(ABC):
    """An execution engine runs a placed filter graph for one unit of work.

    Implementations: :class:`repro.engines.simulated.SimulatedEngine` (runs
    cost models over the DES cluster substrate, used for every scheduling
    experiment) and :class:`repro.engines.threaded.ThreadedEngine` (runs real
    filters locally with threads, used for correctness and the examples).
    """

    @abstractmethod
    def run(self) -> RunMetrics:
        """Execute one unit of work and return its measurements."""
