"""Shared engine-facing definitions."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable
from typing import TYPE_CHECKING

from repro.core.instrument import RunMetrics
from repro.errors import EngineError

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.analysis.diagnostics import DiagnosticReport
    from repro.core.buffer import BufferCodec
    from repro.core.graph import FilterGraph
    from repro.core.placement import Placement
    from repro.core.policies import WriterPolicy
    from repro.core.tracing import Tracer

__all__ = ["Engine", "validate_run_setup", "emit_analysis_events"]


class Engine(ABC):
    """An execution engine runs a placed filter graph for one unit of work.

    Implementations: :class:`repro.engines.simulated.SimulatedEngine` (runs
    cost models over the DES cluster substrate, used for every scheduling
    experiment), :class:`repro.engines.threaded.ThreadedEngine` (real
    filters, one thread per copy — correctness baseline) and
    :class:`repro.engines.process.ProcessEngine` (real filters, one process
    per copy — actual parallelism on multicore hosts).
    """

    @abstractmethod
    def run(self) -> RunMetrics:
        """Execute one unit of work and return its measurements."""


def validate_run_setup(
    graph: "FilterGraph",
    placement: "Placement",
    queue_capacity: int,
    engine_name: str,
    policy_for: "Callable[[str], Callable[[], WriterPolicy]] | None" = None,
    known_hosts: "Iterable[str] | None" = None,
    codec: "BufferCodec | None" = None,
    factory_slot: str = "factory",
    deep: bool = True,
) -> "DiagnosticReport":
    """Shared constructor checks of every engine: the static verifier.

    Runs :func:`repro.analysis.verify_pipeline` over the full run
    configuration — graph structure, placement (against ``known_hosts``
    when the engine has a cluster; the real engines treat host names as
    labels), writer-policy flow control and buffer/codec declarations —
    plus the engine-specific requirements (a ``factory``/``sim_factory``
    per filter, a sane queue bound).  With ``deep=True`` (the default)
    the effect-inference, resource-dataflow and protocol model-checker
    passes run too, under conservative state-space bounds.

    ERROR-level diagnostics raise immediately (:class:`GraphError` /
    :class:`PlacementError` / :class:`~repro.errors.AnalysisError` by rule
    scope); the full report — including WARNING diagnostics the engine
    surfaces as ``analysis`` trace events at run start — is returned.
    """
    from repro.analysis.pipeline import verify_pipeline

    if queue_capacity < 1:
        raise EngineError(f"queue_capacity must be >= 1, got {queue_capacity}")
    if known_hosts is None:
        known_hosts = {
            cs.host
            for name in placement.placed_filters()
            for cs in placement.copysets(name)
        }
    report = verify_pipeline(
        graph,
        placement,
        known_hosts=known_hosts,
        policy_for=policy_for,
        queue_capacity=queue_capacity,
        codec=codec,
        deep=deep,
    )
    report.raise_errors()
    for spec in graph.filters.values():
        if getattr(spec, factory_slot) is None:
            raise EngineError(
                f"filter {spec.name!r} has no {factory_slot}; the "
                f"{engine_name} engine needs one per filter"
            )
    return report


def emit_analysis_events(
    tracer: "Tracer | None", report: "DiagnosticReport | None", time: float
) -> None:
    """Record the verifier's WARNING diagnostics as ``analysis`` events.

    Each ``(rule, subject)`` pair is recorded at most once per tracer:
    engines re-verify graphs that applications already verified at
    construction, and without the dedup every finding would appear twice
    in the same trace.
    """
    if tracer is None or report is None:
        return
    for diag in report.warnings:
        if not tracer.note_analysis(diag.rule, diag.subject):
            continue
        tracer.record(
            time, diag.subject, "analysis", f"{diag.rule}: {diag.message}"
        )
