"""Command-line interface.

Six subcommands::

    python -m repro.cli experiments [NAME ...] [--scale S]
        Regenerate the paper's tables/figures (default: all).

    python -m repro.cli render [--engine threaded|process] [--grid N]
                               [--image W] [--config C] [--algorithm A]
                               [--copies K] [--policy P] [--out FILE.ppm]
                               [--trace] [--trace-out F]
        Render a real isosurface through the real pipeline (threads, or one
        process per copy for actual parallelism) and write a PPM image.
        The simulated engine lives under ``simulate`` — it runs cost
        models, not real filters, so it cannot produce an image.

    python -m repro.cli simulate [--dataset {1.5gb,25gb}] [--scale S]
                                 [--rogue N] [--blue N] [--bg-jobs J]
                                 [--config C] [--policy P] [--image W]
                                 [--trace] [--trace-out F]
        Run one scheduling scenario on the simulated UMD testbed and print
        the makespan and stream statistics.

    python -m repro.cli serve [--host H] [--port P] [--grid N]
                              [--timesteps T] [--image W] [--config C]
                              [--algorithm A] [--copies K] [--policy P]
                              [--max-inflight N] [--admission N]
                              [--idle-timeout S]
        Run the isosurface query service: JSON-lines over TCP, queries
        rendered on warm process pools (see :mod:`repro.serve` and
        ``examples/serve_client.py``).

    python -m repro.cli trace FILE.jsonl [--width N]
        Render the timeline and per-copy utilisation summary of a trace
        exported with ``--trace-out`` (either engine).

    python -m repro.cli lint [PATH ...] [--graph-module MOD[:ATTR]]
                             [--format text|json] [--process] [--deep]
                             [--protocol-max-states N] [--rules]
        Run the static analysis layer (:mod:`repro.analysis`): AST-lint
        filter code in the given files (nothing is imported) and/or
        verify a live graph+placement from an imported module.  With
        ``--deep``, the effect-inference (E7xx), resource-dataflow (M8xx)
        and protocol model-checker (F9xx) passes run on the imported
        graphs too.  Exits 1 when any ERROR-level diagnostic fires.

Both engines emit the same trace schema (:mod:`repro.core.tracing`), so
``--trace``/``--trace-out`` work identically on ``render`` (threaded,
wall clock) and ``simulate`` (simulated clock).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

__all__ = ["main"]

_EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "figure4",
    "figure5",
    "figure7",
    "dynamic_load",
    "concurrent_queries",
    "validation",
    "figure2a",
)


def _cmd_experiments(args: argparse.Namespace) -> int:
    import importlib

    extensions = ("dynamic_load", "concurrent_queries", "validation", "figure2a")
    names = args.names or [n for n in _EXPERIMENTS if n not in extensions]
    for name in names:
        if name not in _EXPERIMENTS:
            print(
                f"unknown experiment {name!r}; choose from "
                f"{', '.join(_EXPERIMENTS)}",
                file=sys.stderr,
            )
            return 2
        module = importlib.import_module(f"repro.experiments.{name}")
        kwargs = {}
        if args.scale is not None and name not in ("validation", "figure2a"):
            kwargs["scale"] = args.scale
        print(module.run(**kwargs).format())
        print()
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.data import HostDisks, ParSSimDataset, StorageMap
    from repro.engines import ProcessEngine, ThreadedEngine
    from repro.viz import IsosurfaceApp
    from repro.viz.profile import DatasetProfile

    engine_cls = ProcessEngine if args.engine == "process" else ThreadedEngine

    dataset = ParSSimDataset(
        (args.grid, args.grid, args.grid), timesteps=max(args.timestep + 1, 1),
        seed=args.seed,
    )
    profile = DatasetProfile.measured(
        "cli", dataset, nchunks=args.chunks, nfiles=args.files,
        isovalue=args.isovalue,
    )
    storage = StorageMap.balanced(profile.files, [HostDisks("host0")])
    app = IsosurfaceApp(
        profile,
        storage,
        width=args.image,
        height=args.image,
        algorithm=args.algorithm,
        dataset=dataset,
        isovalue=args.isovalue,
        timestep=args.timestep,
        merge_copies=args.merge_copies,
    )
    graph = app.graph(args.config)
    placement = app.placement(args.config, copies_per_host=args.copies)
    tracer = _make_tracer(args)
    metrics = engine_cls(
        graph,
        placement,
        policy=args.policy,
        policy_overrides=app.policy_overrides(args.config),
        tracer=tracer,
    ).run()
    metrics.validate(graph)
    result = metrics.result
    with open(args.out, "wb") as fh:
        fh.write(f"P6 {args.image} {args.image} 255\n".encode())
        fh.write(result.image.tobytes())
    print(
        f"rendered {profile.total_triangles(args.timestep)} triangles, "
        f"{result.active_pixels} active pixels -> {args.out}"
    )
    _emit_trace(args, tracer)
    return 0


def _make_tracer(args: argparse.Namespace):
    """A Tracer when ``--trace``/``--trace-out`` asked for one, else None."""
    if not (args.trace or args.trace_out):
        return None
    from repro.core.tracing import Tracer

    return Tracer()


def _emit_trace(args: argparse.Namespace, tracer) -> None:
    """Print and/or export a recorded trace, per the common trace flags."""
    if tracer is None:
        return
    if args.trace:
        print()
        print(tracer.report())
    if args.trace_out:
        tracer.to_jsonl(args.trace_out)
        print(f"trace     : {len(tracer.events)} events -> {args.trace_out}")


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.data import HostDisks, StorageMap
    from repro.engines import SimulatedEngine
    from repro.sim import Environment, umd_testbed
    from repro.viz import IsosurfaceApp
    from repro.viz.profile import dataset_1p5gb, dataset_25gb

    profile = (
        dataset_25gb(scale=args.scale)
        if args.dataset == "25gb"
        else dataset_1p5gb(scale=args.scale)
    )
    env = Environment()
    cluster = umd_testbed(
        env, red_nodes=0, blue_nodes=args.blue, rogue_nodes=args.rogue,
        deathstar=False,
    )
    rogue = [f"rogue{i}" for i in range(args.rogue)]
    blue = [f"blue{i}" for i in range(args.blue)]
    if args.bg_jobs:
        cluster.set_background_load(args.bg_jobs, hosts=rogue)
    nodes = rogue + blue
    storage = StorageMap.balanced(profile.files, [HostDisks(h, 2) for h in nodes])
    app = IsosurfaceApp(
        profile, storage, width=args.image, height=args.image,
        algorithm=args.algorithm,
    )
    tracer = _make_tracer(args)
    if args.auto_place:
        from repro.planner import auto_place

        advice = auto_place(app, args.config, cluster, compute_hosts=nodes)
        placement = advice.placement
        print(f"auto-place: bottleneck {advice.bottleneck}, "
              f"merge on {advice.merge_host}")
        for note in advice.notes:
            print(f"auto-place: {note}")
    else:
        placement = app.placement(args.config, compute_hosts=nodes)
    graph = app.graph(args.config)
    metrics = SimulatedEngine(
        cluster,
        graph,
        placement,
        policy=args.policy,
        tracer=tracer,
    ).run()
    metrics.validate(graph)
    print(f"dataset   : {profile.name}")
    print(f"makespan  : {metrics.makespan:.3f} s")
    for stream, stats in sorted(metrics.streams.items()):
        print(
            f"stream {stream:>10}: {stats.buffers:6d} buffers "
            f"{stats.bytes / 1e6:9.2f} MB"
        )
    if metrics.ack_messages:
        print(
            f"acks      : {metrics.ack_messages} messages "
            f"{metrics.ack_bytes / 1e3:.1f} kB"
        )
    _emit_trace(args, tracer)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        DiagnosticReport,
        format_rule_catalogue,
        format_text,
        lint_file,
        lint_graph_filters,
        to_json,
        verify_pipeline,
    )

    if args.rules:
        print(format_rule_catalogue())
        return 0
    if not args.paths and not args.graph_module:
        print(
            "nothing to lint: pass FILE/DIR paths and/or --graph-module",
            file=sys.stderr,
        )
        return 2

    report = DiagnosticReport()

    # Pass 2 over files: pure-AST, nothing is imported or executed.
    files: list = []
    from pathlib import Path

    for raw in args.paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.exists():
            files.append(path)
        else:
            print(f"no such file: {raw}", file=sys.stderr)
            return 2
    for path in files:
        report.extend(lint_file(path, process_engine=args.process))

    # Pass 1 over a live graph/placement from an imported module.
    if args.graph_module:
        try:
            loaded = _load_graph_objects(args.graph_module)
        except Exception as exc:  # noqa: BLE001 - user module errors
            print(
                f"cannot load --graph-module {args.graph_module!r}: {exc}",
                file=sys.stderr,
            )
            return 2
        from repro.core.policies import make_policy_factory

        policy_factory = make_policy_factory(args.policy)
        for graph, placement, module_file in loaded:
            report.extend(
                verify_pipeline(
                    graph,
                    placement,
                    policy_for=(lambda _stream: policy_factory),
                    queue_capacity=args.queue_capacity,
                    deep=args.deep,
                    protocol_max_states=args.protocol_max_states,
                )
            )
            report.extend(
                lint_graph_filters(graph, process_engine=args.process)
            )
            if module_file:
                report.extend(
                    lint_file(module_file, process_engine=args.process)
                )

    if args.format == "json":
        print(to_json(report))
    else:
        print(format_text(report))
    return 1 if report.errors else 0


def _load_graph_objects(spec: str) -> list:
    """Resolve ``module[:attr]`` into ``(graph, placement, file)`` triples.

    ``attr`` may be a :class:`~repro.core.graph.FilterGraph`, a zero-arg
    callable returning one, a callable returning a ``(graph, placement)``
    tuple, or a callable returning a *list* of such graphs/tuples (one
    lint target per configuration).  Without ``attr``, module-level
    FilterGraph and Placement instances are discovered (a sole Placement
    is paired with every discovered graph).
    """
    import importlib
    import inspect

    from repro.core.graph import FilterGraph
    from repro.core.placement import Placement

    module_name, _, attr = spec.partition(":")
    module = importlib.import_module(module_name)
    module_file = getattr(module, "__file__", None)

    def as_pair(obj: object) -> tuple[FilterGraph, "Placement | None"]:
        if isinstance(obj, FilterGraph):
            return obj, None
        if (
            isinstance(obj, tuple)
            and len(obj) == 2
            and isinstance(obj[0], FilterGraph)
        ):
            placement = obj[1] if isinstance(obj[1], Placement) else None
            return obj[0], placement
        raise TypeError(
            f"expected a FilterGraph or (FilterGraph, Placement), "
            f"got {type(obj).__name__}"
        )

    if attr:
        obj = getattr(module, attr)
        if callable(obj) and not isinstance(obj, FilterGraph):
            obj = obj()
        if isinstance(obj, list):
            return [(*as_pair(item), module_file) for item in obj]
        graph, placement = as_pair(obj)
        return [(graph, placement, module_file)]

    graphs = [
        value
        for _name, value in inspect.getmembers(module)
        if isinstance(value, FilterGraph)
    ]
    placements = [
        value
        for _name, value in inspect.getmembers(module)
        if isinstance(value, Placement)
    ]
    if not graphs:
        raise TypeError(
            f"module {module_name!r} defines no module-level FilterGraph; "
            f"name a builder with {module_name}:attr"
        )
    shared = placements[0] if len(placements) == 1 else None
    return [(graph, shared, module_file) for graph in graphs]


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import QueryService, SceneSpec, run_server

    scene = SceneSpec(
        "default",
        grid=args.grid,
        timesteps=args.timesteps,
        seed=args.seed,
        isovalue=args.isovalue,
    )
    service = QueryService(
        scenes=[scene],
        config=args.config,
        algorithm=args.algorithm,
        width=args.image,
        height=args.image,
        policy=args.policy,
        copies=args.copies,
        merge_copies=args.merge_copies,
        max_inflight=args.max_inflight,
        pool_idle_timeout=args.idle_timeout,
        cache_mb=args.cache_mb,
        cache_scope=args.cache_scope,
    )
    try:
        run_server(
            service,
            host=args.host,
            port=args.port,
            admission_limit=args.admission,
        )
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.tracing import Tracer

    try:
        tracer = Tracer.from_jsonl(args.file)
    except OSError as exc:
        print(f"cannot read trace {args.file!r}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"malformed trace {args.file!r}: {exc}", file=sys.stderr)
        return 2
    if tracer.clock:
        print(f"clock: {tracer.clock}")
    print(tracer.report(width=args.width))
    return 0


def _strip_width(text: str) -> int:
    width = int(text)
    if width < 1:
        raise argparse.ArgumentTypeError("width must be >= 1")
    return width


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DataCutter transparent-copies reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="regenerate tables/figures")
    p_exp.add_argument("names", nargs="*", help=f"subset of: {', '.join(_EXPERIMENTS)}")
    p_exp.add_argument("--scale", type=float, default=None, help="dataset scale")
    p_exp.set_defaults(func=_cmd_experiments)

    p_render = sub.add_parser("render", help="render a real isosurface")
    p_render.add_argument("--engine", default="threaded",
                          choices=["threaded", "process"],
                          help="threads in-process, or one OS process per "
                               "copy (real multicore parallelism)")
    p_render.add_argument("--grid", type=int, default=33, help="grid points per axis")
    p_render.add_argument("--image", type=int, default=256, help="image size (pixels)")
    p_render.add_argument("--config", default="RE-Ra-M",
                          choices=["R-E-Ra-M", "RE-Ra-M", "R-ERa-M", "RERa-M"])
    p_render.add_argument("--algorithm", default="active",
                          choices=["active", "zbuffer"])
    p_render.add_argument("--policy", default="DD",
                          choices=["RR", "WRR", "DD", "RATE"])
    p_render.add_argument("--copies", type=int, default=2,
                          help="raster copies per host")
    p_render.add_argument("--merge-copies", type=int, default=1,
                          help="distributed tile-framebuffer merge copies "
                               "(1 = classic single merge)")
    p_render.add_argument("--isovalue", type=float, default=0.3)
    p_render.add_argument("--timestep", type=int, default=0)
    p_render.add_argument("--chunks", type=int, default=27)
    p_render.add_argument("--files", type=int, default=8)
    p_render.add_argument("--seed", type=int, default=7)
    p_render.add_argument("--out", default="render.ppm")
    p_render.add_argument("--trace", action="store_true",
                          help="print a per-copy activity timeline")
    p_render.add_argument("--trace-out", default=None, metavar="FILE",
                          help="export the trace as JSONL (see 'repro trace')")
    p_render.set_defaults(func=_cmd_render)

    p_sim = sub.add_parser("simulate", help="run one simulated scenario")
    p_sim.add_argument("--dataset", default="25gb", choices=["1.5gb", "25gb"])
    p_sim.add_argument("--scale", type=float, default=0.02)
    p_sim.add_argument("--rogue", type=int, default=4, help="Rogue nodes")
    p_sim.add_argument("--blue", type=int, default=4, help="Blue nodes")
    p_sim.add_argument("--bg-jobs", type=int, default=0,
                       help="background jobs per Rogue node")
    p_sim.add_argument("--config", default="RE-Ra-M",
                       choices=["R-E-Ra-M", "RE-Ra-M", "R-ERa-M", "RERa-M"])
    p_sim.add_argument("--algorithm", default="active",
                       choices=["active", "zbuffer"])
    p_sim.add_argument("--policy", default="DD",
                       choices=["RR", "WRR", "DD", "RATE"])
    p_sim.add_argument("--image", type=int, default=2048)
    p_sim.add_argument("--auto-place", action="store_true",
                       help="derive placement/copies with repro.planner")
    p_sim.add_argument("--trace", action="store_true",
                       help="print a per-copy activity timeline")
    p_sim.add_argument("--trace-out", default=None, metavar="FILE",
                       help="export the trace as JSONL (see 'repro trace')")
    p_sim.set_defaults(func=_cmd_simulate)

    p_lint = sub.add_parser(
        "lint",
        help="statically verify pipeline definitions and lint filter code",
    )
    p_lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="Python files/directories to AST-lint (never imported)",
    )
    p_lint.add_argument(
        "--graph-module", default=None, metavar="MOD[:ATTR]",
        help="import MOD and verify its FilterGraph/Placement objects "
             "(ATTR may be a graph or a zero-arg builder)",
    )
    p_lint.add_argument("--format", default="text", choices=["text", "json"],
                        help="diagnostic output format")
    p_lint.add_argument("--process", action="store_true",
                        help="lint for the process engine (unpicklable "
                             "filter state becomes an ERROR)")
    p_lint.add_argument("--policy", default="DD",
                        choices=["RR", "WRR", "DD", "RATE"],
                        help="writer policy assumed for flow-control rules")
    p_lint.add_argument("--queue-capacity", type=int, default=8,
                        help="queue bound assumed for flow-control rules")
    p_lint.add_argument("--deep", action="store_true",
                        help="run the deep passes on --graph-module graphs: "
                             "effect inference (E7xx), resource dataflow "
                             "(M8xx) and the protocol model checker (F9xx)")
    p_lint.add_argument("--protocol-max-states", type=int, default=4_000,
                        help="state-space bound for the --deep model "
                             "checker; raise it for an exhaustive "
                             "deadlock-freedom proof instead of an F904 "
                             "truncation note")
    p_lint.add_argument("--rules", action="store_true",
                        help="print the rule catalogue and exit")
    p_lint.set_defaults(func=_cmd_lint)

    p_serve = sub.add_parser(
        "serve", help="run the warm-pool isosurface query service"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="TCP port (0 = ephemeral)")
    p_serve.add_argument("--grid", type=int, default=33,
                         help="grid points per axis of the served scene")
    p_serve.add_argument("--timesteps", type=int, default=3,
                         help="timesteps generated for the served scene")
    p_serve.add_argument("--image", type=int, default=256,
                         help="default frame size (pixels)")
    p_serve.add_argument("--config", default="RE-Ra-M",
                         choices=["R-E-Ra-M", "RE-Ra-M", "R-ERa-M", "RERa-M"])
    p_serve.add_argument("--algorithm", default="active",
                         choices=["active", "zbuffer"])
    p_serve.add_argument("--policy", default="DD",
                         choices=["RR", "WRR", "DD", "RATE"])
    p_serve.add_argument("--copies", type=int, default=2,
                         help="raster copies per host")
    p_serve.add_argument("--merge-copies", type=int, default=1,
                         help="distributed tile-framebuffer merge copies "
                              "(1 = classic single merge)")
    p_serve.add_argument("--isovalue", type=float, default=0.35,
                         help="default isovalue (queries may override)")
    p_serve.add_argument("--seed", type=int, default=7)
    p_serve.add_argument("--max-inflight", type=int, default=2,
                         help="queries pipelining through one pool")
    p_serve.add_argument("--admission", type=int, default=8,
                         help="concurrent queries admitted before rejecting")
    p_serve.add_argument("--cache-mb", type=float, default=0.0,
                         help="result-cache budget in MiB (0 disables "
                              "caching; see repro.cache)")
    p_serve.add_argument("--cache-scope", choices=("shared", "pool"),
                         default="shared",
                         help="one cache shared by every pool, or a "
                              "private cache per pool")
    p_serve.add_argument("--idle-timeout", type=float, default=300.0,
                         help="seconds before an idle pool is reaped")
    p_serve.set_defaults(func=_cmd_serve)

    p_trace = sub.add_parser(
        "trace", help="render a timeline from an exported JSONL trace"
    )
    p_trace.add_argument("file", help="JSONL trace written with --trace-out")
    p_trace.add_argument("--width", type=_strip_width, default=64,
                         help="timeline strip width (characters)")
    p_trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
