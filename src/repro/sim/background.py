"""Background-load workloads for the heterogeneity experiments.

The paper loads a subset of nodes with user-level jobs that "consume CPU
time, at the same priority as the filter code".  The processor-sharing CPU
model represents those directly as phantom runnable tasks; this module adds
the experiment-facing helpers: static load application and a phased schedule
for time-varying load (used by extension benches).
"""

from __future__ import annotations

from collections.abc import Generator, Sequence
from dataclasses import dataclass

from repro.sim.cluster import Cluster
from repro.sim.kernel import Environment, Event, Process

__all__ = ["LoadPhase", "apply_background_load", "scheduled_background_load"]


@dataclass(frozen=True)
class LoadPhase:
    """One step of a time-varying load schedule.

    ``duration`` seconds with ``jobs`` background jobs per affected host.
    """

    duration: float
    jobs: int

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"phase duration must be >= 0, got {self.duration}")
        if self.jobs < 0:
            raise ValueError(f"phase jobs must be >= 0, got {self.jobs}")


def apply_background_load(
    cluster: Cluster, jobs: int, hosts: Sequence[str]
) -> None:
    """Immediately set ``jobs`` background jobs on each of ``hosts``."""
    for name in hosts:
        cluster.host(name).set_background_load(jobs)


def scheduled_background_load(
    env: Environment,
    cluster: Cluster,
    hosts: Sequence[str],
    phases: Sequence[LoadPhase],
    repeat: bool = False,
) -> Process:
    """Drive hosts through a phase schedule; returns the driver process.

    With ``repeat=True`` the schedule loops until the simulation ends (the
    process then never finishes; it simply stops mattering once no other
    events remain, because timers keep the run alive only until ``until``).
    """
    if repeat and not any(p.duration > 0 for p in phases):
        raise ValueError("repeating schedule must have positive total duration")

    def driver() -> Generator[Event, None, None]:
        while True:
            for phase in phases:
                apply_background_load(cluster, phase.jobs, hosts)
                if phase.duration > 0:
                    yield env.timeout(phase.duration)
            if not repeat:
                apply_background_load(cluster, 0, hosts)
                return

    return env.process(driver(), name="background-load")
